//! Offline stand-in for `criterion`.
//!
//! Provides the benchmarking API subset this workspace's benches use
//! (`criterion_group!` / `criterion_main!`, benchmark groups, `BenchmarkId`,
//! `black_box`) with a deliberately simple measurement loop: a short warm-up
//! followed by timed batches, reporting the per-iteration mean and min to
//! stdout. No plots, no statistics engine, no `target/criterion` output —
//! wall-clock numbers good enough to compare methods and catch regressions,
//! while keeping `cargo bench` runs fast and dependency-free.

#![warn(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// Trait over the id forms `bench_function` accepts (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    /// Converts to the canonical id.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

/// Runs one benchmark's measurement loop.
pub struct Bencher {
    sample_size: usize,
    /// Mean/min per-iteration time recorded by the last `iter` call.
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `routine`, storing per-iteration statistics.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        // Warm-up: also estimates a batch size that keeps total time bounded.
        let warm_start = Instant::now();
        let mut warm_iters = 0u32;
        while warm_iters < 3
            || (warm_start.elapsed() < Duration::from_millis(20) && warm_iters < 1_000)
        {
            black_box(routine());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed() / warm_iters;
        // Aim for ~2ms per sample, at least 1 iteration.
        let batch = (Duration::from_millis(2).as_nanos() / per_iter.as_nanos().max(1))
            .clamp(1, 10_000) as u32;

        let mut mean_sum = Duration::ZERO;
        let mut min = Duration::MAX;
        for _ in 0..self.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            let sample = t.elapsed() / batch;
            mean_sum += sample;
            min = min.min(sample);
        }
        self.result = Some((mean_sum / self.sample_size as u32, min));
    }
}

/// A named collection of related benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs `routine` as the benchmark `id` and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into_benchmark_id();
        let mut bencher = Bencher {
            sample_size: self.sample_size,
            result: None,
        };
        routine(&mut bencher);
        match bencher.result {
            Some((mean, min)) => println!(
                "{}/{:<32} mean {:>12?}  min {:>12?}  ({} samples)",
                self.name, id.id, mean, min, self.sample_size
            ),
            None => println!("{}/{} produced no measurement", self.name, id.id),
        }
        self.criterion.benchmarks_run += 1;
        self
    }

    /// Ends the group (parity with criterion; reporting happens per-bench).
    pub fn finish(self) {}
}

/// The benchmark harness handle passed to every target function.
#[derive(Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 100,
        }
    }

    /// Runs a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut group = self.benchmark_group(id);
        group.bench_function("bench", routine);
        group.finish();
        self
    }

    /// Number of benchmarks executed so far.
    pub fn benchmarks_run(&self) -> usize {
        self.benchmarks_run
    }
}

/// Declares a group function that runs the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = { $config };
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench binary's `main`, running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(5);
        group.bench_function(BenchmarkId::new("sum", 64), |b| {
            b.iter(|| (0..64u64).sum::<u64>())
        });
        group.finish();
    }

    #[test]
    fn group_runs_and_counts() {
        let mut c = Criterion::default();
        target(&mut c);
        assert_eq!(c.benchmarks_run(), 1);
    }

    #[test]
    fn id_forms_render() {
        assert_eq!(BenchmarkId::new("build", 128).to_string(), "build/128");
        assert_eq!(
            BenchmarkId::from_parameter("skip graph").to_string(),
            "skip graph"
        );
    }
}
