//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored crate
//! re-implements exactly the API subset the workspace uses: [`Rng`] with
//! `gen` / `gen_range` / `gen_bool`, [`SeedableRng::seed_from_u64`], and the
//! deterministic [`rngs::StdRng`] generator. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically solid for the statistical
//! set-halving validators, and fully deterministic per seed (the property
//! every test in this workspace relies on).

#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness: everything derives from `next_u64`.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Types that can be sampled uniformly over their whole domain by `Rng::gen`.
pub trait Standard: Sized {
    /// Draws one uniformly random value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Types `Rng::gen_range` can sample uniformly from a sub-range.
pub trait SampleUniform: Copy {
    /// Uniform draw from `[lo, hi)` (`inclusive = false`) or `[lo, hi]`.
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        inclusive: bool,
        rng: &mut R,
    ) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                lo: Self,
                hi: Self,
                inclusive: bool,
                rng: &mut R,
            ) -> Self {
                let span = (hi as i128 - lo as i128) as u128 + u128::from(inclusive);
                assert!(span > 0, "cannot sample empty range");
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_uniform<R: RngCore + ?Sized>(
        lo: Self,
        hi: Self,
        _inclusive: bool,
        rng: &mut R,
    ) -> Self {
        assert!(lo < hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

/// Ranges `Rng::gen_range` accepts, mirroring `rand`'s `SampleRange`.
///
/// The single blanket impl per range shape (rather than one impl per integer
/// type) matters: it lets the compiler unify the range's element type with
/// the call site's expected type *before* integer-literal fallback, exactly
/// like the real `rand` crate.
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(self.start, self.end, false, rng)
    }
}

impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(lo, hi, true, rng)
    }
}

/// User-facing random-value methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniformly random value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range` (half-open or inclusive).
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        f64::sample(self) < p
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8])
    where
        Self: Sized,
    {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a single `u64`, expanded via SplitMix64.
    fn seed_from_u64(state: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ step.
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                s = [0xDEAD_BEEF, 0xCAFE_F00D, 0x0123_4567, 0x89AB_CDEF];
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    /// Alias: the "small" generator is the same xoshiro256++ core here.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..10_000 {
            let v = rng.gen_range(-20i64..=20);
            assert!((-20..=20).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(1);
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "heads {heads}");
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
