//! Offline stand-in for `crossbeam-channel`.
//!
//! A small unbounded MPMC channel built on `Mutex<VecDeque>` + `Condvar`.
//! Unlike `std::sync::mpsc`, both halves are `Sync` (crossbeam semantics):
//! multiple threads may block on the same [`Receiver`], and the actor
//! runtime's tests share client handles across scoped threads. Disconnect
//! behaviour matches crossbeam: senders fail once the receiver side is gone,
//! receivers drain the queue before reporting disconnection.
//!
//! With the `lockdep` cargo feature, the blocking entry points (`send`,
//! `recv`, `recv_timeout`) report to `parking_lot::lockdep` when called with
//! instrumented locks held — a full-mailbox send under a lock is the classic
//! actor-fabric wedge, and even this unbounded stand-in flags the pattern so
//! the discipline holds if a bounded channel ever replaces it — and consult
//! `parking_lot::chaos` for seeded schedule perturbation.

#![warn(missing_docs)]

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct Inner<T> {
    queue: VecDeque<T>,
    senders: usize,
    receivers: usize,
}

struct Shared<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
}

/// The sending half; cloneable, `Send + Sync`.
pub struct Sender<T>(Arc<Shared<T>>);

/// The receiving half; cloneable, `Send + Sync`.
pub struct Receiver<T>(Arc<Shared<T>>);

/// Error returned by [`Sender::send`] when all receivers are gone; carries
/// the unsent message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Error returned by [`Receiver::recv`] when the channel is drained and all
/// senders are gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

/// Error returned by [`Receiver::recv_timeout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvTimeoutError {
    /// No message arrived before the deadline.
    Timeout,
    /// The channel is drained and all senders are gone.
    Disconnected,
}

/// Error returned by [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// The channel is currently empty.
    Empty,
    /// The channel is drained and all senders are gone.
    Disconnected,
}

/// Creates an unbounded FIFO channel.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        inner: Mutex::new(Inner {
            queue: VecDeque::new(),
            senders: 1,
            receivers: 1,
        }),
        ready: Condvar::new(),
    });
    (Sender(Arc::clone(&shared)), Receiver(shared))
}

fn lock<T>(shared: &Shared<T>) -> std::sync::MutexGuard<'_, Inner<T>> {
    shared
        .inner
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl<T> Sender<T> {
    /// Sends `msg`, never blocking (the channel is unbounded).
    ///
    /// # Errors
    ///
    /// Returns [`SendError`] holding `msg` if every receiver was dropped.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
        #[cfg(feature = "lockdep")]
        {
            parking_lot::chaos::perturb(parking_lot::chaos::Point::Send);
            parking_lot::lockdep::note_channel_op(
                parking_lot::lockdep::ChannelOp::Send,
                std::panic::Location::caller(),
            );
        }
        let mut inner = lock(&self.0);
        if inner.receivers == 0 {
            return Err(SendError(msg));
        }
        inner.queue.push_back(msg);
        drop(inner);
        self.0.ready.notify_one();
        Ok(())
    }
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        lock(&self.0).senders += 1;
        Sender(Arc::clone(&self.0))
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = lock(&self.0);
        inner.senders -= 1;
        if inner.senders == 0 {
            drop(inner);
            self.0.ready.notify_all();
        }
    }
}

impl<T> Receiver<T> {
    /// Blocks until a message arrives.
    ///
    /// # Errors
    ///
    /// Returns [`RecvError`] once the channel is drained and disconnected.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn recv(&self) -> Result<T, RecvError> {
        #[cfg(feature = "lockdep")]
        {
            parking_lot::chaos::perturb(parking_lot::chaos::Point::Recv);
            parking_lot::lockdep::note_channel_op(
                parking_lot::lockdep::ChannelOp::Recv,
                std::panic::Location::caller(),
            );
        }
        let mut inner = lock(&self.0);
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvError);
            }
            inner = self
                .0
                .ready
                .wait(inner)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Blocks up to `timeout` for a message.
    ///
    /// # Errors
    ///
    /// [`RecvTimeoutError::Timeout`] on deadline expiry,
    /// [`RecvTimeoutError::Disconnected`] once drained and disconnected.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvTimeoutError> {
        #[cfg(feature = "lockdep")]
        {
            parking_lot::chaos::perturb(parking_lot::chaos::Point::Recv);
            parking_lot::lockdep::note_channel_op(
                parking_lot::lockdep::ChannelOp::Recv,
                std::panic::Location::caller(),
            );
        }
        let deadline = Instant::now() + timeout;
        let mut inner = lock(&self.0);
        loop {
            if let Some(msg) = inner.queue.pop_front() {
                return Ok(msg);
            }
            if inner.senders == 0 {
                return Err(RecvTimeoutError::Disconnected);
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RecvTimeoutError::Timeout);
            }
            let (guard, _timed_out) = self
                .0
                .ready
                .wait_timeout(inner, deadline - now)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            inner = guard;
        }
    }

    /// Receives without blocking.
    ///
    /// # Errors
    ///
    /// [`TryRecvError::Empty`] if no message is queued,
    /// [`TryRecvError::Disconnected`] once drained and disconnected.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut inner = lock(&self.0);
        match inner.queue.pop_front() {
            Some(msg) => Ok(msg),
            None if inner.senders == 0 => Err(TryRecvError::Disconnected),
            None => Err(TryRecvError::Empty),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Self {
        lock(&self.0).receivers += 1;
        Receiver(Arc::clone(&self.0))
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        lock(&self.0).receivers -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_across_threads() {
        let (tx, rx) = unbounded();
        let tx2 = tx.clone();
        let h = std::thread::spawn(move || {
            tx2.send(41u32).unwrap();
            tx.send(1).unwrap();
        });
        let sum = rx.recv().unwrap() + rx.recv().unwrap();
        assert_eq!(sum, 42);
        h.join().unwrap();
    }

    #[test]
    fn receiver_is_sync_and_shareable() {
        fn assert_sync<T: Sync>(_: &T) {}
        let (tx, rx) = unbounded::<u64>();
        assert_sync(&rx);
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| rx.recv().unwrap());
            }
            for i in 0..4 {
                tx.send(i).unwrap();
            }
        });
    }

    #[test]
    fn disconnect_is_reported_after_draining() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(1)),
            Err(RecvTimeoutError::Disconnected)
        );
        let (tx, rx) = unbounded::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn timeout_fires_when_idle() {
        let (_tx, rx) = unbounded::<u8>();
        assert_eq!(
            rx.recv_timeout(Duration::from_millis(5)),
            Err(RecvTimeoutError::Timeout)
        );
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
    }
}
