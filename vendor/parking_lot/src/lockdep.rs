//! Lock-order deadlock detection (this workspace's `lockdep`), compiled in
//! behind the `lockdep` cargo feature.
//!
//! Every [`Mutex`](crate::Mutex) / [`RwLock`](crate::RwLock) acquisition in
//! the workspace funnels through this module, which maintains:
//!
//! * a **per-thread held-lock set** — which lock classes the current thread
//!   holds right now, each with the source location that acquired it;
//! * a **global lock-acquisition-order graph** — an edge `A → B` is recorded
//!   the first time any thread acquires a lock of class `B` while holding a
//!   lock of class `A`, together with both acquisition sites (and, for the
//!   newly closing edge, a captured backtrace).
//!
//! On each acquisition that adds a new edge, the graph is searched for a
//! cycle through that edge. A cycle means two threads *can* acquire the same
//! lock classes in opposite orders — a potential deadlock — and is reported
//! even if the interleaving that would actually deadlock never ran. Locks
//! are identified by **class**, not instance: an explicit creation-site
//! label ([`Mutex::new_labeled`](crate::Mutex::new_labeled)) when given,
//! otherwise the source location of the lock's first acquisition. Two locks
//! created at the same site share a class, so an ABBA inversion between two
//! instances of the same pair of classes is caught no matter which instances
//! participated.
//!
//! The vendored `crossbeam-channel` additionally calls
//! [`note_channel_op`] from its blocking entry points, so a **channel send
//! or recv executed while holding any lock** is reported: a full-mailbox
//! send under the engine's apply lock is the classic way an actor fabric
//! wedges, and even our unbounded stand-in flags it so the discipline holds
//! when a bounded channel replaces it.
//!
//! Reports are recorded in a process-global buffer ([`take_reports`],
//! [`total_reports`]) and printed to stderr; set `SKIPWEB_LOCKDEP_DIR` to
//! also append them to `<dir>/lockdep-<pid>.log` (what CI uploads as an
//! artifact), `SKIPWEB_LOCKDEP_PANIC=1` to panic at the detection site, and
//! `SKIPWEB_LOCKDEP_BACKTRACE=0` to skip backtrace capture on new edges.
//! Intentional-violation fixtures call [`set_quiet`] to keep recording
//! without spamming the sinks.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::fmt;
use std::io::Write as _;
use std::panic::Location;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Mutex as StdMutex, OnceLock};

/// How a lock is being acquired, for report texts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex::lock()`.
    Mutex,
    /// `RwLock::read()`.
    RwLockRead,
    /// `RwLock::write()`.
    RwLockWrite,
}

impl fmt::Display for LockKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LockKind::Mutex => write!(f, "lock()"),
            LockKind::RwLockRead => write!(f, "read()"),
            LockKind::RwLockWrite => write!(f, "write()"),
        }
    }
}

/// A blocking channel operation, for [`note_channel_op`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChannelOp {
    /// `Sender::send` — never blocks on the unbounded stand-in, but would on
    /// any bounded channel, so it is flagged under a lock all the same.
    Send,
    /// `Receiver::recv` / `recv_timeout` — blocks until a message arrives.
    Recv,
}

impl fmt::Display for ChannelOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelOp::Send => write!(f, "send"),
            ChannelOp::Recv => write!(f, "recv"),
        }
    }
}

/// What a [`Report`] describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReportKind {
    /// A cycle in the lock-acquisition-order graph: a potential deadlock.
    OrderCycle,
    /// A blocking channel operation performed while holding a lock.
    ChannelUnderLock,
}

/// One detected violation.
#[derive(Debug, Clone)]
pub struct Report {
    /// Which detector fired.
    pub kind: ReportKind,
    /// The lock-class labels involved: the cycle in order (first class
    /// repeated at the end) for [`ReportKind::OrderCycle`], the held classes
    /// for [`ReportKind::ChannelUnderLock`].
    pub classes: Vec<String>,
    /// Full human-readable description with acquisition sites and (for the
    /// edge that closed a cycle) a captured backtrace.
    pub message: String,
}

/// Per-lock instrumentation state embedded in every
/// [`Mutex`](crate::Mutex) / [`RwLock`](crate::RwLock).
#[derive(Debug)]
pub struct LockMeta {
    /// Interned class id, assigned lazily on first acquisition (0 = unset).
    class: AtomicUsize,
    /// Explicit creation-site label, if the lock was built with
    /// `new_labeled`.
    label: Option<&'static str>,
}

impl Default for LockMeta {
    fn default() -> Self {
        LockMeta::new(None)
    }
}

/// An entry in the current thread's held-lock set. Dropping it (from the
/// guard) removes the entry.
#[derive(Debug)]
pub struct HeldToken {
    seq: u64,
}

#[derive(Clone)]
struct Held {
    seq: u64,
    class: usize,
    kind: LockKind,
    site: &'static Location<'static>,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
    static NEXT_SEQ: RefCell<u64> = const { RefCell::new(0) };
}

/// First-seen acquisition context of one order-graph edge `from → to`.
struct EdgeInfo {
    hold_kind: LockKind,
    hold_site: &'static Location<'static>,
    acquire_kind: LockKind,
    acquire_site: &'static Location<'static>,
    /// Captured only for the edge that is being inserted (cheap: once per
    /// unique edge, not per acquisition).
    backtrace: Option<String>,
}

#[derive(Default)]
struct Registry {
    /// Class label by id − 1.
    names: Vec<String>,
    ids: HashMap<String, usize>,
    /// `from → (to → first-seen context)`.
    edges: HashMap<usize, HashMap<usize, EdgeInfo>>,
    /// Cycles already reported, canonicalized to their minimal rotation.
    reported_cycles: HashSet<Vec<usize>>,
    /// Channel-under-lock sites already reported: `(call site, held set)`.
    reported_chan: HashSet<(String, Vec<usize>)>,
    reports: Vec<Report>,
}

fn registry() -> &'static StdMutex<Registry> {
    static REGISTRY: OnceLock<StdMutex<Registry>> = OnceLock::new();
    REGISTRY.get_or_init(|| StdMutex::new(Registry::default()))
}

static TOTAL_REPORTS: AtomicUsize = AtomicUsize::new(0);
static QUIET: AtomicBool = AtomicBool::new(false);
/// 0 = follow `SKIPWEB_LOCKDEP_PANIC`, 1 = off, 2 = on.
static PANIC_MODE: AtomicUsize = AtomicUsize::new(0);

fn lock_registry() -> std::sync::MutexGuard<'static, Registry> {
    registry()
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl LockMeta {
    /// Creates unassigned metadata, optionally with an explicit class label.
    pub const fn new(label: Option<&'static str>) -> Self {
        LockMeta {
            class: AtomicUsize::new(0),
            label,
        }
    }

    /// The lock's interned class id, assigning it from the label (or from
    /// `site`, the first acquisition's location) on first use.
    fn class_of(&self, site: &'static Location<'static>) -> usize {
        let c = self.class.load(Ordering::Relaxed);
        if c != 0 {
            return c;
        }
        let name = match self.label {
            Some(label) => label.to_string(),
            None => format!("{}:{}", site.file(), site.line()),
        };
        let id = {
            let mut reg = lock_registry();
            match reg.ids.get(&name) {
                Some(&id) => id,
                None => {
                    reg.names.push(name.clone());
                    let id = reg.names.len();
                    reg.ids.insert(name, id);
                    id
                }
            }
        };
        // A racing first acquisition interned the same name, so both sides
        // computed the same id; the exchange can never disagree.
        let _ = self
            .class
            .compare_exchange(0, id, Ordering::Relaxed, Ordering::Relaxed);
        id
    }

    /// Records an acquisition attempt: assigns the class, records new
    /// order-graph edges from every currently-held class, reports any cycle
    /// the new edge closes, and marks the lock held. Called *before*
    /// blocking on the underlying primitive, so the edge exists even if the
    /// acquisition then deadlocks for real.
    pub fn on_acquire(&self, kind: LockKind, site: &'static Location<'static>) -> HeldToken {
        let class = self.class_of(site);
        let held_snapshot: Vec<Held> = HELD.with(|h| h.borrow().clone());
        if !held_snapshot.is_empty() {
            let mut seen: HashSet<usize> = HashSet::new();
            for held in &held_snapshot {
                if seen.insert(held.class) {
                    add_edge(held, class, kind, site);
                }
            }
        }
        let seq = NEXT_SEQ.with(|s| {
            let mut s = s.borrow_mut();
            *s += 1;
            *s
        });
        HELD.with(|h| {
            h.borrow_mut().push(Held {
                seq,
                class,
                kind,
                site,
            })
        });
        HeldToken { seq }
    }
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            // Guards can drop out of acquisition order; search from the end
            // (the common LIFO case hits immediately).
            if let Some(i) = held.iter().rposition(|e| e.seq == self.seq) {
                held.remove(i);
            }
        });
    }
}

/// Whether to capture a backtrace on each new order-graph edge (default
/// yes; set `SKIPWEB_LOCKDEP_BACKTRACE=0` to disable).
fn capture_backtraces() -> bool {
    static ON: OnceLock<bool> = OnceLock::new();
    *ON.get_or_init(|| std::env::var("SKIPWEB_LOCKDEP_BACKTRACE").as_deref() != Ok("0"))
}

fn add_edge(held: &Held, to: usize, kind: LockKind, site: &'static Location<'static>) {
    let from = held.class;
    let report = {
        let mut reg = lock_registry();
        if reg
            .edges
            .get(&from)
            .is_some_and(|outs| outs.contains_key(&to))
        {
            return; // seen before: any cycle through it was already checked
        }
        let backtrace =
            capture_backtraces().then(|| std::backtrace::Backtrace::force_capture().to_string());
        reg.edges.entry(from).or_default().insert(
            to,
            EdgeInfo {
                hold_kind: held.kind,
                hold_site: held.site,
                acquire_kind: kind,
                acquire_site: site,
                backtrace,
            },
        );
        check_cycle(&mut reg, from, to)
    };
    if let Some(report) = report {
        emit(report);
    }
}

/// Looks for a path `to ⇝ from` (which, with the new edge `from → to`,
/// closes a cycle) and builds the report if one exists and was not reported
/// before.
fn check_cycle(reg: &mut Registry, from: usize, to: usize) -> Option<Report> {
    // Iterative DFS from `to`, collecting the path when `from` is reached.
    let path = {
        let mut stack: Vec<(usize, Vec<usize>)> = vec![(to, vec![to])];
        let mut visited: HashSet<usize> = HashSet::new();
        let mut found: Option<Vec<usize>> = None;
        while let Some((node, path)) = stack.pop() {
            if node == from {
                found = Some(path);
                break;
            }
            if !visited.insert(node) {
                continue;
            }
            if let Some(outs) = reg.edges.get(&node) {
                for &next in outs.keys() {
                    if !visited.contains(&next) {
                        let mut p = path.clone();
                        p.push(next);
                        stack.push((next, p));
                    }
                }
            }
        }
        found?
    };
    // `path` is to → … → from; the full cycle is from → to → … → from.
    let mut cycle: Vec<usize> = Vec::with_capacity(path.len() + 1);
    cycle.push(from);
    cycle.extend(path);
    // Canonicalize (rotate so the smallest class leads) to dedup reports of
    // the same cycle discovered through different closing edges.
    let mut canon: Vec<usize> = cycle[..cycle.len() - 1].to_vec();
    if let Some(min_pos) = canon
        .iter()
        .enumerate()
        .min_by_key(|(_, c)| **c)
        .map(|(i, _)| i)
    {
        canon.rotate_left(min_pos);
    }
    if !reg.reported_cycles.insert(canon) {
        return None;
    }
    let name = |c: usize| reg.names[c - 1].clone();
    let classes: Vec<String> = cycle.iter().map(|&c| name(c)).collect();
    let mut message = format!(
        "lockdep: potential deadlock — lock-order cycle {}\n",
        classes.join(" -> ")
    );
    for pair in cycle.windows(2) {
        let (a, b) = (pair[0], pair[1]);
        let info = &reg.edges[&a][&b];
        message.push_str(&format!(
            "  edge {} -> {}: first seen holding {} via {} at {}, acquiring {} via {} at {}\n",
            name(a),
            name(b),
            name(a),
            info.hold_kind,
            info.hold_site,
            name(b),
            info.acquire_kind,
            info.acquire_site,
        ));
        if let Some(bt) = &info.backtrace {
            message.push_str("  acquisition backtrace:\n");
            for line in bt.lines() {
                message.push_str("    ");
                message.push_str(line);
                message.push('\n');
            }
        }
    }
    Some(Report {
        kind: ReportKind::OrderCycle,
        classes,
        message,
    })
}

/// Called by the vendored `crossbeam-channel` from its blocking entry
/// points: reports when the current thread performs a blocking channel
/// operation while holding any instrumented lock.
pub fn note_channel_op(op: ChannelOp, site: &'static Location<'static>) {
    let held_snapshot: Vec<Held> = HELD.with(|h| h.borrow().clone());
    if held_snapshot.is_empty() {
        return;
    }
    let site_str = format!("{site}");
    let report = {
        let mut reg = lock_registry();
        let held_classes: Vec<usize> = held_snapshot.iter().map(|h| h.class).collect();
        if !reg
            .reported_chan
            .insert((site_str.clone(), held_classes.clone()))
        {
            return;
        }
        let classes: Vec<String> = held_classes
            .iter()
            .map(|&c| reg.names[c - 1].clone())
            .collect();
        let mut message = format!(
            "lockdep: blocking channel {op} at {site_str} while holding {} lock(s)\n",
            held_snapshot.len()
        );
        for (held, class) in held_snapshot.iter().zip(&classes) {
            message.push_str(&format!(
                "  holding {} (acquired via {} at {})\n",
                class, held.kind, held.site
            ));
        }
        if let Some(bt) =
            capture_backtraces().then(|| std::backtrace::Backtrace::force_capture().to_string())
        {
            message.push_str("  channel-op backtrace:\n");
            for line in bt.lines() {
                message.push_str("    ");
                message.push_str(line);
                message.push('\n');
            }
        }
        Report {
            kind: ReportKind::ChannelUnderLock,
            classes,
            message,
        }
    };
    emit(report);
}

fn panic_on_report() -> bool {
    match PANIC_MODE.load(Ordering::Relaxed) {
        1 => false,
        2 => true,
        _ => {
            static ENV: OnceLock<bool> = OnceLock::new();
            *ENV.get_or_init(|| std::env::var("SKIPWEB_LOCKDEP_PANIC").as_deref() == Ok("1"))
        }
    }
}

fn emit(report: Report) {
    TOTAL_REPORTS.fetch_add(1, Ordering::Relaxed);
    let message = report.message.clone();
    lock_registry().reports.push(report);
    if !QUIET.load(Ordering::Relaxed) {
        eprintln!("{message}");
        if let Ok(dir) = std::env::var("SKIPWEB_LOCKDEP_DIR") {
            let _ = std::fs::create_dir_all(&dir);
            let path = format!("{dir}/lockdep-{}.log", std::process::id());
            if let Ok(mut f) = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
            {
                let _ = writeln!(f, "{message}");
            }
        }
    }
    if panic_on_report() {
        panic!("{message}");
    }
}

/// Drains and returns every report recorded so far (process-global).
pub fn take_reports() -> Vec<Report> {
    std::mem::take(&mut lock_registry().reports)
}

/// Total reports ever recorded in this process (monotone — unaffected by
/// [`take_reports`]).
pub fn total_reports() -> usize {
    TOTAL_REPORTS.load(Ordering::Relaxed)
}

/// Number of instrumented locks the current thread holds right now.
pub fn held_locks() -> usize {
    HELD.with(|h| h.borrow().len())
}

/// Suppresses (or re-enables) the stderr / file sinks. Reports are still
/// recorded for [`take_reports`]; intentional-violation fixtures use this.
pub fn set_quiet(quiet: bool) {
    QUIET.store(quiet, Ordering::Relaxed);
}

/// Overrides `SKIPWEB_LOCKDEP_PANIC`: whether a detection panics at the
/// acquisition site instead of just recording the report.
pub fn set_panic_on_report(panic: bool) {
    PANIC_MODE.store(if panic { 2 } else { 1 }, Ordering::Relaxed);
}
