//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Matches the parking_lot API shape the workspace uses: `read()` / `write()`
//! / `lock()` return guards directly (no poisoning `Result`). Poison from a
//! panicked holder is deliberately ignored — parking_lot has no poisoning,
//! so neither does this shim.

#![warn(missing_docs)]

use std::sync;

/// A reader-writer lock whose guards are returned without a poisoning layer.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(sync::RwLock<T>);

/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

impl<T> RwLock<T> {
    /// Creates the lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock(sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock whose guard is returned without a poisoning layer.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(sync::Mutex<T>);

/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

impl<T> Mutex<T> {
    /// Creates the mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex(sync::Mutex::new(value))
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_allows_many_readers_then_writer() {
        let lock = RwLock::new(5);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(*a + *b, 10);
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn mutex_serializes_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
