//! Offline stand-in for `parking_lot`, backed by `std::sync` primitives.
//!
//! Matches the parking_lot API shape the workspace uses: `read()` / `write()`
//! / `lock()` return guards directly (no poisoning `Result`). Poison from a
//! panicked holder is deliberately ignored — parking_lot has no poisoning,
//! so neither does this shim.
//!
//! With the `lockdep` cargo feature, every lock carries instrumentation
//! metadata and every acquisition funnels through the [`lockdep`] lock-order
//! deadlock detector and the [`chaos`] seeded schedule perturber. Without the
//! feature both modules are compiled out and the guards are plain type
//! aliases for the `std::sync` guards — zero overhead.

#![warn(missing_docs)]

use std::sync;

#[cfg(feature = "lockdep")]
pub mod chaos;
#[cfg(feature = "lockdep")]
pub mod lockdep;

/// A reader-writer lock whose guards are returned without a poisoning layer.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    #[cfg(feature = "lockdep")]
    meta: lockdep::LockMeta,
    inner: sync::RwLock<T>,
}

#[cfg(not(feature = "lockdep"))]
/// Shared read guard for [`RwLock`].
pub type RwLockReadGuard<'a, T> = sync::RwLockReadGuard<'a, T>;
#[cfg(not(feature = "lockdep"))]
/// Exclusive write guard for [`RwLock`].
pub type RwLockWriteGuard<'a, T> = sync::RwLockWriteGuard<'a, T>;

#[cfg(feature = "lockdep")]
/// Shared read guard for [`RwLock`], carrying a lockdep held-lock token.
#[derive(Debug)]
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
    _held: lockdep::HeldToken,
}

#[cfg(feature = "lockdep")]
/// Exclusive write guard for [`RwLock`], carrying a lockdep held-lock token.
#[derive(Debug)]
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
    _held: lockdep::HeldToken,
}

impl<T> RwLock<T> {
    /// Creates the lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            #[cfg(feature = "lockdep")]
            meta: lockdep::LockMeta::new(None),
            inner: sync::RwLock::new(value),
        }
    }

    /// Creates the lock holding `value`, with an explicit lockdep class
    /// label (the label is ignored — but still accepted — without the
    /// `lockdep` feature, so call sites need no cfg).
    pub const fn new_labeled(label: &'static str, value: T) -> Self {
        #[cfg(not(feature = "lockdep"))]
        let _ = label;
        RwLock {
            #[cfg(feature = "lockdep")]
            meta: lockdep::LockMeta::new(Some(label)),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires a shared read guard, blocking until available.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        {
            chaos::perturb(chaos::Point::Lock);
            let held = self.meta.on_acquire(
                lockdep::LockKind::RwLockRead,
                std::panic::Location::caller(),
            );
            RwLockReadGuard {
                inner: self
                    .inner
                    .read()
                    .unwrap_or_else(sync::PoisonError::into_inner),
                _held: held,
            }
        }
        #[cfg(not(feature = "lockdep"))]
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires an exclusive write guard, blocking until available.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        {
            chaos::perturb(chaos::Point::Lock);
            let held = self.meta.on_acquire(
                lockdep::LockKind::RwLockWrite,
                std::panic::Location::caller(),
            );
            RwLockWriteGuard {
                inner: self
                    .inner
                    .write()
                    .unwrap_or_else(sync::PoisonError::into_inner),
                _held: held,
            }
        }
        #[cfg(not(feature = "lockdep"))]
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A mutual-exclusion lock whose guard is returned without a poisoning layer.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    #[cfg(feature = "lockdep")]
    meta: lockdep::LockMeta,
    inner: sync::Mutex<T>,
}

#[cfg(not(feature = "lockdep"))]
/// Guard for [`Mutex`].
pub type MutexGuard<'a, T> = sync::MutexGuard<'a, T>;

#[cfg(feature = "lockdep")]
/// Guard for [`Mutex`], carrying a lockdep held-lock token.
#[derive(Debug)]
pub struct MutexGuard<'a, T: ?Sized> {
    inner: sync::MutexGuard<'a, T>,
    _held: lockdep::HeldToken,
}

impl<T> Mutex<T> {
    /// Creates the mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            #[cfg(feature = "lockdep")]
            meta: lockdep::LockMeta::new(None),
            inner: sync::Mutex::new(value),
        }
    }

    /// Creates the mutex holding `value`, with an explicit lockdep class
    /// label (the label is ignored — but still accepted — without the
    /// `lockdep` feature, so call sites need no cfg).
    pub const fn new_labeled(label: &'static str, value: T) -> Self {
        #[cfg(not(feature = "lockdep"))]
        let _ = label;
        Mutex {
            #[cfg(feature = "lockdep")]
            meta: lockdep::LockMeta::new(Some(label)),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    #[cfg_attr(feature = "lockdep", track_caller)]
    pub fn lock(&self) -> MutexGuard<'_, T> {
        #[cfg(feature = "lockdep")]
        {
            chaos::perturb(chaos::Point::Lock);
            let held = self
                .meta
                .on_acquire(lockdep::LockKind::Mutex, std::panic::Location::caller());
            MutexGuard {
                inner: self
                    .inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
                _held: held,
            }
        }
        #[cfg(not(feature = "lockdep"))]
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(feature = "lockdep")]
mod guard_impls {
    use super::*;
    use std::ops::{Deref, DerefMut};

    impl<T: ?Sized> Deref for MutexGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }
    impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
    impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }
    impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
        type Target = T;
        fn deref(&self) -> &T {
            &self.inner
        }
    }
    impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
        fn deref_mut(&mut self) -> &mut T {
            &mut self.inner
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_allows_many_readers_then_writer() {
        // The second reader runs on its own thread: same-thread read
        // recursion is exactly what lockdep flags (a queued writer between
        // the two reads deadlocks), so the test must not model it.
        let lock = Arc::new(RwLock::new(5));
        {
            let a = lock.read();
            let concurrent = {
                let lock = Arc::clone(&lock);
                std::thread::spawn(move || *lock.read()).join().unwrap()
            };
            assert_eq!(*a + concurrent, 10);
        }
        *lock.write() += 1;
        assert_eq!(*lock.read(), 6);
    }

    #[test]
    fn mutex_serializes_across_threads() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
