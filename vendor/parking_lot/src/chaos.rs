//! Seeded chaos scheduling, compiled in behind the `lockdep` cargo feature.
//!
//! Every instrumented synchronization point (lock acquisition in this crate,
//! channel send/recv in the vendored `crossbeam-channel`) consults this
//! module and, when a chaos seed is set, injects a perturbation — usually
//! nothing, sometimes `yield_now`, occasionally a microsecond-scale sleep.
//! Sweeping a test binary across N seeds explores N different interleavings
//! of the same code, shaking out ordering-dependent bugs that a quiet
//! scheduler never exhibits.
//!
//! Determinism: each thread draws its decisions from a private SplitMix64
//! stream keyed by `(seed, thread ordinal)`, where the ordinal is the order
//! in which threads first hit an instrumented point. The decision *sequence*
//! per thread is therefore a pure function of the seed — rerunning with the
//! same seed replays the same per-thread perturbation schedule (the OS may
//! still interleave differently, but the injected noise is identical, which
//! is what makes failures replayable in practice). [`thread_digest`] exposes
//! an FNV-1a digest of the current thread's decisions so tests can assert
//! this.
//!
//! Enable by setting `SKIPWEB_CHAOS_SEED=<u64>` in the environment (what the
//! CI sweep does) or by calling [`set_seed`] from a test. With no seed the
//! hooks are a single relaxed atomic load.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::OnceLock;

/// Which instrumented point is consulting the scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Point {
    /// A `Mutex`/`RwLock` acquisition.
    Lock,
    /// A channel send.
    Send,
    /// A channel recv.
    Recv,
}

/// 0 = uninitialized, 1 = disabled (no seed), 2 = enabled.
static MODE: AtomicU8 = AtomicU8::new(0);
static SEED: AtomicU64 = AtomicU64::new(0);
/// Bumped on every (re)seed so threads notice and reset their streams.
static EPOCH: AtomicU64 = AtomicU64::new(0);
static NEXT_ORDINAL: AtomicU64 = AtomicU64::new(0);

struct ThreadStream {
    epoch: u64,
    ordinal: u64,
    state: u64,
    events: u64,
    digest: u64,
}

thread_local! {
    static STREAM: RefCell<Option<ThreadStream>> = const { RefCell::new(None) };
}

fn init_from_env() {
    static INIT: OnceLock<()> = OnceLock::new();
    INIT.get_or_init(|| {
        if let Some(seed) = std::env::var("SKIPWEB_CHAOS_SEED")
            .ok()
            .and_then(|s| s.trim().parse::<u64>().ok())
        {
            SEED.store(seed, Ordering::Relaxed);
            EPOCH.fetch_add(1, Ordering::Relaxed);
            MODE.store(2, Ordering::Release);
        } else {
            MODE.store(1, Ordering::Release);
        }
    });
}

/// Enables chaos injection with the given seed (overriding the
/// `SKIPWEB_CHAOS_SEED` environment variable). Threads reset their decision
/// streams and ordinals are handed out afresh, so calling this at the top of
/// a test gives that test a reproducible schedule regardless of what ran
/// before it.
pub fn set_seed(seed: u64) {
    init_from_env();
    SEED.store(seed, Ordering::Relaxed);
    NEXT_ORDINAL.store(0, Ordering::Relaxed);
    EPOCH.fetch_add(1, Ordering::Relaxed);
    MODE.store(2, Ordering::Release);
}

/// Disables chaos injection for the rest of the process (tests that need a
/// quiet scheduler after a seeded section).
pub fn clear_seed() {
    init_from_env();
    MODE.store(1, Ordering::Release);
}

/// The active seed, if chaos injection is enabled.
pub fn current_seed() -> Option<u64> {
    init_from_env();
    (MODE.load(Ordering::Acquire) == 2).then(|| SEED.load(Ordering::Relaxed))
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Called from every instrumented synchronization point. No-op unless a
/// seed is active.
pub fn perturb(point: Point) {
    match MODE.load(Ordering::Acquire) {
        1 => return,
        2 => {}
        _ => {
            init_from_env();
            if MODE.load(Ordering::Acquire) != 2 {
                return;
            }
        }
    }
    let epoch = EPOCH.load(Ordering::Relaxed);
    let decision = STREAM.with(|cell| {
        let mut slot = cell.borrow_mut();
        let stream = match slot.as_mut() {
            Some(s) if s.epoch == epoch => s,
            _ => {
                let ordinal = NEXT_ORDINAL.fetch_add(1, Ordering::Relaxed);
                let seed = SEED.load(Ordering::Relaxed);
                *slot = Some(ThreadStream {
                    epoch,
                    ordinal,
                    state: seed ^ ordinal.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    events: 0,
                    digest: 0xCBF2_9CE4_8422_2325, // FNV-1a offset basis
                });
                slot.as_mut().unwrap()
            }
        };
        let r = splitmix64(&mut stream.state);
        // Fold the point kind in so re-ordering of lock vs channel events
        // within a thread changes the digest.
        let event = r ^ (point as u64).wrapping_mul(0x0100_0000_01B3);
        stream.digest = (stream.digest ^ event).wrapping_mul(0x0100_0000_01B3);
        stream.events += 1;
        r
    });
    match decision % 97 {
        0..=9 => std::thread::yield_now(),
        10 => std::thread::sleep(std::time::Duration::from_micros(decision >> 57)),
        _ => {}
    }
}

/// The current thread's chaos ordinal and decision count/digest, for
/// determinism tests: with the same seed, a thread performing the same
/// sequence of instrumented operations ends with the same digest.
pub fn thread_digest() -> Option<(u64, u64, u64)> {
    STREAM.with(|cell| {
        cell.borrow()
            .as_ref()
            .map(|s| (s.ordinal, s.events, s.digest))
    })
}
