//! Value-generation strategies.

use crate::test_runner::TestRng;
use rand::{SampleRange, SampleUniform, Standard};
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T: SampleUniform + PartialOrd> Strategy for Range<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        SampleRange::sample_single(self.clone(), rng)
    }
}

impl<T: SampleUniform + PartialOrd> Strategy for RangeInclusive<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        SampleRange::sample_single(self.clone(), rng)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Types with a whole-domain strategy, used by [`any`].
///
/// Blanket-implemented for everything the vendored `rand` crate can sample
/// over its whole domain (`bool`, the integer types, floats).
pub trait Arbitrary {
    /// Draws one unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl<T: Standard> Arbitrary for T {
    fn arbitrary(rng: &mut TestRng) -> Self {
        T::sample(rng)
    }
}

/// Strategy over a type's whole domain; see [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// `any::<T>()` — the strategy generating arbitrary values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// String strategies from a regex subset: literal characters plus
/// `[class]{lo,hi}`, `[class]{n}`, `[class]*`, `[class]+` (where `*`/`+` cap
/// repetition at 8). Anything else panics — extend as tests need it.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let mut chars = self.chars().peekable();
        while let Some(c) = chars.next() {
            if c != '[' {
                out.push(c);
                continue;
            }
            let mut class: Vec<char> = Vec::new();
            for cc in chars.by_ref() {
                if cc == ']' {
                    break;
                }
                class.push(cc);
            }
            assert!(!class.is_empty(), "empty character class in {self:?}");
            let (lo, hi) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut spec = String::new();
                    for cc in chars.by_ref() {
                        if cc == '}' {
                            break;
                        }
                        spec.push(cc);
                    }
                    match spec.split_once(',') {
                        Some((a, b)) => (
                            a.parse::<usize>().expect("bad repeat lower bound"),
                            b.parse::<usize>().expect("bad repeat upper bound"),
                        ),
                        None => {
                            let n = spec.parse::<usize>().expect("bad repeat count");
                            (n, n)
                        }
                    }
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                _ => (1, 1),
            };
            assert!(lo <= hi, "inverted repetition in {self:?}");
            let n = lo + rng.below(hi - lo + 1);
            for _ in 0..n {
                out.push(class[rng.below(class.len())]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic(0);
        for _ in 0..1000 {
            let v = (-50i64..600).sample(&mut rng);
            assert!((-50..600).contains(&v));
            let u = (0u32..u32::MAX).sample(&mut rng);
            assert!(u < u32::MAX);
        }
    }

    #[test]
    fn regex_subset_generates_within_spec() {
        let mut rng = TestRng::deterministic(1);
        for _ in 0..200 {
            let s = "[ab]{1,6}".sample(&mut rng);
            assert!((1..=6).contains(&s.len()), "{s:?}");
            assert!(s.chars().all(|c| c == 'a' || c == 'b'), "{s:?}");
        }
        let t = "x[01]{3}y".sample(&mut rng);
        assert_eq!(t.len(), 5);
        assert!(t.starts_with('x') && t.ends_with('y'));
    }

    #[test]
    fn tuples_compose() {
        let mut rng = TestRng::deterministic(2);
        let (a, b) = (0u32..10, 10u32..20).sample(&mut rng);
        assert!(a < 10 && (10..20).contains(&b));
    }
}
