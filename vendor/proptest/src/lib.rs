//! Offline stand-in for `proptest`.
//!
//! Implements the API subset the workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(..)]`), integer-range and
//! tuple strategies, [`collection::vec`], string strategies from a small
//! regex subset (`[chars]{lo,hi}`), `any::<bool>()`, and the
//! `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from real proptest: cases are generated from a fixed
//! deterministic seed sequence (no persisted failure file) and failing cases
//! are reported without shrinking. For CI determinism that is a feature: a
//! failure reproduces identically on every run.

#![warn(missing_docs)]

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing `Vec`s whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Creates a [`VecStrategy`]: `vec(0u64..100, 1..20)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "vec length range must be non-empty");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.below(self.len.end - self.len.start) + self.len.start;
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! One-stop import for property tests, mirroring `proptest::prelude`.

    pub use crate::strategy::{any, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Declares property tests.
///
/// ```
/// use proptest::prelude::*;
///
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(8))]
///
///     fn addition_commutes(a in 0u64..1000, b in 0u64..1000) {
///         prop_assert_eq!(a + b, b + a);
///     }
/// }
/// addition_commutes(); // in real tests, write `#[test]` above the fn
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@body ($config) $($rest)*);
    };
    (@body ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    let mut runner_rng =
                        $crate::test_runner::TestRng::deterministic(case as u64);
                    $(let $arg =
                        $crate::strategy::Strategy::sample(&($strat), &mut runner_rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!("proptest case {case}/{} failed: {e}", config.cases);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@body ($crate::test_runner::Config::default()) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{:?}` == `{:?}`", l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`: {}", l, r, format!($($fmt)+)),
            ));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body, failing the current case.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(*l != *r, "assertion failed: `{:?}` != `{:?}`", l, r);
    }};
}
