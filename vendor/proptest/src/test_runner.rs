//! Test-runner plumbing: configuration, deterministic RNG, case errors.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};
use std::fmt;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct Config {
    /// Number of random cases each test generates.
    pub cases: u32,
}

impl Config {
    /// Configuration running `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 32 }
    }
}

/// Why a single generated case failed.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Builds a failure carrying `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic case generator: case `i` always sees the same stream.
///
/// Implements [`rand::RngCore`], so strategies sample through the vendored
/// `rand` crate's one uniform-sampling implementation rather than keeping a
/// parallel copy here.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

impl TestRng {
    /// RNG for the `case`-th generated input of a test.
    pub fn deterministic(case: u64) -> Self {
        // Offset so case 0 does not collide with common user seeds 0..n.
        TestRng(StdRng::seed_from_u64(
            case.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x5EED,
        ))
    }

    /// Uniform draw from `0..bound` (`bound` may not be zero).
    pub fn below(&mut self, bound: usize) -> usize {
        use rand::Rng;
        assert!(bound > 0, "below(0) is empty");
        self.gen_range(0..bound)
    }
}
