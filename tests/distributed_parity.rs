//! Simulator/runtime parity, property-tested: for random ground sets and
//! operation batches, the threaded actor runtime must return exactly the
//! deterministic simulator's answers, and the remote hops each operation
//! pays must equal the simulator's metered host crossings (owner-hosted
//! placement, where the cost models coincide range for range).
//!
//! Queries are checked per batch; dynamic updates are checked under
//! randomized interleavings of inserts, removes, and queries: driving
//! `SkipWeb::insert_with` / `remove_with` and the engine with the same
//! `(origin, bits)` must keep answers *and* per-operation hop counts
//! identical throughout the churn.

use proptest::collection;
use proptest::prelude::*;

use skipwebs::core::engine::DistributedSkipWeb;
use skipwebs::core::multidim::{
    QuadtreeAnswer, QuadtreeRequest, QuadtreeSkipWeb, TrapezoidSkipWeb, TrieSkipWeb,
};
use skipwebs::core::onedim::OneDimSkipWeb;
use skipwebs::net::MessageMeter;
use skipwebs::structures::{PointKey, Segment};

/// A deterministic general-position segment per slot: disjoint x-ranges,
/// so any two distinct slots are always mutually admissible and the same
/// slot is always an exact duplicate.
fn slot_segment(slot: u32) -> Segment {
    let x = i64::from(slot) * 1_000;
    let y = i64::from(slot % 13) * 40;
    Segment::new((x, y), (x + 600, y + 3))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn onedim_nearest_and_hops_match_the_simulator(
        keys in collection::vec(0u64..50_000, 24..120),
        seed in 0u64..1000,
    ) {
        let web = OneDimSkipWeb::builder(keys).seed(seed).build();
        let dist = web.serve();
        let client = dist.client();
        let mut sim_total = 0u64;
        for s in 0..12u64 {
            let q = (s * 4001 + seed * 13) % 55_000;
            let origin = web.random_origin(s + seed);
            let sim = web.nearest(origin, q);
            sim_total += sim.messages;
            let reply = dist.query(&client, origin, q).expect("runtime alive");
            prop_assert_eq!(reply.answer, Some(sim.answer.nearest), "answer for q={}", q);
            prop_assert_eq!(u64::from(reply.hops), sim.messages, "hops for q={}", q);
        }
        // Total remote hops equal the total metered host crossings.
        prop_assert_eq!(dist.message_count(), sim_total);
        dist.shutdown();
    }

    #[test]
    fn quadtree_point_location_and_hops_match_the_simulator(
        coords in collection::vec((0u32..u32::MAX, 0u32..u32::MAX), 16..80),
        seed in 0u64..1000,
    ) {
        let points: Vec<PointKey<2>> =
            coords.iter().map(|&(x, y)| PointKey::new([x, y])).collect();
        let web = QuadtreeSkipWeb::builder(points).seed(seed).build();
        let dist = web.serve();
        let client = dist.client();
        let mut sim_total = 0u64;
        for s in 0..10u64 {
            let q = PointKey::new([
                (s.wrapping_mul(0x9E37_79B9).wrapping_add(seed * 101)) as u32,
                (s.wrapping_mul(0x85EB_CA6B).wrapping_add(seed * 59)) as u32,
            ]);
            let origin = web.random_origin(s + seed);
            let sim = web.locate_point(origin, q);
            sim_total += sim.messages;
            let reply = dist
                .query(&client, origin, QuadtreeRequest::Locate(q))
                .expect("runtime alive");
            prop_assert_eq!(
                reply.answer,
                QuadtreeAnswer::Located { cell: sim.cell, approx_nearest: sim.approx_nearest },
                "cell for {:?}", q
            );
            prop_assert_eq!(u64::from(reply.hops), sim.messages, "hops for {:?}", q);
        }
        prop_assert_eq!(dist.message_count(), sim_total);
        dist.shutdown();
    }

    #[test]
    fn onedim_churn_interleaving_matches_the_simulator(
        keys in collection::vec(0u64..50_000, 16..48),
        ops in collection::vec((0u64..50_000, any::<u64>(), 0u8..6), 8..20),
        seed in 0u64..500,
    ) {
        let mut web = OneDimSkipWeb::builder(keys).seed(seed).build();
        let capacity = web.len() + ops.len();
        let dist = DistributedSkipWeb::builder(web.inner()).capacity(capacity).spawn();
        let client = dist.client();
        for (i, &(value, bits, action)) in ops.iter().enumerate() {
            let origin = (i * 13 + 7) % web.len();
            // Keep at least two keys so removals never empty the web.
            let action = if web.len() <= 2 { 0 } else { action % 3 };
            match action {
                0 => {
                    // Query: answer and hop parity mid-churn.
                    let sim = web.nearest(origin, value);
                    let reply = dist.query(&client, origin, value).expect("runtime alive");
                    prop_assert_eq!(reply.answer, Some(sim.answer.nearest), "q={}", value);
                    prop_assert_eq!(u64::from(reply.hops), sim.messages, "query hops q={}", value);
                }
                1 => {
                    // Insert with a shared (origin, bits) pair.
                    let mut meter = MessageMeter::new();
                    let sim_applied =
                        web.inner_mut().insert_with(Some(origin), value, bits, &mut meter);
                    let reply = dist
                        .insert_with(&client, origin, value, bits)
                        .expect("runtime alive");
                    prop_assert_eq!(reply.applied, sim_applied, "insert {}", value);
                    prop_assert_eq!(
                        u64::from(reply.hops), meter.messages(), "insert hops {}", value
                    );
                }
                _ => {
                    // Remove: target a present key half the time.
                    let target = if action % 2 == 0 {
                        web.keys()[value as usize % web.len()]
                    } else {
                        value
                    };
                    // The simulator only routes a lookup for >1 stored items.
                    let sim_origin = (web.len() > 1).then_some(origin);
                    let mut meter = MessageMeter::new();
                    let sim_applied =
                        web.inner_mut().remove_with(sim_origin, &target, &mut meter);
                    let reply = dist
                        .remove_with(&client, origin, target)
                        .expect("runtime alive");
                    prop_assert_eq!(reply.applied, sim_applied, "remove {}", target);
                    prop_assert_eq!(
                        u64::from(reply.hops), meter.messages(), "remove hops {}", target
                    );
                }
            }
            prop_assert!(!web.is_empty(), "churn never empties the web here");
        }
        // Post-churn: identical ground sets and full query parity.
        prop_assert_eq!(dist.ground(), web.keys().to_vec());
        for s in 0..8u64 {
            let q = (s * 4099 + seed) % 55_000;
            let origin = s as usize % web.len();
            let sim = web.nearest(origin, q);
            let reply = dist.query(&client, origin, q).expect("runtime alive");
            prop_assert_eq!(reply.answer, Some(sim.answer.nearest), "post-churn q={}", q);
            prop_assert_eq!(u64::from(reply.hops), sim.messages, "post-churn hops q={}", q);
        }
        dist.shutdown();
    }

    #[test]
    fn quadtree_churn_interleaving_matches_the_simulator(
        coords in collection::vec((0u32..u32::MAX, 0u32..u32::MAX), 16..40),
        ops in collection::vec((0u64..u64::MAX, any::<u64>(), 0u8..6), 6..14),
        seed in 0u64..500,
    ) {
        let points: Vec<PointKey<2>> =
            coords.iter().map(|&(x, y)| PointKey::new([x, y])).collect();
        let mut web = QuadtreeSkipWeb::builder(points).seed(seed).build();
        let capacity = web.len() + ops.len();
        let dist = DistributedSkipWeb::builder(web.inner()).capacity(capacity).spawn();
        let client = dist.client();
        for (i, &(value, bits, action)) in ops.iter().enumerate() {
            let origin = (i * 11 + 3) % web.len();
            let p = PointKey::new([value as u32, (value >> 32) as u32]);
            // Keep at least two points so removals never empty the web.
            let action = if web.len() <= 2 { 0 } else { action % 3 };
            match action {
                0 => {
                    let sim = web.locate_point(origin, p);
                    let reply = dist
                        .query(&client, origin, QuadtreeRequest::Locate(p))
                        .expect("runtime alive");
                    prop_assert_eq!(
                        reply.answer,
                        QuadtreeAnswer::Located {
                            cell: sim.cell,
                            approx_nearest: sim.approx_nearest,
                        },
                        "locate {:?}", p
                    );
                    prop_assert_eq!(u64::from(reply.hops), sim.messages, "hops {:?}", p);
                }
                1 => {
                    let mut meter = MessageMeter::new();
                    let sim_applied =
                        web.inner_mut().insert_with(Some(origin), p, bits, &mut meter);
                    let reply = dist
                        .insert_with(&client, origin, p, bits)
                        .expect("runtime alive");
                    prop_assert_eq!(reply.applied, sim_applied, "insert {:?}", p);
                    prop_assert_eq!(
                        u64::from(reply.hops), meter.messages(), "insert hops {:?}", p
                    );
                }
                _ => {
                    let target = if action % 2 == 0 {
                        web.points()[value as usize % web.len()]
                    } else {
                        p
                    };
                    let sim_origin = (web.len() > 1).then_some(origin);
                    let mut meter = MessageMeter::new();
                    let sim_applied =
                        web.inner_mut().remove_with(sim_origin, &target, &mut meter);
                    let reply = dist
                        .remove_with(&client, origin, target)
                        .expect("runtime alive");
                    prop_assert_eq!(reply.applied, sim_applied, "remove {:?}", target);
                    prop_assert_eq!(
                        u64::from(reply.hops), meter.messages(), "remove hops {:?}", target
                    );
                }
            }
            prop_assert!(!web.is_empty(), "churn never empties the web here");
        }
        prop_assert_eq!(dist.ground(), web.points().to_vec());
        dist.shutdown();
    }

    #[test]
    fn trie_churn_interleaving_matches_the_simulator(
        stems in collection::vec(0u32..9000, 16..40),
        ops in collection::vec((0u32..9000, any::<u64>(), 0u8..6), 6..14),
        seed in 0u64..500,
    ) {
        let strings: Vec<String> = stems
            .iter()
            .map(|v| format!("{:04}-suffix", v % 10_000))
            .collect();
        let mut web = TrieSkipWeb::builder(strings).seed(seed).build();
        let capacity = web.len() + ops.len();
        let dist = DistributedSkipWeb::builder(web.inner()).capacity(capacity).spawn();
        let client = dist.client();
        for (i, &(value, bits, action)) in ops.iter().enumerate() {
            let origin = (i * 17 + 5) % web.len();
            let s = format!("{:04}-suffix", value % 10_000);
            // Keep at least two strings so removals never empty the web.
            let action = if web.len() <= 2 { 0 } else { action % 3 };
            match action {
                0 => {
                    let prefix = format!("{:04}", value % 10_000);
                    let sim = web.prefix_search(origin, &prefix);
                    let reply = dist
                        .query(&client, origin, prefix.clone())
                        .expect("runtime alive");
                    prop_assert_eq!(reply.answer.matched_len, sim.matched_len, "{:?}", &prefix);
                    prop_assert_eq!(reply.answer.matches, sim.matches, "{:?}", &prefix);
                    prop_assert_eq!(
                        u64::from(reply.hops), sim.messages, "query hops {:?}", &prefix
                    );
                }
                1 => {
                    let mut meter = MessageMeter::new();
                    let sim_applied = web
                        .inner_mut()
                        .insert_with(Some(origin), s.clone(), bits, &mut meter);
                    let reply = dist
                        .insert_with(&client, origin, s.clone(), bits)
                        .expect("runtime alive");
                    prop_assert_eq!(reply.applied, sim_applied, "insert {:?}", &s);
                    prop_assert_eq!(
                        u64::from(reply.hops), meter.messages(), "insert hops {:?}", &s
                    );
                }
                _ => {
                    let target = if action % 2 == 0 {
                        web.strings()[value as usize % web.len()].clone()
                    } else {
                        s
                    };
                    let sim_origin = (web.len() > 1).then_some(origin);
                    let mut meter = MessageMeter::new();
                    let sim_applied =
                        web.inner_mut().remove_with(sim_origin, &target, &mut meter);
                    let reply = dist
                        .remove_with(&client, origin, target.clone())
                        .expect("runtime alive");
                    prop_assert_eq!(reply.applied, sim_applied, "remove {:?}", &target);
                    prop_assert_eq!(
                        u64::from(reply.hops), meter.messages(), "remove hops {:?}", &target
                    );
                }
            }
            prop_assert!(!web.is_empty(), "churn never empties the web here");
        }
        prop_assert_eq!(dist.ground(), web.strings().to_vec());
        dist.shutdown();
    }

    #[test]
    fn trapezoid_churn_interleaving_matches_the_simulator(
        slots in collection::vec(0u32..60, 12..28),
        ops in collection::vec((0u32..60, any::<u64>(), 0u8..6), 6..14),
        seed in 0u64..500,
    ) {
        let segments: Vec<Segment> = slots.iter().map(|&s| slot_segment(s)).collect();
        let mut web = TrapezoidSkipWeb::builder(segments).seed(seed).build();
        let capacity = web.len() + ops.len();
        let dist = DistributedSkipWeb::builder(web.inner()).capacity(capacity).spawn();
        let client = dist.client();
        for (i, &(slot, bits, action)) in ops.iter().enumerate() {
            let origin = (i * 7 + 3) % web.len();
            let seg = slot_segment(slot);
            // Keep at least two segments so removals never empty the web.
            let action = if web.len() <= 2 { 0 } else { action % 3 };
            match action {
                0 => {
                    // Query: exact answer parity; trapezoid step walks may
                    // reroute on BFS tie-breaks, so hops get a budget
                    // rather than exact parity (as in the static suite).
                    let q = (
                        i64::from(slot) * 997 % 61_000 - 200,
                        i64::from(slot % 17) * 31 - 60,
                    );
                    let sim = web.locate_point(origin, q);
                    let reply = dist.query(&client, origin, q).expect("runtime alive");
                    prop_assert_eq!(reply.answer, sim.trapezoid, "locate {:?}", q);
                    prop_assert!(
                        u64::from(reply.hops) <= 4 * sim.messages + 16,
                        "hops {} vs sim {} for {:?}", reply.hops, sim.messages, q
                    );
                }
                1 => {
                    // Insert with a shared (origin, bits) pair. Slots are in
                    // general position by construction, so the simulator
                    // (which has no admission gate) never panics.
                    let mut meter = MessageMeter::new();
                    let sim_applied =
                        web.inner_mut().insert_with(Some(origin), seg, bits, &mut meter);
                    let reply = dist
                        .insert_with(&client, origin, seg, bits)
                        .expect("runtime alive");
                    prop_assert_eq!(reply.applied, sim_applied, "insert {:?}", seg);
                    prop_assert!(
                        u64::from(reply.hops) <= 4 * meter.messages() + 16,
                        "insert hops {} vs sim {}", reply.hops, meter.messages()
                    );
                }
                _ => {
                    let target = if action % 2 == 0 {
                        web.segments()[slot as usize % web.len()]
                    } else {
                        seg
                    };
                    let sim_origin = (web.len() > 1).then_some(origin);
                    let mut meter = MessageMeter::new();
                    let sim_applied =
                        web.inner_mut().remove_with(sim_origin, &target, &mut meter);
                    let reply = dist
                        .remove_with(&client, origin, target)
                        .expect("runtime alive");
                    prop_assert_eq!(reply.applied, sim_applied, "remove {:?}", target);
                    prop_assert!(
                        u64::from(reply.hops) <= 4 * meter.messages() + 16,
                        "remove hops {} vs sim {}", reply.hops, meter.messages()
                    );
                }
            }
            prop_assert!(!web.is_empty(), "churn never empties the web here");
        }
        prop_assert_eq!(dist.ground(), web.segments().to_vec());
        // Engine-only admission gate: a segment sharing an endpoint
        // x-coordinate with a stored one violates general position; the
        // live insert must reject it as a no-op, never poison the fabric.
        let (x, _) = web.segments()[0].left();
        let bad = Segment::new((x, 999_983), (x + 77, 999_984));
        let reply = dist.insert(&client, bad).expect("runtime alive");
        prop_assert!(!reply.applied, "inadmissible insert must be rejected");
        prop_assert_eq!(dist.ground(), web.segments().to_vec());
        dist.shutdown();
    }

    #[test]
    fn trie_longest_prefix_and_hops_match_the_simulator(
        stems in collection::vec(0u32..9000, 16..64),
        seed in 0u64..1000,
    ) {
        let strings: Vec<String> = stems
            .iter()
            .map(|v| format!("{:04}-suffix", v % 10_000))
            .collect();
        let web = TrieSkipWeb::builder(strings).seed(seed).build();
        let dist = web.serve();
        let client = dist.client();
        let mut sim_total = 0u64;
        for s in 0..10usize {
            // Mix of on-trie prefixes and off-trie probes.
            let prefix = match s % 3 {
                0 => web.strings()[s % web.len()].chars().take(2 + s % 6).collect::<String>(),
                1 => format!("{:04}", (s as u32 * 977 + seed as u32) % 10_000),
                _ => "zzz-none".to_string(),
            };
            let origin = web.random_origin(s as u64 + seed);
            let sim = web.prefix_search(origin, &prefix);
            sim_total += sim.messages;
            let reply = dist
                .query(&client, origin, prefix.clone())
                .expect("runtime alive");
            prop_assert_eq!(reply.answer.matched_len, sim.matched_len, "len for {:?}", &prefix);
            prop_assert_eq!(reply.answer.matches, sim.matches, "matches for {:?}", &prefix);
            prop_assert_eq!(u64::from(reply.hops), sim.messages, "hops for {:?}", &prefix);
        }
        prop_assert_eq!(dist.message_count(), sim_total);
        dist.shutdown();
    }
}
