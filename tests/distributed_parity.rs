//! Simulator/runtime parity, property-tested: for random ground sets and
//! query batches, the threaded actor runtime must return exactly the
//! deterministic simulator's answers, and the remote hops each query pays
//! must equal the simulator's metered host crossings (owner-hosted
//! placement, where the cost models coincide range for range).

use proptest::collection;
use proptest::prelude::*;

use skipwebs::core::multidim::{QuadtreeAnswer, QuadtreeRequest, QuadtreeSkipWeb, TrieSkipWeb};
use skipwebs::core::onedim::OneDimSkipWeb;
use skipwebs::structures::PointKey;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn onedim_nearest_and_hops_match_the_simulator(
        keys in collection::vec(0u64..50_000, 24..120),
        seed in 0u64..1000,
    ) {
        let web = OneDimSkipWeb::builder(keys).seed(seed).build();
        let dist = web.serve();
        let client = dist.client();
        let mut sim_total = 0u64;
        for s in 0..12u64 {
            let q = (s * 4001 + seed * 13) % 55_000;
            let origin = web.random_origin(s + seed);
            let sim = web.nearest(origin, q);
            sim_total += sim.messages;
            let reply = dist.query(&client, origin, q).expect("runtime alive");
            prop_assert_eq!(reply.answer, Some(sim.answer.nearest), "answer for q={}", q);
            prop_assert_eq!(u64::from(reply.hops), sim.messages, "hops for q={}", q);
        }
        // Total remote hops equal the total metered host crossings.
        prop_assert_eq!(dist.message_count(), sim_total);
        dist.shutdown();
    }

    #[test]
    fn quadtree_point_location_and_hops_match_the_simulator(
        coords in collection::vec((0u32..u32::MAX, 0u32..u32::MAX), 16..80),
        seed in 0u64..1000,
    ) {
        let points: Vec<PointKey<2>> =
            coords.iter().map(|&(x, y)| PointKey::new([x, y])).collect();
        let web = QuadtreeSkipWeb::builder(points).seed(seed).build();
        let dist = web.serve();
        let client = dist.client();
        let mut sim_total = 0u64;
        for s in 0..10u64 {
            let q = PointKey::new([
                (s.wrapping_mul(0x9E37_79B9).wrapping_add(seed * 101)) as u32,
                (s.wrapping_mul(0x85EB_CA6B).wrapping_add(seed * 59)) as u32,
            ]);
            let origin = web.random_origin(s + seed);
            let sim = web.locate_point(origin, q);
            sim_total += sim.messages;
            let reply = dist
                .query(&client, origin, QuadtreeRequest::Locate(q))
                .expect("runtime alive");
            prop_assert_eq!(
                reply.answer,
                QuadtreeAnswer::Located { cell: sim.cell, approx_nearest: sim.approx_nearest },
                "cell for {:?}", q
            );
            prop_assert_eq!(u64::from(reply.hops), sim.messages, "hops for {:?}", q);
        }
        prop_assert_eq!(dist.message_count(), sim_total);
        dist.shutdown();
    }

    #[test]
    fn trie_longest_prefix_and_hops_match_the_simulator(
        stems in collection::vec(0u32..9000, 16..64),
        seed in 0u64..1000,
    ) {
        let strings: Vec<String> = stems
            .iter()
            .map(|v| format!("{:04}-suffix", v % 10_000))
            .collect();
        let web = TrieSkipWeb::builder(strings).seed(seed).build();
        let dist = web.serve();
        let client = dist.client();
        let mut sim_total = 0u64;
        for s in 0..10usize {
            // Mix of on-trie prefixes and off-trie probes.
            let prefix = match s % 3 {
                0 => web.strings()[s % web.len()].chars().take(2 + s % 6).collect::<String>(),
                1 => format!("{:04}", (s as u32 * 977 + seed as u32) % 10_000),
                _ => "zzz-none".to_string(),
            };
            let origin = web.random_origin(s as u64 + seed);
            let sim = web.prefix_search(origin, &prefix);
            sim_total += sim.messages;
            let reply = dist
                .query(&client, origin, prefix.clone())
                .expect("runtime alive");
            prop_assert_eq!(reply.answer.matched_len, sim.matched_len, "len for {:?}", &prefix);
            prop_assert_eq!(reply.answer.matches, sim.matches, "matches for {:?}", &prefix);
            prop_assert_eq!(u64::from(reply.hops), sim.messages, "hops for {:?}", &prefix);
        }
        prop_assert_eq!(dist.message_count(), sim_total);
        dist.shutdown();
    }
}
