//! Crash-recovery gates for the durable skipweb-store: kill every host,
//! recover from the write-ahead log, and verify the store comes back
//! byte-identical with its hosts in live membership and its idempotence
//! ledger intact.

use skipwebs::store::{wal, Store, StoreBuilder};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test (the container has no tempfile
/// crate; process id + counter keeps parallel runs apart).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "skipweb-recovery-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

fn value_for(key: u64, generation: u64) -> Vec<u8> {
    format!("value-{key}-gen{generation}").into_bytes()
}

/// A workload with all three record kinds: fresh inserts, value
/// overwrites (store-lane upserts), and deletes.
fn churn(store: &Store, keys: u64) {
    for key in 0..keys {
        assert!(store.put(key * 10, value_for(key * 10, 0)).unwrap());
    }
    for key in (0..keys).step_by(3) {
        // Overwrite: the insert is a duplicate, logged as an upsert.
        assert!(!store.put(key * 10, value_for(key * 10, 1)).unwrap());
    }
    for key in (0..keys).step_by(5) {
        assert!(store.delete(key * 10).unwrap());
    }
}

#[test]
fn kill_everything_then_recover_restores_the_identical_store() {
    let dir = scratch("total");
    let store = StoreBuilder::new(&dir)
        .hosts(6)
        .checkpoint_every(0)
        .open()
        .unwrap();
    churn(&store, 40);
    let before = store.scan(..);
    assert!(!before.is_empty());
    let ledger_before = store.fabric().applied_ledger();

    // Kill every host: the fabric is fully unavailable.
    let alive = store.fabric().health().alive;
    assert_eq!(alive.len(), 6);
    for host in alive {
        store.fabric().kill_host(host);
    }
    assert!(store.fabric().health().alive.is_empty());
    assert!(store.get(10).is_err(), "a dead fabric must not answer");

    let report = store.recover().unwrap();
    assert_eq!(report.rejoined, 6, "every host rejoins live membership");
    assert_eq!(report.replayed, report.wal_records - report.skipped);
    assert!(report.wal_records > 0);

    // Hosts are alive again — not tombstoned.
    let health = store.fabric().health();
    assert_eq!(health.alive.len(), 6);
    assert!(health.dead.is_empty());
    assert!(health.decommissioned.is_empty());

    // The store scans byte-identical to the pre-crash snapshot.
    assert_eq!(store.scan(..), before);

    // The idempotence ledger survived the replay.
    let ledger_after = store.fabric().applied_ledger();
    assert_eq!(ledger_before, ledger_after);

    // The recovered fabric serves reads and writes again, end to end.
    assert_eq!(store.get(10).unwrap(), Some(value_for(10, 0)));
    assert_eq!(store.get(0).unwrap(), None, "deleted key stays deleted");
    assert!(store.put(9_999, b"fresh".to_vec()).unwrap());
    assert_eq!(store.get(9_999).unwrap(), Some(b"fresh".to_vec()));
    store.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_does_not_double_apply_logged_operations() {
    let dir = scratch("noreapply");
    let store = StoreBuilder::new(&dir)
        .hosts(4)
        .checkpoint_every(0)
        .open()
        .unwrap();
    churn(&store, 20);
    let len_before = store.len();

    for host in store.fabric().health().alive {
        store.fabric().kill_host(host);
    }
    store.recover().unwrap();
    assert_eq!(store.len(), len_before);

    // Replayed inserts landed exactly once: re-putting an existing key is
    // an overwrite (applied = false), never a second insert.
    assert!(!store.put(10, b"again".to_vec()).unwrap());
    assert_eq!(store.len(), len_before);
    // Re-deleting a key the log already removed stays a no-op.
    assert!(!store.delete(0).unwrap());
    assert_eq!(store.len(), len_before);
    store.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cold_open_recovers_from_disk_alone() {
    let dir = scratch("cold");
    let before = {
        let store = StoreBuilder::new(&dir).hosts(4).open().unwrap();
        churn(&store, 30);
        let snapshot = store.scan(..);
        store.flush().unwrap();
        store.shutdown();
        snapshot
    };

    // A brand-new process image: nothing survives but the directory.
    let store = StoreBuilder::new(&dir).hosts(4).open().unwrap();
    assert_eq!(store.scan(..), before);
    assert_eq!(store.get(10).unwrap(), Some(value_for(10, 0)));

    // The new incarnation's operation ids must not collide with logged
    // ones: fresh writes apply instead of echoing recovered outcomes.
    assert!(store.put(77_777, b"new-era".to_vec()).unwrap());
    assert_eq!(store.get(77_777).unwrap(), Some(b"new-era".to_vec()));
    assert!(!store.put(10, value_for(10, 9)).unwrap());
    assert_eq!(store.get(10).unwrap(), Some(value_for(10, 9)));
    store.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn recovery_replays_past_the_checkpoint_and_skips_before_it() {
    let dir = scratch("ckpt");
    let store = StoreBuilder::new(&dir)
        .hosts(4)
        .checkpoint_every(0)
        .open()
        .unwrap();
    for key in 0..25 {
        store.put(key, value_for(key, 0)).unwrap();
    }
    store.checkpoint().unwrap();
    for key in 25..40 {
        store.put(key, value_for(key, 0)).unwrap();
    }
    let before = store.scan(..);

    for host in store.fabric().health().alive {
        store.fabric().kill_host(host);
    }
    let report = store.recover().unwrap();
    assert_eq!(report.checkpoint_ops, 25);
    assert_eq!(report.skipped, 25, "checkpointed records are not replayed");
    assert_eq!(report.replayed, 15);
    assert_eq!(store.scan(..), before);
    store.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn a_torn_wal_tail_costs_the_torn_record_only() {
    let dir = scratch("torn");
    let before = {
        let store = StoreBuilder::new(&dir)
            .hosts(2)
            .checkpoint_every(0)
            .open()
            .unwrap();
        for key in 0..10 {
            store.put(key, value_for(key, 0)).unwrap();
        }
        let snapshot = store.scan(..);
        store.flush().unwrap();
        store.shutdown();
        snapshot
    };

    // Simulate a crash mid-append: chop bytes off the end of one lane.
    let lane = std::fs::read_dir(&dir)
        .unwrap()
        .filter_map(|e| Some(e.ok()?.path()))
        .find(|p| {
            let name = p.file_name().unwrap().to_string_lossy().into_owned();
            name.starts_with("wal-") && name.ends_with(".log") && p.metadata().unwrap().len() > 0
        })
        .expect("at least one non-empty lane");
    let bytes = std::fs::read(&lane).unwrap();
    std::fs::write(&lane, &bytes[..bytes.len() - 5]).unwrap();
    let scan = wal::read_wal(&lane).unwrap();
    assert!(matches!(scan.tail, wal::WalTail::Torn { .. }));

    // Exactly the torn record (one applied insert) is lost.
    let store = StoreBuilder::new(&dir).hosts(2).open().unwrap();
    let after = store.scan(..);
    assert_eq!(after.len(), before.len() - 1);
    // Every surviving pair is byte-identical to its pre-crash value.
    for pair in &after {
        assert!(before.contains(pair));
    }
    store.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn partial_crash_recovers_without_touching_live_hosts() {
    let dir = scratch("partial");
    let store = StoreBuilder::new(&dir)
        .hosts(4)
        .checkpoint_every(0)
        .open()
        .unwrap();
    churn(&store, 20);
    let before = store.scan(..);

    let alive = store.fabric().health().alive;
    store.fabric().kill_host(alive[0]);
    store.fabric().kill_host(alive[1]);

    let report = store.recover().unwrap();
    assert_eq!(report.rejoined, 2);
    let health = store.fabric().health();
    assert_eq!(health.alive.len(), 4);
    assert!(health.dead.is_empty());
    assert_eq!(store.scan(..), before);
    store.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}
