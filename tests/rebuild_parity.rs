//! Incremental/full apply parity, property-tested: randomized batch churn
//! over all four structures must leave the incrementally repaired web
//! **byte-identical** — ground set, bit assignment, every level set's
//! structure, hyperlinks, and placement — to a web maintained through the
//! original full-rebuild path, at `apply_threads` ∈ {1, 4}. Skip-webs are
//! range-determined (§2.1): the surviving items plus their bit strings
//! uniquely determine the hierarchy, so any divergence is a repair bug.
//!
//! The scenarios are sized to exercise both sides of the fallback
//! threshold: webs start above the incremental minimum (so small batches
//! take the dirty-set path) while heavy removal streaks can drop the web
//! across a level-count boundary (forcing, and thereby also testing, the
//! full-rebuild fallback).

use proptest::collection;
use proptest::prelude::*;

use skipwebs::core::SkipWeb;
use skipwebs::structures::geometry::GridPoint;
use skipwebs::structures::{
    CompressedQuadtree, CompressedTrie, RangeDetermined, Segment, SortedLinkedList, TrapezoidalMap,
};

const THREAD_COUNTS: [usize; 2] = [1, 4];

/// One churn step: a batch of pool slots to insert or to remove. Slots may
/// repeat (within a batch or against the stored set) — the duplicate /
/// absent flags must match between the two paths too.
type Step = (bool, Vec<u32>);

/// A deterministic bit string per pool slot, so the same slot always
/// rebuilds the same tower on both webs.
fn slot_bits(slot: u32, seed: u64) -> u64 {
    (u64::from(slot))
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
        ^ seed
}

/// Drives the same churn through the incremental (threaded) apply and the
/// full-rebuild reference apply, asserting identical applied flags and a
/// byte-identical structure after every batch.
fn assert_churn_parity<D>(pool: &[D::Item], initial: usize, steps: &[Step], seed: u64)
where
    D: RangeDetermined + PartialEq + Send + Sync,
    D::Item: Send + Sync,
{
    for threads in THREAD_COUNTS {
        let base: Vec<D::Item> = pool[..initial].to_vec();
        let mut incremental = SkipWeb::<D>::builder(base.clone()).seed(seed).build();
        let mut full = SkipWeb::<D>::builder(base).seed(seed).build();
        assert_eq!(incremental, full, "builders must agree before any churn");
        for (step, (inserting, slots)) in steps.iter().enumerate() {
            let (got, want) = if *inserting {
                let batch: Vec<(D::Item, u64)> = slots
                    .iter()
                    .map(|&s| (pool[s as usize].clone(), slot_bits(s, seed)))
                    .collect();
                (
                    incremental.apply_insert_batch_threads(batch.clone(), threads),
                    full.apply_insert_batch_full(batch),
                )
            } else {
                let batch: Vec<D::Item> = slots.iter().map(|&s| pool[s as usize].clone()).collect();
                (
                    incremental.apply_remove_batch_threads(&batch, threads),
                    full.apply_remove_batch_full(&batch),
                )
            };
            assert_eq!(
                got, want,
                "applied flags diverged at step {step} (threads={threads})"
            );
            assert_eq!(
                incremental, full,
                "structures diverged at step {step} (threads={threads})"
            );
            assert_eq!(incremental.ground(), full.ground());
        }
    }
}

/// Churn steps over a `pool_size`-slot pool: each step inserts or removes
/// up to 24 slots — small against the ~160-item webs, so most batches take
/// the incremental path.
fn steps_strategy(pool_size: u32) -> impl Strategy<Value = Vec<Step>> {
    collection::vec((any::<bool>(), collection::vec(0..pool_size, 1..24)), 1..8)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn onedim_incremental_apply_matches_full_rebuild(
        steps in steps_strategy(256),
        seed in 0u64..1000,
    ) {
        let pool: Vec<u64> = (0..256u64).map(|i| i * 37 + 5).collect();
        assert_churn_parity::<SortedLinkedList>(&pool, 160, &steps, seed);
    }

    #[test]
    fn quadtree_incremental_apply_matches_full_rebuild(
        steps in steps_strategy(256),
        seed in 0u64..1000,
    ) {
        // A scatter that is deliberately *not* in Morton order, so the
        // splice leans on the quadtree's `canonical_cmp` override.
        let pool: Vec<GridPoint<2>> = (0..256u32)
            .map(|i| GridPoint::new([i.wrapping_mul(0x9E37_79B9), i.wrapping_mul(0x85EB_CA6B)]))
            .collect();
        assert_churn_parity::<CompressedQuadtree<2>>(&pool, 160, &steps, seed);
    }

    #[test]
    fn trie_incremental_apply_matches_full_rebuild(
        steps in steps_strategy(256),
        seed in 0u64..1000,
    ) {
        let pool: Vec<String> = (0..256u32)
            .map(|i| format!("{:06b}x{}", i % 64, i / 64))
            .collect();
        assert_churn_parity::<CompressedTrie>(&pool, 160, &steps, seed);
    }

    #[test]
    fn trapezoid_incremental_apply_matches_full_rebuild(
        steps in steps_strategy(192),
        seed in 0u64..1000,
    ) {
        // Disjoint x-ranges per slot keep every subset in general position.
        let pool: Vec<Segment> = (0..192i64)
            .map(|slot| {
                let x = slot * 1_000;
                let y = (slot % 13) * 40;
                Segment::new((x, y), (x + 600, y + 3))
            })
            .collect();
        assert_churn_parity::<TrapezoidalMap>(&pool, 128, &steps, seed);
    }
}

/// Owner-hosted webs with a replication factor: the repair path drops each
/// kept range's replica tail (ring successors of stale host ids) and
/// regrows it after the splice, which must land on exactly the copy lists
/// the full rebuild's placement sweep produces.
#[test]
fn replicated_owner_hosted_webs_repair_identically() {
    let pool: Vec<u64> = (0..512u64).map(|i| i * 13 + 1).collect();
    let base: Vec<u64> = pool[..400].to_vec();
    let build = |items: Vec<u64>| {
        SkipWeb::<SortedLinkedList>::builder(items)
            .seed(5)
            .replicate(3)
            .build()
    };
    let mut incremental = build(base.clone());
    let mut full = build(base);
    for round in 0..6u64 {
        let inserts: Vec<(u64, u64)> = (0..10u64)
            .map(|j| {
                let slot = (round * 71 + j * 29) % 512;
                (pool[slot as usize], slot_bits(slot as u32, 5))
            })
            .collect();
        assert_eq!(
            incremental.apply_insert_batch_threads(inserts.clone(), 4),
            full.apply_insert_batch_full(inserts)
        );
        assert_eq!(incremental, full, "insert round {round}");
        let removes: Vec<u64> = (0..8u64)
            .map(|j| pool[((round * 97 + j * 43) % 512) as usize])
            .collect();
        assert_eq!(
            incremental.apply_remove_batch_threads(&removes, 4),
            full.apply_remove_batch_full(&removes)
        );
        assert_eq!(incremental, full, "remove round {round}");
    }
}

/// The bucketed 1-D blocking and replication layers run through the same
/// repair (placement is recomputed wholesale after the dirty-set rebuild),
/// so they must stay in byte-identical lockstep too.
#[test]
fn bucketed_and_replicated_webs_repair_identically() {
    let pool: Vec<u64> = (0..512u64).map(|i| i * 11 + 3).collect();
    let base: Vec<u64> = pool[..400].to_vec();
    let build = |items: Vec<u64>| {
        SkipWeb::<SortedLinkedList>::builder(items)
            .seed(9)
            .bucketed(64)
            .replicate(2)
            .build()
    };
    let mut incremental = build(base.clone());
    let mut full = build(base);
    for round in 0..6u64 {
        let inserts: Vec<(u64, u64)> = (0..12u64)
            .map(|j| {
                let slot = (round * 67 + j * 31) % 512;
                (pool[slot as usize], slot_bits(slot as u32, 9))
            })
            .collect();
        assert_eq!(
            incremental.apply_insert_batch_threads(inserts.clone(), 4),
            full.apply_insert_batch_full(inserts)
        );
        assert_eq!(incremental, full, "insert round {round}");
        let removes: Vec<u64> = (0..9u64)
            .map(|j| pool[((round * 101 + j * 47) % 512) as usize])
            .collect();
        assert_eq!(
            incremental.apply_remove_batch_threads(&removes, 4),
            full.apply_remove_batch_full(&removes)
        );
        assert_eq!(incremental, full, "remove round {round}");
    }
}
