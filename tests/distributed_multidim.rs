//! Integration: multi-dimensional skip-webs served by the threaded actor
//! runtime — quadtree point location and box reporting, trie prefix search,
//! and trapezoidal-map point location answer exactly like the simulator,
//! including under concurrent clients with interleaved in-flight queries.

use std::time::Duration;

use skipwebs::core::multidim::{
    QuadtreeAnswer, QuadtreeRequest, QuadtreeSkipWeb, TrapezoidSkipWeb, TrieSkipWeb,
};
use skipwebs::structures::{PointKey, Segment};

fn spread_points(n: u32) -> Vec<PointKey<2>> {
    (0..n)
        .map(|i| PointKey::new([i.wrapping_mul(2_654_435_761), i.wrapping_mul(40_503) + 5]))
        .collect()
}

#[test]
fn quadtree_runtime_agrees_with_simulator_for_both_placements() {
    for (seed, memory) in [(41u64, None), (42, Some(48))] {
        let mut builder = QuadtreeSkipWeb::builder(spread_points(180)).seed(seed);
        if let Some(m) = memory {
            builder = builder.bucketed(m);
        }
        let web = builder.build();
        let dist = web.serve();
        let client = dist.client();
        for s in 0..25u64 {
            let q = PointKey::new([
                (s.wrapping_mul(0xDEAD_BEEF)) as u32,
                (s.wrapping_mul(0x1234_5677)) as u32,
            ]);
            let origin = web.random_origin(s);
            let sim = web.locate_point(origin, q);
            let reply = dist
                .query(&client, origin, QuadtreeRequest::Locate(q))
                .expect("runtime alive");
            assert_eq!(
                reply.answer,
                QuadtreeAnswer::Located {
                    cell: sim.cell,
                    approx_nearest: sim.approx_nearest,
                },
                "placement {memory:?}, query {q:?}"
            );
        }
        dist.shutdown();
    }
}

#[test]
fn quadtree_box_reports_match_the_filter_oracle_over_the_runtime() {
    let web = QuadtreeSkipWeb::builder(spread_points(256))
        .seed(43)
        .build();
    let dist = web.serve();
    let client = dist.client();
    let boxes: [([u32; 2], [u32; 2]); 3] = [
        ([0, 0], [u32::MAX / 4, u32::MAX]),
        ([1 << 28, 1 << 20], [7 << 28, 3 << 28]),
        ([9, 9], [10, 10]),
    ];
    for (lo, hi) in boxes {
        let reply = dist
            .query(
                &client,
                web.random_origin(1),
                QuadtreeRequest::InBox { lo, hi },
            )
            .expect("runtime alive");
        let mut want: Vec<PointKey<2>> = web
            .points()
            .iter()
            .copied()
            .filter(|p| p.in_box(&lo, &hi))
            .collect();
        want.sort_by_key(PointKey::morton);
        assert_eq!(
            reply.answer,
            QuadtreeAnswer::Points(want.clone()),
            "box {lo:?}..{hi:?}"
        );
        // Reversed corners are normalized on the wire instead of panicking
        // an actor thread.
        let reversed = dist
            .query(
                &client,
                web.random_origin(1),
                QuadtreeRequest::InBox { lo: hi, hi: lo },
            )
            .expect("runtime alive");
        assert_eq!(reversed.answer, QuadtreeAnswer::Points(want));
    }
    dist.shutdown();
}

#[test]
fn trie_runtime_serves_concurrent_clients_from_scoped_threads() {
    let strings: Vec<String> = (0..120)
        .map(|i| format!("shelf-{:03}-{}", i % 40, i / 40))
        .collect();
    let web = TrieSkipWeb::builder(strings).seed(44).build();
    let dist = web.serve();
    let clients: Vec<_> = (0..6).map(|_| dist.client()).collect();
    std::thread::scope(|scope| {
        for (i, client) in clients.iter().enumerate() {
            let web = &web;
            let dist = &dist;
            scope.spawn(move || {
                for round in 0..8usize {
                    let prefix = format!("shelf-{:03}", (i * 8 + round) % 40);
                    let origin = web.random_origin((i + round) as u64);
                    let sim = web.prefix_search(origin, &prefix);
                    let reply = dist
                        .query(client, origin, prefix.clone())
                        .expect("runtime alive");
                    assert_eq!(
                        reply.answer.matches, sim.matches,
                        "client {i} round {round}"
                    );
                    assert_eq!(reply.answer.matched_len, sim.matched_len);
                }
            });
        }
    });
    assert!(dist.message_count() > 0);
    // The per-host counters and the global counter tell one story.
    assert_eq!(dist.traffic().total_sent(), dist.message_count());
    dist.shutdown();
}

#[test]
fn trie_client_interleaves_in_flight_queries_by_correlation_id() {
    let strings: Vec<String> = (0..64).map(|i| format!("w{i:03}tail")).collect();
    let web = TrieSkipWeb::builder(strings).seed(45).build();
    let dist = web.serve();
    let client = dist.client();
    let submitted: Vec<(u64, String)> = (0..16usize)
        .map(|i| {
            let prefix = format!("w{:03}", (i * 5) % 64);
            let corr = dist
                .submit(&client, web.random_origin(i as u64), prefix.clone())
                .expect("submit");
            (corr, prefix)
        })
        .collect();
    // Collect evens first, then odds — out of submission order on purpose.
    let mut order: Vec<usize> = (0..submitted.len()).step_by(2).collect();
    order.extend((1..submitted.len()).step_by(2));
    for idx in order {
        let (corr, prefix) = &submitted[idx];
        let reply = client
            .recv_corr(*corr, Duration::from_secs(10))
            .expect("reply");
        assert_eq!(reply.corr, *corr);
        assert_eq!(
            reply.try_into_answer().unwrap().matches,
            vec![format!("{prefix}tail")]
        );
    }
    dist.shutdown();
}

#[test]
fn trapezoid_runtime_agrees_with_simulator() {
    let segments: Vec<Segment> = (0..28)
        .map(|i| Segment::new((i * 90, (i % 5) * 40), (i * 90 + 70, (i % 5) * 40 + 2)))
        .collect();
    let web = TrapezoidSkipWeb::builder(segments).seed(46).build();
    let dist = web.serve();
    let client = dist.client();
    for s in 0..25i64 {
        let q = (s * 113 - 100, s * 17 - 60);
        let origin = web.random_origin(s as u64);
        let sim = web.locate_point(origin, q);
        let reply = dist.query(&client, origin, q).expect("runtime alive");
        assert_eq!(reply.answer, sim.trapezoid, "query {q:?}");
    }
    dist.shutdown();
}
