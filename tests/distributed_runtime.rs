//! Integration: the threaded actor runtime (real concurrent message
//! passing) delivers exactly the simulator's answers, for both placements,
//! including after churn.

use std::time::Duration;

use skipwebs::core::distributed::DistributedOneDim;
use skipwebs::core::onedim::OneDimSkipWeb;

#[test]
fn runtime_agrees_with_simulator_owner_hosted() {
    let web = OneDimSkipWeb::builder((0..400u64).map(|i| i * 13 + 5).collect())
        .seed(31)
        .build();
    let dist = DistributedOneDim::spawn(&web);
    let client = dist.client();
    for s in 0..80u64 {
        let q = (s * 211) % 6000;
        let origin = web.random_origin(s);
        let sim = web.nearest(origin, q).answer.nearest;
        let got = dist.nearest(&client, origin, q).unwrap().unwrap();
        assert_eq!(got, sim, "q={q}");
    }
    dist.shutdown();
}

#[test]
fn runtime_agrees_with_simulator_bucketed() {
    let web = OneDimSkipWeb::builder((0..500u64).map(|i| i * 9).collect())
        .seed(32)
        .bucketed(40)
        .build();
    let dist = DistributedOneDim::spawn(&web);
    let client = dist.client();
    for s in 0..60u64 {
        let q = (s * 389) % 5000;
        let origin = web.random_origin(s);
        let sim = web.nearest(origin, q).answer.nearest;
        let got = dist.nearest(&client, origin, q).unwrap().unwrap();
        assert_eq!(got, sim, "bucketed q={q}");
    }
    dist.shutdown();
}

#[test]
fn runtime_serves_post_churn_structures() {
    let mut web = OneDimSkipWeb::builder((0..200u64).map(|i| i * 10).collect())
        .seed(33)
        .build();
    for i in 0..50u64 {
        web.insert(i * 37 + 3);
    }
    for i in 0..20u64 {
        web.remove(i * 10);
    }
    let dist = DistributedOneDim::spawn(&web);
    let client = dist.client();
    for s in 0..50u64 {
        let q = (s * 167) % 3000;
        let origin = web.random_origin(s);
        let sim = web.nearest(origin, q).answer.nearest;
        let got = dist.nearest(&client, origin, q).unwrap().unwrap();
        assert_eq!(got, sim, "post-churn q={q}");
    }
    dist.shutdown();
}

#[test]
fn many_concurrent_clients_fan_out() {
    let web = OneDimSkipWeb::builder((0..300u64).map(|i| i * 8 + 1).collect())
        .seed(34)
        .build();
    let dist = DistributedOneDim::spawn(&web);
    let clients: Vec<_> = (0..8).map(|_| dist.client()).collect();
    // All clients query concurrently from scoped threads.
    std::thread::scope(|scope| {
        for (i, client) in clients.iter().enumerate() {
            let web = &web;
            let dist = &dist;
            scope.spawn(move || {
                for round in 0..10u64 {
                    let q = (i as u64 * 401 + round * 97) % 2400;
                    let origin = web.random_origin(i as u64 + round);
                    let want = web.nearest(origin, q).answer.nearest;
                    let got = dist
                        .nearest(client, origin, q)
                        .expect("runtime alive")
                        .expect("nonempty");
                    assert_eq!(got, want, "client {i} round {round}");
                }
            });
        }
    });
    assert!(dist.message_count() > 0);
    dist.shutdown();
}

#[test]
fn runtime_message_counts_stay_logarithmic() {
    let n = 1024u64;
    let web = OneDimSkipWeb::builder((0..n).map(|i| i * 3).collect())
        .seed(35)
        .build();
    let dist = DistributedOneDim::spawn(&web);
    let client = dist.client();
    let trials = 50u64;
    for s in 0..trials {
        dist.nearest(&client, web.random_origin(s), (s * 797) % 3200)
            .unwrap();
    }
    let per_query = dist.message_count() as f64 / trials as f64;
    assert!(per_query < 45.0, "per-query messages {per_query} too high");
    dist.shutdown();
}

#[test]
fn client_timeout_surfaces_cleanly() {
    let web = OneDimSkipWeb::builder(vec![1, 2, 3]).seed(36).build();
    let dist = DistributedOneDim::spawn(&web);
    let client = dist.client();
    // No query sent: the receive must time out, not hang.
    let err = client.recv_timeout(Duration::from_millis(20)).unwrap_err();
    assert_eq!(err, skipwebs::net::runtime::RuntimeError::Timeout);
    dist.shutdown();
}
