//! Batch/serial parity, property-tested: driving the same mixed churn
//! workload through the `*_batch` entry points and the one-at-a-time paths
//! must return byte-identical answers, identical applied flags, and
//! identical final structures on every deployment size — while the batch
//! side's coalesced envelopes cross *fewer* metered host boundaries. This
//! is the release-mode gate CI runs by name alongside the parity suite.
//!
//! The acceptance pin: a batch of 256 queries on 16 hosts crosses
//! measurably fewer host boundaries than the same 256 queries run
//! serially, observable in `HostTraffic`.

use proptest::collection;
use proptest::prelude::*;

use skipwebs::core::engine::DistributedSkipWeb;
use skipwebs::core::multidim::{QuadtreeRequest, QuadtreeSkipWeb, TrieSkipWeb};
use skipwebs::core::onedim::OneDimSkipWeb;

const HOST_COUNTS: [usize; 3] = [1, 4, 16];

#[test]
fn batch_of_256_queries_on_16_hosts_crosses_measurably_fewer_boundaries() {
    let keys: Vec<u64> = (0..1024).map(|i| i * 7 + 1).collect();
    let web = OneDimSkipWeb::builder(keys).seed(81).build();
    let serial = DistributedSkipWeb::builder(web.inner())
        .consolidated(16)
        .spawn();
    let batched = DistributedSkipWeb::builder(web.inner())
        .consolidated(16)
        .spawn();
    let (cs, cb) = (serial.client(), batched.client());
    let qs: Vec<u64> = (0..256u64).map(|s| (s * 2741) % 7200).collect();
    let origin = web.random_origin(3);
    let want: Vec<Option<u64>> = qs
        .iter()
        .map(|&q| serial.query(&cs, origin, q).expect("runtime alive").answer)
        .collect();
    let got: Vec<Option<u64>> = batched
        .query_batch(&cb, origin, qs)
        .expect("runtime alive")
        .into_iter()
        .map(|r| r.answer)
        .collect();
    assert_eq!(got, want, "batch answers must be byte-identical");
    let (s, b) = (serial.traffic(), batched.traffic());
    assert_eq!(s.total_sent(), serial.message_count());
    assert_eq!(b.total_sent(), batched.message_count());
    assert!(
        b.total_sent() * 2 <= s.total_sent(),
        "256-query batch on 16 hosts must cross measurably fewer boundaries: \
         batched {} vs serial {}",
        b.total_sent(),
        s.total_sent()
    );
    assert!(
        b.mean_batch_size() > 1.0,
        "coalescing must be observable in the batch counters: {b}"
    );
    assert_eq!(
        s.total_batch_sent(),
        0,
        "serial path sends no batch envelopes"
    );
    serial.shutdown();
    batched.shutdown();
}

#[test]
fn scattered_reports_match_serial_answers_on_consolidated_fabrics() {
    // Quadtree box reporting, folded onto 4 physical hosts.
    let points: Vec<_> = (0..160u32)
        .map(|i| skipwebs::structures::PointKey::new([i * 104_729 + 13, i * 49_979 + 7]))
        .collect();
    let web = QuadtreeSkipWeb::builder(points).seed(82).build();
    let dist = DistributedSkipWeb::builder(web.inner())
        .consolidated(4)
        .spawn();
    let client = dist.client();
    for (lo, hi) in [
        ([0u32, 0u32], [u32::MAX / 2, u32::MAX / 2]),
        ([0, 0], [u32::MAX, u32::MAX]),
    ] {
        let serial = dist
            .query(
                &client,
                web.random_origin(1),
                QuadtreeRequest::InBox { lo, hi },
            )
            .expect("runtime alive");
        let scattered = dist
            .query_scatter(
                &client,
                web.random_origin(1),
                QuadtreeRequest::InBox { lo, hi },
            )
            .expect("runtime alive");
        assert_eq!(scattered.answer, serial.answer, "box {lo:?}..{hi:?}");
    }
    dist.shutdown();

    // Trie prefix enumeration, folded onto 4 physical hosts.
    let strings: Vec<String> = (0..96).map(|i| format!("isbn-{i:04}")).collect();
    let web = TrieSkipWeb::builder(strings).seed(83).build();
    let dist = DistributedSkipWeb::builder(web.inner())
        .consolidated(4)
        .spawn();
    let client = dist.client();
    for prefix in ["isbn-00", "isbn", "zzz", ""] {
        let serial = dist
            .query(&client, web.random_origin(2), prefix.to_string())
            .expect("runtime alive");
        let scattered = dist
            .query_scatter(&client, web.random_origin(2), prefix.to_string())
            .expect("runtime alive");
        assert_eq!(scattered.answer.matched_len, serial.answer.matched_len);
        assert_eq!(
            scattered.answer.matches, serial.answer.matches,
            "{prefix:?}"
        );
    }
    dist.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// The satellite gate: the same randomized mixed churn workload —
    /// query rounds, insert rounds, remove rounds — through `query_batch` /
    /// `insert_batch_with` / `remove_batch_with` versus the serial
    /// `query` / `insert_with` / `remove_with`, on {1, 4, 16} hosts:
    /// identical answers, identical applied flags, identical final ground
    /// sets, and never more metered crossings on the batch side.
    #[test]
    fn batched_churn_matches_serial_on_every_host_count(
        keys in collection::vec(0u64..50_000, 24..64),
        rounds in collection::vec(
            (collection::vec(0u64..50_000, 4..12), any::<u64>()),
            2..4,
        ),
        seed in 0u64..500,
    ) {
        for hosts in HOST_COUNTS {
            let web = OneDimSkipWeb::builder(keys.clone()).seed(seed).build();
            let serial = DistributedSkipWeb::builder(web.inner()).consolidated(hosts).spawn();
            let batched = DistributedSkipWeb::builder(web.inner()).consolidated(hosts).spawn();
            let (cs, cb) = (serial.client(), batched.client());
            for (round, &(ref values, bitseed)) in rounds.iter().enumerate() {
                // Query round: byte-identical answers in submission order.
                let qs: Vec<u64> = values.iter().map(|v| v * 3 % 60_000).collect();
                let origin = (round * 13 + 1) % web.len();
                let want: Vec<Option<u64>> = qs
                    .iter()
                    .map(|&q| serial.query(&cs, origin, q).expect("runtime alive").answer)
                    .collect();
                let got: Vec<Option<u64>> = batched
                    .query_batch(&cb, origin, qs)
                    .expect("runtime alive")
                    .into_iter()
                    .map(|r| r.answer)
                    .collect();
                prop_assert_eq!(got, want, "query round {}", round);

                // Insert round: distinct items (batch ops on the same item
                // would race by arrival order, exactly like concurrent
                // serial clients), explicit (origin, bits) so both engines
                // make identical deterministic choices.
                let mut fresh: Vec<u64> = values.iter().map(|v| (v * 2 + 1) % 99_991).collect();
                fresh.sort_unstable();
                fresh.dedup();
                let ins: Vec<(usize, u64, u64)> = fresh
                    .iter()
                    .enumerate()
                    .map(|(i, &k)| (origin, k, bitseed.wrapping_mul(i as u64 + 1)))
                    .collect();
                let serial_flags: Vec<bool> = ins
                    .iter()
                    .map(|&(o, k, b)| {
                        serial.insert_with(&cs, o, k, b).expect("runtime alive").applied
                    })
                    .collect();
                let batch_flags: Vec<bool> = batched
                    .insert_batch_with(&cb, ins)
                    .expect("runtime alive")
                    .into_iter()
                    .map(|r| r.applied)
                    .collect();
                prop_assert_eq!(batch_flags, serial_flags, "insert round {}", round);
                prop_assert_eq!(batched.ground(), serial.ground(), "after inserts {}", round);

                // Remove round: the freshly inserted keys plus one absent
                // probe — applied flags and final state must agree.
                let mut rem: Vec<(usize, u64)> =
                    fresh.iter().map(|&k| (origin, k)).collect();
                rem.push((origin, 999_999));
                let serial_flags: Vec<bool> = rem
                    .iter()
                    .map(|&(o, k)| serial.remove_with(&cs, o, k).expect("runtime alive").applied)
                    .collect();
                let batch_flags: Vec<bool> = batched
                    .remove_batch_with(&cb, rem)
                    .expect("runtime alive")
                    .into_iter()
                    .map(|r| r.applied)
                    .collect();
                prop_assert_eq!(batch_flags, serial_flags, "remove round {}", round);
                prop_assert_eq!(batched.ground(), serial.ground(), "after removes {}", round);
            }
            // Coalescing can only remove crossings, never add them.
            prop_assert!(
                batched.message_count() <= serial.message_count(),
                "hosts={}: batched {} vs serial {}",
                hosts,
                batched.message_count(),
                serial.message_count()
            );
            serial.shutdown();
            batched.shutdown();
        }
    }
}
