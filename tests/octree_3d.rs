//! Integration: the framework's `d`-dimensional claim (§3.1 covers octrees
//! for any fixed `d ≥ 2`) — the same generic code runs in three dimensions.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skipwebs::core::multidim::QuadtreeSkipWeb;
use skipwebs::structures::{PointKey, RangeDetermined};

fn random_points3(n: usize, seed: u64) -> Vec<PointKey<3>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| PointKey::new([rng.gen(), rng.gen(), rng.gen()]))
        .collect()
}

#[test]
fn octree_skip_web_locates_points_in_3d() {
    let pts = random_points3(256, 1);
    let web = QuadtreeSkipWeb::<3>::builder(pts).seed(1).build();
    let mut rng = StdRng::seed_from_u64(2);
    for _ in 0..40 {
        let q = PointKey::new([rng.gen(), rng.gen(), rng.gen()]);
        let out = web.locate_point(web.random_origin(rng.gen()), q);
        assert!(out.cell.contains_point(&q));
        let base = web.inner().base();
        assert_eq!(out.cell, base.range(base.locate(&q)));
    }
}

#[test]
fn octree_query_messages_stay_logarithmic() {
    let mut means = Vec::new();
    for n in [128usize, 1024] {
        let web = QuadtreeSkipWeb::<3>::builder(random_points3(n, 3))
            .seed(3)
            .build();
        let mut rng = StdRng::seed_from_u64(4);
        let trials = 50;
        let total: u64 = (0..trials)
            .map(|_| {
                let q = PointKey::new([rng.gen(), rng.gen(), rng.gen()]);
                web.locate_point(web.random_origin(rng.gen()), q).messages
            })
            .sum();
        means.push(total as f64 / trials as f64);
    }
    assert!(
        means[1] < means[0] * 2.5,
        "8x points should add ~3 levels, not multiply cost: {means:?}"
    );
}

#[test]
fn octree_member_points_are_their_own_nearest() {
    let pts = random_points3(128, 5);
    let web = QuadtreeSkipWeb::<3>::builder(pts.clone()).seed(5).build();
    for (i, p) in web.points().iter().enumerate().step_by(9) {
        let out = web.locate_point(i % web.len(), *p);
        assert_eq!(out.approx_nearest, Some(*p));
    }
}

#[test]
fn octree_box_reporting_matches_oracle_in_3d() {
    let pts = random_points3(200, 7);
    let web = QuadtreeSkipWeb::<3>::builder(pts).seed(7).build();
    let lo = [0u32, 0, 0];
    let hi = [u32::MAX / 2, u32::MAX, u32::MAX / 4];
    let out = web.points_in_box(0, lo, hi);
    let mut want: Vec<PointKey<3>> = web
        .points()
        .iter()
        .copied()
        .filter(|p| p.in_box(&lo, &hi))
        .collect();
    want.sort_by_key(PointKey::morton);
    assert_eq!(out.points, want);
}

#[test]
fn octree_updates_work_in_3d() {
    let mut web = QuadtreeSkipWeb::<3>::builder(random_points3(64, 9))
        .seed(9)
        .build();
    let p = PointKey::new([123u32, 456, 789]);
    assert!(web.insert(p).is_some());
    assert!(web.insert(p).is_none());
    let out = web.locate_point(0, p);
    assert_eq!(out.approx_nearest, Some(p));
    assert!(web.remove(&p).is_some());
    assert!(web.remove(&p).is_none());
}
