//! WAN fault-injection gate: the same mixed churn workload — queries,
//! inserts, removes — must produce identical answers, identical applied
//! flags, and identical final ground sets whether the fabric runs on the
//! lossless in-process [`ChannelTransport`] or on a [`SimWanTransport`]
//! configured with 5% probabilistic loss and enough jitter to reorder
//! messages in flight. Losses surface to clients only as timeouts; the
//! engine's lossy-resubmit path plus the exactly-once idempotence ledger
//! must absorb them without changing any observable result.
//!
//! CI runs this file by name in the `wan-fault` job with a fixed proptest
//! RNG, so every run replays the same loss/reorder schedules.
//!
//! [`ChannelTransport`]: skipwebs::net::transport::ChannelTransport
//! [`SimWanTransport`]: skipwebs::net::wan::SimWanTransport

use std::time::Duration;

use proptest::collection;
use proptest::prelude::*;

use skipwebs::core::engine::{DistributedSkipWeb, Timeouts};
use skipwebs::core::onedim::OneDimSkipWeb;
use skipwebs::net::wan::SimWanConfig;

const HOST_COUNTS: [usize; 2] = [1, 4];

/// A schedule with 5% per-crossing loss and jitter wide enough (±3× the
/// base latency) that later messages routinely overtake earlier ones.
fn faulty(seed: u64) -> SimWanConfig {
    SimWanConfig {
        seed,
        latency: Duration::from_micros(300),
        jitter: Duration::from_micros(900),
        loss: 0.05,
    }
}

#[test]
fn lossy_wan_reports_loss_and_reordering_in_transport_stats() {
    let keys: Vec<u64> = (0..512).map(|i| i * 11 + 3).collect();
    let web = OneDimSkipWeb::builder(keys).seed(91).build();
    let clean = DistributedSkipWeb::builder(web.inner())
        .consolidated(4)
        .spawn();
    let dist = DistributedSkipWeb::builder(web.inner())
        .consolidated(4)
        .wan(faulty(7))
        .spawn();
    let (cc, client) = (clean.client(), dist.client());
    client.set_timeouts(Timeouts::new(
        Duration::from_millis(150),
        Duration::from_millis(300),
    ));
    for q in 0..128u64 {
        let (origin, key) = (web.random_origin(q), q * 97 % 6_000);
        let got = dist
            .query(&client, origin, key)
            .expect("resubmits must mask 5% loss")
            .answer;
        let want = clean.query(&cc, origin, key).expect("runtime alive").answer;
        assert_eq!(got, want, "query {q}");
    }
    clean.shutdown();

    // A lone blocking client serializes every link, so reordering needs
    // concurrent in-flight traffic: four clients hammer the fabric at
    // once, overlapping messages on shared host-to-host links where the
    // ±900µs jitter can let a later frame overtake an earlier one.
    std::thread::scope(|s| {
        for t in 0..4u64 {
            let web = &web;
            let dist = &dist;
            s.spawn(move || {
                let c = dist.client();
                c.set_timeouts(Timeouts::new(
                    Duration::from_millis(150),
                    Duration::from_millis(300),
                ));
                for q in 0..128u64 {
                    let key = (q * 131 + t * 29) % 6_000;
                    dist.query(&c, web.random_origin(q ^ t), key)
                        .expect("resubmits must mask 5% loss");
                }
            });
        }
    });

    let stats = dist.transport_stats();
    assert!(
        stats.lost > 0,
        "5% loss over this workload must drop frames: {stats}"
    );
    assert!(
        stats.reordered > 0,
        "concurrent clients under ±900µs jitter must reorder: {stats}"
    );
    assert!(
        stats.delivered < stats.carried,
        "losses never deliver: {stats}"
    );
    dist.shutdown();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The acceptance pin from the transport redesign: batch and serial
    /// churn stay in lockstep with a faulty WAN underneath. Every op on
    /// the WAN side may be silently dropped and resubmitted any number of
    /// times; answers, applied flags, and final ground sets must still be
    /// byte-identical to the lossless fabric's.
    #[test]
    fn churn_over_faulty_wan_matches_lossless_channel_fabric(
        keys in collection::vec(0u64..50_000, 24..48),
        rounds in collection::vec(
            (collection::vec(0u64..50_000, 4..8), any::<u64>()),
            2..3,
        ),
        seed in 0u64..500,
    ) {
        for hosts in HOST_COUNTS {
            let web = OneDimSkipWeb::builder(keys.clone()).seed(seed).build();
            let clean = DistributedSkipWeb::builder(web.inner()).consolidated(hosts).spawn();
            let wan = DistributedSkipWeb::builder(web.inner()).consolidated(hosts).wan(faulty(seed ^ 0x57414e)).spawn();
            let (cc, cw) = (clean.client(), wan.client());
            // Short timeouts keep lost frames cheap to resubmit; they must
            // still dominate the worst-case jittered round trip.
            cw.set_timeouts(Timeouts::new(Duration::from_millis(150), Duration::from_millis(300)));
            for (round, &(ref values, bitseed)) in rounds.iter().enumerate() {
                let origin = (round * 13 + 1) % web.len();

                // Query round: answers agree despite drops in either
                // direction on the WAN side.
                for &v in values {
                    let q = v * 3 % 60_000;
                    let want = clean.query(&cc, origin, q).expect("runtime alive").answer;
                    let got = wan.query(&cw, origin, q).expect("loss must be masked").answer;
                    prop_assert_eq!(got, want, "query {} round {}", q, round);
                }

                // Insert round: explicit (origin, bits) so both fabrics
                // make identical placement choices; a resubmitted insert
                // must apply exactly once via the idempotence ledger.
                let mut fresh: Vec<u64> =
                    values.iter().map(|v| (v * 2 + 1) % 99_991).collect();
                fresh.sort_unstable();
                fresh.dedup();
                for (i, &k) in fresh.iter().enumerate() {
                    let bits = bitseed.wrapping_mul(i as u64 + 1);
                    let want = clean
                        .insert_with(&cc, origin, k, bits)
                        .expect("runtime alive")
                        .applied;
                    let got = wan
                        .insert_with(&cw, origin, k, bits)
                        .expect("loss must be masked")
                        .applied;
                    prop_assert_eq!(got, want, "insert {} round {}", k, round);
                }
                prop_assert_eq!(wan.ground(), clean.ground(), "after inserts {}", round);

                // Remove round: the fresh keys plus one absent probe.
                let mut rem = fresh.clone();
                rem.push(999_999);
                for &k in &rem {
                    let want = clean
                        .remove_with(&cc, origin, k)
                        .expect("runtime alive")
                        .applied;
                    let got = wan
                        .remove_with(&cw, origin, k)
                        .expect("loss must be masked")
                        .applied;
                    prop_assert_eq!(got, want, "remove {} round {}", k, round);
                }
                prop_assert_eq!(wan.ground(), clean.ground(), "after removes {}", round);
            }
            clean.shutdown();
            wan.shutdown();
        }
    }
}
