//! Integration: the multi-dimensional skip-webs (§3) agree with brute-force
//! single-machine oracles across seeds and workload shapes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skipwebs::core::multidim::{QuadtreeSkipWeb, TrapezoidSkipWeb, TrieSkipWeb};
use skipwebs::structures::{PointKey, RangeDetermined, Segment};

#[test]
fn quadtree_skip_web_locates_like_the_tree_for_many_seeds() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let pts: Vec<PointKey<2>> = (0..300)
            .map(|_| PointKey::new([rng.gen(), rng.gen()]))
            .collect();
        let web = QuadtreeSkipWeb::builder(pts).seed(seed).build();
        for _ in 0..40 {
            let q = PointKey::new([rng.gen(), rng.gen()]);
            let out = web.locate_point(web.random_origin(rng.gen()), q);
            let base = web.inner().base();
            assert_eq!(out.cell, base.range(base.locate(&q)), "seed {seed}");
        }
    }
}

#[test]
fn quadtree_approx_nearest_is_close_to_true_nearest() {
    let mut rng = StdRng::seed_from_u64(99);
    let pts: Vec<PointKey<2>> = (0..400)
        .map(|_| PointKey::new([rng.gen_range(0..1 << 20), rng.gen_range(0..1 << 20)]))
        .collect();
    let web = QuadtreeSkipWeb::builder(pts.clone()).seed(5).build();
    for _ in 0..40 {
        let q = PointKey::new([rng.gen_range(0..1 << 20), rng.gen_range(0..1 << 20)]);
        let out = web.locate_point(0, q);
        let approx = out.approx_nearest.expect("points exist");
        let true_nearest = pts
            .iter()
            .min_by_key(|p| p.distance_sq(&q))
            .expect("points exist");
        // The approximate answer must be within the located cell's scale of
        // the true nearest (§3.1: point location yields approximate NN).
        let cell_diag = 2u128 << (out.cell.side_log2() as u128 + 1);
        let ad = (approx.distance_sq(&q) as f64).sqrt();
        let td = (true_nearest.distance_sq(&q) as f64).sqrt();
        assert!(
            ad <= td + cell_diag as f64 * 2.0,
            "approx NN too far: {ad} vs {td} (cell diag {cell_diag})"
        );
    }
}

#[test]
fn trie_skip_web_prefix_results_match_linear_scan() {
    let corpora: [Vec<String>; 2] = [
        (0..150).map(|i| format!("node{i:04}")).collect(),
        vec!["a", "ab", "abc", "abcd", "b", "ba", "bab", "babb", "c"]
            .into_iter()
            .map(String::from)
            .collect(),
    ];
    for (ci, corpus) in corpora.into_iter().enumerate() {
        let web = TrieSkipWeb::builder(corpus.clone()).seed(ci as u64).build();
        let prefixes = ["a", "ab", "node0", "node01", "z", "", "bab"];
        for p in prefixes {
            let out = web.prefix_search(web.random_origin(ci as u64), p);
            let mut want: Vec<&String> = corpus.iter().filter(|s| s.starts_with(p)).collect();
            want.sort();
            let got: Vec<&String> = out.matches.iter().collect();
            assert_eq!(got, want, "corpus {ci}, prefix {p:?}");
        }
    }
}

#[test]
fn trie_handles_prefix_chains_and_exact_lookups() {
    let words: Vec<String> = ["do", "dog", "dogma", "dot", "door", "doors"]
        .iter()
        .map(|s| s.to_string())
        .collect();
    let web = TrieSkipWeb::builder(words.clone()).seed(2).build();
    for w in &words {
        let out = web.prefix_search(web.random_origin(1), w);
        assert!(
            out.matches.contains(w),
            "stored string {w} must match its own prefix query"
        );
        assert_eq!(out.matched_len, w.len());
    }
}

#[test]
fn trapezoid_skip_web_point_location_matches_containment() {
    let mut rng = StdRng::seed_from_u64(7);
    // Banded disjoint segments (general position).
    let mut xs: Vec<i64> = (0..160).map(|i| i * 4 + 1).collect();
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
    let segments: Vec<Segment> = (0..80)
        .map(|i| {
            let band = i as i64 * 60;
            let (a, b) = (xs[2 * i], xs[2 * i + 1]);
            let (x1, x2) = (a.min(b), a.max(b));
            Segment::new(
                (x1, band + rng.gen_range(-9..=9)),
                (x2, band + rng.gen_range(-9..=9)),
            )
        })
        .collect();
    let web = TrapezoidSkipWeb::builder(segments).seed(3).build();
    for _ in 0..50 {
        let q = (
            rng.gen_range(-50..700i64),
            rng.gen_range(-100..5000i64) * 2 + 25,
        );
        let out = web.locate_point(web.random_origin(q.0 as u64), q);
        assert!(
            out.trapezoid.contains(q),
            "located trapezoid must contain {q:?}"
        );
        // And it is the unique strict container (tiling).
        let base = web.inner().base();
        let count = (0..base.num_trapezoids())
            .filter(|&i| {
                base.trapezoid(skipwebs::structures::RangeId(i as u32))
                    .contains(q)
            })
            .count();
        assert_eq!(count, 1, "query {q:?} must lie in exactly one trapezoid");
    }
}

#[test]
fn multidim_updates_preserve_query_correctness() {
    let mut rng = StdRng::seed_from_u64(21);
    let pts: Vec<PointKey<2>> = (0..120)
        .map(|_| PointKey::new([rng.gen(), rng.gen()]))
        .collect();
    let mut web = QuadtreeSkipWeb::builder(pts).seed(4).build();
    // Insert fresh points, remove some old ones.
    let fresh: Vec<PointKey<2>> = (0..30)
        .map(|_| PointKey::new([rng.gen(), rng.gen()]))
        .collect();
    for p in &fresh {
        assert!(web.insert(*p).is_some());
    }
    for p in &fresh[..10] {
        assert!(web.remove(p).is_some());
    }
    // All remaining fresh points locate onto their own leaves.
    for p in &fresh[10..] {
        let out = web.locate_point(web.random_origin(1), *p);
        assert!(out.cell.contains_point(p));
        assert_eq!(out.approx_nearest, Some(*p), "member point is its own NN");
    }
}
