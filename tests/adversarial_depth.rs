//! The paper's sharpest multi-dimensional claim (§3.1, §3.2): skip-web
//! queries take `O(log n)` messages **even when the underlying structure
//! has `O(n)` depth**. These tests build exactly those adversarial inputs —
//! chain tries and nested point clusters — and check that message costs
//! stay logarithmic where a naive root-to-leaf traversal would pay `Θ(n)`.

use skipwebs::core::multidim::{QuadtreeSkipWeb, TrieSkipWeb};
use skipwebs::core::onedim::OneDimSkipWeb;
use skipwebs::structures::{PointKey, RangeDetermined};

/// "a", "aa", "aaa", ... — a trie that is a single chain of depth n.
fn chain_strings(n: usize) -> Vec<String> {
    (1..=n).map(|i| "a".repeat(i)).collect()
}

#[test]
fn chain_trie_queries_stay_logarithmic() {
    let n = 512;
    let web = TrieSkipWeb::builder(chain_strings(n)).seed(41).build();
    // Deep exact-match queries against the chain.
    let mut worst = 0u64;
    for depth in [1usize, n / 4, n / 2, n - 1, n] {
        let q: String = "a".repeat(depth);
        let out = web.prefix_search(web.random_origin(depth as u64), &q);
        assert_eq!(out.matched_len, depth);
        assert_eq!(out.matches.len(), n - depth + 1, "suffix chain count");
        worst = worst.max(out.messages);
    }
    // A naive distributed trie walk would pay ~depth = up to 512 messages.
    assert!(
        worst < 60,
        "chain-trie query cost {worst} must be O(log n), not O(n)"
    );
}

#[test]
fn chain_trie_stores_all_prefix_terminals() {
    // Every string is a prefix of the next: terminal marks must coexist
    // with single-child chains (compression never merges terminals away).
    let web = TrieSkipWeb::builder(chain_strings(64)).seed(42).build();
    let base = web.inner().base();
    assert_eq!(base.len(), 64);
    for i in 1..=64 {
        let q = "a".repeat(i);
        let out = web.prefix_search(0, &q);
        assert!(out.matches.contains(&q), "missing terminal at depth {i}");
    }
}

/// Points nested geometrically toward a corner: the *uncompressed* quadtree
/// would be ~2 levels deeper per point pair; compression keeps O(n) nodes
/// but the interesting-cube chain is still deep.
fn nested_cluster(n: usize) -> Vec<PointKey<2>> {
    let mut pts = Vec::with_capacity(n);
    let mut scale = 1u64 << 31;
    for i in 0..n {
        // Pairs of points separated by a shrinking scale: forces a long
        // chain of interesting cubes.
        let base = (1u64 << 31) - scale;
        pts.push(PointKey::new([base as u32, base as u32]));
        pts.push(PointKey::new([(base + scale / 2) as u32, base as u32]));
        if scale > 4 {
            scale /= 2;
        } else {
            scale = (1 << 31) >> (i % 28);
        }
    }
    pts.sort_by_key(PointKey::morton);
    pts.dedup();
    pts
}

#[test]
fn nested_cluster_point_location_stays_logarithmic() {
    let pts = nested_cluster(40);
    let n = pts.len();
    let web = QuadtreeSkipWeb::builder(pts.clone()).seed(43).build();
    let mut worst = 0u64;
    for (i, p) in pts.iter().enumerate() {
        let out = web.locate_point(web.random_origin(i as u64), *p);
        assert_eq!(out.approx_nearest, Some(*p));
        worst = worst.max(out.messages);
    }
    assert!(
        worst < 50,
        "nested-cluster location cost {worst} must be O(log {n}), not O(depth)"
    );
}

#[test]
fn sequential_keys_do_not_degrade_one_dim_queries() {
    // Adversarially regular inputs: dense sequential keys.
    let web = OneDimSkipWeb::builder((0..4096u64).collect())
        .seed(44)
        .build();
    let trials = 80u64;
    let total: u64 = (0..trials)
        .map(|s| web.nearest(web.random_origin(s), (s * 53) % 4200).messages)
        .sum();
    let mean = total as f64 / trials as f64;
    assert!(mean < 12.0, "sequential keys: mean {mean} messages");
}

#[test]
fn clustered_keys_do_not_degrade_one_dim_queries() {
    // Heavy clustering: half the keys in a tiny interval, half spread wide.
    let mut keys: Vec<u64> = (0..2048u64).map(|i| 1_000_000 + i).collect();
    keys.extend((0..2048u64).map(|i| i * 1_000_003));
    let web = OneDimSkipWeb::builder(keys).seed(45).build();
    let trials = 80u64;
    let total: u64 = (0..trials)
        .map(|s| {
            let q = if s % 2 == 0 {
                1_000_000 + s * 13
            } else {
                s * 999_999
            };
            web.nearest(web.random_origin(s), q).messages
        })
        .sum();
    let mean = total as f64 / trials as f64;
    assert!(mean < 14.0, "clustered keys: mean {mean} messages");
}

#[test]
fn query_cost_is_insensitive_to_key_distribution() {
    // The paper's bounds are distribution-free (randomness is in the coin
    // flips): uniform and adversarial inputs should cost about the same.
    let n = 2048u64;
    let uniform: Vec<u64> = (0..n).map(|i| i * 48_611 % (1 << 30)).collect();
    let adversarial: Vec<u64> = (0..n).map(|i| i * i % (1 << 30)).collect();
    let mean_cost = |keys: Vec<u64>| {
        let web = OneDimSkipWeb::builder(keys).seed(46).build();
        let trials = 80u64;
        (0..trials)
            .map(|s| {
                web.nearest(web.random_origin(s), (s * 104_729) % (1 << 30))
                    .messages
            })
            .sum::<u64>() as f64
            / trials as f64
    };
    let u = mean_cost(uniform);
    let a = mean_cost(adversarial);
    assert!(
        (u - a).abs() < u.max(a) * 0.6,
        "distribution sensitivity: uniform {u:.1} vs adversarial {a:.1}"
    );
}
