//! Integration: the Table 1 cost *shapes* hold — memory classes separate
//! the methods exactly as the paper's table claims, and query costs scale
//! with the predicted growth rates.

use skipwebs::baselines::{FamilyTree, NonSkipGraph, OrderedDictionary, SkipGraph};
use skipwebs::core::onedim::OneDimSkipWeb;
use skipwebs::net::MessageMeter;

fn keys(n: u64) -> Vec<u64> {
    (0..n).map(|i| i * 17 + 3).collect()
}

#[test]
fn memory_classes_separate_like_table1() {
    let n = 2048u64;
    let ks = keys(n);
    // M columns: family tree O(1) < skip graph O(log n) < NoN O(log² n).
    let ft = FamilyTree::new(ks.clone()).network().max_memory();
    let sg = SkipGraph::new(ks.clone(), 1).network().max_memory();
    let non = NonSkipGraph::new(ks.clone(), 1).network().max_memory();
    assert!(
        ft < sg,
        "family tree ({ft}) must use less memory than skip graph ({sg})"
    );
    assert!(
        sg < non / 3,
        "skip graph ({sg}) must use far less than NoN ({non})"
    );
    // Owner-hosted skip-web: O(log n) — the same class as the skip graph,
    // a constant factor above it (explicit conflict lists), far below NoN's
    // O(log² n) per-level-squared growth at scale.
    let sw = OneDimSkipWeb::builder(ks)
        .seed(1)
        .build()
        .network()
        .max_memory();
    assert!(sw > sg, "skip-web stores hyperlinks on top of towers");
    // Growth class check: quadruple n, compare growth factors.
    let big = keys(4 * n);
    let sw_big = OneDimSkipWeb::builder(big.clone())
        .seed(1)
        .build()
        .network()
        .max_memory();
    let non_big = NonSkipGraph::new(big, 1).network().max_memory();
    let sw_growth = sw_big as f64 / sw as f64;
    let non_growth = non_big as f64 / non as f64;
    assert!(
        sw_growth < non_growth * 1.2,
        "skip-web memory growth {sw_growth:.2} must not exceed NoN growth {non_growth:.2}"
    );
}

#[test]
fn query_costs_grow_logarithmically_for_skip_web() {
    let mut means = Vec::new();
    for exp in [8u32, 10, 12] {
        let n = 1u64 << exp;
        let web = OneDimSkipWeb::builder(keys(n)).seed(2).build();
        let trials = 60u64;
        let total: u64 = (0..trials)
            .map(|s| {
                web.nearest(web.random_origin(s), (s * 6151) % (n * 17))
                    .messages
            })
            .sum();
        means.push(total as f64 / trials as f64);
    }
    // Each 4x in n adds roughly a constant number of messages.
    let d1 = means[1] - means[0];
    let d2 = means[2] - means[1];
    assert!(d1 > 0.0 && d2 > 0.0, "means must increase: {means:?}");
    assert!(
        d2 < d1 * 3.0 + 3.0,
        "increments should be near-constant (log growth): {means:?}"
    );
    assert!(means[2] < means[0] * 3.0, "not linear: {means:?}");
}

#[test]
fn bucketed_query_cost_drops_as_memory_grows() {
    let n = 4096u64;
    let ks = keys(n);
    let mut prev = f64::MAX;
    let mut decreasing_pairs = 0;
    let mut total_pairs = 0;
    for m in [8usize, 32, 128, 512] {
        let web = OneDimSkipWeb::builder(ks.clone())
            .seed(3)
            .bucketed(m)
            .build();
        let trials = 50u64;
        let mean = (0..trials)
            .map(|s| {
                web.nearest(web.random_origin(s), (s * 9973) % (n * 17))
                    .messages
            })
            .sum::<u64>() as f64
            / trials as f64;
        total_pairs += 1;
        if mean <= prev + 0.5 {
            decreasing_pairs += 1;
        }
        prev = mean;
    }
    assert!(
        decreasing_pairs >= total_pairs - 1,
        "query cost should fall (or hold) as M grows"
    );
}

#[test]
fn skip_web_update_cost_is_within_log_factor_of_query_cost() {
    let n = 2048u64;
    let mut web = OneDimSkipWeb::builder(keys(n).iter().map(|k| k * 2).collect())
        .seed(4)
        .build();
    let queries: f64 = {
        let trials = 40u64;
        (0..trials)
            .map(|s| {
                web.nearest(web.random_origin(s), (s * 6151) % (n * 34))
                    .messages
            })
            .sum::<u64>() as f64
            / trials as f64
    };
    let mut update_total = 0u64;
    let count = 15u64;
    for i in 0..count {
        update_total += web.insert(i * 64 + 1).expect("fresh odd key");
    }
    let updates = update_total as f64 / count as f64;
    // §4: updates are O(log n), like queries (within a small factor).
    assert!(
        updates < queries * 8.0 + 20.0,
        "updates ({updates:.1}) should stay within a small factor of queries ({queries:.1})"
    );
}

#[test]
fn non_lookahead_buys_queries_with_memory() {
    // The trade Table 1 shows between rows 1 and 2.
    let n = 4096u64;
    let ks = keys(n);
    let plain = SkipGraph::new(ks.clone(), 5);
    let non = NonSkipGraph::new(ks, 5);
    let trials = 50u64;
    let mean = |d: &dyn OrderedDictionary| {
        (0..trials)
            .map(|s| {
                let mut m = MessageMeter::new();
                d.nearest(d.random_origin(s), (s * 7919) % (n * 17), &mut m);
                m.messages()
            })
            .sum::<u64>() as f64
            / trials as f64
    };
    let q_plain = mean(&plain);
    let q_non = mean(&non);
    assert!(
        q_non < q_plain,
        "NoN ({q_non}) must beat plain ({q_plain}) on queries"
    );
    let m_plain = plain.network().max_memory();
    let m_non = non.network().max_memory();
    assert!(
        m_non > 3 * m_plain,
        "NoN pays in memory: {m_non} vs {m_plain}"
    );
}
