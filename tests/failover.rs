//! Fault-injection suite: host crashes, graceful decommissions, and live
//! host spawns exercised against the distributed engine, concurrently with
//! queries and updates. This is the release-mode gate CI runs by name
//! (`fault-injection` job).
//!
//! The failure model under test (see the README's failure-model table):
//! with replication `k`, any `k - 1` host crashes leave every query and
//! every subsequent update answerable; a `k = 1` web fails fast
//! (`Unavailable`) instead of hanging, and `heal()` — or any update apply —
//! re-homes the dead host's blocks and restores availability.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

use skipwebs::core::engine::{DistributedSkipWeb, Timeouts};
use skipwebs::core::multidim::TrieSkipWeb;
use skipwebs::core::onedim::OneDimSkipWeb;
use skipwebs::net::runtime::RuntimeError;
use skipwebs::net::HostId;

/// The acceptance gate: with `k = 2`, killing one host in the middle of a
/// mixed query/update workload leaves *all subsequent* queries answering
/// correctly from replicas and all subsequent updates applying.
#[test]
fn killing_one_host_mid_churn_keeps_queries_and_updates_answering() {
    let initial: Vec<u64> = (0..128).map(|i| i * 100).collect();
    let web = OneDimSkipWeb::builder(initial)
        .seed(71)
        .replicate(2)
        .build();
    let dist = DistributedSkipWeb::builder(web.inner())
        .capacity(web.hosts() + 32)
        .spawn();
    let client = dist.client();
    client.set_timeouts(Timeouts::new(
        Duration::from_secs(20),
        Duration::from_secs(40),
    ));

    // Phase 1: healthy mixed workload.
    for i in 0..40u64 {
        if i % 4 == 3 {
            assert!(dist.insert(&client, 50 + i * 200).unwrap().applied);
        } else {
            let q = (i * 977) % 13_000;
            dist.query(&client, (i as usize) % 128, q)
                .unwrap()
                .answer
                .expect("nonempty web");
        }
    }

    // Crash one host mid-workload.
    dist.kill_host(HostId(13));
    assert_eq!(dist.health().dead, vec![HostId(13)]);
    assert_eq!(dist.health().replication, 2);

    // Phase 2: every subsequent query answers correctly from replicas
    // (including ones whose origin item is homed on the dead host), and
    // updates keep applying.
    for i in 0..60u64 {
        if i % 4 == 3 {
            let key = 51 + i * 200;
            assert!(
                dist.insert(&client, key).unwrap().applied,
                "insert {key} after crash"
            );
            assert!(
                dist.remove(&client, key).unwrap().applied,
                "remove {key} after crash"
            );
        } else {
            let q = (i * 733) % 13_000;
            let origin = if i % 3 == 0 { 13 } else { (i as usize) % 128 };
            let got = dist
                .query(&client, origin, q)
                .expect("queries survive a single crash at k = 2")
                .answer
                .expect("nonempty web");
            // Verify against an oracle over the live ground snapshot.
            let ground = dist.ground();
            let want = *ground
                .iter()
                .min_by_key(|&&k| (k.abs_diff(q), k))
                .expect("nonempty");
            assert_eq!(got, want, "post-crash q={q}");
        }
    }
    // Dropped-message accounting: losses, if any, happened only at the
    // crashed host — every other mailbox stayed reachable throughout.
    let dropped = dist.traffic().dropped;
    assert!(
        dropped.iter().enumerate().all(|(h, &d)| h == 13 || d == 0),
        "only the crashed host may drop messages: {dropped:?}"
    );
    dist.shutdown();
}

/// Readers hammer the web from concurrent threads while a host is killed
/// mid-stream: nothing hangs, and every answer delivered after the crash is
/// still attributable to a member key.
#[test]
fn concurrent_readers_survive_a_mid_stream_crash() {
    let initial: Vec<u64> = (0..96).map(|i| i * 10).collect();
    let web = OneDimSkipWeb::builder(initial)
        .seed(72)
        .replicate(3)
        .build();
    let dist = DistributedSkipWeb::builder(web.inner()).spawn();
    let killed = AtomicBool::new(false);
    std::thread::scope(|scope| {
        for r in 0..4u64 {
            let dist = &dist;
            let killed = &killed;
            scope.spawn(move || {
                let client = dist.client();
                client.set_timeouts(Timeouts::uniform(Duration::from_secs(20)));
                for i in 0..80u64 {
                    let q = (r * 131 + i * 97) % 1_100;
                    match dist.query(&client, (i as usize) % 96, q) {
                        Ok(reply) => {
                            let a = reply.answer.expect("nonempty web");
                            assert!(a.is_multiple_of(10), "answer {a} was never a member");
                        }
                        // Only the crash window may drop a request; queries
                        // submitted after the kill must all succeed.
                        Err(e) => {
                            assert!(
                                !killed.load(Ordering::SeqCst) || e == RuntimeError::Timeout,
                                "unexpected post-crash error {e}"
                            );
                        }
                    }
                }
            });
        }
        let dist = &dist;
        let killed = &killed;
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            dist.kill_host(HostId(41));
            killed.store(true, Ordering::SeqCst);
        });
    });
    assert_eq!(dist.health().dead, vec![HostId(41)]);
    // After the dust settles, a fresh pass answers everything.
    let client = dist.client();
    for s in 0..32u64 {
        assert!(dist
            .query(&client, (s as usize) % 96, s * 31)
            .unwrap()
            .answer
            .is_some());
    }
    dist.shutdown();
}

/// Surviving `k - 1` crashes is the replication contract: kill two hosts of
/// a `k = 3` web and everything still answers.
#[test]
fn k3_replication_survives_two_crashes() {
    let web = OneDimSkipWeb::builder((0..80).map(|i| i * 7).collect())
        .seed(73)
        .replicate(3)
        .build();
    let dist = DistributedSkipWeb::builder(web.inner()).spawn();
    let client = dist.client();
    dist.kill_host(HostId(5));
    dist.kill_host(HostId(6));
    assert_eq!(dist.health().dead, vec![HostId(5), HostId(6)]);
    for s in 0..40u64 {
        let q = (s * 113) % 600;
        let origin = web.random_origin(s);
        let want = web.nearest(origin, q).answer.nearest;
        assert_eq!(
            dist.query(&client, origin, q).unwrap().answer,
            Some(want),
            "q={q} with two dead hosts"
        );
    }
    dist.shutdown();
}

/// Decommissioning rehomes a host's blocks while queries and updates keep
/// flowing, then a replacement host joins and takes traffic.
#[test]
fn live_decommission_and_spawn_under_mixed_load() {
    let web = OneDimSkipWeb::builder((0..100).map(|i| i * 50).collect())
        .seed(74)
        .build();
    let dist = DistributedSkipWeb::builder(web.inner())
        .consolidated(8)
        .spawn();
    std::thread::scope(|scope| {
        for r in 0..3u64 {
            let dist = &dist;
            scope.spawn(move || {
                let client = dist.client();
                client.set_timeouts(Timeouts::new(
                    Duration::from_secs(30),
                    Duration::from_secs(60),
                ));
                for i in 0..60u64 {
                    if i % 5 == 4 {
                        let key = 25 + (r * 1_000 + i) * 50;
                        dist.insert(&client, key).expect("runtime alive");
                    } else {
                        let q = (r * 131 + i * 977) % 5_500;
                        let reply = dist
                            .query(&client, (i as usize) % 100, q)
                            .expect("runtime alive");
                        let a = reply.answer.expect("nonempty web");
                        assert!(
                            a.is_multiple_of(50) || (a % 50) == 25,
                            "answer {a} was never a member"
                        );
                    }
                }
            });
        }
        let dist = &dist;
        scope.spawn(move || {
            std::thread::sleep(Duration::from_millis(3));
            dist.decommission(HostId(2)).expect("host 2 is alive");
            let _ = dist.spawn_host();
        });
    });
    let health = dist.health();
    assert_eq!(health.decommissioned, vec![HostId(2)]);
    assert_eq!(dist.hosts(), 9);
    assert!(health.alive.contains(&HostId(8)), "spawned host is alive");
    // The decommissioned host drained: new traffic avoids it entirely.
    let client = dist.client();
    let before = dist.traffic().received[2];
    for s in 0..40u64 {
        let _ = dist.query(&client, (s as usize) % 100, s * 17).unwrap();
    }
    assert_eq!(dist.traffic().received[2], before);
    assert!(dist.health().dead.is_empty());
    dist.shutdown();
}

/// The same failure model holds for a multi-dimensional web: a killed host
/// leaves trie prefix searches answering from replicas.
#[test]
fn trie_prefix_queries_survive_a_crash_with_replicas() {
    let strings: Vec<String> = (0..72).map(|i| format!("isbn-{i:04}")).collect();
    let web = TrieSkipWeb::builder(strings).seed(75).replicate(2).build();
    let dist = DistributedSkipWeb::builder(web.inner()).spawn();
    let client = dist.client();
    dist.kill_host(HostId(11));
    for s in 0..30usize {
        let prefix = format!("isbn-{:03}", s % 8);
        let want = web.prefix_search(web.random_origin(s as u64), &prefix);
        let got = dist
            .query(&client, web.random_origin(s as u64), prefix.clone())
            .expect("replicated trie survives one crash");
        assert_eq!(got.answer.matched_len, want.matched_len, "{prefix:?}");
        assert_eq!(got.answer.matches, want.matches, "{prefix:?}");
    }
    dist.shutdown();
}

/// Without replication a crash is detected, reported, and healable — never
/// a silent hang.
#[test]
fn unreplicated_crash_reports_unavailable_then_heals() {
    let web = OneDimSkipWeb::builder((0..48).map(|i| i * 3).collect())
        .seed(76)
        .build();
    let dist = DistributedSkipWeb::builder(web.inner()).spawn();
    let client = dist.client();
    client.set_timeouts(Timeouts::uniform(Duration::from_secs(3)));
    dist.kill_host(HostId(17));
    let mut unavailable = 0usize;
    for s in 0..48u64 {
        match dist.query(&client, web.random_origin(s), s * 3 + 1) {
            Ok(_) => {}
            Err(RuntimeError::Unavailable) => unavailable += 1,
            Err(e) => panic!("unexpected error {e}"),
        }
    }
    assert!(unavailable > 0, "k = 1 must fail fast somewhere");
    dist.heal();
    for s in 0..48u64 {
        assert!(
            dist.query(&client, web.random_origin(s), s * 3 + 1)
                .unwrap()
                .answer
                .is_some(),
            "healed k = 1 web answers everything again"
        );
    }
    dist.shutdown();
}
