//! Cross-crate integration: every 1-D method (skip-web and all Table 1
//! baselines) answers nearest-neighbour queries identically, on shared
//! workloads, under the same cost model.

use skipwebs::baselines::{
    BucketSkipGraph, Chord, DeterministicSkipNet, FamilyTree, NonSkipGraph, OrderedDictionary,
    SkipGraph,
};
use skipwebs::core::onedim::OneDimSkipWeb;
use skipwebs::net::MessageMeter;

fn oracle(keys: &[u64], q: u64) -> u64 {
    *keys.iter().min_by_key(|&&k| (k.abs_diff(q), k)).unwrap()
}

fn keys(n: u64, stride: u64) -> Vec<u64> {
    (0..n).map(|i| i * stride + (i % 7)).collect()
}

#[test]
fn all_methods_agree_on_nearest_neighbours() {
    let ks = keys(400, 25);
    let methods: Vec<Box<dyn OrderedDictionary>> = vec![
        Box::new(SkipGraph::new(ks.clone(), 1)),
        Box::new(NonSkipGraph::new(ks.clone(), 2)),
        Box::new(FamilyTree::new(ks.clone())),
        Box::new(DeterministicSkipNet::new(ks.clone())),
        Box::new(BucketSkipGraph::new(ks.clone(), 16, 3)),
        Box::new(Chord::new(ks.clone(), 32)),
    ];
    let web = OneDimSkipWeb::builder(ks.clone()).seed(4).build();
    for s in 0..120u64 {
        let q = (s * 311) % 11_000;
        let want = oracle(&ks, q);
        assert_eq!(
            web.nearest(web.random_origin(s), q).answer.nearest,
            want,
            "skip-web q={q}"
        );
        for m in &methods {
            let mut meter = MessageMeter::new();
            assert_eq!(
                m.nearest(m.random_origin(s), q, &mut meter),
                want,
                "{} disagrees on q={q}",
                m.name()
            );
        }
    }
}

#[test]
fn every_method_survives_interleaved_updates() {
    let ks: Vec<u64> = keys(100, 20).iter().map(|k| k * 2).collect();
    let mut methods: Vec<Box<dyn OrderedDictionary>> = vec![
        Box::new(SkipGraph::new(ks.clone(), 5)),
        Box::new(NonSkipGraph::new(ks.clone(), 6)),
        Box::new(FamilyTree::new(ks.clone())),
        Box::new(DeterministicSkipNet::new(ks.clone())),
        Box::new(BucketSkipGraph::new(ks.clone(), 8, 7)),
    ];
    let mut reference: Vec<u64> = ks.clone();
    // Interleave inserts of odd keys and removals of original keys.
    for i in 0..40u64 {
        let fresh = i * 97 + 1; // odd -> never collides with stored evens
        reference.push(fresh);
        for m in &mut methods {
            let mut meter = MessageMeter::new();
            assert!(m.insert(fresh, &mut meter), "{} insert {fresh}", m.name());
        }
        if i % 2 == 0 {
            let gone = ks[(i as usize * 3) % ks.len()];
            if let Some(pos) = reference.iter().position(|&k| k == gone) {
                reference.remove(pos);
                for m in &mut methods {
                    let mut meter = MessageMeter::new();
                    assert!(m.remove(gone, &mut meter), "{} remove {gone}", m.name());
                }
            }
        }
    }
    reference.sort_unstable();
    for s in 0..60u64 {
        let q = (s * 173) % 5000;
        let want = oracle(&reference, q);
        for m in &methods {
            let mut meter = MessageMeter::new();
            assert_eq!(
                m.nearest(m.random_origin(s), q, &mut meter),
                want,
                "{} after churn, q={q}",
                m.name()
            );
        }
    }
}

#[test]
fn skip_web_matches_non_skip_graph_queries_with_less_memory() {
    // The paper's headline: skip-webs achieve NoN-level query cost at
    // skip-graph-level memory.
    let ks = keys(2048, 13);
    let web = OneDimSkipWeb::builder(ks.clone())
        .seed(8)
        .bucketed(48)
        .build();
    let non = NonSkipGraph::new(ks.clone(), 8);
    let plain = SkipGraph::new(ks, 8);
    let trials = 60u64;
    let mut web_msgs = 0u64;
    let mut non_msgs = 0u64;
    let mut plain_msgs = 0u64;
    for s in 0..trials {
        let q = (s * 7919) % 30_000;
        web_msgs += web.nearest(web.random_origin(s), q).messages;
        let mut m = MessageMeter::new();
        non.nearest(non.random_origin(s), q, &mut m);
        non_msgs += m.messages();
        let mut m = MessageMeter::new();
        plain.nearest(plain.random_origin(s), q, &mut m);
        plain_msgs += m.messages();
    }
    assert!(
        web_msgs <= non_msgs * 2,
        "bucketed skip-web ({web_msgs}) should be in NoN's league ({non_msgs})"
    );
    assert!(
        web_msgs < plain_msgs,
        "skip-web ({web_msgs}) must beat the plain skip graph ({plain_msgs})"
    );
}

#[test]
fn congestion_spreads_across_hosts() {
    let ks = keys(512, 11);
    let web = OneDimSkipWeb::builder(ks).seed(9).build();
    let mut net = web.network();
    for s in 0..200u64 {
        let out = web.nearest(web.random_origin(s), (s * 37) % 6000);
        net.absorb_query(&out.meter);
    }
    // No single host should see more than a small fraction of all touches.
    let max = net.max_touch_count();
    let total: u64 = (0..net.hosts())
        .map(|h| net.touch_count(skipwebs::net::HostId(h as u32)))
        .sum();
    assert!(
        max * 10 < total,
        "hot spot: one host saw {max} of {total} touches"
    );
}
