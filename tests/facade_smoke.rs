//! Smoke test for the `skipwebs` facade crate: every re-exported workspace
//! member must be reachable through the facade path, and the two crate-level
//! doctest quickstarts (facade and `skipweb_core`) must keep working when
//! written against the facade, so the README/front-page examples can never
//! silently rot.

use skipwebs::baselines::{OrderedDictionary, SkipGraph};
use skipwebs::core::onedim::OneDimSkipWeb;
use skipwebs::net::{HostId, MessageMeter, SimNetwork};
use skipwebs::structures::{KeyInterval, RangeDetermined, SortedLinkedList};

#[test]
fn facade_quickstart_from_crate_docs() {
    // Mirrors the `skipwebs` crate-level doctest.
    let keys: Vec<u64> = (0..64).map(|i| i * 10).collect();
    let web = OneDimSkipWeb::builder(keys).seed(7).build();
    let outcome = web.nearest(web.random_origin(7), 137);
    assert_eq!(outcome.answer.nearest, 140);
}

#[test]
fn core_quickstart_from_crate_docs() {
    // Mirrors the `skipweb_core` crate-level doctest, through the facade.
    let keys: Vec<u64> = (0..100).map(|i| i * 7).collect();
    let web = OneDimSkipWeb::builder(keys).seed(1).build();
    let outcome = web.nearest(web.random_origin(3), 40);
    assert_eq!(outcome.answer.nearest, 42);
    assert!(outcome.messages <= 40);
}

#[test]
fn net_reexport_measures_messages() {
    let mut net = SimNetwork::new(4);
    let mut meter = net.meter();
    meter.visit(HostId(0));
    meter.visit(HostId(2));
    meter.visit(HostId(2));
    meter.visit(HostId(1));
    assert_eq!(meter.messages(), 2);
    net.absorb(&meter);
    assert_eq!(net.metrics().total_messages, 2);
}

#[test]
fn structures_reexport_builds_and_answers_conflicts() {
    let list = SortedLinkedList::build((0..32u64).map(|i| i * 5).collect());
    let probe = KeyInterval::between(12, 23);
    let conflicts = list.conflicts(&probe);
    assert!(!conflicts.is_empty());
    for id in list.range_ids() {
        assert_eq!(conflicts.contains(&id), list.range(id).intersects(&probe));
    }
}

#[test]
fn baselines_reexport_answers_through_shared_harness() {
    let keys: Vec<u64> = (0..128).map(|i| i * 3).collect();
    let graph = SkipGraph::new(keys, 11);
    let mut meter = MessageMeter::new();
    let got = graph.nearest(graph.random_origin(5), 100, &mut meter);
    assert_eq!(got, 99); // nearest multiple of 3 to 100
    assert!(meter.messages() > 0, "a distributed query must route");
}
