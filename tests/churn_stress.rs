//! Mixed insert/remove/query stress over the live actor runtime: writer
//! threads churn the structure while reader threads keep querying, all on
//! the same fabric. Nothing may hang, panic, or answer with a key that was
//! never a member; afterwards the served state must agree with an oracle
//! over the final ground set. This is the release-mode gate CI runs by
//! name (`churn-stress` job).

use std::time::Duration;

use skipwebs::core::engine::{DistributedSkipWeb, Timeouts};
use skipwebs::core::multidim::TrieSkipWeb;
use skipwebs::core::onedim::OneDimSkipWeb;

const INITIAL: u64 = 160;
const WRITERS: usize = 3;
const WRITER_OPS: u64 = 30;
const READERS: usize = 4;
const READER_OPS: u64 = 120;

#[test]
fn mixed_onedim_churn_under_concurrent_clients_stays_consistent() {
    // Initial keys: multiples of 100. Writers insert/remove keys ≡ 50+w
    // (mod 100), so every possible answer is attributable to a member.
    let web = OneDimSkipWeb::builder((0..INITIAL).map(|i| i * 100).collect())
        .seed(41)
        .build();
    let capacity = web.len() + WRITERS * WRITER_OPS as usize;
    let dist = DistributedSkipWeb::builder(web.inner())
        .capacity(capacity)
        .spawn();
    std::thread::scope(|scope| {
        for w in 0..WRITERS as u64 {
            let dist = &dist;
            scope.spawn(move || {
                let client = dist.client();
                // Generous but bounded per-client timeouts: a wedged fabric
                // fails the test instead of hanging the CI job.
                client.set_timeouts(Timeouts::new(
                    Duration::from_secs(60),
                    Duration::from_secs(120),
                ));
                for i in 0..WRITER_OPS {
                    let key = 50 + w + ((w * 7919 + i * 997) % 5000) * 100;
                    if i % 3 == 2 {
                        // Remove something this writer inserted earlier (or
                        // a no-op if the key was never inserted) — both are
                        // legal outcomes under concurrency.
                        let victim = 50 + w + ((w * 7919 + (i - 2) * 997) % 5000) * 100;
                        dist.remove(&client, victim).expect("runtime alive");
                    } else {
                        dist.insert(&client, key).expect("runtime alive");
                    }
                }
            });
        }
        for r in 0..READERS as u64 {
            let dist = &dist;
            scope.spawn(move || {
                let client = dist.client();
                client.set_timeouts(Timeouts::uniform(Duration::from_secs(60)));
                for i in 0..READER_OPS {
                    let q = (r * 131 + i * 977) % (INITIAL * 110);
                    // Origins index the initial keys, which writers never
                    // remove, so the bound stays valid under churn.
                    let origin = (i as usize) % INITIAL as usize;
                    let reply = dist.query(&client, origin, q).expect("runtime alive");
                    let a = reply.answer.expect("web never empties");
                    assert!(
                        a.is_multiple_of(100)
                            || ((a % 100) >= 50 && (a % 100) < 50 + WRITERS as u64),
                        "answer {a} was never a member"
                    );
                }
            });
        }
    });

    // Final consistency: the served answers equal a plain oracle over the
    // final ground snapshot.
    let ground = dist.ground();
    assert!(
        ground.len() >= INITIAL as usize,
        "initial keys never removed"
    );
    let client = dist.client();
    for s in 0..40u64 {
        let q = (s * 433) % (INITIAL * 110);
        let want = *ground
            .iter()
            .min_by_key(|&&k| (k.abs_diff(q), k))
            .expect("nonempty");
        let got = dist
            .query(&client, s as usize % ground.len(), q)
            .expect("runtime alive")
            .answer
            .expect("nonempty");
        assert_eq!(got, want, "post-churn q={q}");
    }

    // The traffic split accounts for the churn: update messages flowed, and
    // the per-host counters sum to the global counter.
    let traffic = dist.traffic();
    assert!(traffic.total_update_sent() > 0, "updates must pay messages");
    assert!(traffic.total_query_sent() > 0, "queries must pay messages");
    assert_eq!(traffic.total_sent(), dist.message_count());
    assert!(
        dist.health().dead.is_empty(),
        "no actor may die under churn"
    );
    dist.shutdown();
}

#[test]
fn mixed_trie_churn_under_concurrent_clients_stays_consistent() {
    let strings: Vec<String> = (0..96).map(|i| format!("base-{i:04}")).collect();
    let web = TrieSkipWeb::builder(strings).seed(42).build();
    let dist = DistributedSkipWeb::builder(web.inner())
        .capacity(web.len() + 64)
        .spawn();
    std::thread::scope(|scope| {
        for w in 0..2u64 {
            let dist = &dist;
            scope.spawn(move || {
                let client = dist.client();
                client.set_timeouts(Timeouts::new(
                    Duration::from_secs(60),
                    Duration::from_secs(120),
                ));
                for i in 0..24u64 {
                    let s = format!("live-{w}-{:03}", (i * 7) % 100);
                    if i % 4 == 3 {
                        dist.remove(&client, s).expect("runtime alive");
                    } else {
                        dist.insert(&client, s).expect("runtime alive");
                    }
                }
            });
        }
        for r in 0..3u64 {
            let dist = &dist;
            scope.spawn(move || {
                let client = dist.client();
                for i in 0..60u64 {
                    let prefix = if i % 2 == 0 {
                        format!("base-{:03}", (r * 13 + i) % 10)
                    } else {
                        "live-".to_string()
                    };
                    let reply = dist
                        .query(&client, (i as usize) % 96, prefix.clone())
                        .expect("runtime alive");
                    // Every reported match extends the prefix and belongs
                    // to one of the two families.
                    for m in &reply.answer.matches {
                        assert!(m.starts_with(&prefix), "match {m} vs prefix {prefix}");
                        assert!(m.starts_with("base-") || m.starts_with("live-"));
                    }
                }
            });
        }
    });
    // Final consistency against the trie oracle rebuilt from the snapshot.
    let ground = dist.ground();
    let oracle = TrieSkipWeb::builder(ground.clone()).seed(7).build();
    let client = dist.client();
    for s in 0..20usize {
        let prefix = format!("live-{}-0", s % 2);
        let want = oracle.prefix_search(0, &prefix);
        let got = dist
            .query(&client, s % ground.len(), prefix.clone())
            .expect("runtime alive");
        assert_eq!(got.answer.matches, want.matches, "post-churn {prefix:?}");
    }
    assert!(dist.health().dead.is_empty());
    dist.shutdown();
}
