//! Intentional-violation fixtures for the lockdep detectors and the chaos
//! scheduler. Only built with `--features lockdep`.
//!
//! Everything lives in ONE `#[test]` because the lockdep report buffer and
//! the chaos seed are process-global: parallel test threads would steal each
//! other's reports and reshuffle chaos ordinals. The sections run
//! sequentially and each drains the buffer before the next starts.

#![cfg(feature = "lockdep")]

use std::sync::Arc;
use std::thread;

use parking_lot::lockdep::{self, ReportKind};
use parking_lot::{chaos, Mutex};

/// Two threads acquiring the same two lock classes in opposite orders must
/// close a cycle in the acquisition-order graph.
fn abba_inversion() {
    let a = Arc::new(Mutex::new_labeled("fixture.abba.A", 0u32));
    let b = Arc::new(Mutex::new_labeled("fixture.abba.B", 0u32));

    // Thread 1 establishes A -> B, fully releasing both before thread 2
    // starts, so the inversion is detected without ever deadlocking.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn(move || {
            let ga = a.lock();
            let gb = b.lock();
            drop(gb);
            drop(ga);
        })
        .join()
        .expect("abba thread 1");
    }
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn(move || {
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        })
        .join()
        .expect("abba thread 2");
    }

    let reports = lockdep::take_reports();
    let cycles: Vec<_> = reports
        .iter()
        .filter(|r| r.kind == ReportKind::OrderCycle)
        .collect();
    assert_eq!(
        cycles.len(),
        1,
        "the ABBA inversion must be reported exactly once: {reports:?}"
    );
    let classes = &cycles[0].classes;
    assert!(
        classes.iter().any(|c| c == "fixture.abba.A")
            && classes.iter().any(|c| c == "fixture.abba.B"),
        "cycle must name both labeled classes: {classes:?}"
    );
    assert!(cycles[0].message.contains("lock-order cycle"));

    // Re-running the inversion must NOT report the same cycle again.
    {
        let (a, b) = (Arc::clone(&a), Arc::clone(&b));
        thread::spawn(move || {
            let gb = b.lock();
            let ga = a.lock();
            drop(ga);
            drop(gb);
        })
        .join()
        .expect("abba thread 3");
    }
    assert!(
        lockdep::take_reports().is_empty(),
        "a cycle is deduped after its first report"
    );
}

/// A blocking channel send while holding an instrumented lock must be
/// reported, with the held class named.
fn send_under_lock() {
    let m = Mutex::new_labeled("fixture.chan.lock", ());
    let (tx, rx) = crossbeam_channel::unbounded();

    let guard = m.lock();
    assert_eq!(lockdep::held_locks(), 1);
    tx.send(7u32).expect("unbounded send");
    drop(guard);
    assert_eq!(lockdep::held_locks(), 0);
    assert_eq!(rx.recv().expect("one message queued"), 7);

    let reports = lockdep::take_reports();
    let chan: Vec<_> = reports
        .iter()
        .filter(|r| r.kind == ReportKind::ChannelUnderLock)
        .collect();
    assert_eq!(
        chan.len(),
        1,
        "the send under the lock must be reported (recv ran after drop): {reports:?}"
    );
    assert!(chan[0].classes.iter().any(|c| c == "fixture.chan.lock"));
    assert!(chan[0].message.contains("channel send"));
}

/// Runs one worker thread through a fixed schedule of instrumented points
/// and returns its (ordinal, events, digest) chaos stream summary.
fn chaos_run(seed: u64) -> (u64, u64, u64) {
    chaos::set_seed(seed);
    // The worker must be the first thread to hit an instrumented point in
    // the new epoch so it always draws ordinal 0; the main thread does not
    // touch locks or channels until join() returns.
    let handle = thread::spawn(|| {
        let m = Mutex::new_labeled("fixture.chaos.lock", 0u64);
        let (tx, rx) = crossbeam_channel::unbounded();
        for i in 0..64u64 {
            *m.lock() += i;
            tx.send(i).expect("unbounded send");
            rx.recv().expect("just sent");
        }
        chaos::thread_digest().expect("worker hit instrumented points")
    });
    let digest = handle.join().expect("chaos worker");
    chaos::clear_seed();
    digest
}

/// Same seed ⇒ same per-thread decision schedule; different seed ⇒ a
/// different one.
fn chaos_determinism() {
    assert_eq!(chaos::current_seed(), None);
    chaos::set_seed(42);
    assert_eq!(chaos::current_seed(), Some(42));
    chaos::clear_seed();
    assert_eq!(chaos::current_seed(), None);

    let first = chaos_run(42);
    let second = chaos_run(42);
    let other = chaos_run(43);

    assert_eq!(first.0, 0, "worker thread draws ordinal 0 each epoch");
    assert_eq!(
        first, second,
        "same seed must replay the identical decision schedule"
    );
    assert_eq!(
        first.1, other.1,
        "the op count is seed-independent (3 points x 64 iterations)"
    );
    assert_ne!(
        first.2, other.2,
        "a different seed must produce a different decision digest"
    );

    // The seeded runs hold one lock at a time and send/recv outside it, so
    // chaos injection alone must not fabricate lockdep reports.
    assert!(
        lockdep::take_reports().is_empty(),
        "chaos runs are violation-free"
    );
}

#[test]
fn lockdep_and_chaos_fixtures() {
    // Keep the intentional violations out of stderr / the CI artifact sink,
    // and make sure SKIPWEB_LOCKDEP_PANIC from the environment cannot turn
    // them into panics.
    lockdep::set_quiet(true);
    lockdep::set_panic_on_report(false);

    abba_inversion();
    send_under_lock();
    chaos_determinism();

    assert!(
        lockdep::total_reports() >= 2,
        "the monotone counter saw both intentional violations"
    );
}
