//! Property-based tests (proptest) for the paper's core invariants:
//! set-halving lemmas, conflict symmetry, level partitions, the trapezoid
//! `1 + a + 2b + 3c` identity, and skip-web answers vs a BTreeMap oracle
//! under arbitrary inputs and seeds.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use skipwebs::core::onedim::OneDimSkipWeb;
use skipwebs::structures::properties::measure_halving;
use skipwebs::structures::{
    CompressedQuadtree, CompressedTrie, PointKey, RangeDetermined, SortedLinkedList,
};

fn oracle_nearest(keys: &[u64], q: u64) -> u64 {
    *keys.iter().min_by_key(|&&k| (k.abs_diff(q), k)).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn skip_web_answers_match_btree_oracle(
        mut keys in proptest::collection::vec(0u64..1_000_000, 2..120),
        queries in proptest::collection::vec(0u64..1_100_000, 1..24),
        seed in 0u64..1000,
    ) {
        keys.sort_unstable();
        keys.dedup();
        let web = OneDimSkipWeb::builder(keys.clone()).seed(seed).build();
        for q in queries {
            let out = web.nearest(web.random_origin(q ^ seed), q);
            prop_assert_eq!(out.answer.nearest, oracle_nearest(&keys, q));
        }
    }

    #[test]
    fn bucketed_skip_web_matches_oracle_too(
        mut keys in proptest::collection::vec(0u64..500_000, 8..100),
        memory in 4usize..64,
        seed in 0u64..100,
    ) {
        keys.sort_unstable();
        keys.dedup();
        let web = OneDimSkipWeb::builder(keys.clone())
            .seed(seed)
            .bucketed(memory)
            .build();
        for s in 0..8u64 {
            let q = (s * 104_729 + seed) % 550_000;
            let out = web.nearest(web.random_origin(s), q);
            prop_assert_eq!(out.answer.nearest, oracle_nearest(&keys, q));
        }
    }

    #[test]
    fn list_conflicts_are_symmetric_intersections(
        mut keys in proptest::collection::vec(0u64..10_000, 1..60),
        lo in 0u64..11_000,
        width in 0u64..2_000,
    ) {
        keys.sort_unstable();
        keys.dedup();
        let list = SortedLinkedList::build(keys);
        let external = skipwebs::structures::KeyInterval::between(lo, lo + width);
        let conflicts = list.conflicts(&external);
        // Exactly the brute-force intersection set.
        for id in list.range_ids() {
            let hit = list.range(id).intersects(&external);
            prop_assert_eq!(conflicts.contains(&id), hit);
        }
    }

    #[test]
    fn level_partition_preserves_every_item(
        mut keys in proptest::collection::vec(0u64..100_000, 1..80),
        seed in 0u64..50,
    ) {
        keys.sort_unstable();
        keys.dedup();
        let web = OneDimSkipWeb::builder(keys.clone()).seed(seed).build();
        for level in 0..=web.top_level() {
            let total: usize = web.level_set_sizes(level).iter().sum();
            prop_assert_eq!(total, keys.len(), "level {} partition", level);
        }
    }

    #[test]
    fn quadtree_locate_returns_deepest_containing_cell(
        coords in proptest::collection::vec((0u32..u32::MAX, 0u32..u32::MAX), 1..50),
        qx in 0u32..u32::MAX,
        qy in 0u32..u32::MAX,
    ) {
        let pts: Vec<PointKey<2>> = coords.into_iter().map(|(x, y)| PointKey::new([x, y])).collect();
        let qt = CompressedQuadtree::<2>::build(pts);
        let q = PointKey::new([qx, qy]);
        let hit = qt.locate(&q);
        prop_assert!(qt.range(hit).contains_point(&q));
        // No child cell of the hit contains q (deepest).
        for nb in qt.neighbors(hit) {
            let cell = qt.range(nb);
            if cell.depth() > qt.range(hit).depth() {
                prop_assert!(!cell.contains_point(&q));
            }
        }
    }

    #[test]
    fn trie_conflicts_equal_brute_force(
        words_a in proptest::collection::vec("[ab]{1,6}", 1..20),
        words_b in proptest::collection::vec("[ab]{1,6}", 1..20),
    ) {
        // coarse trie over a subset-flavoured word set, fine over the union
        let coarse = CompressedTrie::build(words_a.clone());
        let mut all = words_a;
        all.extend(words_b);
        let fine = CompressedTrie::build(all);
        for id in coarse.range_ids() {
            let ext = coarse.range(id);
            let mut got = fine.conflicts(&ext);
            got.sort();
            let want: Vec<_> = fine
                .range_ids()
                .filter(|rid| fine.range(*rid).intersects(&ext))
                .collect();
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn halving_stats_stay_bounded_for_lists(
        n in 64usize..512,
        seed in 0u64..100,
    ) {
        let keys: Vec<u64> = (0..n as u64).map(|i| i * 37 + seed).collect();
        let queries: Vec<u64> = (0..100u64).map(|i| (i * 199 + seed) % (n as u64 * 37)).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = measure_halving::<SortedLinkedList, _>(&keys, &queries, &mut rng);
        // E ≤ 9 (closed intervals); single-draw slack.
        prop_assert!(stats.mean_conflicts < 16.0, "mean {}", stats.mean_conflicts);
        prop_assert!(stats.mean_descent_walk <= 3.0);
    }

    #[test]
    fn skip_web_updates_keep_oracle_agreement(
        mut keys in proptest::collection::vec(0u64..100_000, 4..60),
        inserts in proptest::collection::vec(0u64..100_000, 1..12),
        seed in 0u64..50,
    ) {
        keys.sort_unstable();
        keys.dedup();
        let mut web = OneDimSkipWeb::builder(keys.clone()).seed(seed).build();
        let mut reference = keys;
        for k in inserts {
            let added = web.insert(k).is_some();
            if added {
                reference.push(k);
            } else {
                prop_assert!(reference.contains(&k), "duplicate rejection only for stored keys");
            }
        }
        reference.sort_unstable();
        for s in 0..6u64 {
            let q = (s * 31_337 + seed) % 110_000;
            let out = web.nearest(web.random_origin(s), q);
            prop_assert_eq!(out.answer.nearest, oracle_nearest(&reference, q));
        }
    }
}
