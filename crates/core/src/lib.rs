#![warn(missing_docs)]

//! The skip-web framework (Arge, Eppstein, Goodrich — PODC 2005).
//!
//! A **skip-web** turns any *range-determined link structure* with a
//! *set-halving lemma* (see [`skipweb_structures`]) into a distributed data
//! structure: a hierarchy of `⌈log₂ n⌉` levels where each level randomly
//! halves the previous one's sets (§2.3), with *hyperlinks* from every range
//! to its conflict list one level down (§2.2), placed onto hosts either
//! owner-hosted (`H = n`) or bucketed (§2.4.1). Queries descend from a tiny
//! top-level structure, doing expected `O(1)` work per level (§2.5); updates
//! repair the hierarchy bottom-up (§4).
//!
//! * [`skipweb::SkipWeb`] — the generic structure.
//! * [`onedim`] — one-dimensional nearest-neighbour skip-webs and the
//!   bucketed variant (Table 1's last two rows).
//! * [`multidim`] — quadtree/octree point location and approximate nearest
//!   neighbour, trie prefix search, trapezoidal-map point location (§3).
//! * [`engine`] — the generic distributed engine: any of the above served
//!   by the threaded actor runtime with real message passing, correlation-id
//!   clients, per-host traffic counters, and live dynamic updates (§4):
//!   inserts/removes route to their locus, repair the conflict
//!   neighbourhoods bottom-up paying one message per host crossing, and
//!   apply as an atomic topology-snapshot swap, so concurrent queries never
//!   observe a half-applied update.
//! * [`distributed`] — the stable 1-D entry point, a thin wrapper over
//!   [`engine`].
//!
//! # Quickstart
//!
//! ```
//! use skipweb_core::onedim::OneDimSkipWeb;
//!
//! let keys: Vec<u64> = (0..100).map(|i| i * 7).collect();
//! let web = OneDimSkipWeb::builder(keys).seed(1).build();
//! let outcome = web.nearest(web.random_origin(3), 40);
//! assert_eq!(outcome.answer.nearest, 42);
//! assert!(outcome.messages <= 40); // O(log n) expected
//! ```

pub mod distributed;
pub mod engine;
pub mod levels;
pub mod multidim;
pub mod onedim;
pub mod placement;
pub mod skipweb;
pub mod wire;

pub use placement::Blocking;
pub use skipweb::{QueryOutcome, SkipWeb, SkipWebBuilder};
