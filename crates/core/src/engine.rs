//! The generic distributed skip-web engine: any range-determined structure
//! served by the threaded actor runtime — queries *and* dynamic updates.
//!
//! # Protocol (§2.3–§2.5, §4)
//!
//! The engine turns a built [`SkipWeb<D>`] into a live network of actor
//! threads, one per host, executing the paper's routing protocol for real:
//!
//! * **Addressing (§2.3).** Every range of every level set gets a
//!   [`GlobalRef`] — `(level, set, range)` — and the placement computed by
//!   the builder assigns each ref one or more hosts. The pair
//!   `(host, GlobalRef)` is exactly the paper's *(host, address)* pointer:
//!   list neighbours, down-hyperlinks, and query origins are all stored in
//!   this form.
//! * **Sharding (§2.4).** A host's shard is the set of ranges placed on it
//!   (owner-hosted: each item's tower; bucketed: a block plus its non-basic
//!   cone). A host may only *act* on ranges of its own shard; touching any
//!   other range requires forwarding the operation to a host that stores it.
//!   Because structures are *range-determined* (§2.1 — `S` and `U` uniquely
//!   determine `D(S)`), the deterministic structure description itself is
//!   shared read-only across the process; what is distributed, metered, and
//!   paid for in messages is the *authority to act* on a range.
//! * **Forwarding (§2.5).** A query enters at its origin item's root and
//!   descends level by level. At each range the host asks the structure for
//!   one navigation step ([`RangeDetermined::search_step`]); at a level
//!   locus it follows the down-hyperlinks (picking the continuation with
//!   [`RangeDetermined::best_entry`]). The host loops — *"processes the
//!   query as far as it can internally"* — while the next range is in its
//!   own shard, and otherwise sends one message handing the query to a host
//!   that stores the next range. Replicated ranges prefer the co-located
//!   copy, so bucketed placement pays only on basic-stratum crossings.
//! * **Updates (§4).** `Insert`/`Remove` operations ride the *same*
//!   forwarding loop: the op first routes to the item's level-0 locus like a
//!   query, then walks the conflict neighbourhoods the structural change
//!   rewires, bottom-up, level by level — paying one message per host
//!   crossing, exactly what the cost-model simulator meters in
//!   [`SkipWeb::insert_with`] / [`SkipWeb::remove_with`]. The host that
//!   completes the repair applies the structural change and publishes a new
//!   topology snapshot.
//!
//! # Consistency under concurrent churn
//!
//! Every in-flight operation carries an [`Arc`] of the immutable topology
//! snapshot it was admitted under, and an update's repair ends in a single
//! atomic snapshot swap. A query therefore *never observes a half-applied
//! update*: it sees either the structure entirely before or entirely after
//! each update — operations serialize at their snapshot-capture and
//! snapshot-publish points, and old snapshots are reclaimed automatically
//! when their last in-flight message drains. Concurrent updates are safe in
//! any interleaving (each applies to the then-current authoritative web
//! under a lock); their *message accounting* matches the simulator exactly
//! when updates are admitted one at a time, which is what the parity suite
//! pins down.
//!
//! Each operation carries a correlation id, so one client can keep many
//! operations in flight concurrently and match replies as they arrive out
//! of order ([`DistributedSkipWeb::submit`] / [`EngineClient::recv_corr`]).
//! Replies report the exact number of remote hops the operation paid, which
//! for owner-hosted placement equals the simulator's metered host crossings
//! — the parity property the integration tests pin down.
//!
//! # Example
//!
//! ```
//! use skipweb_core::engine::DistributedSkipWeb;
//! use skipweb_core::onedim::OneDimSkipWeb;
//!
//! let web = OneDimSkipWeb::builder((0..64).map(|i| i * 10).collect()).build();
//! let dist = DistributedSkipWeb::spawn(web.inner());
//! let client = dist.client();
//! let reply = dist.query(&client, web.random_origin(1), 137).unwrap();
//! assert_eq!(reply.answer, Some(140));
//!
//! // Dynamic updates route over the same actor fabric (§4).
//! assert!(dist.insert(&client, 141).unwrap().applied);
//! let reply = dist.query(&client, 0, 141).unwrap();
//! assert_eq!(reply.answer, Some(141));
//! dist.shutdown();
//! ```

use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skipweb_net::runtime::{
    Actor, Client, ClientId, Context, Runtime, RuntimeError, Sender, TrafficClass,
};
use skipweb_net::{HostId, HostTraffic};
use skipweb_structures::traits::{RangeDetermined, RangeId};

use crate::levels::parent_key;
use crate::placement::Blocking;
use crate::skipweb::SkipWeb;

/// Globally unique address of a range: level, set index, range index — the
/// "address" half of the paper's `(host, address)` pointers (§2.3). Refs are
/// only meaningful relative to one topology snapshot; every in-flight
/// message carries the snapshot its refs resolve against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalRef {
    /// Level in the hierarchy (0 = ground).
    pub level: u16,
    /// Set index within the level.
    pub set: u32,
    /// Range id within the set's structure.
    pub range: u32,
}

impl fmt::Display for GlobalRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}/S{}/R{}", self.level, self.set, self.range)
    }
}

/// A structure that the distributed engine can route operations for: on top
/// of the navigation primitives of [`RangeDetermined`], it names the
/// wire-level request/answer types, how the terminal host turns a level-0
/// locus into an answer, and which items it will admit as live inserts.
pub trait Routable: RangeDetermined<Item: Send + Sync + 'static> {
    /// What clients send: a query request (possibly richer than
    /// [`RangeDetermined::Query`] — e.g. an orthogonal box whose descent
    /// routes toward its centre point).
    type Request: Clone + Send + fmt::Debug + 'static;
    /// What the terminal host replies with.
    type Answer: Clone + Send + fmt::Debug + 'static;

    /// The point of the universe the descent routes toward for `req`.
    fn target(req: &Self::Request) -> Self::Query;

    /// Computes the answer once the descent reached the maximal level-0
    /// range containing the target — executed by the host anchoring that
    /// locus, from its local neighbourhood.
    fn answer(&self, locus: RangeId, req: &Self::Request) -> Self::Answer;

    /// Whether `item` may be admitted as a live insert against the current
    /// ground set. Actors serve wire input and must never panic on it, so
    /// structures with build-time preconditions (e.g. the trapezoidal map's
    /// general-position requirement) override this to reject violating
    /// items; the insert then completes as a no-op (`applied == false`).
    fn admissible(&self, item: &Self::Item) -> bool {
        let _ = item;
        true
    }
}

/// What an [`EngineMsg`] is carrying through the fabric.
#[derive(Debug)]
pub(crate) enum EngineOp<D: Routable> {
    /// A query descending toward its target's locus.
    Query(D::Request),
    /// An insert/remove routing to its locus, then repairing bottom-up.
    Update(UpdateOp<D>),
}

/// The update half of [`EngineOp`].
#[derive(Debug)]
pub(crate) struct UpdateOp<D: Routable> {
    pub(crate) kind: UpdateKind,
    pub(crate) item: D::Item,
    pub(crate) phase: UpdatePhase,
}

/// Which structural change an update performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UpdateKind {
    /// Insert the item at the levels selected by `bits`.
    Insert {
        /// The item's level membership bit string (§2.3).
        bits: u64,
    },
    /// Remove the item (its stored bits come from the snapshot).
    Remove,
}

/// Where an update is in its two-phase life (§4): routing to the item's
/// locus, then walking the bottom-up repair trail. The trail is computed
/// once — when the repair starts — and rides in the message so later hosts
/// never recompute the conflict scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum UpdatePhase {
    /// Descending toward the item's level-0 locus, exactly like a query.
    Route,
    /// Walking the conflict-neighbourhood trail; `cursor` indexes the next
    /// unvisited trail entry.
    Repair {
        /// Next unvisited position on the repair trail.
        cursor: usize,
        /// The ordered hosts the repair acts on, fixed at repair start.
        trail: Vec<HostId>,
    },
}

/// Host-to-host operation envelope of the engine. Carries the topology
/// snapshot the operation was admitted under, so its [`GlobalRef`]s stay
/// valid across concurrent updates.
#[derive(Debug)]
pub struct EngineMsg<D: Routable> {
    pub(crate) op: EngineOp<D>,
    pub(crate) at: GlobalRef,
    pub(crate) client: ClientId,
    pub(crate) corr: u64,
    pub(crate) hops: u32,
    pub(crate) topo: Arc<Topology<D>>,
}

/// Reply delivered to the submitting client: the correlation id, the remote
/// hops paid end to end, and either a query answer or an update outcome.
#[derive(Debug, Clone)]
pub struct EngineReply<D: Routable> {
    /// Correlation id of the originating submit call.
    pub corr: u64,
    /// Remote hops the operation paid end to end (for owner-hosted
    /// placement this equals the simulator's metered host crossings).
    pub hops: u32,
    /// The operation's outcome.
    pub body: ReplyBody<D>,
}

/// The payload of an [`EngineReply`].
#[derive(Debug, Clone)]
pub enum ReplyBody<D: Routable> {
    /// A query's structure-specific answer.
    Answer(D::Answer),
    /// An update's outcome.
    Updated {
        /// Whether the structure changed (`false` for duplicate inserts,
        /// absent removes, and inadmissible items).
        applied: bool,
    },
}

impl<D: Routable> EngineReply<D> {
    /// The query answer.
    ///
    /// # Panics
    ///
    /// Panics if this reply belongs to an update.
    pub fn answer(&self) -> &D::Answer {
        match &self.body {
            ReplyBody::Answer(a) => a,
            ReplyBody::Updated { .. } => panic!("update reply carries no query answer"),
        }
    }

    /// Consumes the reply, returning the query answer.
    ///
    /// # Panics
    ///
    /// Panics if this reply belongs to an update.
    pub fn into_answer(self) -> D::Answer {
        match self.body {
            ReplyBody::Answer(a) => a,
            ReplyBody::Updated { .. } => panic!("update reply carries no query answer"),
        }
    }

    /// Whether the update changed the structure.
    ///
    /// # Panics
    ///
    /// Panics if this reply belongs to a query.
    pub fn applied(&self) -> bool {
        match self.body {
            ReplyBody::Updated { applied } => applied,
            ReplyBody::Answer(_) => panic!("query reply carries no update outcome"),
        }
    }
}

/// A completed query: the answer plus its cost accounting.
#[derive(Debug, Clone)]
pub struct QueryReply<D: Routable> {
    /// Correlation id of the originating [`DistributedSkipWeb::submit`].
    pub corr: u64,
    /// The structure-specific answer.
    pub answer: D::Answer,
    /// Remote hops the query paid end to end.
    pub hops: u32,
}

/// A completed update: whether it applied, plus its cost accounting.
#[derive(Debug, Clone, Copy)]
pub struct UpdateReply {
    /// Correlation id of the originating submit call.
    pub corr: u64,
    /// Whether the structure changed (`false` for duplicate inserts, absent
    /// removes, and inadmissible items).
    pub applied: bool,
    /// Remote hops the update paid: the locus lookup plus the bottom-up
    /// repair walk (§4) — equal to the simulator's metered `U(n)` for
    /// owner-hosted placement.
    pub hops: u32,
}

/// One level set as the engine sees it: the deterministic structure
/// description, its down-hyperlinks, and the (physical) hosts storing each
/// range.
#[derive(Debug)]
struct TopoSet<D: RangeDetermined> {
    structure: D,
    /// Per range: hyperlinks into the parent set one level down. Empty at
    /// level 0.
    down: Vec<Vec<RangeId>>,
    /// Per range: the hosts storing a copy (owner-hosted: exactly one;
    /// bucketed: every block host whose cone the range belongs to).
    hosts: Vec<Vec<HostId>>,
    /// Index of the parent set one level down (0 at level 0).
    parent: u32,
}

/// One immutable snapshot of the routing topology. The current snapshot is
/// swapped atomically when an update applies; every in-flight message holds
/// the snapshot it routes under, so old snapshots are reclaimed when their
/// last message drains.
#[derive(Debug)]
pub(crate) struct Topology<D: RangeDetermined> {
    levels: Vec<Vec<TopoSet<D>>>,
    /// Per level: set key → set index, for locating an item's set during
    /// the bottom-up repair walk.
    key_to_set: Vec<HashMap<u64, u32>>,
    /// Item → level bit string, for remove repairs and duplicate checks.
    membership: BTreeMap<D::Item, u64>,
    blocking: Blocking,
    /// Per ground item: the host and address where its operations start
    /// (the "root node for that host" of §1.1).
    origins: Vec<(HostId, GlobalRef)>,
}

impl<D: RangeDetermined> Topology<D> {
    fn set(&self, at: GlobalRef) -> &TopoSet<D> {
        &self.levels[at.level as usize][at.set as usize]
    }
}

/// Builds a topology snapshot from `web`, folding its logical hosts onto
/// `phys` physical actor threads (`logical % phys`). While the web's host
/// count stays within `phys` the fold is the identity, so owner-hosted
/// message accounting matches the simulator exactly.
fn build_topology<D: Routable + Send + Sync + 'static>(
    web: &SkipWeb<D>,
    phys: usize,
) -> Topology<D> {
    let phys = phys.max(1);
    let fold = |h: HostId| HostId(h.0 % phys as u32);
    let levels = web.level_structs();
    let topo_levels: Vec<Vec<TopoSet<D>>> = levels
        .iter()
        .enumerate()
        .map(|(lvl, level)| {
            level
                .sets
                .iter()
                .map(|set| {
                    let parent = if lvl == 0 {
                        0
                    } else {
                        let pkey = parent_key(set.key, lvl as u32);
                        levels[lvl - 1].set_by_key[&pkey]
                    };
                    TopoSet {
                        structure: set.structure.clone(),
                        down: set.down.clone(),
                        hosts: set
                            .range_host
                            .iter()
                            .map(|copies| {
                                // Folding can alias distinct logical hosts;
                                // keep first occurrences so the primary copy
                                // stays copies[0].
                                let mut mapped: Vec<HostId> = Vec::new();
                                for h in copies.iter().copied().map(fold) {
                                    if !mapped.contains(&h) {
                                        mapped.push(h);
                                    }
                                }
                                mapped
                            })
                            .collect(),
                        parent,
                    }
                })
                .collect()
        })
        .collect();
    let key_to_set = levels.iter().map(|l| l.set_by_key.clone()).collect();
    let membership = web
        .ground()
        .iter()
        .cloned()
        .zip(web.item_bits().iter().copied())
        .collect();
    let top = web.top_level() as usize;
    let top_level = &levels[top];
    let origins = (0..web.len())
        .map(|g| {
            let set_idx = top_level.set_of_item[g] as usize;
            let set = &top_level.sets[set_idx];
            let entry = set
                .structure
                .entry_of_item(top_level.local_of_item[g] as usize);
            (
                fold(set.range_host[entry.index()][0]),
                GlobalRef {
                    level: top as u16,
                    set: set_idx as u32,
                    range: entry.0,
                },
            )
        })
        .collect();
    Topology {
        levels: topo_levels,
        key_to_set,
        membership,
        blocking: web.blocking(),
        origins,
    }
}

/// Resolves a replicated range to a host from the perspective of `me`: the
/// co-located copy when one exists (free to act on), else the primary.
fn pick(copies: &[HostId], me: HostId) -> HostId {
    if copies.contains(&me) {
        me
    } else {
        copies[0]
    }
}

/// Outcome of processing an operation "as far as we can internally" (§2.5).
enum RouteOutcome {
    /// The descent reached the maximal level-0 range containing the target.
    AtLocus(GlobalRef),
    /// The next range lives elsewhere: hand the operation to `host`.
    Forward { next: GlobalRef, host: HostId },
}

/// Runs the §2.5 descent from `at` toward `q`'s level-0 locus, advancing
/// for free while the next range is in `me`'s shard.
fn route_step<D: Routable + Send + Sync + 'static>(
    topo: &Topology<D>,
    me: HostId,
    mut at: GlobalRef,
    q: &D::Query,
) -> RouteOutcome {
    loop {
        let set = topo.set(at);
        let next = match set.structure.search_step(RangeId(at.range), q) {
            // Walk one range toward the locus within this level.
            Some(next) => GlobalRef {
                level: at.level,
                set: at.set,
                range: next.0,
            },
            // Level locus reached: done at the ground level …
            None if at.level == 0 => return RouteOutcome::AtLocus(at),
            // … or descend through the down-hyperlinks (§2.3).
            None => {
                let candidates = &set.down[at.range as usize];
                assert!(
                    !candidates.is_empty(),
                    "hyperlinks of a subset range into its superset cannot be empty"
                );
                let parent_level = at.level - 1;
                let parent = &topo.levels[parent_level as usize][set.parent as usize];
                let entry = parent.structure.best_entry(candidates, q);
                GlobalRef {
                    level: parent_level,
                    set: set.parent,
                    range: entry.0,
                }
            }
        };
        let host = pick(&topo.set(next).hosts[next.range as usize], me);
        if host == me {
            // Process as far as we can internally (§2.5): free.
            at = next;
        } else {
            return RouteOutcome::Forward { next, host };
        }
    }
}

/// The ordered hosts an update's bottom-up repair must act on (§4): for
/// every level the item belongs to, the hosts of the ranges conflicting
/// with the item's probe range — mirroring the simulator's
/// `meter_update_neighbourhood` visit for visit, so the walk's host
/// transitions equal the metered messages. Empty for a remove whose item is
/// not in the snapshot.
fn repair_trail<D: Routable + Send + Sync + 'static>(
    topo: &Topology<D>,
    item: &D::Item,
    kind: UpdateKind,
) -> Vec<HostId> {
    let bits = match kind {
        UpdateKind::Insert { bits } => bits,
        UpdateKind::Remove => match topo.membership.get(item) {
            Some(&bits) => bits,
            None => return Vec::new(),
        },
    };
    let probe_range = D::probe_range(item);
    let mut trail = Vec::new();
    crate::skipweb::walk_update_neighbourhood(
        bits,
        topo.blocking,
        topo.levels.len(),
        |level, key| topo.key_to_set[level as usize].get(&key).copied(),
        |level, set_idx| {
            let set = &topo.levels[level as usize][set_idx as usize];
            set.structure
                .conflicts(&probe_range)
                .into_iter()
                .map(|r| set.hosts[r.index()].clone())
                .collect()
        },
        |host| trail.push(host),
    );
    trail
}

/// The authoritative evolving web every host shares. Held only while an
/// update applies (which includes the structural rebuild), so its lock is
/// off the read path.
struct EngineState<D: Routable + Send + Sync + 'static> {
    web: SkipWeb<D>,
    /// Draws origins and level bits for the convenience
    /// [`DistributedSkipWeb::insert`] / [`DistributedSkipWeb::remove`]
    /// entry points (explicit-bits APIs bypass it).
    rng: StdRng,
}

struct Shared<D: Routable + Send + Sync + 'static> {
    state: Mutex<EngineState<D>>,
    /// The current topology snapshot, in its own cell so submits only pay
    /// an `Arc` clone — never a wait on an in-progress rebuild. Swapped by
    /// the applier *while still holding the state lock* (lock order is
    /// always `state` then `topo`), so publish order equals apply order.
    topo: Mutex<Arc<Topology<D>>>,
    /// Number of physical actor threads; logical hosts fold onto them
    /// (`logical % phys`), so the web may grow past the thread count.
    phys: usize,
}

impl<D: Routable + Send + Sync + 'static> Shared<D> {
    /// The current topology snapshot (cheap: one lock + `Arc` clone).
    fn current_topo(&self) -> Arc<Topology<D>> {
        self.topo.lock().clone()
    }
}

/// Per-host actor executing the generic forwarding loop of §2.5 and the
/// update repair walks of §4.
pub struct EngineActor<D: Routable + Send + Sync + 'static> {
    shared: Arc<Shared<D>>,
}

impl<D: Routable + Send + Sync + 'static> EngineActor<D> {
    fn drive_query(
        &self,
        me: HostId,
        mut msg: EngineMsg<D>,
        ctx: &mut Context<'_, EngineMsg<D>, EngineReply<D>>,
    ) {
        let EngineOp::Query(ref req) = msg.op else {
            unreachable!("drive_query only sees queries");
        };
        let q = D::target(req);
        match route_step(&msg.topo, me, msg.at, &q) {
            RouteOutcome::AtLocus(locus) => {
                let answer = msg
                    .topo
                    .set(locus)
                    .structure
                    .answer(RangeId(locus.range), req);
                ctx.reply(
                    msg.client,
                    EngineReply {
                        corr: msg.corr,
                        hops: msg.hops,
                        body: ReplyBody::Answer(answer),
                    },
                );
            }
            RouteOutcome::Forward { next, host } => {
                msg.at = next;
                msg.hops += 1;
                ctx.send_class(host, msg, TrafficClass::Query);
            }
        }
    }

    fn drive_update(
        &self,
        me: HostId,
        mut msg: EngineMsg<D>,
        ctx: &mut Context<'_, EngineMsg<D>, EngineReply<D>>,
    ) {
        let EngineOp::Update(ref u) = msg.op else {
            unreachable!("drive_update only sees updates");
        };
        match u.phase {
            UpdatePhase::Route => {
                let q = D::item_query(&u.item);
                match route_step(&msg.topo, me, msg.at, &q) {
                    RouteOutcome::Forward { next, host } => {
                        msg.at = next;
                        msg.hops += 1;
                        ctx.send_class(host, msg, TrafficClass::Update);
                    }
                    RouteOutcome::AtLocus(_) => {
                        // A duplicate insert (or a remove that lost its
                        // target to a concurrent update) stops at the locus,
                        // paying only the lookup — as in the simulator.
                        let present = msg.topo.membership.contains_key(&u.item);
                        let noop = match u.kind {
                            UpdateKind::Insert { .. } => present,
                            UpdateKind::Remove => !present,
                        };
                        if noop {
                            ctx.reply(
                                msg.client,
                                EngineReply {
                                    corr: msg.corr,
                                    hops: msg.hops,
                                    body: ReplyBody::Updated { applied: false },
                                },
                            );
                        } else {
                            // The repair trail is computed exactly once,
                            // here at repair start, and rides in the
                            // message from now on.
                            let trail = repair_trail(&msg.topo, &u.item, u.kind);
                            self.continue_repair(me, 0, trail, msg, ctx);
                        }
                    }
                }
            }
            UpdatePhase::Repair { cursor, ref trail } => {
                let trail = trail.clone();
                self.continue_repair(me, cursor, trail, msg, ctx);
            }
        }
    }

    /// Advances the repair walk: acts for free on every consecutive trail
    /// entry in `me`'s shard, then either forwards to the next host (one
    /// message — exactly a meter host transition) or, with the trail
    /// exhausted, applies the structural change and replies.
    fn continue_repair(
        &self,
        me: HostId,
        start: usize,
        trail: Vec<HostId>,
        mut msg: EngineMsg<D>,
        ctx: &mut Context<'_, EngineMsg<D>, EngineReply<D>>,
    ) {
        let mut cursor = start;
        while cursor < trail.len() && trail[cursor] == me {
            cursor += 1;
        }
        if cursor < trail.len() {
            let host = trail[cursor];
            let EngineOp::Update(ref mut u) = msg.op else {
                unreachable!("repairs are updates");
            };
            u.phase = UpdatePhase::Repair { cursor, trail };
            msg.hops += 1;
            ctx.send_class(host, msg, TrafficClass::Update);
        } else {
            self.apply_and_reply(msg, ctx);
        }
    }

    /// The final step of an update: atomically apply the structural change
    /// to the authoritative web, publish the new topology snapshot, and
    /// reply. In-flight operations keep their old snapshots, so none of
    /// them ever observes the update half-applied.
    fn apply_and_reply(
        &self,
        msg: EngineMsg<D>,
        ctx: &mut Context<'_, EngineMsg<D>, EngineReply<D>>,
    ) {
        let EngineOp::Update(u) = msg.op else {
            unreachable!("applies are updates");
        };
        let applied = {
            let mut st = self.shared.state.lock();
            let applied = match u.kind {
                UpdateKind::Insert { bits } => {
                    st.web.base().admissible(&u.item) && st.web.apply_insert(u.item, bits)
                }
                UpdateKind::Remove => st.web.apply_remove(&u.item),
            };
            if applied {
                // Publish while still holding the state lock so snapshot
                // order equals apply order; the topo lock itself is only
                // held for the pointer swap.
                let next = Arc::new(build_topology(&st.web, self.shared.phys));
                *self.shared.topo.lock() = next;
            }
            applied
        };
        ctx.reply(
            msg.client,
            EngineReply {
                corr: msg.corr,
                hops: msg.hops,
                body: ReplyBody::Updated { applied },
            },
        );
    }
}

impl<D: Routable + Send + Sync + 'static> Actor for EngineActor<D> {
    type Msg = EngineMsg<D>;
    type Reply = EngineReply<D>;

    fn on_message(
        &mut self,
        _from: Sender,
        msg: EngineMsg<D>,
        ctx: &mut Context<'_, EngineMsg<D>, EngineReply<D>>,
    ) {
        let me = ctx.host();
        match msg.op {
            EngineOp::Query(_) => self.drive_query(me, msg, ctx),
            EngineOp::Update(_) => self.drive_update(me, msg, ctx),
        }
    }
}

/// A client handle supporting many concurrent in-flight operations, matched
/// to replies by correlation id. Shareable across threads (`Sync`); replies
/// pulled by one thread for another's correlation id are parked in a shared
/// buffer.
pub struct EngineClient<D: Routable + Send + Sync + 'static> {
    inner: Client<EngineMsg<D>, EngineReply<D>>,
    next_corr: AtomicU64,
    pending: Mutex<Vec<EngineReply<D>>>,
}

impl<D: Routable + Send + Sync + 'static> EngineClient<D> {
    /// This client's runtime identifier.
    pub fn id(&self) -> ClientId {
        self.inner.id()
    }

    /// Receives the next reply for *any* of this client's in-flight
    /// operations (buffered ones first), waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RuntimeError::Timeout`], host down or
    /// panicked, disconnect).
    pub fn recv_any(&self, timeout: Duration) -> Result<EngineReply<D>, RuntimeError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut pending = self.pending.lock();
                if !pending.is_empty() {
                    return Ok(pending.remove(0));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::Timeout);
            }
            // Short slices so a thread blocked here notices replies that a
            // concurrent `recv_corr` on the shared client drained from the
            // channel and parked in the pending buffer.
            let slice = (deadline - now).min(Duration::from_millis(25));
            match self.inner.recv_timeout(slice) {
                Ok(reply) => return Ok(reply),
                Err(RuntimeError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Receives the reply for the operation submitted with correlation id
    /// `corr`, waiting up to `timeout` and parking replies to other
    /// correlation ids for later [`recv_any`](Self::recv_any) /
    /// `recv_corr` calls.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RuntimeError::Timeout`], host down or
    /// panicked, disconnect).
    pub fn recv_corr(&self, corr: u64, timeout: Duration) -> Result<EngineReply<D>, RuntimeError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut pending = self.pending.lock();
                if let Some(i) = pending.iter().position(|r| r.corr == corr) {
                    return Ok(pending.remove(i));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::Timeout);
            }
            // Short slices so concurrent users of a shared client notice
            // replies another thread parked for them.
            let slice = (deadline - now).min(Duration::from_millis(25));
            match self.inner.recv_timeout(slice) {
                Ok(reply) if reply.corr == corr => return Ok(reply),
                Ok(reply) => self.pending.lock().push(reply),
                Err(RuntimeError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Compatibility alias of [`recv_any`](Self::recv_any).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<EngineReply<D>, RuntimeError> {
        self.recv_any(timeout)
    }
}

/// A running distributed skip-web over structure `D`: one actor thread per
/// (physical) host, executing the forwarding protocol of §2.5 — and the
/// update repairs of §4 — under real concurrent message passing.
pub struct DistributedSkipWeb<D: Routable + Send + Sync + 'static> {
    runtime: Runtime<EngineActor<D>>,
    shared: Arc<Shared<D>>,
}

impl<D: Routable + Send + Sync + 'static> DistributedSkipWeb<D> {
    /// Shards `web` across one actor thread per host of its placement and
    /// starts them.
    ///
    /// Live inserts can grow the web past its spawn-time host count; the
    /// new logical hosts fold onto the existing threads. Use
    /// [`spawn_with_capacity`](Self::spawn_with_capacity) to reserve
    /// headroom so owner-hosted message accounting stays exact under
    /// growth.
    pub fn spawn(web: &SkipWeb<D>) -> Self {
        Self::spawn_with_capacity(web, web.hosts().max(1))
    }

    /// Like [`spawn`](Self::spawn), but folds the web's logical hosts onto
    /// at most `hosts` physical actor threads (`logical % hosts`), so the
    /// same structure can be served — and its throughput measured — at any
    /// deployment size. Operations between ranges folded onto the same
    /// physical host become free, exactly like any other co-location.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    pub fn spawn_consolidated(web: &SkipWeb<D>, hosts: usize) -> Self {
        assert!(hosts > 0, "a network needs at least one host");
        Self::spawn_with_capacity(web, hosts.min(web.hosts().max(1)))
    }

    /// Spawns exactly `capacity` actor threads, which may exceed the web's
    /// current host count to leave headroom for live inserts: while the
    /// web's logical host count stays within `capacity` the fold is the
    /// identity, so owner-hosted hop counts keep matching the cost-model
    /// simulator even as the structure grows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn spawn_with_capacity(web: &SkipWeb<D>, capacity: usize) -> Self {
        assert!(capacity > 0, "a network needs at least one host");
        let topo = Arc::new(build_topology(web, capacity));
        let shared = Arc::new(Shared {
            state: Mutex::new(EngineState {
                web: web.clone(),
                rng: StdRng::seed_from_u64(0x736b_6970_7765_6221),
            }),
            topo: Mutex::new(topo),
            phys: capacity,
        });
        let runtime = Runtime::spawn(capacity, |_h| EngineActor {
            shared: Arc::clone(&shared),
        });
        DistributedSkipWeb { runtime, shared }
    }

    /// Registers a client.
    pub fn client(&self) -> EngineClient<D> {
        EngineClient {
            inner: self.runtime.client(),
            next_corr: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// Injects `req` at `origin_item`'s root host without waiting, returning
    /// the correlation id to pass to [`EngineClient::recv_corr`]. Any number
    /// of operations may be in flight per client.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked).
    ///
    /// # Panics
    ///
    /// Panics if `origin_item` is out of bounds (e.g. on an empty web).
    pub fn submit(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        req: D::Request,
    ) -> Result<u64, RuntimeError> {
        let topo = self.shared.current_topo();
        assert!(
            origin_item < topo.origins.len(),
            "origin item out of bounds"
        );
        let corr = client.next_corr.fetch_add(1, Ordering::Relaxed);
        let (host, at) = topo.origins[origin_item];
        client.inner.send(
            host,
            EngineMsg {
                op: EngineOp::Query(req),
                at,
                client: client.id(),
                corr,
                hops: 0,
                topo,
            },
        )?;
        Ok(corr)
    }

    /// Runs one query end to end, blocking up to 10 s for the reply.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    ///
    /// # Panics
    ///
    /// Panics if `origin_item` is out of bounds.
    pub fn query(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        req: D::Request,
    ) -> Result<QueryReply<D>, RuntimeError> {
        let corr = self.submit(client, origin_item, req)?;
        let reply = client.recv_corr(corr, Duration::from_secs(10))?;
        match reply.body {
            ReplyBody::Answer(answer) => Ok(QueryReply {
                corr,
                answer,
                hops: reply.hops,
            }),
            ReplyBody::Updated { .. } => unreachable!("query correlation id matched an update"),
        }
    }

    /// Submits an insert with an explicit level bit string without waiting,
    /// returning its correlation id. Driving the simulator's
    /// [`SkipWeb::insert_with`] with the same `(origin, bits)` yields the
    /// same structure and — for owner-hosted placement within capacity —
    /// the same message count.
    ///
    /// `origin` names the ground item whose root the lookup phase starts
    /// from; it is ignored when the web is empty (there is nothing to look
    /// up, matching the simulator).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of bounds on a non-empty web.
    pub fn submit_insert(
        &self,
        client: &EngineClient<D>,
        origin: usize,
        item: D::Item,
        bits: u64,
    ) -> Result<u64, RuntimeError> {
        self.submit_update(client, origin, UpdateKind::Insert { bits }, item)
    }

    /// Submits a remove without waiting, returning its correlation id. The
    /// counterpart of [`SkipWeb::remove_with`]: `origin` is ignored when
    /// the simulator would skip the lookup (item absent from the snapshot,
    /// or a single-item web).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of bounds when the lookup phase runs.
    pub fn submit_remove(
        &self,
        client: &EngineClient<D>,
        origin: usize,
        item: D::Item,
    ) -> Result<u64, RuntimeError> {
        self.submit_update(client, origin, UpdateKind::Remove, item)
    }

    fn submit_update(
        &self,
        client: &EngineClient<D>,
        origin: usize,
        kind: UpdateKind,
        item: D::Item,
    ) -> Result<u64, RuntimeError> {
        let topo = self.shared.current_topo();
        self.submit_update_at(client, topo, origin, kind, item)
    }

    /// Admits an update against an already-captured snapshot, so callers
    /// that derived `origin` from that same snapshot (the convenience
    /// `insert`/`remove`) can never race a concurrent apply into an
    /// out-of-bounds origin.
    fn submit_update_at(
        &self,
        client: &EngineClient<D>,
        topo: Arc<Topology<D>>,
        origin: usize,
        kind: UpdateKind,
        item: D::Item,
    ) -> Result<u64, RuntimeError> {
        let corr = client.next_corr.fetch_add(1, Ordering::Relaxed);
        // Mirror the simulator's lookup rule: inserts route on a non-empty
        // web; removes route when the item is present and not the last one.
        let routes = match kind {
            UpdateKind::Insert { .. } => !topo.origins.is_empty(),
            UpdateKind::Remove => topo.origins.len() > 1 && topo.membership.contains_key(&item),
        };
        let (host, at, phase) = if routes {
            assert!(origin < topo.origins.len(), "origin item out of bounds");
            let (host, at) = topo.origins[origin];
            (host, at, UpdatePhase::Route)
        } else {
            // No lookup phase: enter the repair trail directly. The client
            // injection is free (as is the meter's first visit), so hops
            // still equal the simulator's messages.
            let trail = repair_trail(&topo, &item, kind);
            let host = trail.first().copied().unwrap_or(HostId(0));
            let at = GlobalRef {
                level: 0,
                set: 0,
                range: 0,
            };
            (host, at, UpdatePhase::Repair { cursor: 0, trail })
        };
        client.inner.send(
            host,
            EngineMsg {
                op: EngineOp::Update(UpdateOp { kind, item, phase }),
                at,
                client: client.id(),
                corr,
                hops: 0,
                topo,
            },
        )?;
        Ok(corr)
    }

    fn await_update(client: &EngineClient<D>, corr: u64) -> Result<UpdateReply, RuntimeError> {
        let reply = client.recv_corr(corr, Duration::from_secs(30))?;
        match reply.body {
            ReplyBody::Updated { applied } => Ok(UpdateReply {
                corr,
                applied,
                hops: reply.hops,
            }),
            ReplyBody::Answer(_) => unreachable!("update correlation id matched a query"),
        }
    }

    /// Runs one insert end to end with an explicit origin and bit string
    /// (see [`submit_insert`](Self::submit_insert)), blocking up to 30 s.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of bounds on a non-empty web.
    pub fn insert_with(
        &self,
        client: &EngineClient<D>,
        origin: usize,
        item: D::Item,
        bits: u64,
    ) -> Result<UpdateReply, RuntimeError> {
        let corr = self.submit_insert(client, origin, item, bits)?;
        Self::await_update(client, corr)
    }

    /// Runs one remove end to end with an explicit origin (see
    /// [`submit_remove`](Self::submit_remove)), blocking up to 30 s.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of bounds when the lookup phase runs.
    pub fn remove_with(
        &self,
        client: &EngineClient<D>,
        origin: usize,
        item: D::Item,
    ) -> Result<UpdateReply, RuntimeError> {
        let corr = self.submit_remove(client, origin, item)?;
        Self::await_update(client, corr)
    }

    /// Runs one insert end to end, drawing the lookup origin and the
    /// item's level bits from the engine's seeded generator — the live
    /// counterpart of [`SkipWeb::insert`].
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn insert(
        &self,
        client: &EngineClient<D>,
        item: D::Item,
    ) -> Result<UpdateReply, RuntimeError> {
        // Draw the origin against the same snapshot the update is admitted
        // under, so a concurrent apply can never shrink it out of bounds.
        let topo = self.shared.current_topo();
        let len = topo.origins.len();
        let (origin, bits) = {
            let mut st = self.shared.state.lock();
            let origin = if len > 0 { st.rng.gen_range(0..len) } else { 0 };
            (origin, st.rng.gen())
        };
        let corr =
            self.submit_update_at(client, topo, origin, UpdateKind::Insert { bits }, item)?;
        Self::await_update(client, corr)
    }

    /// Runs one remove end to end, drawing the lookup origin from the
    /// engine's seeded generator — the live counterpart of
    /// [`SkipWeb::remove`].
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn remove(
        &self,
        client: &EngineClient<D>,
        item: D::Item,
    ) -> Result<UpdateReply, RuntimeError> {
        // Same snapshot for origin draw and admission (see `insert`).
        let topo = self.shared.current_topo();
        let len = topo.origins.len();
        let origin = if len > 0 {
            self.shared.state.lock().rng.gen_range(0..len)
        } else {
            0
        };
        let corr = self.submit_update_at(client, topo, origin, UpdateKind::Remove, item)?;
        Self::await_update(client, corr)
    }

    /// A snapshot of the current ground set, in canonical order.
    pub fn ground(&self) -> Vec<D::Item> {
        self.shared.state.lock().web.ground().to_vec()
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.shared.state.lock().web.len()
    }

    /// Whether the web currently stores no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total host-to-host messages since spawn.
    pub fn message_count(&self) -> u64 {
        self.runtime.message_count()
    }

    /// Per-host sent/received message counters since spawn, with the
    /// update-tagged share broken out (routing + repair messages of §4).
    pub fn traffic(&self) -> HostTraffic {
        self.runtime.host_traffic()
    }

    /// Number of (physical) hosts.
    pub fn hosts(&self) -> usize {
        self.runtime.hosts()
    }

    /// The host whose actor panicked, if any — the fabric is then poisoned
    /// and every blocked or future client operation reports it.
    pub fn poisoned_by(&self) -> Option<HostId> {
        self.runtime.poisoned_by()
    }

    /// Stops all host threads.
    pub fn shutdown(self) {
        self.runtime.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multidim::{
        QuadtreeAnswer, QuadtreeRequest, QuadtreeSkipWeb, TrapezoidSkipWeb, TrieSkipWeb,
    };
    use skipweb_net::sim::MessageMeter;
    use skipweb_structures::quadtree::PointKey;
    use skipweb_structures::trapezoid::Segment;

    fn grid_points(n: u32) -> Vec<PointKey<2>> {
        (0..n)
            .map(|i| PointKey::new([i * 104_729 + 13, i * 49_979 + 7]))
            .collect()
    }

    #[test]
    fn quadtree_point_location_matches_simulator_with_hop_parity() {
        let web = QuadtreeSkipWeb::builder(grid_points(96)).seed(21).build();
        let dist = web.serve();
        let client = dist.client();
        for s in 0..30u64 {
            let q = PointKey::new([(s * 77_777_777) as u32, (s * 33_333_331) as u32]);
            let origin = web.random_origin(s);
            let sim = web.locate_point(origin, q);
            let reply = dist
                .query(&client, origin, QuadtreeRequest::Locate(q))
                .expect("runtime alive");
            assert_eq!(
                reply.answer,
                QuadtreeAnswer::Located {
                    cell: sim.cell,
                    approx_nearest: sim.approx_nearest,
                },
                "cell parity for {q:?}"
            );
            assert_eq!(u64::from(reply.hops), sim.messages, "hop parity for {q:?}");
        }
        dist.shutdown();
    }

    #[test]
    fn quadtree_box_reporting_over_the_runtime_matches_the_simulator() {
        let web = QuadtreeSkipWeb::builder(grid_points(200)).seed(22).build();
        let dist = web.serve();
        let client = dist.client();
        let boxes: [([u32; 2], [u32; 2]); 3] = [
            ([0, 0], [u32::MAX / 2, u32::MAX / 2]),
            ([1 << 20, 1 << 20], [1 << 24, 1 << 24]),
            ([0, 0], [u32::MAX, u32::MAX]),
        ];
        for (lo, hi) in boxes {
            let sim = web.points_in_box(web.random_origin(3), lo, hi);
            let reply = dist
                .query(
                    &client,
                    web.random_origin(3),
                    QuadtreeRequest::InBox { lo, hi },
                )
                .expect("runtime alive");
            assert_eq!(
                reply.answer,
                QuadtreeAnswer::Points(sim.points),
                "box {lo:?}..{hi:?}"
            );
        }
        dist.shutdown();
    }

    #[test]
    fn trie_prefix_search_matches_simulator_with_hop_parity() {
        let mut strings: Vec<String> = (0..80).map(|i| format!("isbn-97802{i:03}x")).collect();
        strings.push("zzz".into());
        let web = TrieSkipWeb::builder(strings).seed(23).build();
        let dist = web.serve();
        let client = dist.client();
        for prefix in ["isbn-97802", "isbn-978020", "isbn", "zzz", "nope", ""] {
            let origin = web.random_origin(prefix.len() as u64);
            let sim = web.prefix_search(origin, prefix);
            let reply = dist
                .query(&client, origin, prefix.to_string())
                .expect("runtime alive");
            assert_eq!(reply.answer.matched_len, sim.matched_len, "len {prefix:?}");
            assert_eq!(reply.answer.matches, sim.matches, "matches {prefix:?}");
            assert_eq!(
                u64::from(reply.hops),
                sim.messages,
                "hop parity for {prefix:?}"
            );
        }
        dist.shutdown();
    }

    #[test]
    fn trapezoid_point_location_answers_match_the_simulator() {
        let segments: Vec<Segment> = (0..24)
            .map(|i| {
                let x = i * 100;
                Segment::new((x, i * 5), (x + 60, i * 5 + 3))
            })
            .collect();
        let web = TrapezoidSkipWeb::builder(segments).seed(24).build();
        let dist = web.serve();
        let client = dist.client();
        for s in 0..20i64 {
            let q = (s * 137 - 150, s * 11 - 40);
            let origin = web.random_origin(s as u64);
            let sim = web.locate_point(origin, q);
            let reply = dist.query(&client, origin, q).expect("runtime alive");
            assert_eq!(reply.answer, sim.trapezoid, "trapezoid for {q:?}");
            // BFS tie-breaks may reroute step walks, so assert the hop
            // budget rather than exact parity here.
            assert!(
                u64::from(reply.hops) <= 4 * sim.messages + 16,
                "hops {} vs sim {}",
                reply.hops,
                sim.messages
            );
        }
        dist.shutdown();
    }

    #[test]
    fn consolidation_caps_hosts_and_keeps_answers() {
        let keys: Vec<u64> = (0..300).map(|i| i * 3 + 1).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(25).build();
        let full = DistributedSkipWeb::spawn(web.inner());
        let four = DistributedSkipWeb::spawn_consolidated(web.inner(), 4);
        let one = DistributedSkipWeb::spawn_consolidated(web.inner(), 1);
        assert_eq!(full.hosts(), 300);
        assert_eq!(four.hosts(), 4);
        assert_eq!(one.hosts(), 1);
        let (cf, c4, c1) = (full.client(), four.client(), one.client());
        for s in 0..25u64 {
            let q = (s * 211) % 1000;
            let origin = web.random_origin(s);
            let want = web.nearest(origin, q).answer.nearest;
            assert_eq!(full.query(&cf, origin, q).unwrap().answer, Some(want));
            assert_eq!(four.query(&c4, origin, q).unwrap().answer, Some(want));
            assert_eq!(one.query(&c1, origin, q).unwrap().answer, Some(want));
        }
        // Folding hosts can only remove crossings, never add them — and a
        // single host never pays a message at all.
        assert!(four.message_count() <= full.message_count());
        assert_eq!(one.message_count(), 0);
        // Per-host counters sum to the global counter; no updates ran.
        let traffic = four.traffic();
        assert_eq!(traffic.hosts(), 4);
        assert_eq!(traffic.total_sent(), four.message_count());
        assert_eq!(traffic.total_update_sent(), 0);
        full.shutdown();
        four.shutdown();
        one.shutdown();
    }

    #[test]
    fn live_onedim_updates_match_the_simulator_hop_for_hop() {
        let keys: Vec<u64> = (0..80).map(|i| i * 10).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(26).build();
        let mut sim = web.inner().clone();
        // Headroom so inserted items get their own hosts, as in the sim.
        let dist = DistributedSkipWeb::spawn_with_capacity(web.inner(), 80 + 16);
        let client = dist.client();
        for i in 0..16u64 {
            let key = 5 + i * 37;
            let bits = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD;
            let origin = (i as usize * 7) % sim.len();
            let mut meter = MessageMeter::new();
            let sim_applied = sim.insert_with(Some(origin), key, bits, &mut meter);
            let reply = dist.insert_with(&client, origin, key, bits).unwrap();
            assert_eq!(reply.applied, sim_applied, "insert {key}");
            assert_eq!(u64::from(reply.hops), meter.messages(), "hops insert {key}");
        }
        for i in 0..8u64 {
            let key = i * 30; // some present, some already gone
            let origin = (i as usize * 11) % sim.len();
            let sim_origin = (sim.len() > 1).then_some(origin);
            let mut meter = MessageMeter::new();
            let sim_applied = sim.remove_with(sim_origin, &key, &mut meter);
            let reply = dist.remove_with(&client, origin, key).unwrap();
            assert_eq!(reply.applied, sim_applied, "remove {key}");
            assert_eq!(u64::from(reply.hops), meter.messages(), "hops remove {key}");
        }
        // Post-churn state and query parity.
        assert_eq!(dist.ground(), sim.ground());
        for s in 0..20u64 {
            let q = (s * 131) % 1000;
            let origin = s as usize % sim.len();
            let mut meter = MessageMeter::new();
            let out = sim.query(origin, &q, &mut meter);
            let locus = sim.base().range(out.locus);
            let want = crate::onedim::nearest_from_locus(&locus, q);
            let reply = dist.query(&client, origin, q).unwrap();
            assert_eq!(reply.answer, want.or(sim.base().nearest_key(q)), "q={q}");
            assert_eq!(u64::from(reply.hops), out.messages, "query hops q={q}");
        }
        // Update traffic is metered separately from query traffic.
        let traffic = dist.traffic();
        assert!(traffic.total_update_sent() > 0);
        assert!(traffic.total_query_sent() > 0);
        assert_eq!(traffic.total_sent(), dist.message_count());
        dist.shutdown();
    }

    #[test]
    fn duplicate_inserts_and_absent_removes_are_noops() {
        let keys: Vec<u64> = (0..32).map(|i| i * 4).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(27).build();
        let dist = DistributedSkipWeb::spawn(web.inner());
        let client = dist.client();
        // Duplicate insert: pays the lookup, applies nothing.
        let dup = dist.insert_with(&client, 3, 16, 0xBEEF).unwrap();
        assert!(!dup.applied);
        assert_eq!(dist.len(), 32);
        // Absent remove: free no-op, like the simulator.
        let gone = dist.remove_with(&client, 0, 999).unwrap();
        assert!(!gone.applied);
        assert_eq!(gone.hops, 0);
        assert_eq!(dist.len(), 32);
        dist.shutdown();
    }

    #[test]
    fn updates_grow_and_shrink_through_the_empty_web() {
        let web = crate::onedim::OneDimSkipWeb::builder(vec![7])
            .seed(28)
            .build();
        let dist = DistributedSkipWeb::spawn_with_capacity(web.inner(), 8);
        let client = dist.client();
        // Remove the last item (no lookup phase, like the simulator).
        assert!(dist.remove(&client, 7).unwrap().applied);
        assert!(dist.is_empty());
        // Insert into the empty web, then query it.
        assert!(dist.insert(&client, 42).unwrap().applied);
        assert!(dist.insert(&client, 50).unwrap().applied);
        assert_eq!(dist.ground(), vec![42, 50]);
        let reply = dist.query(&client, 0, 45).unwrap();
        assert_eq!(reply.answer, Some(42));
        dist.shutdown();
    }

    #[test]
    fn inadmissible_trapezoid_insert_is_rejected_not_fatal() {
        let segments: Vec<Segment> = (0..12)
            .map(|i| Segment::new((i * 100, i * 10), (i * 100 + 60, i * 10 + 3)))
            .collect();
        let web = TrapezoidSkipWeb::builder(segments).seed(29).build();
        let dist = DistributedSkipWeb::spawn_with_capacity(web.inner(), 16);
        let client = dist.client();
        // Shares an endpoint x-coordinate with a stored segment: violates
        // general position. The actor must reject it, not panic.
        let bad = Segment::new((0, 500), (77, 501));
        let reply = dist.insert(&client, bad).unwrap();
        assert!(!reply.applied);
        assert!(dist.poisoned_by().is_none(), "fabric must stay healthy");
        // A good segment above all bands still applies.
        let good = Segment::new((41, 2_000), (83, 2_001));
        assert!(dist.insert(&client, good).unwrap().applied);
        let reply = dist.query(&client, 0, (60i64, 2_005i64)).unwrap();
        assert_eq!(reply.answer.bottom, Some(good));
        assert!(dist.remove(&client, good).unwrap().applied);
        dist.shutdown();
    }

    #[test]
    fn in_flight_queries_never_observe_a_half_applied_update() {
        // Readers hammer the web while a writer churns; every answer must
        // be a key that was a member of some pre- or post-update snapshot,
        // and nothing may hang or panic.
        let keys: Vec<u64> = (0..100).map(|i| i * 100).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(30).build();
        let dist = DistributedSkipWeb::spawn_with_capacity(web.inner(), 100 + 32);
        std::thread::scope(|scope| {
            let writer = {
                let dist = &dist;
                scope.spawn(move || {
                    let client = dist.client();
                    for i in 0..24u64 {
                        let key = 50 + i * 200;
                        assert!(dist.insert(&client, key).unwrap().applied);
                        if i % 3 == 0 {
                            assert!(dist.remove(&client, key).unwrap().applied);
                        }
                    }
                })
            };
            for r in 0..3u64 {
                let dist = &dist;
                scope.spawn(move || {
                    let client = dist.client();
                    for i in 0..60u64 {
                        let q = (r * 97 + i * 131) % 11_000;
                        let reply = dist.query(&client, (i as usize) % 100, q).unwrap();
                        let a = reply.answer.expect("web never empties");
                        assert!(
                            a.is_multiple_of(100) || (a >= 50 && (a - 50).is_multiple_of(200)),
                            "answer {a} was never a member"
                        );
                    }
                });
            }
            writer.join().unwrap();
        });
        dist.shutdown();
    }

    #[test]
    fn host_panic_mid_update_poisons_the_fabric_for_blocked_and_later_clients() {
        let keys: Vec<u64> = (0..64).map(|i| i * 3).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(31).build();
        let dist = DistributedSkipWeb::spawn(web.inner());
        let client = dist.client();
        // A corrupt address makes host 5 die mid-update processing.
        let topo = dist.shared.current_topo();
        client
            .inner
            .send(
                HostId(5),
                EngineMsg {
                    op: EngineOp::Update(UpdateOp {
                        kind: UpdateKind::Insert { bits: 1 },
                        item: 7,
                        phase: UpdatePhase::Route,
                    }),
                    at: GlobalRef {
                        level: 0,
                        set: 0,
                        range: u32::MAX,
                    },
                    client: client.id(),
                    corr: 777,
                    hops: 0,
                    topo,
                },
            )
            .unwrap();
        // The blocked client must get the error, not hang.
        let err = client.recv_corr(777, Duration::from_secs(10)).unwrap_err();
        assert_eq!(err, RuntimeError::HostPanicked(HostId(5)));
        assert_eq!(dist.poisoned_by(), Some(HostId(5)));
        // The fabric stays poisoned for later senders: updates and queries
        // fail fast instead of routing into a dead network.
        assert_eq!(
            dist.insert(&client, 999).unwrap_err(),
            RuntimeError::HostPanicked(HostId(5))
        );
        assert_eq!(
            dist.query(&client, 0, 5).unwrap_err(),
            RuntimeError::HostPanicked(HostId(5))
        );
        dist.shutdown();
    }
}
