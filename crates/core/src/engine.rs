//! The generic distributed skip-web engine: any range-determined structure
//! served by the threaded actor runtime.
//!
//! # Protocol (§2.3–§2.5)
//!
//! The engine turns a built [`SkipWeb<D>`] into a live network of actor
//! threads, one per host, executing the paper's routing protocol for real:
//!
//! * **Addressing (§2.3).** Every range of every level set gets a
//!   [`GlobalRef`] — `(level, set, range)` — and the placement computed by
//!   the builder assigns each ref one or more hosts. The pair
//!   `(host, GlobalRef)` is exactly the paper's *(host, address)* pointer:
//!   list neighbours, down-hyperlinks, and query origins are all stored in
//!   this form.
//! * **Sharding (§2.4).** A host's shard is the set of ranges placed on it
//!   (owner-hosted: each item's tower; bucketed: a block plus its non-basic
//!   cone). A host may only *act* on ranges of its own shard; touching any
//!   other range requires forwarding the query to a host that stores it.
//!   Because structures are *range-determined* (§2.1 — `S` and `U` uniquely
//!   determine `D(S)`), the deterministic structure description itself is
//!   shared read-only across the process; what is distributed, metered, and
//!   paid for in messages is the *authority to act* on a range.
//! * **Forwarding (§2.5).** A query enters at its origin item's root and
//!   descends level by level. At each range the host asks the structure for
//!   one navigation step ([`RangeDetermined::search_step`]); at a level
//!   locus it follows the down-hyperlinks (picking the continuation with
//!   [`RangeDetermined::best_entry`]). The host loops — *"processes the
//!   query as far as it can internally"* — while the next range is in its
//!   own shard, and otherwise sends one message handing the query to a host
//!   that stores the next range. Replicated ranges prefer the co-located
//!   copy, so bucketed placement pays only on basic-stratum crossings.
//!
//! Each query carries a correlation id, so one client can keep many queries
//! in flight concurrently and match answers as they arrive out of order
//! ([`DistributedSkipWeb::submit`] / [`EngineClient::recv_corr`]). Replies
//! report the exact number of remote hops the query paid, which for
//! owner-hosted placement equals the simulator's metered host crossings —
//! the parity property the integration tests pin down.
//!
//! # Example
//!
//! ```
//! use skipweb_core::engine::DistributedSkipWeb;
//! use skipweb_core::onedim::OneDimSkipWeb;
//!
//! let web = OneDimSkipWeb::builder((0..64).map(|i| i * 10).collect()).build();
//! let dist = DistributedSkipWeb::spawn(web.inner());
//! let client = dist.client();
//! let reply = dist.query(&client, web.random_origin(1), 137).unwrap();
//! assert_eq!(reply.answer, Some(140));
//! dist.shutdown();
//! ```

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use skipweb_net::runtime::{Actor, Client, ClientId, Context, Runtime, RuntimeError, Sender};
use skipweb_net::{HostId, HostTraffic};
use skipweb_structures::traits::{RangeDetermined, RangeId};

use crate::levels::parent_key;
use crate::skipweb::SkipWeb;

/// Globally unique address of a range: level, set index, range index — the
/// "address" half of the paper's `(host, address)` pointers (§2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalRef {
    /// Level in the hierarchy (0 = ground).
    pub level: u16,
    /// Set index within the level.
    pub set: u32,
    /// Range id within the set's structure.
    pub range: u32,
}

impl fmt::Display for GlobalRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}/S{}/R{}", self.level, self.set, self.range)
    }
}

/// A structure that the distributed engine can route queries for: on top of
/// the navigation primitives of [`RangeDetermined`], it names the wire-level
/// request/answer types and how the terminal host turns a level-0 locus into
/// an answer.
pub trait Routable: RangeDetermined {
    /// What clients send: a query request (possibly richer than
    /// [`RangeDetermined::Query`] — e.g. an orthogonal box whose descent
    /// routes toward its centre point).
    type Request: Clone + Send + fmt::Debug + 'static;
    /// What the terminal host replies with.
    type Answer: Clone + Send + fmt::Debug + 'static;

    /// The point of the universe the descent routes toward for `req`.
    fn target(req: &Self::Request) -> Self::Query;

    /// Computes the answer once the descent reached the maximal level-0
    /// range containing the target — executed by the host anchoring that
    /// locus, from its local neighbourhood.
    fn answer(&self, locus: RangeId, req: &Self::Request) -> Self::Answer;
}

/// Host-to-host query envelope of the engine.
#[derive(Debug, Clone)]
pub struct EngineMsg<D: Routable> {
    /// The request being routed.
    pub req: D::Request,
    /// Where to resume processing.
    pub at: GlobalRef,
    /// Client awaiting the answer.
    pub client: ClientId,
    /// Correlation id matching the reply to the submitting call.
    pub corr: u64,
    /// Remote hops paid so far.
    pub hops: u32,
}

/// Reply delivered to the submitting client.
#[derive(Debug, Clone)]
pub struct EngineReply<D: Routable> {
    /// Correlation id of the originating [`DistributedSkipWeb::submit`].
    pub corr: u64,
    /// The structure-specific answer.
    pub answer: D::Answer,
    /// Remote hops the query paid end to end (for owner-hosted placement
    /// this equals the simulator's metered host crossings).
    pub hops: u32,
}

/// One level set as the engine sees it: the deterministic structure
/// description, its down-hyperlinks, and the (physical) hosts storing each
/// range.
#[derive(Debug)]
struct TopoSet<D: RangeDetermined> {
    structure: D,
    /// Per range: hyperlinks into the parent set one level down. Empty at
    /// level 0.
    down: Vec<Vec<RangeId>>,
    /// Per range: the hosts storing a copy (owner-hosted: exactly one;
    /// bucketed: every block host whose cone the range belongs to).
    hosts: Vec<Vec<HostId>>,
    /// Index of the parent set one level down (0 at level 0).
    parent: u32,
}

/// The immutable routing topology shared read-only by every host thread.
#[derive(Debug)]
struct Topology<D: RangeDetermined> {
    levels: Vec<Vec<TopoSet<D>>>,
}

impl<D: RangeDetermined> Topology<D> {
    fn set(&self, at: GlobalRef) -> &TopoSet<D> {
        &self.levels[at.level as usize][at.set as usize]
    }
}

/// Resolves a replicated range to a host from the perspective of `me`: the
/// co-located copy when one exists (free to act on), else the primary.
fn pick(copies: &[HostId], me: HostId) -> HostId {
    if copies.contains(&me) {
        me
    } else {
        copies[0]
    }
}

/// Per-host actor executing the generic forwarding loop of §2.5.
pub struct EngineActor<D: Routable> {
    topo: Arc<Topology<D>>,
}

impl<D: Routable + Send + Sync + 'static> Actor for EngineActor<D> {
    type Msg = EngineMsg<D>;
    type Reply = EngineReply<D>;

    fn on_message(
        &mut self,
        _from: Sender,
        mut msg: EngineMsg<D>,
        ctx: &mut Context<'_, EngineMsg<D>, EngineReply<D>>,
    ) {
        let me = ctx.host();
        let q = D::target(&msg.req);
        let mut at = msg.at;
        loop {
            let set = self.topo.set(at);
            let next = match set.structure.search_step(RangeId(at.range), &q) {
                // Walk one range toward the locus within this level.
                Some(next) => GlobalRef {
                    level: at.level,
                    set: at.set,
                    range: next.0,
                },
                // Level locus reached: answer at the ground level …
                None if at.level == 0 => {
                    let answer = set.structure.answer(RangeId(at.range), &msg.req);
                    ctx.reply(
                        msg.client,
                        EngineReply {
                            corr: msg.corr,
                            answer,
                            hops: msg.hops,
                        },
                    );
                    return;
                }
                // … or descend through the down-hyperlinks (§2.3).
                None => {
                    let candidates = &set.down[at.range as usize];
                    assert!(
                        !candidates.is_empty(),
                        "hyperlinks of a subset range into its superset cannot be empty"
                    );
                    let parent_level = at.level - 1;
                    let parent = &self.topo.levels[parent_level as usize][set.parent as usize];
                    let entry = parent.structure.best_entry(candidates, &q);
                    GlobalRef {
                        level: parent_level,
                        set: set.parent,
                        range: entry.0,
                    }
                }
            };
            let host = pick(&self.topo.set(next).hosts[next.range as usize], me);
            if host == me {
                // Process as far as we can internally (§2.5): free.
                at = next;
            } else {
                // The next range lives elsewhere: one network message.
                msg.at = next;
                msg.hops += 1;
                ctx.send(host, msg);
                return;
            }
        }
    }
}

/// A client handle supporting many concurrent in-flight queries, matched to
/// replies by correlation id. Shareable across threads (`Sync`); replies
/// pulled by one thread for another's correlation id are parked in a shared
/// buffer.
pub struct EngineClient<D: Routable + Send + Sync + 'static> {
    inner: Client<EngineMsg<D>, EngineReply<D>>,
    next_corr: AtomicU64,
    pending: Mutex<Vec<EngineReply<D>>>,
}

impl<D: Routable + Send + Sync + 'static> EngineClient<D> {
    /// This client's runtime identifier.
    pub fn id(&self) -> ClientId {
        self.inner.id()
    }

    /// Receives the next reply for *any* of this client's in-flight queries
    /// (buffered ones first), waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RuntimeError::Timeout`], host down or
    /// panicked, disconnect).
    pub fn recv_any(&self, timeout: Duration) -> Result<EngineReply<D>, RuntimeError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut pending = self.pending.lock();
                if !pending.is_empty() {
                    return Ok(pending.remove(0));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::Timeout);
            }
            // Short slices so a thread blocked here notices replies that a
            // concurrent `recv_corr` on the shared client drained from the
            // channel and parked in the pending buffer.
            let slice = (deadline - now).min(Duration::from_millis(25));
            match self.inner.recv_timeout(slice) {
                Ok(reply) => return Ok(reply),
                Err(RuntimeError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Receives the reply for the query submitted with correlation id
    /// `corr`, waiting up to `timeout` and parking replies to other
    /// correlation ids for later [`recv_any`](Self::recv_any) /
    /// `recv_corr` calls.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RuntimeError::Timeout`], host down or
    /// panicked, disconnect).
    pub fn recv_corr(&self, corr: u64, timeout: Duration) -> Result<EngineReply<D>, RuntimeError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut pending = self.pending.lock();
                if let Some(i) = pending.iter().position(|r| r.corr == corr) {
                    return Ok(pending.remove(i));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::Timeout);
            }
            // Short slices so concurrent users of a shared client notice
            // replies another thread parked for them.
            let slice = (deadline - now).min(Duration::from_millis(25));
            match self.inner.recv_timeout(slice) {
                Ok(reply) if reply.corr == corr => return Ok(reply),
                Ok(reply) => self.pending.lock().push(reply),
                Err(RuntimeError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Compatibility alias of [`recv_any`](Self::recv_any).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<EngineReply<D>, RuntimeError> {
        self.recv_any(timeout)
    }
}

/// A running distributed skip-web over structure `D`: one actor thread per
/// (physical) host, executing the forwarding protocol of §2.5 under real
/// concurrent message passing.
pub struct DistributedSkipWeb<D: Routable + Send + Sync + 'static> {
    runtime: Runtime<EngineActor<D>>,
    /// Per ground item: the host and address where its queries start (the
    /// "root node for that host" of §1.1).
    origins: Vec<(HostId, GlobalRef)>,
}

impl<D: Routable + Send + Sync + 'static> DistributedSkipWeb<D> {
    /// Shards `web` across one actor thread per host of its placement and
    /// starts them.
    pub fn spawn(web: &SkipWeb<D>) -> Self {
        Self::spawn_consolidated(web, web.hosts().max(1))
    }

    /// Like [`spawn`](Self::spawn), but folds the web's logical hosts onto
    /// at most `hosts` physical actor threads (`logical % hosts`), so the
    /// same structure can be served — and its throughput measured — at any
    /// deployment size. Queries between ranges folded onto the same physical
    /// host become free, exactly like any other co-location.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    pub fn spawn_consolidated(web: &SkipWeb<D>, hosts: usize) -> Self {
        assert!(hosts > 0, "a network needs at least one host");
        let phys = hosts.min(web.hosts().max(1));
        let fold = |h: HostId| HostId(h.0 % phys as u32);
        let levels = web.level_structs();
        let topo_levels: Vec<Vec<TopoSet<D>>> = levels
            .iter()
            .enumerate()
            .map(|(lvl, level)| {
                level
                    .sets
                    .iter()
                    .map(|set| {
                        let parent = if lvl == 0 {
                            0
                        } else {
                            let pkey = parent_key(set.key, lvl as u32);
                            levels[lvl - 1].set_by_key[&pkey]
                        };
                        TopoSet {
                            structure: set.structure.clone(),
                            down: set.down.clone(),
                            hosts: set
                                .range_host
                                .iter()
                                .map(|copies| {
                                    // Folding can alias distinct logical
                                    // hosts; keep first occurrences so the
                                    // primary copy stays copies[0].
                                    let mut mapped: Vec<HostId> = Vec::new();
                                    for h in copies.iter().copied().map(fold) {
                                        if !mapped.contains(&h) {
                                            mapped.push(h);
                                        }
                                    }
                                    mapped
                                })
                                .collect(),
                            parent,
                        }
                    })
                    .collect()
            })
            .collect();
        let top = web.top_level() as usize;
        let top_level = &levels[top];
        let origins = (0..web.len())
            .map(|g| {
                let set_idx = top_level.set_of_item[g] as usize;
                let set = &top_level.sets[set_idx];
                let entry = set
                    .structure
                    .entry_of_item(top_level.local_of_item[g] as usize);
                (
                    fold(set.range_host[entry.index()][0]),
                    GlobalRef {
                        level: top as u16,
                        set: set_idx as u32,
                        range: entry.0,
                    },
                )
            })
            .collect();
        let topo = Arc::new(Topology {
            levels: topo_levels,
        });
        let runtime = Runtime::spawn(phys, |_h| EngineActor {
            topo: Arc::clone(&topo),
        });
        DistributedSkipWeb { runtime, origins }
    }

    /// Registers a client.
    pub fn client(&self) -> EngineClient<D> {
        EngineClient {
            inner: self.runtime.client(),
            next_corr: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
        }
    }

    /// Injects `req` at `origin_item`'s root host without waiting, returning
    /// the correlation id to pass to [`EngineClient::recv_corr`]. Any number
    /// of queries may be in flight per client.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked).
    ///
    /// # Panics
    ///
    /// Panics if `origin_item` is out of bounds (e.g. on an empty web).
    pub fn submit(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        req: D::Request,
    ) -> Result<u64, RuntimeError> {
        assert!(
            origin_item < self.origins.len(),
            "origin item out of bounds"
        );
        let corr = client.next_corr.fetch_add(1, Ordering::Relaxed);
        let (host, at) = self.origins[origin_item];
        client.inner.send(
            host,
            EngineMsg {
                req,
                at,
                client: client.id(),
                corr,
                hops: 0,
            },
        )?;
        Ok(corr)
    }

    /// Runs one query end to end, blocking up to 10 s for the reply.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    ///
    /// # Panics
    ///
    /// Panics if `origin_item` is out of bounds.
    pub fn query(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        req: D::Request,
    ) -> Result<EngineReply<D>, RuntimeError> {
        let corr = self.submit(client, origin_item, req)?;
        client.recv_corr(corr, Duration::from_secs(10))
    }

    /// Total host-to-host messages since spawn.
    pub fn message_count(&self) -> u64 {
        self.runtime.message_count()
    }

    /// Per-host sent/received message counters since spawn.
    pub fn traffic(&self) -> HostTraffic {
        self.runtime.host_traffic()
    }

    /// Number of (physical) hosts.
    pub fn hosts(&self) -> usize {
        self.runtime.hosts()
    }

    /// Stops all host threads.
    pub fn shutdown(self) {
        self.runtime.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multidim::{
        QuadtreeAnswer, QuadtreeRequest, QuadtreeSkipWeb, TrapezoidSkipWeb, TrieSkipWeb,
    };
    use skipweb_structures::quadtree::PointKey;
    use skipweb_structures::trapezoid::Segment;

    fn grid_points(n: u32) -> Vec<PointKey<2>> {
        (0..n)
            .map(|i| PointKey::new([i * 104_729 + 13, i * 49_979 + 7]))
            .collect()
    }

    #[test]
    fn quadtree_point_location_matches_simulator_with_hop_parity() {
        let web = QuadtreeSkipWeb::builder(grid_points(96)).seed(21).build();
        let dist = web.serve();
        let client = dist.client();
        for s in 0..30u64 {
            let q = PointKey::new([(s * 77_777_777) as u32, (s * 33_333_331) as u32]);
            let origin = web.random_origin(s);
            let sim = web.locate_point(origin, q);
            let reply = dist
                .query(&client, origin, QuadtreeRequest::Locate(q))
                .expect("runtime alive");
            assert_eq!(
                reply.answer,
                QuadtreeAnswer::Located {
                    cell: sim.cell,
                    approx_nearest: sim.approx_nearest,
                },
                "cell parity for {q:?}"
            );
            assert_eq!(u64::from(reply.hops), sim.messages, "hop parity for {q:?}");
        }
        dist.shutdown();
    }

    #[test]
    fn quadtree_box_reporting_over_the_runtime_matches_the_simulator() {
        let web = QuadtreeSkipWeb::builder(grid_points(200)).seed(22).build();
        let dist = web.serve();
        let client = dist.client();
        let boxes: [([u32; 2], [u32; 2]); 3] = [
            ([0, 0], [u32::MAX / 2, u32::MAX / 2]),
            ([1 << 20, 1 << 20], [1 << 24, 1 << 24]),
            ([0, 0], [u32::MAX, u32::MAX]),
        ];
        for (lo, hi) in boxes {
            let sim = web.points_in_box(web.random_origin(3), lo, hi);
            let reply = dist
                .query(
                    &client,
                    web.random_origin(3),
                    QuadtreeRequest::InBox { lo, hi },
                )
                .expect("runtime alive");
            assert_eq!(
                reply.answer,
                QuadtreeAnswer::Points(sim.points),
                "box {lo:?}..{hi:?}"
            );
        }
        dist.shutdown();
    }

    #[test]
    fn trie_prefix_search_matches_simulator_with_hop_parity() {
        let mut strings: Vec<String> = (0..80).map(|i| format!("isbn-97802{i:03}x")).collect();
        strings.push("zzz".into());
        let web = TrieSkipWeb::builder(strings).seed(23).build();
        let dist = web.serve();
        let client = dist.client();
        for prefix in ["isbn-97802", "isbn-978020", "isbn", "zzz", "nope", ""] {
            let origin = web.random_origin(prefix.len() as u64);
            let sim = web.prefix_search(origin, prefix);
            let reply = dist
                .query(&client, origin, prefix.to_string())
                .expect("runtime alive");
            assert_eq!(reply.answer.matched_len, sim.matched_len, "len {prefix:?}");
            assert_eq!(reply.answer.matches, sim.matches, "matches {prefix:?}");
            assert_eq!(
                u64::from(reply.hops),
                sim.messages,
                "hop parity for {prefix:?}"
            );
        }
        dist.shutdown();
    }

    #[test]
    fn trapezoid_point_location_answers_match_the_simulator() {
        let segments: Vec<Segment> = (0..24)
            .map(|i| {
                let x = i * 100;
                Segment::new((x, i * 5), (x + 60, i * 5 + 3))
            })
            .collect();
        let web = TrapezoidSkipWeb::builder(segments).seed(24).build();
        let dist = web.serve();
        let client = dist.client();
        for s in 0..20i64 {
            let q = (s * 137 - 150, s * 11 - 40);
            let origin = web.random_origin(s as u64);
            let sim = web.locate_point(origin, q);
            let reply = dist.query(&client, origin, q).expect("runtime alive");
            assert_eq!(reply.answer, sim.trapezoid, "trapezoid for {q:?}");
            // BFS tie-breaks may reroute step walks, so assert the hop
            // budget rather than exact parity here.
            assert!(
                u64::from(reply.hops) <= 4 * sim.messages + 16,
                "hops {} vs sim {}",
                reply.hops,
                sim.messages
            );
        }
        dist.shutdown();
    }

    #[test]
    fn consolidation_caps_hosts_and_keeps_answers() {
        let keys: Vec<u64> = (0..300).map(|i| i * 3 + 1).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(25).build();
        let full = DistributedSkipWeb::spawn(web.inner());
        let four = DistributedSkipWeb::spawn_consolidated(web.inner(), 4);
        let one = DistributedSkipWeb::spawn_consolidated(web.inner(), 1);
        assert_eq!(full.hosts(), 300);
        assert_eq!(four.hosts(), 4);
        assert_eq!(one.hosts(), 1);
        let (cf, c4, c1) = (full.client(), four.client(), one.client());
        for s in 0..25u64 {
            let q = (s * 211) % 1000;
            let origin = web.random_origin(s);
            let want = web.nearest(origin, q).answer.nearest;
            assert_eq!(full.query(&cf, origin, q).unwrap().answer, Some(want));
            assert_eq!(four.query(&c4, origin, q).unwrap().answer, Some(want));
            assert_eq!(one.query(&c1, origin, q).unwrap().answer, Some(want));
        }
        // Folding hosts can only remove crossings, never add them — and a
        // single host never pays a message at all.
        assert!(four.message_count() <= full.message_count());
        assert_eq!(one.message_count(), 0);
        // Per-host counters sum to the global counter.
        let traffic = four.traffic();
        assert_eq!(traffic.hosts(), 4);
        assert_eq!(traffic.total_sent(), four.message_count());
        full.shutdown();
        four.shutdown();
        one.shutdown();
    }
}
