//! The generic distributed skip-web engine: any range-determined structure
//! served by the threaded actor runtime — queries *and* dynamic updates.
//!
//! # Protocol (§2.3–§2.5, §4)
//!
//! The engine turns a built [`SkipWeb<D>`] into a live network of actor
//! threads, one per host, executing the paper's routing protocol for real:
//!
//! * **Addressing (§2.3).** Every range of every level set gets a
//!   [`GlobalRef`] — `(level, set, range)` — and the placement computed by
//!   the builder assigns each ref one or more hosts. The pair
//!   `(host, GlobalRef)` is exactly the paper's *(host, address)* pointer:
//!   list neighbours, down-hyperlinks, and query origins are all stored in
//!   this form.
//! * **Sharding (§2.4).** A host's shard is the set of ranges placed on it
//!   (owner-hosted: each item's tower; bucketed: a block plus its non-basic
//!   cone). A host may only *act* on ranges of its own shard; touching any
//!   other range requires forwarding the operation to a host that stores it.
//!   Because structures are *range-determined* (§2.1 — `S` and `U` uniquely
//!   determine `D(S)`), the deterministic structure description itself is
//!   shared read-only across the process; what is distributed, metered, and
//!   paid for in messages is the *authority to act* on a range.
//! * **Forwarding (§2.5).** A query enters at its origin item's root and
//!   descends level by level. At each range the host asks the structure for
//!   one navigation step ([`RangeDetermined::search_step`]); at a level
//!   locus it follows the down-hyperlinks (picking the continuation with
//!   [`RangeDetermined::best_entry`]). The host loops — *"processes the
//!   query as far as it can internally"* — while the next range is in its
//!   own shard, and otherwise sends one message handing the query to a host
//!   that stores the next range. Replicated ranges prefer the co-located
//!   copy, so bucketed placement pays only on basic-stratum crossings.
//! * **Updates (§4).** `Insert`/`Remove` operations ride the *same*
//!   forwarding loop: the op first routes to the item's level-0 locus like a
//!   query, then walks the conflict neighbourhoods the structural change
//!   rewires, bottom-up, level by level — paying one message per host
//!   crossing, exactly what the cost-model simulator meters in
//!   [`SkipWeb::insert_with`] / [`SkipWeb::remove_with`]. The host that
//!   completes the repair applies the structural change and publishes a new
//!   topology snapshot.
//!
//! # Consistency under concurrent churn
//!
//! Every in-flight operation carries an [`Arc`] of the immutable topology
//! snapshot it was admitted under, and an update's repair ends in a single
//! atomic snapshot swap. A query therefore *never observes a half-applied
//! update*: it sees either the structure entirely before or entirely after
//! each update — operations serialize at their snapshot-capture and
//! snapshot-publish points, and old snapshots are reclaimed automatically
//! when their last in-flight message drains. Concurrent updates are safe in
//! any interleaving (each applies to the then-current authoritative web
//! under a lock); their *message accounting* matches the simulator exactly
//! when updates are admitted one at a time, which is what the parity suite
//! pins down.
//!
//! Each operation carries a correlation id, so one client can keep many
//! operations in flight concurrently and match replies as they arrive out
//! of order ([`DistributedSkipWeb::submit`] / [`EngineClient::recv_corr`]).
//! Replies report the exact number of remote hops the operation paid, which
//! for owner-hosted placement equals the simulator's metered host crossings
//! — the parity property the integration tests pin down.
//!
//! # Fault tolerance: replication, failover, membership
//!
//! The paper assumes hosts never fail; the engine does not. Three pieces
//! make the served structure survive crashes:
//!
//! * **`k`-replica placement.** Building the web with
//!   [`Replication`] (`.replicate(k)` on any
//!   builder) puts every range on `k` hosts, so each [`GlobalRef`] resolves
//!   to a replica set. With `k = 1` (the default) hop accounting matches
//!   the cost-model simulator exactly; with `k ≥ 2` replicas add
//!   co-location, so hops can only shrink — and any `k - 1` hosts may crash
//!   without losing availability.
//! * **Failover routing.** Every hop consults the runtime's
//!   [`Membership`] view: the forwarding loop and the repair walk pick the
//!   nearest *alive* replica of the next range and steer around dead hosts.
//!   When no alive replica remains (more crashes than `k - 1`), the
//!   operation fails fast with [`ReplyBody::Unavailable`] /
//!   [`RuntimeError::Unavailable`] instead of black-holing. Operations that
//!   were sitting in a crashed host's mailbox are lost like real packets;
//!   the blocking [`query`](DistributedSkipWeb::query) entry point
//!   resubmits once when it times out while a host is dead.
//! * **Live membership changes.** [`DistributedSkipWeb::decommission`]
//!   re-homes a leaving host's blocks (a new topology snapshot excludes it)
//!   before the runtime marks it as draining, so nothing is lost;
//!   [`DistributedSkipWeb::spawn_host`] grows the fabric and rebalances
//!   onto the new host; [`DistributedSkipWeb::heal`] re-homes around hosts
//!   that crashed. Each change is one atomic snapshot swap with a bumped
//!   [`version`](DistributedSkipWeb::health) — in-flight operations finish
//!   under the snapshot they were admitted with, and stale replicas catch
//!   up simply by seeing the next snapshot.
//!
//! [`DistributedSkipWeb::health`] reports the whole picture: alive / dead /
//! decommissioned hosts, the replication factor, and the topology version.
//!
//! # Batched operations and scatter-gather (§2.5 congestion)
//!
//! The paper's congestion analysis assumes many concurrent operations share
//! the fabric; the batched layer makes them share *envelopes* too:
//!
//! * **Batching.** [`query_batch`](DistributedSkipWeb::query_batch) /
//!   [`insert_batch`](DistributedSkipWeb::insert_batch) /
//!   [`remove_batch`](DistributedSkipWeb::remove_batch) submit many keys
//!   under one correlation group. All ops enter at the origin's root in one
//!   message, and at every hop the ops that agree on their next host are
//!   coalesced into a single [`FabricMsg::Batch`] envelope — metered as
//!   **one** host crossing. Updates whose repair trails end on one host in
//!   the same handler turn apply under one state lock, one structural
//!   rebuild per same-kind run, and one snapshot publish. Answers, applied
//!   flags, and final structures are byte-identical to the serial paths; a
//!   batch of N ops crosses strictly fewer host boundaries.
//! * **Scatter-gather reports.**
//!   [`query_scatter`](DistributedSkipWeb::query_scatter) splits a range
//!   report (quadtree box, trie prefix) at its locus across the hosts
//!   owning the output ([`Routable::report_ranges`]); the partial answers
//!   stream back to the client in parallel and merge
//!   ([`Routable::merge_answers`]) into the serial answer, byte for byte —
//!   instead of the locus walking the whole output serially.
//! * **Exactly-once resubmits.** Blocking entry points resubmit once when
//!   a wait times out while a host is dead. Queries are idempotent;
//!   updates are re-tagged with the *original* op id, and the apply path
//!   keeps an idempotence ledger keyed on `(client, op id)` — a resubmit
//!   whose first attempt actually landed is echoed its recorded outcome,
//!   never applied twice. Late replies of abandoned attempts are dropped
//!   on arrival and counted in [`HostTraffic::stale_replies`].
//!
//! # Example
//!
//! ```
//! use skipweb_core::engine::DistributedSkipWeb;
//! use skipweb_core::onedim::OneDimSkipWeb;
//!
//! let web = OneDimSkipWeb::builder((0..64).map(|i| i * 10).collect()).build();
//! let dist = DistributedSkipWeb::builder(web.inner()).spawn();
//! let client = dist.client();
//! let reply = dist.query(&client, web.random_origin(1), 137).unwrap();
//! assert_eq!(reply.answer, Some(140));
//!
//! // Dynamic updates route over the same actor fabric (§4).
//! assert!(dist.insert(&client, 141).unwrap().applied);
//! let reply = dist.query(&client, 0, 141).unwrap();
//! assert_eq!(reply.answer, Some(141));
//! dist.shutdown();
//! ```

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skipweb_net::runtime::{
    Actor, Client, ClientId, Context, Membership, Runtime, RuntimeError, Sender, TrafficClass,
};
use skipweb_net::tcp::{TcpCodec, TcpConfig, TcpTransport};
use skipweb_net::transport::Transport;
use skipweb_net::wan::{SimWanConfig, SimWanTransport};
use skipweb_net::{HostId, HostTraffic, TransportStats};
use skipweb_structures::traits::{RangeDetermined, RangeId};

use crate::levels::parent_key;
use crate::placement::{Blocking, Replication};
use crate::skipweb::SkipWeb;

/// Globally unique address of a range: level, set index, range index — the
/// "address" half of the paper's `(host, address)` pointers (§2.3). Refs are
/// only meaningful relative to one topology snapshot; every in-flight
/// message carries the snapshot its refs resolve against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalRef {
    /// Level in the hierarchy (0 = ground).
    pub level: u16,
    /// Set index within the level.
    pub set: u32,
    /// Range id within the set's structure.
    pub range: u32,
}

impl fmt::Display for GlobalRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}/S{}/R{}", self.level, self.set, self.range)
    }
}

/// A structure that the distributed engine can route operations for: on top
/// of the navigation primitives of [`RangeDetermined`], it names the
/// wire-level request/answer types, how the terminal host turns a level-0
/// locus into an answer, and which items it will admit as live inserts.
pub trait Routable: RangeDetermined<Item: Send + Sync + 'static> {
    /// What clients send: a query request (possibly richer than
    /// [`RangeDetermined::Query`] — e.g. an orthogonal box whose descent
    /// routes toward its centre point).
    type Request: Clone + Send + fmt::Debug + 'static;
    /// What the terminal host replies with.
    type Answer: Clone + Send + fmt::Debug + 'static;

    /// The point of the universe the descent routes toward for `req`.
    fn target(req: &Self::Request) -> Self::Query;

    /// Computes the answer once the descent reached the maximal level-0
    /// range containing the target — executed by the host anchoring that
    /// locus, from its local neighbourhood.
    fn answer(&self, locus: RangeId, req: &Self::Request) -> Self::Answer;

    /// Whether `item` may be admitted as a live insert against the current
    /// ground set. Actors serve wire input and must never panic on it, so
    /// structures with build-time preconditions (e.g. the trapezoidal map's
    /// general-position requirement) override this to reject violating
    /// items; the insert then completes as a no-op (`applied == false`).
    fn admissible(&self, item: &Self::Item) -> bool {
        let _ = item;
        true
    }

    /// The level-0 ranges whose stored data supports the answer to `req`
    /// at `locus` — `Some` for range-reporting requests whose answer set
    /// spans many hosts and benefits from scatter-gather fan-out (quadtree
    /// box reporting, trie prefix enumeration), `None` (the default) for
    /// point queries answered entirely from the locus neighbourhood.
    ///
    /// When `Some`, a [`DistributedSkipWeb::query_scatter`] splits the
    /// report at the locus: the engine groups the returned ranges by owning
    /// host, sends each remote group one sub-scan message, and the partial
    /// answers stream back to the client in parallel instead of the locus
    /// walking the whole output serially. Implementors must override
    /// [`partial_answer`](Self::partial_answer) and
    /// [`merge_answers`](Self::merge_answers) alongside this, and the merge
    /// of the partials over any partition of the ranges must equal
    /// [`answer`](Self::answer) byte for byte.
    fn report_ranges(&self, locus: RangeId, req: &Self::Request) -> Option<Vec<RangeId>> {
        let _ = (locus, req);
        None
    }

    /// Computes the partial answer supported by a subset of the ranges
    /// [`report_ranges`](Self::report_ranges) returned — executed by the
    /// host owning that subset during a scatter-gather report. Only called
    /// when `report_ranges` is overridden to return `Some`.
    fn partial_answer(&self, ranges: &[RangeId], req: &Self::Request) -> Self::Answer {
        let _ = (ranges, req);
        unreachable!("partial_answer must be overridden alongside report_ranges")
    }

    /// Merges the streamed partial answers of a scatter-gather report into
    /// the final answer. Must be insensitive to arrival order (partials
    /// stream back in parallel) and, over any partition of the report
    /// ranges, equal the serial [`answer`](Self::answer). Only called when
    /// `report_ranges` is overridden to return `Some`.
    fn merge_answers(parts: Vec<Self::Answer>) -> Self::Answer {
        let _ = parts;
        unreachable!("merge_answers must be overridden alongside report_ranges")
    }
}

/// What an [`EngineMsg`] is carrying through the fabric.
#[derive(Debug)]
pub(crate) enum EngineOp<D: Routable> {
    /// A query descending toward its target's locus. With `gather` set, a
    /// range-reporting request is split at the locus into per-host sub-scans
    /// whose partial answers stream back to the client in parallel.
    Query {
        /// The structure-specific request.
        req: D::Request,
        /// Whether to scatter-gather the report at the locus (see
        /// [`Routable::report_ranges`]).
        gather: bool,
    },
    /// An insert/remove routing to its locus, then repairing bottom-up.
    Update(UpdateOp<D>),
    /// One scattered sub-scan of a range report: compute the partial answer
    /// supported by `ranges` of the locus set and reply it to the client,
    /// which gathers `of` partials in total.
    Scatter {
        /// The originating request.
        req: D::Request,
        /// The level-0 ranges this host's partial covers.
        ranges: Vec<RangeId>,
        /// Total partial replies the client must gather.
        of: u32,
    },
}

/// The update half of [`EngineOp`].
#[derive(Debug)]
pub(crate) struct UpdateOp<D: Routable> {
    pub(crate) kind: UpdateKind,
    pub(crate) item: D::Item,
    pub(crate) phase: UpdatePhase,
    /// Identity of the *logical* operation, stable across timeout-resubmits
    /// (the correlation id of the first attempt). The apply path keys its
    /// idempotence record on `(client, op_id)`, so a resubmitted update that
    /// already landed is echoed, never applied twice.
    pub(crate) op_id: u64,
}

/// Which structural change an update performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum UpdateKind {
    /// Insert the item at the levels selected by `bits`.
    Insert {
        /// The item's level membership bit string (§2.3).
        bits: u64,
    },
    /// Remove the item (its stored bits come from the snapshot).
    Remove,
}

/// Where an update is in its two-phase life (§4): routing to the item's
/// locus, then walking the bottom-up repair trail. The trail is computed
/// once — when the repair starts — and rides in the message so later hosts
/// never recompute the conflict scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum UpdatePhase {
    /// Descending toward the item's level-0 locus, exactly like a query.
    Route,
    /// Walking the conflict-neighbourhood trail; `cursor` indexes the next
    /// unvisited trail entry.
    Repair {
        /// Next unvisited position on the repair trail.
        cursor: usize,
        /// The ordered hosts the repair acts on, fixed at repair start.
        trail: Vec<HostId>,
    },
}

/// One in-flight operation of the engine. Carries the topology snapshot the
/// operation was admitted under, so its [`GlobalRef`]s stay valid across
/// concurrent updates.
#[derive(Debug)]
pub struct EngineMsg<D: Routable> {
    pub(crate) op: EngineOp<D>,
    pub(crate) at: GlobalRef,
    pub(crate) client: ClientId,
    pub(crate) corr: u64,
    pub(crate) hops: u32,
    pub(crate) topo: Arc<Topology<D>>,
}

/// The wire envelope hosts exchange: a single operation, or a coalesced
/// batch of operations that were all bound for the same next host. A batch
/// envelope is metered as **one** host crossing however many ops it carries
/// — the congestion lever of §2.5 the batched entry points
/// ([`DistributedSkipWeb::query_batch`], `insert_batch`, `remove_batch`)
/// pull: at every hop, ops that agree on their next host share an envelope.
#[derive(Debug)]
pub enum FabricMsg<D: Routable> {
    /// One operation.
    One(EngineMsg<D>),
    /// Many operations bound for the same host, sharing one crossing.
    Batch(BatchMsg<D>),
}

/// The multi-op body of a [`FabricMsg::Batch`] envelope.
#[derive(Debug)]
pub struct BatchMsg<D: Routable> {
    pub(crate) ops: Vec<EngineMsg<D>>,
}

/// Reply delivered to the submitting client: the correlation id, the remote
/// hops paid end to end, and either a query answer or an update outcome.
#[derive(Debug, Clone)]
pub struct EngineReply<D: Routable> {
    /// Correlation id of the originating submit call.
    pub corr: u64,
    /// Remote hops the operation paid end to end (for owner-hosted
    /// placement this equals the simulator's metered host crossings).
    pub hops: u32,
    /// The operation's outcome.
    pub body: ReplyBody<D>,
}

/// The payload of an [`EngineReply`].
#[derive(Debug, Clone)]
pub enum ReplyBody<D: Routable> {
    /// A query's structure-specific answer.
    Answer(D::Answer),
    /// One partial answer of a scatter-gather range report: the client
    /// gathers `of` partials for this correlation id and merges them with
    /// [`Routable::merge_answers`]. Partials stream back in parallel from
    /// the hosts owning the report's output.
    Partial {
        /// The partial answer.
        answer: D::Answer,
        /// Total partial replies to gather.
        of: u32,
    },
    /// An update's outcome.
    Updated {
        /// Whether the structure changed (`false` for duplicate inserts,
        /// absent removes, and inadmissible items).
        applied: bool,
    },
    /// The operation could not make progress: every replica of a range it
    /// needed has crashed (more failures than the replication factor
    /// tolerates). Blocking entry points surface this as
    /// [`RuntimeError::Unavailable`].
    Unavailable,
}

/// Which kind of payload a [`ReplyBody`] carried — the vocabulary of
/// [`ReplyMismatch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplyKind {
    /// A full query answer.
    Answer,
    /// One scatter-gather partial.
    Partial,
    /// An update outcome.
    Updated,
    /// A fail-fast unavailability notice.
    Unavailable,
}

impl<D: Routable> ReplyBody<D> {
    /// The kind of payload this body carries.
    pub fn kind(&self) -> ReplyKind {
        match self {
            ReplyBody::Answer(_) => ReplyKind::Answer,
            ReplyBody::Partial { .. } => ReplyKind::Partial,
            ReplyBody::Updated { .. } => ReplyKind::Updated,
            ReplyBody::Unavailable => ReplyKind::Unavailable,
        }
    }
}

/// A reply carried a different payload than the accessor asked for. With
/// the wire path, mismatched replies are a real input (a confused or
/// malicious peer can send anything), so the `try_*` accessors surface
/// this as a value instead of panicking.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplyMismatch {
    /// The payload kind the accessor asked for.
    pub expected: ReplyKind,
    /// The payload kind the reply actually carried.
    pub got: ReplyKind,
}

impl fmt::Display for ReplyMismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "reply carries {:?}, accessor expected {:?}",
            self.got, self.expected
        )
    }
}

impl std::error::Error for ReplyMismatch {}

impl<D: Routable> EngineReply<D> {
    /// The query answer, or a [`ReplyMismatch`] if this reply belongs to an
    /// update, a scatter partial, or was unavailable.
    ///
    /// # Errors
    ///
    /// Returns the mismatch describing what the reply actually carried.
    pub fn try_answer(&self) -> Result<&D::Answer, ReplyMismatch> {
        match &self.body {
            ReplyBody::Answer(a) => Ok(a),
            other => Err(ReplyMismatch {
                expected: ReplyKind::Answer,
                got: other.kind(),
            }),
        }
    }

    /// Consumes the reply, returning the query answer, or a
    /// [`ReplyMismatch`] if the reply carried something else.
    ///
    /// # Errors
    ///
    /// Returns the mismatch describing what the reply actually carried.
    pub fn try_into_answer(self) -> Result<D::Answer, ReplyMismatch> {
        match self.body {
            ReplyBody::Answer(a) => Ok(a),
            other => Err(ReplyMismatch {
                expected: ReplyKind::Answer,
                got: other.kind(),
            }),
        }
    }

    /// Whether the update changed the structure, or a [`ReplyMismatch`] if
    /// this reply belongs to a query or was unavailable.
    ///
    /// # Errors
    ///
    /// Returns the mismatch describing what the reply actually carried.
    pub fn try_applied(&self) -> Result<bool, ReplyMismatch> {
        match &self.body {
            ReplyBody::Updated { applied } => Ok(*applied),
            other => Err(ReplyMismatch {
                expected: ReplyKind::Updated,
                got: other.kind(),
            }),
        }
    }
}

/// A completed query: the answer plus its cost accounting.
#[derive(Debug, Clone)]
pub struct QueryReply<D: Routable> {
    /// Correlation id of the originating [`DistributedSkipWeb::submit`].
    pub corr: u64,
    /// The structure-specific answer.
    pub answer: D::Answer,
    /// Remote hops the query paid end to end.
    pub hops: u32,
}

/// A completed update: whether it applied, plus its cost accounting.
#[derive(Debug, Clone, Copy)]
pub struct UpdateReply {
    /// Correlation id of the originating submit call.
    pub corr: u64,
    /// Whether the structure changed (`false` for duplicate inserts, absent
    /// removes, and inadmissible items).
    pub applied: bool,
    /// Remote hops the update paid: the locus lookup plus the bottom-up
    /// repair walk (§4) — equal to the simulator's metered `U(n)` for
    /// owner-hosted placement.
    pub hops: u32,
}

/// One level set as the engine sees it: the deterministic structure
/// description, its down-hyperlinks, and the (physical) hosts storing each
/// range.
#[derive(Debug)]
struct TopoSet<D: RangeDetermined> {
    structure: D,
    /// Per range: hyperlinks into the parent set one level down. Empty at
    /// level 0.
    down: Vec<Vec<RangeId>>,
    /// Per range: the hosts storing a copy (owner-hosted: exactly one;
    /// bucketed: every block host whose cone the range belongs to).
    hosts: Vec<Vec<HostId>>,
    /// Index of the parent set one level down (0 at level 0).
    parent: u32,
}

/// One immutable snapshot of the routing topology. The current snapshot is
/// swapped atomically when an update applies or the membership changes;
/// every in-flight message holds the snapshot it routes under, so old
/// snapshots are reclaimed when their last message drains.
#[derive(Debug)]
pub(crate) struct Topology<D: RangeDetermined> {
    levels: Vec<Vec<TopoSet<D>>>,
    /// Per level: set key → set index, for locating an item's set during
    /// the bottom-up repair walk.
    key_to_set: Vec<HashMap<u64, u32>>,
    /// Item → level bit string, for remove repairs and duplicate checks.
    membership: BTreeMap<D::Item, u64>,
    blocking: Blocking,
    /// Per ground item: the host and address where its operations start
    /// (the "root node for that host" of §1.1).
    origins: Vec<(HostId, GlobalRef)>,
    /// Monotone snapshot counter: every publish (update apply,
    /// decommission, spawn-host, heal) bumps it, so replicas that routed an
    /// operation under an old snapshot can tell they were stale.
    pub(crate) version: u64,
}

impl<D: RangeDetermined> Topology<D> {
    fn set(&self, at: GlobalRef) -> &TopoSet<D> {
        &self.levels[at.level as usize][at.set as usize]
    }
}

/// How the web's logical hosts map onto physical actor threads: the fold
/// modulus plus the hosts excluded from placement (decommissioned, or dead
/// hosts healed around). Part of the engine's evolving state, serialized by
/// the state lock.
#[derive(Debug, Clone)]
pub(crate) struct PlacementCtl {
    /// Number of physical actor threads; logical hosts fold onto them
    /// (`logical % phys`), so the web may grow past the thread count.
    phys: usize,
    /// Physical hosts no new placement may target. Ranges that would fold
    /// onto one are re-homed to the next non-excluded host on the ring.
    excluded: BTreeSet<u32>,
}

impl PlacementCtl {
    pub(crate) fn new(phys: usize) -> Self {
        PlacementCtl {
            phys: phys.max(1),
            excluded: BTreeSet::new(),
        }
    }

    /// Folds a logical host onto a physical one, re-homing off excluded
    /// hosts. With nothing excluded this is exactly `logical % phys`, so
    /// owner-hosted accounting parity is untouched.
    fn fold(&self, h: HostId) -> HostId {
        let phys = self.phys as u32;
        let mut p = h.0 % phys;
        if self.excluded.len() >= self.phys {
            return HostId(p); // nowhere left to re-home; let routing fail fast
        }
        while self.excluded.contains(&p) {
            p = (p + 1) % phys;
        }
        HostId(p)
    }
}

/// Builds a topology snapshot from `web` under the placement `ctl`. While
/// the web's host count stays within `ctl.phys` and nothing is excluded,
/// the fold is the identity, so owner-hosted message accounting matches the
/// simulator exactly.
pub(crate) fn build_topology<D: Routable + Send + Sync + 'static>(
    web: &SkipWeb<D>,
    ctl: &PlacementCtl,
    version: u64,
) -> Topology<D> {
    let fold = |h: HostId| ctl.fold(h);
    let levels = web.level_structs();
    let topo_levels: Vec<Vec<TopoSet<D>>> = levels
        .iter()
        .enumerate()
        .map(|(lvl, level)| {
            level
                .sets
                .iter()
                .map(|set| {
                    let parent = if lvl == 0 {
                        0
                    } else {
                        let pkey = parent_key(set.key, lvl as u32);
                        levels[lvl - 1].set_by_key[&pkey]
                    };
                    TopoSet {
                        structure: set.structure.clone(),
                        down: set.down.clone(),
                        hosts: set
                            .range_host
                            .iter()
                            .map(|copies| {
                                // Folding can alias distinct logical hosts;
                                // keep first occurrences so the primary copy
                                // stays copies[0].
                                let mut mapped: Vec<HostId> = Vec::new();
                                for h in copies.iter().copied().map(fold) {
                                    if !mapped.contains(&h) {
                                        mapped.push(h);
                                    }
                                }
                                mapped
                            })
                            .collect(),
                        parent,
                    }
                })
                .collect()
        })
        .collect();
    let key_to_set = levels.iter().map(|l| l.set_by_key.clone()).collect();
    let membership = web
        .ground()
        .iter()
        .cloned()
        .zip(web.item_bits().iter().copied())
        .collect();
    let top = web.top_level() as usize;
    let top_level = &levels[top];
    let origins = (0..web.len())
        .map(|g| {
            let set_idx = top_level.set_of_item[g] as usize;
            let set = &top_level.sets[set_idx];
            let entry = set
                .structure
                .entry_of_item(top_level.local_of_item[g] as usize);
            (
                fold(set.range_host[entry.index()][0]),
                GlobalRef {
                    level: top as u16,
                    set: set_idx as u32,
                    range: entry.0,
                },
            )
        })
        .collect();
    Topology {
        levels: topo_levels,
        key_to_set,
        membership,
        blocking: web.blocking(),
        origins,
        version,
    }
}

/// Resolves a replicated range to a host from the perspective of `me`: the
/// co-located copy when one exists (free to act on), else the nearest
/// surviving copy in replica order (decommissioned hosts still serve while
/// they drain; only crashed ones are skipped). `None` when every copy has
/// crashed — more failures than the replication factor tolerates.
fn pick_alive(copies: &[HostId], me: HostId, membership: &Membership) -> Option<HostId> {
    if copies.contains(&me) {
        // The executing host is by definition functioning, whatever the
        // membership snapshot says.
        return Some(me);
    }
    copies.iter().copied().find(|&h| membership.is_routable(h))
}

/// Outcome of processing an operation "as far as we can internally" (§2.5).
enum RouteOutcome {
    /// The descent reached the maximal level-0 range containing the target.
    AtLocus(GlobalRef),
    /// The next range lives elsewhere: hand the operation to `host`.
    Forward { next: GlobalRef, host: HostId },
    /// Every replica of the next range has crashed: the operation cannot
    /// make progress under this snapshot.
    Unavailable,
}

/// Runs the §2.5 descent from `at` toward `q`'s level-0 locus, advancing
/// for free while the next range is in `me`'s shard and steering each hop
/// toward an alive replica.
fn route_step<D: Routable + Send + Sync + 'static>(
    topo: &Topology<D>,
    me: HostId,
    mut at: GlobalRef,
    q: &D::Query,
    membership: &Membership,
) -> RouteOutcome {
    loop {
        let set = topo.set(at);
        let next = match set.structure.search_step(RangeId(at.range), q) {
            // Walk one range toward the locus within this level.
            Some(next) => GlobalRef {
                level: at.level,
                set: at.set,
                range: next.0,
            },
            // Level locus reached: done at the ground level …
            None if at.level == 0 => return RouteOutcome::AtLocus(at),
            // … or descend through the down-hyperlinks (§2.3).
            None => {
                let candidates = &set.down[at.range as usize];
                assert!(
                    !candidates.is_empty(),
                    "hyperlinks of a subset range into its superset cannot be empty"
                );
                let parent_level = at.level - 1;
                let parent = &topo.levels[parent_level as usize][set.parent as usize];
                let entry = parent.structure.best_entry(candidates, q);
                GlobalRef {
                    level: parent_level,
                    set: set.parent,
                    range: entry.0,
                }
            }
        };
        match pick_alive(&topo.set(next).hosts[next.range as usize], me, membership) {
            Some(host) if host == me => {
                // Process as far as we can internally (§2.5): free.
                at = next;
            }
            Some(host) => return RouteOutcome::Forward { next, host },
            None => return RouteOutcome::Unavailable,
        }
    }
}

/// The ordered hosts an update's bottom-up repair must act on (§4): for
/// every level the item belongs to, the hosts of the ranges conflicting
/// with the item's probe range — mirroring the simulator's
/// `meter_update_neighbourhood` visit for visit, so the walk's host
/// transitions equal the metered messages when every host is alive. Dead
/// hosts are steered around via their alive replicas; `None` when some
/// range has no alive replica left (the update is unavailable under this
/// snapshot). Empty trail for a remove whose item is not in the snapshot.
fn repair_trail<D: Routable + Send + Sync + 'static>(
    topo: &Topology<D>,
    item: &D::Item,
    kind: UpdateKind,
    membership: &Membership,
) -> Option<Vec<HostId>> {
    let bits = match kind {
        UpdateKind::Insert { bits } => bits,
        UpdateKind::Remove => match topo.membership.get(item) {
            Some(&bits) => bits,
            None => return Some(Vec::new()),
        },
    };
    let probe_range = D::probe_range(item);
    let mut trail = Vec::new();
    let complete = crate::skipweb::walk_update_neighbourhood(
        bits,
        topo.blocking,
        topo.levels.len(),
        |level, key| topo.key_to_set[level as usize].get(&key).copied(),
        |level, set_idx| {
            let set = &topo.levels[level as usize][set_idx as usize];
            set.structure
                .conflicts(&probe_range)
                .into_iter()
                .map(|r| set.hosts[r.index()].clone())
                .collect()
        },
        |host| membership.is_routable(host),
        |host| trail.push(host),
    );
    complete.then_some(trail)
}

/// Most recent update outcomes remembered for exactly-once resubmits; old
/// entries are evicted FIFO once the ledger exceeds this.
const APPLIED_OPS_CAP: usize = 1 << 16;

/// The authoritative evolving web every host shares. Held only while an
/// update applies (which includes the structural rebuild), so its lock is
/// off the read path.
struct EngineState<D: Routable + Send + Sync + 'static> {
    web: SkipWeb<D>,
    /// Draws origins and level bits for the convenience
    /// [`DistributedSkipWeb::insert`] / [`DistributedSkipWeb::remove`]
    /// entry points (explicit-bits APIs bypass it).
    rng: StdRng,
    /// The logical→physical host fold plus the excluded (decommissioned /
    /// healed-around) hosts.
    placement: PlacementCtl,
    /// Outcomes of updates that reached the apply step, keyed by the
    /// logical operation's `(client, op_id)`. A timeout-resubmit whose
    /// first attempt actually landed finds its record here and is echoed
    /// instead of applied again — the exactly-once guarantee.
    applied_ops: HashMap<(ClientId, u64), bool>,
    /// FIFO eviction order for `applied_ops` (bounded memory).
    applied_order: std::collections::VecDeque<(ClientId, u64)>,
}

impl<D: Routable + Send + Sync + 'static> EngineState<D> {
    /// Records the outcome of a logical update the first time it reaches
    /// apply; replays keep the original outcome.
    fn record_outcome(&mut self, key: (ClientId, u64), applied: bool) {
        use std::collections::hash_map::Entry;
        if let Entry::Vacant(slot) = self.applied_ops.entry(key) {
            slot.insert(applied);
            self.applied_order.push_back(key);
            while self.applied_order.len() > APPLIED_OPS_CAP {
                if let Some(old) = self.applied_order.pop_front() {
                    self.applied_ops.remove(&old);
                }
            }
        }
    }
}

/// The structural change one durable record describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DurableKind {
    /// An insert, with the level bit string that shapes the item's tower —
    /// logged so recovery can rebuild the identical hierarchy
    /// ([`SkipWebBuilder::bits`](crate::skipweb::SkipWebBuilder::bits)).
    Insert {
        /// The tower's level bits.
        bits: u64,
    },
    /// A remove.
    Remove,
}

/// One update that reached the apply step, as handed to a [`Durability`]
/// sink: the logical operation identity the idempotence ledger keys on,
/// the structural change, and whether it actually changed the web.
#[derive(Debug)]
pub struct DurableOp<'a, D: Routable> {
    /// The submitting client.
    pub client: ClientId,
    /// The client-scoped operation id (resubmits reuse it).
    pub op_id: u64,
    /// Insert (with tower bits) or remove.
    pub kind: DurableKind,
    /// The item the operation targets.
    pub item: &'a D::Item,
    /// Whether the web changed (`false` for duplicate inserts, absent
    /// removes, and inadmissible items — logged anyway so replay restores
    /// the ledger entry and keeps resubmits exactly-once across a crash).
    pub applied: bool,
}

/// A write-ahead sink for the engine's apply path. [`FabricBuilder::
/// durability`](FabricBuilder::durability) installs one per deployment;
/// the applying host then calls [`append`](Self::append) **under the same
/// state lock as the structural change** (`apply_insert_batch` /
/// `apply_remove_batch`), before the new topology snapshot publishes. Log
/// order therefore equals apply order, and no operation can be observed by
/// queries before it is logged.
///
/// Only operations that reach the apply step arrive here: idempotence-
/// ledger echoes (timeout-resubmits of already-landed ops) and locus-side
/// no-op short-circuits are not re-logged. Implementations must not call
/// back into the fabric (the state lock is held).
pub trait Durability<D: Routable + Send + Sync + 'static>: Send + Sync {
    /// Appends one apply turn's operations to the log, in apply order, on
    /// behalf of `host` (the host whose repair walk completed them).
    fn append(&self, host: HostId, ops: &[DurableOp<'_, D>]);
}

struct Shared<D: Routable + Send + Sync + 'static> {
    state: Mutex<EngineState<D>>,
    /// The current topology snapshot, in its own cell so submits only pay
    /// an `Arc` clone — never a wait on an in-progress rebuild. Swapped by
    /// the applier *while still holding the state lock* (lock order is
    /// always `state` then `topo`), so publish order equals apply order.
    topo: Mutex<Arc<Topology<D>>>,
    /// Write-ahead sink fed by the apply path, when the deployment was
    /// built with one ([`FabricBuilder::durability`]).
    durability: Option<Arc<dyn Durability<D>>>,
    /// The wait-and-retry policy newly registered clients start with
    /// ([`FabricBuilder::timeouts`]).
    default_timeouts: Timeouts,
    /// Worker threads for the apply path's dirty-set rebuild stage
    /// ([`FabricBuilder::apply_threads`]); `1` repairs on the applying
    /// host's own actor thread.
    apply_threads: usize,
}

impl<D: Routable + Send + Sync + 'static> Shared<D> {
    /// The current topology snapshot (cheap: one lock + `Arc` clone).
    fn current_topo(&self) -> Arc<Topology<D>> {
        self.topo.lock().clone()
    }

    /// Rebuilds and publishes the topology from the current web and
    /// placement, additionally excluding every host the membership reports
    /// as dead or decommissioned, with a bumped snapshot version. The
    /// caller must hold the state lock, so publish order equals apply
    /// order.
    fn republish(&self, st: &EngineState<D>, membership: &Membership) {
        let mut ctl = st.placement.clone();
        for h in membership.dead_hosts() {
            ctl.excluded.insert(h.0);
        }
        for h in membership.decommissioned_hosts() {
            ctl.excluded.insert(h.0);
        }
        let version = self.topo.lock().version + 1;
        let next = Arc::new(build_topology(&st.web, &ctl, version));
        *self.topo.lock() = next;
    }
}

/// Per-host actor executing the generic forwarding loop of §2.5 and the
/// update repair walks of §4.
pub struct EngineActor<D: Routable + Send + Sync + 'static> {
    shared: Arc<Shared<D>>,
}

/// What one handler turn accumulates before anything leaves the host: ops
/// to hand off — bucketed per `(class, destination)` so every destination
/// gets exactly one envelope, the batching layer's coalescing — and updates
/// whose repair trail ended here, applied together under one state lock and
/// one snapshot publish.
struct Turn<D: Routable> {
    forwards: BTreeMap<(TrafficClass, HostId), Vec<EngineMsg<D>>>,
    applies: Vec<EngineMsg<D>>,
}

impl<D: Routable> Turn<D> {
    fn new() -> Self {
        Turn {
            forwards: BTreeMap::new(),
            applies: Vec::new(),
        }
    }

    fn forward(&mut self, host: HostId, msg: EngineMsg<D>, class: TrafficClass) {
        self.forwards.entry((class, host)).or_default().push(msg);
    }
}

impl<D: Routable + Send + Sync + 'static> EngineActor<D> {
    fn drive(
        &self,
        me: HostId,
        msg: EngineMsg<D>,
        ctx: &mut Context<'_, FabricMsg<D>, EngineReply<D>>,
        membership: &Membership,
        turn: &mut Turn<D>,
    ) {
        match msg.op {
            EngineOp::Query { .. } => self.drive_query(me, msg, ctx, membership, turn),
            EngineOp::Update(_) => self.drive_update(me, msg, ctx, membership, turn),
            EngineOp::Scatter { .. } => self.drive_scatter(msg, ctx),
        }
    }

    fn drive_query(
        &self,
        me: HostId,
        mut msg: EngineMsg<D>,
        ctx: &mut Context<'_, FabricMsg<D>, EngineReply<D>>,
        membership: &Membership,
        turn: &mut Turn<D>,
    ) {
        let EngineOp::Query { ref req, gather } = msg.op else {
            unreachable!("drive_query only sees queries");
        };
        let q = D::target(req);
        match route_step(&msg.topo, me, msg.at, &q, membership) {
            RouteOutcome::AtLocus(locus) => {
                if gather && self.try_scatter(me, locus, &msg, ctx, membership, turn) {
                    return;
                }
                let answer = msg
                    .topo
                    .set(locus)
                    .structure
                    .answer(RangeId(locus.range), req);
                ctx.reply(
                    msg.client,
                    EngineReply {
                        corr: msg.corr,
                        hops: msg.hops,
                        body: ReplyBody::Answer(answer),
                    },
                );
            }
            RouteOutcome::Forward { next, host } => {
                msg.at = next;
                msg.hops += 1;
                turn.forward(host, msg, TrafficClass::Query);
            }
            RouteOutcome::Unavailable => {
                ctx.reply(
                    msg.client,
                    EngineReply {
                        corr: msg.corr,
                        hops: msg.hops,
                        body: ReplyBody::Unavailable,
                    },
                );
            }
        }
    }

    /// Splits a range report at its locus: the supporting level-0 ranges
    /// ([`Routable::report_ranges`]) are grouped by owning host; the local
    /// group's partial is answered immediately, each remote group gets one
    /// sub-scan message (one crossing per output host instead of a serial
    /// walk), and the client gathers the partials. Returns `false` — leaving
    /// the serial answer path to run — when the request is not a
    /// scatterable report or the whole output is already local.
    fn try_scatter(
        &self,
        me: HostId,
        locus: GlobalRef,
        msg: &EngineMsg<D>,
        ctx: &mut Context<'_, FabricMsg<D>, EngineReply<D>>,
        membership: &Membership,
        turn: &mut Turn<D>,
    ) -> bool {
        let EngineOp::Query { ref req, .. } = msg.op else {
            return false;
        };
        let set = msg.topo.set(locus);
        let Some(ranges) = set.structure.report_ranges(RangeId(locus.range), req) else {
            return false;
        };
        if ranges.is_empty() {
            return false;
        }
        let mut local: Vec<RangeId> = Vec::new();
        let mut remote: BTreeMap<HostId, Vec<RangeId>> = BTreeMap::new();
        for r in ranges {
            match pick_alive(&set.hosts[r.index()], me, membership) {
                Some(h) if h == me => local.push(r),
                Some(h) => remote.entry(h).or_default().push(r),
                None => {
                    // Part of the output lost every replica: fail the whole
                    // report fast instead of returning a silently truncated
                    // answer.
                    ctx.reply(
                        msg.client,
                        EngineReply {
                            corr: msg.corr,
                            hops: msg.hops,
                            body: ReplyBody::Unavailable,
                        },
                    );
                    return true;
                }
            }
        }
        if remote.is_empty() {
            return false;
        }
        let of = remote.len() as u32 + u32::from(!local.is_empty());
        for (host, ranges) in remote {
            turn.forward(
                host,
                EngineMsg {
                    op: EngineOp::Scatter {
                        req: req.clone(),
                        ranges,
                        of,
                    },
                    at: locus,
                    client: msg.client,
                    corr: msg.corr,
                    hops: msg.hops + 1,
                    topo: Arc::clone(&msg.topo),
                },
                TrafficClass::Query,
            );
        }
        if !local.is_empty() {
            let answer = set.structure.partial_answer(&local, req);
            ctx.reply(
                msg.client,
                EngineReply {
                    corr: msg.corr,
                    hops: msg.hops,
                    body: ReplyBody::Partial { answer, of },
                },
            );
        }
        true
    }

    /// Executes one scattered sub-scan: the partial answer supported by this
    /// host's share of the report's ranges, streamed straight back to the
    /// client.
    fn drive_scatter(
        &self,
        msg: EngineMsg<D>,
        ctx: &mut Context<'_, FabricMsg<D>, EngineReply<D>>,
    ) {
        let EngineOp::Scatter {
            ref req,
            ref ranges,
            of,
        } = msg.op
        else {
            unreachable!("drive_scatter only sees scatters");
        };
        let answer = msg.topo.set(msg.at).structure.partial_answer(ranges, req);
        ctx.reply(
            msg.client,
            EngineReply {
                corr: msg.corr,
                hops: msg.hops,
                body: ReplyBody::Partial { answer, of },
            },
        );
    }

    fn drive_update(
        &self,
        me: HostId,
        mut msg: EngineMsg<D>,
        ctx: &mut Context<'_, FabricMsg<D>, EngineReply<D>>,
        membership: &Membership,
        turn: &mut Turn<D>,
    ) {
        let EngineOp::Update(ref u) = msg.op else {
            unreachable!("drive_update only sees updates");
        };
        match u.phase {
            UpdatePhase::Route => {
                let q = D::item_query(&u.item);
                match route_step(&msg.topo, me, msg.at, &q, membership) {
                    RouteOutcome::Forward { next, host } => {
                        msg.at = next;
                        msg.hops += 1;
                        turn.forward(host, msg, TrafficClass::Update);
                    }
                    RouteOutcome::AtLocus(_) => {
                        // A duplicate insert (or a remove that lost its
                        // target to a concurrent update) stops at the locus,
                        // paying only the lookup — as in the simulator.
                        let present = msg.topo.membership.contains_key(&u.item);
                        let noop = match u.kind {
                            UpdateKind::Insert { .. } => present,
                            UpdateKind::Remove => !present,
                        };
                        if noop {
                            // The locus's current view can be the *result*
                            // of this very op's first attempt (applied, but
                            // its reply was lost in transit): consult the
                            // idempotence ledger so a timeout-resubmit is
                            // echoed the recorded outcome instead of being
                            // misreported as a no-op.
                            let applied = self
                                .shared
                                .state
                                .lock()
                                .applied_ops
                                .get(&(msg.client, u.op_id))
                                .copied()
                                .unwrap_or(false);
                            ctx.reply(
                                msg.client,
                                EngineReply {
                                    corr: msg.corr,
                                    hops: msg.hops,
                                    body: ReplyBody::Updated { applied },
                                },
                            );
                        } else {
                            // The repair trail is computed exactly once,
                            // here at repair start, and rides in the
                            // message from now on.
                            match repair_trail(&msg.topo, &u.item, u.kind, membership) {
                                Some(trail) => {
                                    self.continue_repair(me, 0, trail, msg, membership, turn)
                                }
                                None => ctx.reply(
                                    msg.client,
                                    EngineReply {
                                        corr: msg.corr,
                                        hops: msg.hops,
                                        body: ReplyBody::Unavailable,
                                    },
                                ),
                            }
                        }
                    }
                    RouteOutcome::Unavailable => {
                        ctx.reply(
                            msg.client,
                            EngineReply {
                                corr: msg.corr,
                                hops: msg.hops,
                                body: ReplyBody::Unavailable,
                            },
                        );
                    }
                }
            }
            UpdatePhase::Repair { cursor, ref trail } => {
                let trail = trail.clone();
                self.continue_repair(me, cursor, trail, msg, membership, turn);
            }
        }
    }

    /// Advances the repair walk: acts for free on every consecutive trail
    /// entry in `me`'s shard — skipping entries whose host crashed after
    /// the trail was computed (their copy is stale until the snapshot swap
    /// heals it; forwarding there would black-hole the update) — then
    /// either forwards to the next alive host (one message — exactly a
    /// meter host transition, coalesced with other ops bound there) or,
    /// with the trail exhausted, queues the structural change for this
    /// turn's apply step.
    fn continue_repair(
        &self,
        me: HostId,
        start: usize,
        trail: Vec<HostId>,
        mut msg: EngineMsg<D>,
        membership: &Membership,
        turn: &mut Turn<D>,
    ) {
        let mut cursor = start;
        while cursor < trail.len()
            && (trail[cursor] == me || !membership.is_routable(trail[cursor]))
        {
            cursor += 1;
        }
        if cursor < trail.len() {
            let host = trail[cursor];
            let EngineOp::Update(ref mut u) = msg.op else {
                unreachable!("repairs are updates");
            };
            u.phase = UpdatePhase::Repair { cursor, trail };
            msg.hops += 1;
            turn.forward(host, msg, TrafficClass::Update);
        } else {
            turn.applies.push(msg);
        }
    }

    /// The final step of the turn's updates: atomically apply every
    /// structural change that completed its repair here — consecutive
    /// same-kind runs install with **one** structural rebuild each
    /// ([`SkipWeb::apply_insert_batch`]) and the whole group publishes
    /// **one** new topology snapshot — then reply per op. In-flight
    /// operations keep their old snapshots, so none of them ever observes
    /// an update half-applied.
    ///
    /// Exactly-once: each op's `(client, op_id)` is looked up in the
    /// idempotence ledger first. A timeout-resubmit whose first attempt
    /// already landed is *echoed* with the recorded outcome instead of
    /// applied again — without this, a resubmitted insert could double-apply
    /// (e.g. re-insert an item a concurrent remove had since deleted).
    fn apply_turn(
        &self,
        applies: Vec<EngineMsg<D>>,
        ctx: &mut Context<'_, FabricMsg<D>, EngineReply<D>>,
        membership: &Membership,
    ) {
        let n = applies.len();
        let mut metas: Vec<(ClientId, u64, u32, (ClientId, u64))> = Vec::with_capacity(n);
        let mut ops: Vec<(UpdateKind, D::Item)> = Vec::with_capacity(n);
        for msg in applies {
            let EngineMsg {
                op: EngineOp::Update(u),
                client,
                corr,
                hops,
                ..
            } = msg
            else {
                unreachable!("applies are updates");
            };
            metas.push((client, corr, hops, (client, u.op_id)));
            ops.push((u.kind, u.item));
        }
        let mut outcomes: Vec<bool> = vec![false; n];
        {
            let st = &mut *self.shared.state.lock();
            let mut any_applied = false;
            // Ops that reach the apply step this turn (ledger echoes are
            // excluded): what a durability sink gets to log.
            let mut fresh: Vec<usize> = Vec::new();
            let mut i = 0;
            while i < n {
                let key = metas[i].3;
                if let Some(&a) = st.applied_ops.get(&key) {
                    // Resubmit of an op that already landed: echo, don't
                    // re-apply (and don't re-log).
                    outcomes[i] = a;
                    i += 1;
                    continue;
                }
                // Accumulate the longest run of un-replayed same-kind ops;
                // each run costs one rebuild.
                let inserting = matches!(ops[i].0, UpdateKind::Insert { .. });
                let mut run: Vec<usize> = Vec::new();
                while i < n
                    && !st.applied_ops.contains_key(&metas[i].3)
                    && matches!(ops[i].0, UpdateKind::Insert { .. }) == inserting
                {
                    run.push(i);
                    i += 1;
                }
                if inserting {
                    let mut batch: Vec<(D::Item, u64)> = Vec::with_capacity(run.len());
                    let mut slots: Vec<usize> = Vec::with_capacity(run.len());
                    for &j in &run {
                        let UpdateKind::Insert { bits } = ops[j].0 else {
                            unreachable!("insert runs hold inserts");
                        };
                        if st.web.base().admissible(&ops[j].1) {
                            batch.push((ops[j].1.clone(), bits));
                            slots.push(j);
                        } else {
                            st.record_outcome(metas[j].3, false);
                        }
                    }
                    let applied = st
                        .web
                        .apply_insert_batch_threads(batch, self.shared.apply_threads);
                    for (j, a) in slots.into_iter().zip(applied) {
                        outcomes[j] = a;
                        st.record_outcome(metas[j].3, a);
                        any_applied |= a;
                    }
                } else {
                    let items: Vec<D::Item> = run.iter().map(|&j| ops[j].1.clone()).collect();
                    let applied = st
                        .web
                        .apply_remove_batch_threads(&items, self.shared.apply_threads);
                    for (&j, a) in run.iter().zip(applied) {
                        outcomes[j] = a;
                        st.record_outcome(metas[j].3, a);
                        any_applied |= a;
                    }
                }
                fresh.extend(run);
            }
            if let Some(durability) = &self.shared.durability {
                // Write-ahead append under the same state lock as the
                // structural change, before the snapshot publishes: log
                // order equals apply order, and nothing is observable by
                // queries before it is durable.
                let records: Vec<DurableOp<'_, D>> = fresh
                    .iter()
                    .map(|&j| DurableOp {
                        client: metas[j].3 .0,
                        op_id: metas[j].3 .1,
                        kind: match ops[j].0 {
                            UpdateKind::Insert { bits } => DurableKind::Insert { bits },
                            UpdateKind::Remove => DurableKind::Remove,
                        },
                        item: &ops[j].1,
                        applied: outcomes[j],
                    })
                    .collect();
                if !records.is_empty() {
                    durability.append(ctx.host(), &records);
                }
            }
            if any_applied {
                // Publish while still holding the state lock so snapshot
                // order equals apply order; the topo lock itself is only
                // held for the pointer swap.
                self.shared.republish(st, membership);
            }
        }
        for (i, (client, corr, hops, _)) in metas.into_iter().enumerate() {
            ctx.reply(
                client,
                EngineReply {
                    corr,
                    hops,
                    body: ReplyBody::Updated {
                        applied: outcomes[i],
                    },
                },
            );
        }
    }
}

impl<D: Routable + Send + Sync + 'static> Actor for EngineActor<D> {
    type Msg = FabricMsg<D>;
    type Reply = EngineReply<D>;

    fn on_message(
        &mut self,
        _from: Sender,
        msg: FabricMsg<D>,
        ctx: &mut Context<'_, FabricMsg<D>, EngineReply<D>>,
    ) {
        let me = ctx.host();
        // One membership snapshot per hop: each forward re-checks liveness,
        // which is what lets routing steer around hosts that die mid-query.
        let membership = ctx.membership();
        let mut turn = Turn::new();
        match msg {
            FabricMsg::One(m) => self.drive(me, m, ctx, &membership, &mut turn),
            FabricMsg::Batch(batch) => {
                // Every op advances "as far as it can internally" here, then
                // re-coalesces with the others by next destination below.
                for m in batch.ops {
                    self.drive(me, m, ctx, &membership, &mut turn);
                }
            }
        }
        if !turn.applies.is_empty() {
            let applies = std::mem::take(&mut turn.applies);
            self.apply_turn(applies, ctx, &membership);
        }
        for ((class, host), mut msgs) in turn.forwards {
            if msgs.len() == 1 {
                ctx.send_class(
                    host,
                    FabricMsg::One(msgs.pop().expect("len checked")),
                    class,
                );
            } else {
                let ops = msgs.len() as u32;
                ctx.send_multi(host, FabricMsg::Batch(BatchMsg { ops: msgs }), class, ops);
            }
        }
    }
}

/// A client handle supporting many concurrent in-flight operations, matched
/// to replies by correlation id. Shareable across threads (`Sync`); replies
/// pulled by one thread for another's correlation id are parked in a shared
/// buffer.
///
/// The blocking entry points ([`DistributedSkipWeb::query`],
/// [`DistributedSkipWeb::insert`], …) wait and retry per this client's
/// [`Timeouts`] policy (defaults: 10 s queries / 30 s updates),
/// configurable per client with [`set_timeouts`](Self::set_timeouts) or
/// for a whole deployment with [`FabricBuilder::timeouts`] — stress and
/// fault-injection suites shorten the waits so a lost operation surfaces
/// quickly.
pub struct EngineClient<D: Routable + Send + Sync + 'static> {
    inner: Client<FabricMsg<D>, EngineReply<D>>,
    next_corr: AtomicU64,
    pending: Mutex<Vec<EngineReply<D>>>,
    /// Correlation ids abandoned by a timeout-resubmit. Their late replies
    /// — already-parked ones *and* every later arrival, of which a
    /// scatter-gather op can produce several — are dropped and counted in
    /// [`HostTraffic::stale_replies`], so `recv_any` can never hand a stale
    /// reply to a later operation and nothing accumulates in the mailbox
    /// forever. Bounded: the oldest markers are pruned past
    /// [`STALE_MARKER_CAP`] (correlation ids are monotone, so the smallest
    /// entries are the oldest).
    stale: Mutex<std::collections::BTreeSet<u64>>,
    /// This client's wait-and-retry policy. Operations already blocking
    /// keep the policy they started with.
    timeouts: Mutex<Timeouts>,
}

/// Most abandoned correlation ids remembered per client (see
/// [`EngineClient`]'s stale tracking).
const STALE_MARKER_CAP: usize = 1024;

/// Default blocking-query timeout (10 s).
pub const DEFAULT_QUERY_TIMEOUT: Duration = Duration::from_secs(10);
/// Default blocking-update timeout (30 s).
pub const DEFAULT_UPDATE_TIMEOUT: Duration = Duration::from_secs(30);

/// The complete wait-and-retry policy of a blocking client call, settable
/// per client ([`EngineClient::set_timeouts`]) or for every client of a
/// deployment ([`FabricBuilder::timeouts`]). Consolidates what used to be
/// two setter methods plus a hardcoded lossy-transport resubmit constant:
/// the resubmit widening is now configuration, not a branch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Timeouts {
    /// Blocking-query wait per attempt (default 10 s).
    pub query: Duration,
    /// Blocking-update wait per attempt (default 30 s).
    pub update: Duration,
    /// Timeout-resubmit budget on a lossless transport, where a timeout
    /// signals an operation lost in a crashed host's mailbox — one retry
    /// after the crash suffices (default 1). Resubmits only fire while a
    /// host is dead.
    pub resubmits: usize,
    /// Timeout-resubmit budget on a lossy transport, where *any* hop can
    /// silently drop the operation even with every host alive, so the gate
    /// widens: retry on every timeout. An operation survives a crossing
    /// with probability `(1 - loss)^2` (message plus its share of the
    /// reply), so at 5% loss an attempt over ~7 crossings fails with
    /// probability ≈ 0.26 — the default twelve attempts push the residual
    /// failure rate below `10^-6`, far under what any test run can observe.
    pub lossy_resubmits: usize,
}

impl Timeouts {
    /// The defaults: 10 s queries, 30 s updates, 1 lossless / 12 lossy
    /// resubmits.
    pub const DEFAULT: Timeouts = Timeouts {
        query: DEFAULT_QUERY_TIMEOUT,
        update: DEFAULT_UPDATE_TIMEOUT,
        resubmits: 1,
        lossy_resubmits: 12,
    };

    /// Default resubmit budgets with explicit query and update waits.
    pub fn new(query: Duration, update: Duration) -> Self {
        Timeouts {
            query,
            update,
            ..Self::DEFAULT
        }
    }

    /// One wait for both queries and updates — the stress-suite shape,
    /// where short timeouts surface lost operations quickly.
    pub fn uniform(timeout: Duration) -> Self {
        Self::new(timeout, timeout)
    }

    /// Overrides both resubmit budgets.
    pub fn with_resubmits(mut self, lossless: usize, lossy: usize) -> Self {
        self.resubmits = lossless;
        self.lossy_resubmits = lossy;
        self
    }
}

impl Default for Timeouts {
    fn default() -> Self {
        Self::DEFAULT
    }
}

impl<D: Routable + Send + Sync + 'static> EngineClient<D> {
    /// This client's runtime identifier.
    pub fn id(&self) -> ClientId {
        self.inner.id()
    }

    /// Raises this client's next operation id to at least `floor`.
    ///
    /// A freshly spawned runtime hands out the same client ids as the one
    /// before it, so a deployment cold-started from a durability log
    /// ([`FabricBuilder::restore_ledger`]) would mint `(client, op id)`
    /// pairs already present in the recovered idempotence ledger — and the
    /// ledger would echo the old outcome instead of applying the new
    /// operation. Recovery layers call this with one past the highest
    /// logged op id to keep the two incarnations' identities disjoint.
    pub fn advance_corr(&self, floor: u64) {
        self.next_corr.fetch_max(floor, Ordering::Relaxed);
    }

    /// Replaces this client's wait-and-retry policy. Operations already
    /// blocking keep the policy they started with.
    pub fn set_timeouts(&self, timeouts: Timeouts) {
        *self.timeouts.lock() = timeouts;
    }

    /// The current wait-and-retry policy.
    pub fn timeouts(&self) -> Timeouts {
        *self.timeouts.lock()
    }

    /// The current blocking-query timeout.
    pub fn query_timeout(&self) -> Duration {
        self.timeouts.lock().query
    }

    /// The current blocking-update timeout.
    pub fn update_timeout(&self) -> Duration {
        self.timeouts.lock().update
    }

    /// Abandons `corr`: already-parked replies are dropped now, and every
    /// late reply is discarded on arrival instead of accumulating in the
    /// pending buffer — each drop counted in
    /// [`HostTraffic::stale_replies`]. Used when an operation is
    /// resubmitted after a timeout. The marker persists (a scattered report
    /// can produce several late partials), bounded by
    /// [`STALE_MARKER_CAP`].
    fn mark_stale(&self, corr: u64) {
        {
            let mut pending = self.pending.lock();
            let before = pending.len();
            pending.retain(|r| r.corr != corr);
            for _ in pending.len()..before {
                self.inner.note_stale_reply();
            }
        }
        let mut stale = self.stale.lock();
        stale.insert(corr);
        while stale.len() > STALE_MARKER_CAP {
            let oldest = *stale.iter().next().expect("nonempty past the cap");
            stale.remove(&oldest);
        }
    }

    /// Whether `corr` was abandoned by a timeout-resubmit.
    fn is_stale(&self, corr: u64) -> bool {
        self.stale.lock().contains(&corr)
    }

    /// Receives the next reply for *any* of this client's in-flight
    /// operations (buffered ones first), waiting up to `timeout`.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RuntimeError::Timeout`], host down or
    /// panicked, disconnect).
    pub fn recv_any(&self, timeout: Duration) -> Result<EngineReply<D>, RuntimeError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut pending = self.pending.lock();
                if !pending.is_empty() {
                    return Ok(pending.remove(0));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::Timeout);
            }
            // Short slices so a thread blocked here notices replies that a
            // concurrent `recv_corr` on the shared client drained from the
            // channel and parked in the pending buffer.
            let slice = (deadline - now).min(Duration::from_millis(25));
            match self.inner.recv_timeout(slice) {
                // Late reply to an abandoned correlation id: drop and count.
                Ok(reply) if self.is_stale(reply.corr) => self.inner.note_stale_reply(),
                Ok(reply) => return Ok(reply),
                Err(RuntimeError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Receives the reply for the operation submitted with correlation id
    /// `corr`, waiting up to `timeout` and parking replies to other
    /// correlation ids for later [`recv_any`](Self::recv_any) /
    /// `recv_corr` calls.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors ([`RuntimeError::Timeout`], host down or
    /// panicked, disconnect).
    pub fn recv_corr(&self, corr: u64, timeout: Duration) -> Result<EngineReply<D>, RuntimeError> {
        let deadline = Instant::now() + timeout;
        loop {
            {
                let mut pending = self.pending.lock();
                if let Some(i) = pending.iter().position(|r| r.corr == corr) {
                    return Ok(pending.remove(i));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(RuntimeError::Timeout);
            }
            // Short slices so concurrent users of a shared client notice
            // replies another thread parked for them.
            let slice = (deadline - now).min(Duration::from_millis(25));
            match self.inner.recv_timeout(slice) {
                Ok(reply) if reply.corr == corr => return Ok(reply),
                Ok(reply) => {
                    if self.is_stale(reply.corr) {
                        // Late reply to an abandoned id: drop and count.
                        self.inner.note_stale_reply();
                    } else {
                        self.pending.lock().push(reply);
                    }
                }
                Err(RuntimeError::Timeout) => {}
                Err(e) => return Err(e),
            }
        }
    }

    /// Compatibility alias of [`recv_any`](Self::recv_any).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors.
    pub fn recv_timeout(&self, timeout: Duration) -> Result<EngineReply<D>, RuntimeError> {
        self.recv_any(timeout)
    }
}

/// A running distributed skip-web over structure `D`: one actor thread per
/// (physical) host, executing the forwarding protocol of §2.5 — and the
/// update repairs of §4 — under real concurrent message passing.
pub struct DistributedSkipWeb<D: Routable + Send + Sync + 'static> {
    runtime: Runtime<EngineActor<D>>,
    shared: Arc<Shared<D>>,
    /// Present on TCP deployments: the socket transport, kept for the
    /// driver's shutdown broadcast and the workers' teardown wait.
    tcp: Option<Arc<TcpTransport<FabricMsg<D>, EngineReply<D>>>>,
}

/// How many actor threads a [`FabricBuilder`] deployment runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Threads {
    /// One thread per host of the web's placement (the default).
    PerHost,
    /// Fold the web's logical hosts onto at most this many threads.
    Consolidated(usize),
    /// Exactly this many threads, possibly exceeding the web's host count
    /// to leave headroom for live inserts.
    Capacity(usize),
}

/// The one way to stand up a fabric: collects every deployment-time choice
/// — thread count ([`consolidated`](Self::consolidated) /
/// [`capacity`](Self::capacity)), replication override
/// ([`replicate`](Self::replicate)), transport ([`wan`](Self::wan) /
/// [`transport`](Self::transport) / [`spawn_tcp`](Self::spawn_tcp)),
/// apply-path parallelism ([`apply_threads`](Self::apply_threads)),
/// client timeout policy ([`timeouts`](Self::timeouts)), and durability
/// ([`durability`](Self::durability) /
/// [`restore_ledger`](Self::restore_ledger)) — then
/// [`spawn`](Self::spawn)s the actor threads.
///
/// ```
/// use skipweb_core::engine::DistributedSkipWeb;
/// use skipweb_core::onedim::OneDimSkipWeb;
///
/// let web = OneDimSkipWeb::builder((0..64).map(|i| i * 10).collect()).build();
/// let dist = DistributedSkipWeb::builder(web.inner())
///     .consolidated(8)
///     .spawn();
/// let client = dist.client();
/// assert_eq!(dist.query(&client, 0, 137).unwrap().answer, Some(140));
/// dist.shutdown();
/// ```
pub struct FabricBuilder<'w, D: Routable + Send + Sync + 'static> {
    web: &'w SkipWeb<D>,
    threads: Threads,
    replication: Option<Replication>,
    transport: Option<Arc<dyn Transport<FabricMsg<D>, EngineReply<D>>>>,
    timeouts: Timeouts,
    durability: Option<Arc<dyn Durability<D>>>,
    ledger: Vec<((ClientId, u64), bool)>,
    apply_threads: usize,
}

impl<'w, D: Routable + Send + Sync + 'static> FabricBuilder<'w, D> {
    /// Starts a deployment of `web` with the defaults: one actor thread
    /// per host, the in-process channel transport, default [`Timeouts`],
    /// no durability.
    pub fn new(web: &'w SkipWeb<D>) -> Self {
        FabricBuilder {
            web,
            threads: Threads::PerHost,
            replication: None,
            transport: None,
            timeouts: Timeouts::DEFAULT,
            durability: None,
            ledger: Vec::new(),
            apply_threads: 1,
        }
    }

    /// Fans the apply path's dirty-set rebuild stage out over `t` worker
    /// threads (default 1: the applying host repairs on its own actor
    /// thread). The repaired structure is byte-identical at any thread
    /// count — only the wall-clock cost of large batches changes — and the
    /// workers live only for the duration of one apply, inside the state
    /// lock, so snapshot-publish and WAL ordering are untouched.
    ///
    /// # Panics
    ///
    /// Panics if `t` is zero.
    pub fn apply_threads(mut self, t: usize) -> Self {
        assert!(t > 0, "the apply path needs at least one thread");
        self.apply_threads = t;
        self
    }

    /// Folds the web's logical hosts onto at most `hosts` physical actor
    /// threads (`logical % hosts`), so the same structure can be served —
    /// and its throughput measured — at any deployment size. Operations
    /// between ranges folded onto the same physical host become free,
    /// exactly like any other co-location.
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    pub fn consolidated(mut self, hosts: usize) -> Self {
        assert!(hosts > 0, "a network needs at least one host");
        self.threads = Threads::Consolidated(hosts);
        self
    }

    /// Spawns exactly `capacity` actor threads, which may exceed the web's
    /// current host count to leave headroom for live inserts: while the
    /// web's logical host count stays within `capacity` the fold is the
    /// identity, so owner-hosted hop counts keep matching the cost-model
    /// simulator even as the structure grows.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn capacity(mut self, capacity: usize) -> Self {
        assert!(capacity > 0, "a network needs at least one host");
        self.threads = Threads::Capacity(capacity);
        self
    }

    /// Overrides the web's replication policy for this deployment: the web
    /// is re-placed (same ground set, same towers) with every range on `k`
    /// hosts before serving, so any `k - 1` hosts may crash without losing
    /// availability. Replication is otherwise a build-time property
    /// ([`SkipWebBuilder::replicate`](crate::skipweb::SkipWebBuilder::replicate)).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn replicate(mut self, k: usize) -> Self {
        self.replication = Some(Replication::new(k));
        self
    }

    /// Routes every message through `transport` instead of the default
    /// in-process channel path — the hook custom fault models plug into.
    pub fn transport(
        mut self,
        transport: Arc<dyn Transport<FabricMsg<D>, EngineReply<D>>>,
    ) -> Self {
        self.transport = Some(transport);
        self
    }

    /// Serves over a [`SimWanTransport`] with fault model `cfg`. Under
    /// loss, the blocking entry points leak no failures: timeouts trigger
    /// exactly-once resubmits until the operation lands (see the module
    /// docs on the idempotence ledger).
    ///
    /// # Panics
    ///
    /// Panics if the loss probability is outside `[0, 1]`.
    pub fn wan(self, cfg: SimWanConfig) -> Self {
        self.transport(Arc::new(SimWanTransport::new(cfg)))
    }

    /// The wait-and-retry policy every client of this deployment starts
    /// with (individually overridable via
    /// [`EngineClient::set_timeouts`]).
    pub fn timeouts(mut self, timeouts: Timeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// Installs a write-ahead sink on the apply path: every update that
    /// reaches the apply step is handed to `durability` under the same
    /// state lock as the structural change (see [`Durability`]).
    pub fn durability(mut self, durability: Arc<dyn Durability<D>>) -> Self {
        self.durability = Some(durability);
        self
    }

    /// Seeds the idempotence ledger with outcomes recovered from a log, so
    /// replayed operations resubmitted after the recovery are echoed their
    /// original outcome instead of double-applied.
    pub fn restore_ledger(mut self, entries: Vec<((ClientId, u64), bool)>) -> Self {
        self.ledger = entries;
        self
    }

    fn resolve_capacity(&self, web: &SkipWeb<D>) -> usize {
        match self.threads {
            Threads::PerHost => web.hosts().max(1),
            Threads::Consolidated(hosts) => hosts.min(web.hosts().max(1)),
            Threads::Capacity(capacity) => capacity,
        }
    }

    fn resolve_web(&self) -> std::borrow::Cow<'w, SkipWeb<D>> {
        match self.replication {
            Some(r) if r != self.web.replication() => {
                std::borrow::Cow::Owned(self.web.with_replication(r))
            }
            _ => std::borrow::Cow::Borrowed(self.web),
        }
    }

    fn build_shared(&self, web: &SkipWeb<D>, capacity: usize) -> Arc<Shared<D>> {
        assert!(capacity > 0, "a network needs at least one host");
        let placement = PlacementCtl::new(capacity);
        let topo = Arc::new(build_topology(web, &placement, 0));
        let mut applied_ops = HashMap::new();
        let mut applied_order = std::collections::VecDeque::new();
        for &(key, applied) in &self.ledger {
            if applied_ops.insert(key, applied).is_none() {
                applied_order.push_back(key);
            }
        }
        Arc::new(Shared {
            state: Mutex::new(EngineState {
                web: web.clone(),
                rng: StdRng::seed_from_u64(0x736b_6970_7765_6221),
                placement,
                applied_ops,
                applied_order,
            }),
            topo: Mutex::new(topo),
            durability: self.durability.clone(),
            default_timeouts: self.timeouts,
            apply_threads: self.apply_threads,
        })
    }

    /// Spawns the actor threads and starts serving.
    pub fn spawn(self) -> DistributedSkipWeb<D> {
        let web = self.resolve_web();
        let capacity = self.resolve_capacity(&web);
        let shared = self.build_shared(&web, capacity);
        let runtime = match self.transport {
            Some(transport) => {
                Runtime::spawn_with_transport(capacity, transport, |_h| EngineActor {
                    shared: Arc::clone(&shared),
                })
            }
            None => Runtime::spawn(capacity, |_h| EngineActor {
                shared: Arc::clone(&shared),
            }),
        };
        DistributedSkipWeb {
            runtime,
            shared,
            tcp: None,
        }
    }
}

impl<'w, D: crate::wire::WireCodec + Send + Sync + 'static> FabricBuilder<'w, D> {
    /// Serves this process's share of the web over loopback (or any) TCP:
    /// one OS process per endpoint of `cfg`, each running actor threads
    /// only for the hosts `cfg.owners` assigns it, with every cross-process
    /// message serialized through [`WireCodec`](crate::wire::WireCodec)
    /// and framed by [`skipweb_net::wire`].
    ///
    /// Every process must be started from the **same** ground set and build
    /// seed: skip-webs are range-determined (§2.1), so each process
    /// rebuilds an identical topology locally and the wire carries only
    /// operation envelopes, never structure. Because each process also
    /// holds its own engine state, TCP deployments serve **query**
    /// workloads; updates require a single-process transport (channel or
    /// WAN), where state is shared.
    ///
    /// The process owning `cfg.reply_endpoint` is the *driver*: it creates
    /// the clients and eventually calls
    /// [`shutdown`](DistributedSkipWeb::shutdown) (which broadcasts the
    /// teardown). Every other process is a *worker* and parks in
    /// [`DistributedSkipWeb::serve_until_peer_shutdown`].
    ///
    /// The thread count comes from `cfg.owners` (one actor thread per
    /// locally-owned host), so [`consolidated`](Self::consolidated) /
    /// [`capacity`](Self::capacity) do not apply; any
    /// [`transport`](Self::transport) choice is
    /// replaced by the TCP transport. Timeouts, durability, and a restored
    /// ledger are honored.
    ///
    /// # Errors
    ///
    /// Fails if this process's endpoint cannot be bound.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.owners` does not assign this process a contiguous
    /// (possibly empty) host range, or the config indexes are out of range.
    pub fn spawn_tcp(self, cfg: TcpConfig) -> std::io::Result<DistributedSkipWeb<D>> {
        let web = self.resolve_web();
        let capacity = cfg.owners.len().max(1);
        let shared = self.build_shared(&web, capacity);
        let codec = {
            let enc_shared = Arc::clone(&shared);
            TcpCodec {
                encode_msg: Box::new(|m: &FabricMsg<D>| crate::wire::encode_fabric_msg(m)),
                decode_msg: Box::new(move |b: &[u8]| {
                    crate::wire::decode_fabric_msg(b, &enc_shared.current_topo())
                }),
                encode_reply: Box::new(|r: &EngineReply<D>| crate::wire::encode_reply(r)),
                decode_reply: Box::new(|b: &[u8]| crate::wire::decode_reply(b)),
            }
        };
        let tcp = Arc::new(TcpTransport::new(cfg.clone(), codec)?);
        let local = cfg.local_hosts();
        let range = match (local.first(), local.last()) {
            (Some(&first), Some(&last)) => {
                assert!(
                    local == (first..=last).collect::<Vec<_>>(),
                    "each endpoint must own a contiguous host range"
                );
                first..last + 1
            }
            _ => 0..0,
        };
        let transport: Arc<dyn Transport<FabricMsg<D>, EngineReply<D>>> = tcp.clone();
        let runtime = Runtime::spawn_partitioned(capacity, range, transport, |_h| EngineActor {
            shared: Arc::clone(&shared),
        });
        Ok(DistributedSkipWeb {
            runtime,
            shared,
            tcp: Some(tcp),
        })
    }
}

impl<D: Routable + Send + Sync + 'static> DistributedSkipWeb<D> {
    /// Starts configuring a deployment of `web` — the one entry point for
    /// standing up a fabric (see [`FabricBuilder`]).
    pub fn builder(web: &SkipWeb<D>) -> FabricBuilder<'_, D> {
        FabricBuilder::new(web)
    }

    /// Registers a client, starting from the deployment's default
    /// [`Timeouts`] policy.
    pub fn client(&self) -> EngineClient<D> {
        EngineClient {
            inner: self.runtime.client(),
            next_corr: AtomicU64::new(0),
            pending: Mutex::new(Vec::new()),
            stale: Mutex::new(std::collections::BTreeSet::new()),
            timeouts: Mutex::new(self.shared.default_timeouts),
        }
    }

    /// Injects `req` at `origin_item`'s root host without waiting, returning
    /// the correlation id to pass to [`EngineClient::recv_corr`]. Any number
    /// of operations may be in flight per client. When the origin's home
    /// host is dead, the request enters at the nearest alive replica of the
    /// origin range instead.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked), and
    /// [`RuntimeError::Unavailable`] when every replica of the origin range
    /// has crashed.
    ///
    /// # Panics
    ///
    /// Panics if `origin_item` is out of bounds (e.g. on an empty web).
    pub fn submit(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        req: D::Request,
    ) -> Result<u64, RuntimeError> {
        self.submit_query(client, origin_item, req, false)
    }

    /// Like [`submit`](Self::submit), but the query scatter-gathers at its
    /// locus when the request is a range report (see
    /// [`Routable::report_ranges`]): the receiver must gather the streamed
    /// [`ReplyBody::Partial`]s — which the blocking
    /// [`query_scatter`](Self::query_scatter) does.
    ///
    /// # Errors
    ///
    /// As [`submit`](Self::submit).
    ///
    /// # Panics
    ///
    /// Panics if `origin_item` is out of bounds.
    pub fn submit_scatter(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        req: D::Request,
    ) -> Result<u64, RuntimeError> {
        self.submit_query(client, origin_item, req, true)
    }

    fn submit_query(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        req: D::Request,
        gather: bool,
    ) -> Result<u64, RuntimeError> {
        let topo = self.shared.current_topo();
        assert!(
            origin_item < topo.origins.len(),
            "origin item out of bounds"
        );
        let corr = client.next_corr.fetch_add(1, Ordering::Relaxed);
        // A host can die between the membership check and the send; the
        // failed send proves the fresh membership now reports it dead, so
        // re-resolving converges on a replica (or on Unavailable).
        for _ in 0..4 {
            let (host, at) = self.entry_point(&topo, origin_item)?;
            match client.inner.send(
                host,
                FabricMsg::One(EngineMsg {
                    op: EngineOp::Query {
                        req: req.clone(),
                        gather,
                    },
                    at,
                    client: client.id(),
                    corr,
                    hops: 0,
                    topo: Arc::clone(&topo),
                }),
            ) {
                Ok(()) => return Ok(corr),
                Err(RuntimeError::HostPanicked(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Err(RuntimeError::Unavailable)
    }

    /// Submits a whole batch of queries under one correlation group without
    /// waiting, returning the per-op correlation ids in submission order.
    /// All ops enter at `origin_item`'s root in **one** envelope, and at
    /// every later hop the ops that agree on their next host keep sharing
    /// an envelope ([`FabricMsg::Batch`], metered as a single crossing) —
    /// so a batch of N queries crosses strictly fewer host boundaries than
    /// N serial submissions while returning byte-identical answers.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked), and
    /// [`RuntimeError::Unavailable`] when every replica of the origin range
    /// has crashed.
    ///
    /// # Panics
    ///
    /// Panics if `origin_item` is out of bounds (e.g. on an empty web).
    pub fn submit_batch(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        reqs: Vec<D::Request>,
    ) -> Result<Vec<u64>, RuntimeError> {
        let topo = self.shared.current_topo();
        assert!(
            origin_item < topo.origins.len(),
            "origin item out of bounds"
        );
        if reqs.is_empty() {
            return Ok(Vec::new());
        }
        let corrs: Vec<u64> = reqs
            .iter()
            .map(|_| client.next_corr.fetch_add(1, Ordering::Relaxed))
            .collect();
        // A host can die between resolution and send (which consumes the
        // envelope): rebuild against the fresh membership and retry, as in
        // `submit`.
        for _ in 0..4 {
            let (host, at) = self.entry_point(&topo, origin_item)?;
            let ops: Vec<EngineMsg<D>> = reqs
                .iter()
                .zip(&corrs)
                .map(|(req, &corr)| EngineMsg {
                    op: EngineOp::Query {
                        req: req.clone(),
                        gather: false,
                    },
                    at,
                    client: client.id(),
                    corr,
                    hops: 0,
                    topo: Arc::clone(&topo),
                })
                .collect();
            match client.inner.send(host, Self::envelope(ops)) {
                Ok(()) => return Ok(corrs),
                Err(RuntimeError::HostPanicked(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Err(RuntimeError::Unavailable)
    }

    /// Wraps a group of ops bound for one host: a bare message for a single
    /// op, a coalesced batch envelope otherwise.
    fn envelope(mut ops: Vec<EngineMsg<D>>) -> FabricMsg<D> {
        if ops.len() == 1 {
            FabricMsg::One(ops.pop().expect("len checked"))
        } else {
            FabricMsg::Batch(BatchMsg { ops })
        }
    }

    /// Resolves `origin_item`'s entry host under `topo`, failing over to an
    /// alive replica of the origin range when the home host is dead.
    fn entry_point(
        &self,
        topo: &Topology<D>,
        origin_item: usize,
    ) -> Result<(HostId, GlobalRef), RuntimeError> {
        let (host, at) = topo.origins[origin_item];
        let membership = self.runtime.membership();
        if membership.is_routable(host) {
            return Ok((host, at));
        }
        topo.set(at).hosts[at.range as usize]
            .iter()
            .copied()
            .find(|&h| membership.is_routable(h))
            .map(|h| (h, at))
            .ok_or(RuntimeError::Unavailable)
    }

    /// Runs one query end to end, blocking up to the client's query timeout
    /// (default 10 s, see [`EngineClient::set_timeouts`]) for the reply.
    ///
    /// If the wait times out while some host is dead — the signature of a
    /// request lost in a crashed host's mailbox — the query is resubmitted
    /// once against the current membership before giving up: queries are
    /// idempotent, so the retry is always safe.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect), and [`RuntimeError::Unavailable`] when more hosts have
    /// crashed than the replication factor tolerates.
    ///
    /// # Panics
    ///
    /// Panics if `origin_item` is out of bounds.
    pub fn query(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        req: D::Request,
    ) -> Result<QueryReply<D>, RuntimeError> {
        let corr = self.submit(client, origin_item, req.clone())?;
        self.collect_query(client, corr, origin_item, req, false)
    }

    /// Runs one scatter-gather range report end to end: the descent routes
    /// to the locus as usual, the locus splits the report across the hosts
    /// owning the output (one sub-scan message per host instead of a serial
    /// walk), the partial answers stream back in parallel, and this call
    /// merges them with [`Routable::merge_answers`] — byte-identical to
    /// [`query`](Self::query) for the same request. Requests that are not
    /// range reports ([`Routable::report_ranges`] returns `None`), and
    /// reports whose whole output is local to the locus host, fall back to
    /// the serial answer transparently.
    ///
    /// The reply's `hops` count the longest descent+fan-out chain (the
    /// latency the client observed), not the total crossings the fan-out
    /// paid — those are metered per host in [`traffic`](Self::traffic).
    ///
    /// # Errors
    ///
    /// As [`query`](Self::query); additionally
    /// [`RuntimeError::Unavailable`] when part of the report's output lost
    /// every replica (never a silently truncated answer).
    ///
    /// # Panics
    ///
    /// Panics if `origin_item` is out of bounds.
    pub fn query_scatter(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        req: D::Request,
    ) -> Result<QueryReply<D>, RuntimeError> {
        let corr = self.submit_scatter(client, origin_item, req.clone())?;
        self.collect_query(client, corr, origin_item, req, true)
    }

    /// Runs a whole batch of queries end to end (see
    /// [`submit_batch`](Self::submit_batch) for the coalescing), returning
    /// the replies in submission order — answers byte-identical to running
    /// each request through [`query`](Self::query) serially, while crossing
    /// strictly fewer host boundaries. Each op that times out while a host
    /// is dead is resubmitted once individually, like `query`.
    ///
    /// # Errors
    ///
    /// As [`query`](Self::query), per op — the first failing op aborts the
    /// collection, abandoning the remaining in-flight ops (their late
    /// replies are dropped on arrival and counted, never parked).
    ///
    /// # Panics
    ///
    /// Panics if `origin_item` is out of bounds.
    pub fn query_batch(
        &self,
        client: &EngineClient<D>,
        origin_item: usize,
        reqs: Vec<D::Request>,
    ) -> Result<Vec<QueryReply<D>>, RuntimeError> {
        let corrs = self.submit_batch(client, origin_item, reqs.clone())?;
        let mut replies = Vec::with_capacity(corrs.len());
        for (i, (&corr, req)) in corrs.iter().zip(reqs).enumerate() {
            match self.collect_query(client, corr, origin_item, req, false) {
                Ok(reply) => replies.push(reply),
                Err(e) => {
                    // Abandon the uncollected tail: their replies must not
                    // sit in the pending buffer where a later recv would
                    // misread them.
                    for &stale in &corrs[i + 1..] {
                        client.mark_stale(stale);
                    }
                    return Err(e);
                }
            }
        }
        Ok(replies)
    }

    /// Waits for one query's outcome: gathers scatter partials when the
    /// locus split the report, and resubmits once on a timeout while a host
    /// is dead — the signature of a request (or partial) lost in a crashed
    /// host's mailbox. Queries are idempotent, so the retry is always safe;
    /// the abandoned correlation id's late replies are dropped and counted.
    fn collect_query(
        &self,
        client: &EngineClient<D>,
        mut corr: u64,
        origin_item: usize,
        req: D::Request,
        scatter: bool,
    ) -> Result<QueryReply<D>, RuntimeError> {
        let policy = client.timeouts();
        let timeout = policy.query;
        // A timeout normally signals a request lost in a crashed host's
        // mailbox, so the small lossless budget (default 1, spent only
        // while a host is dead) suffices. On a lossy transport *any* hop
        // can silently drop the operation even with every host alive, so
        // the wider lossy budget applies: retry on every timeout (see
        // [`Timeouts::lossy_resubmits`] for the residual-failure math).
        let lossy = self.runtime.transport_lossy();
        let max_resubmits = if lossy {
            policy.lossy_resubmits
        } else {
            policy.resubmits
        };
        let mut resubmits = 0usize;
        let mut parts: Vec<D::Answer> = Vec::new();
        let mut hops_max = 0u32;
        loop {
            match client.recv_corr(corr, timeout) {
                Ok(reply) => {
                    hops_max = hops_max.max(reply.hops);
                    match reply.body {
                        ReplyBody::Answer(answer) => {
                            return Ok(QueryReply {
                                corr,
                                answer,
                                hops: reply.hops,
                            })
                        }
                        ReplyBody::Partial { answer, of } => {
                            parts.push(answer);
                            if parts.len() as u32 >= of {
                                return Ok(QueryReply {
                                    corr,
                                    answer: D::merge_answers(std::mem::take(&mut parts)),
                                    hops: hops_max,
                                });
                            }
                        }
                        ReplyBody::Unavailable => {
                            // Stragglers of a partially-delivered report are
                            // dropped on arrival, not parked.
                            client.mark_stale(corr);
                            return Err(RuntimeError::Unavailable);
                        }
                        ReplyBody::Updated { .. } => {
                            unreachable!("query correlation id matched an update")
                        }
                    }
                }
                Err(RuntimeError::Timeout)
                    if resubmits < max_resubmits
                        && (lossy || self.runtime.membership().first_dead().is_some()) =>
                {
                    resubmits += 1;
                    // The first attempt is abandoned: if it was merely slow
                    // (not lost), its late replies are discarded rather than
                    // parked in the pending buffer forever.
                    client.mark_stale(corr);
                    parts.clear();
                    hops_max = 0;
                    corr = if scatter {
                        self.submit_scatter(client, origin_item, req.clone())?
                    } else {
                        self.submit(client, origin_item, req.clone())?
                    };
                }
                Err(e) => {
                    client.mark_stale(corr);
                    return Err(e);
                }
            }
        }
    }

    /// Submits an insert with an explicit level bit string without waiting,
    /// returning its correlation id. Driving the simulator's
    /// [`SkipWeb::insert_with`] with the same `(origin, bits)` yields the
    /// same structure and — for owner-hosted placement within capacity —
    /// the same message count.
    ///
    /// `origin` names the ground item whose root the lookup phase starts
    /// from; it is ignored when the web is empty (there is nothing to look
    /// up, matching the simulator).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of bounds on a non-empty web.
    pub fn submit_insert(
        &self,
        client: &EngineClient<D>,
        origin: usize,
        item: D::Item,
        bits: u64,
    ) -> Result<u64, RuntimeError> {
        self.submit_update(client, origin, UpdateKind::Insert { bits }, item)
    }

    /// Submits a remove without waiting, returning its correlation id. The
    /// counterpart of [`SkipWeb::remove_with`]: `origin` is ignored when
    /// the simulator would skip the lookup (item absent from the snapshot,
    /// or a single-item web).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of bounds when the lookup phase runs.
    pub fn submit_remove(
        &self,
        client: &EngineClient<D>,
        origin: usize,
        item: D::Item,
    ) -> Result<u64, RuntimeError> {
        self.submit_update(client, origin, UpdateKind::Remove, item)
    }

    fn submit_update(
        &self,
        client: &EngineClient<D>,
        origin: usize,
        kind: UpdateKind,
        item: D::Item,
    ) -> Result<u64, RuntimeError> {
        let topo = self.shared.current_topo();
        self.submit_update_at(client, topo, origin, kind, item, None)
    }

    /// Resolves where an update enters the fabric under `topo`: the origin's
    /// root for the lookup phase, or the head of the repair trail when the
    /// simulator's lookup rule skips the lookup (empty web, absent remove,
    /// single-item web).
    fn plan_update(
        &self,
        topo: &Topology<D>,
        origin: usize,
        kind: UpdateKind,
        item: &D::Item,
    ) -> Result<(HostId, GlobalRef, UpdatePhase), RuntimeError> {
        // Mirror the simulator's lookup rule: inserts route on a non-empty
        // web; removes route when the item is present and not the last one.
        let routes = match kind {
            UpdateKind::Insert { .. } => !topo.origins.is_empty(),
            UpdateKind::Remove => topo.origins.len() > 1 && topo.membership.contains_key(item),
        };
        if routes {
            assert!(origin < topo.origins.len(), "origin item out of bounds");
            let (host, at) = self.entry_point(topo, origin)?;
            Ok((host, at, UpdatePhase::Route))
        } else {
            // No lookup phase: enter the repair trail directly. The client
            // injection is free (as is the meter's first visit), so hops
            // still equal the simulator's messages.
            let membership = self.runtime.membership();
            let trail =
                repair_trail(topo, item, kind, &membership).ok_or(RuntimeError::Unavailable)?;
            let host = match trail.first().copied() {
                Some(h) => h,
                // Empty trail (e.g. an absent remove): any alive host can
                // complete the no-op.
                None => membership
                    .alive_hosts()
                    .into_iter()
                    .next()
                    .ok_or(RuntimeError::Unavailable)?,
            };
            let at = GlobalRef {
                level: 0,
                set: 0,
                range: 0,
            };
            Ok((host, at, UpdatePhase::Repair { cursor: 0, trail }))
        }
    }

    /// Admits an update against an already-captured snapshot, so callers
    /// that derived `origin` from that same snapshot (the convenience
    /// `insert`/`remove`) can never race a concurrent apply into an
    /// out-of-bounds origin. `op_id` is `None` for a first attempt (the
    /// fresh correlation id becomes the logical op id) and `Some` on a
    /// timeout-resubmit, which re-tags the new attempt with the *original*
    /// op id so the apply path stays exactly-once.
    fn submit_update_at(
        &self,
        client: &EngineClient<D>,
        topo: Arc<Topology<D>>,
        origin: usize,
        kind: UpdateKind,
        item: D::Item,
        op_id: Option<u64>,
    ) -> Result<u64, RuntimeError> {
        let corr = client.next_corr.fetch_add(1, Ordering::Relaxed);
        let op_id = op_id.unwrap_or(corr);
        // As in `submit`: a host dying between resolution and send makes
        // the send fail fast, and re-resolving against the now-updated
        // membership converges on a replica.
        for _ in 0..4 {
            let (host, at, phase) = self.plan_update(&topo, origin, kind, &item)?;
            match client.inner.send(
                host,
                FabricMsg::One(EngineMsg {
                    op: EngineOp::Update(UpdateOp {
                        kind,
                        item: item.clone(),
                        phase,
                        op_id,
                    }),
                    at,
                    client: client.id(),
                    corr,
                    hops: 0,
                    topo: Arc::clone(&topo),
                }),
            ) {
                Ok(()) => return Ok(corr),
                Err(RuntimeError::HostPanicked(_)) => {}
                Err(e) => return Err(e),
            }
        }
        Err(RuntimeError::Unavailable)
    }

    /// Submits a batch of updates under one snapshot without waiting,
    /// returning the per-op correlation ids in submission order. Ops whose
    /// entry host agrees are injected as **one** envelope, and the fabric
    /// keeps coalescing them per destination at every later hop (routing,
    /// repair, and the final applies — which install under a single state
    /// lock with one structural rebuild per same-kind run and one snapshot
    /// publish).
    fn submit_update_batch(
        &self,
        client: &EngineClient<D>,
        ops: &[(usize, UpdateKind, D::Item)],
    ) -> Result<Vec<u64>, RuntimeError> {
        let topo = self.shared.current_topo();
        let corrs: Vec<u64> = ops
            .iter()
            .map(|_| client.next_corr.fetch_add(1, Ordering::Relaxed))
            .collect();
        let make = |i: usize, at: GlobalRef, phase: UpdatePhase| {
            let (_, kind, ref item) = ops[i];
            EngineMsg {
                op: EngineOp::Update(UpdateOp {
                    kind,
                    item: item.clone(),
                    phase,
                    op_id: corrs[i],
                }),
                at,
                client: client.id(),
                corr: corrs[i],
                hops: 0,
                topo: Arc::clone(&topo),
            }
        };
        // Plan every op under the shared snapshot, then bucket by entry
        // host so each host receives one envelope.
        let mut groups: BTreeMap<HostId, Vec<usize>> = BTreeMap::new();
        let mut plans: Vec<(GlobalRef, UpdatePhase)> = Vec::with_capacity(ops.len());
        let sent = (|| -> Result<(), RuntimeError> {
            for (i, (origin, kind, item)) in ops.iter().enumerate() {
                let (host, at, phase) = self.plan_update(&topo, *origin, *kind, item)?;
                groups.entry(host).or_default().push(i);
                plans.push((at, phase));
            }
            for (host, idxs) in groups {
                let msgs: Vec<EngineMsg<D>> = idxs
                    .iter()
                    .map(|&i| make(i, plans[i].0, plans[i].1.clone()))
                    .collect();
                match client.inner.send(host, Self::envelope(msgs)) {
                    Ok(()) => continue,
                    Err(RuntimeError::HostPanicked(_)) => {}
                    Err(e) => return Err(e),
                }
                // The group's entry host died between planning and send,
                // taking the envelope with it: immediately re-plan each op
                // against the fresh membership and deliver it individually
                // — as the serial submit path would — instead of leaving
                // the whole group to crawl through per-op timeout
                // resubmits.
                for &i in &idxs {
                    let (origin, kind, item) = &ops[i];
                    let mut delivered = false;
                    for _ in 0..4 {
                        let (h, at, phase) = self.plan_update(&topo, *origin, *kind, item)?;
                        match client.inner.send(h, FabricMsg::One(make(i, at, phase))) {
                            Ok(()) => {
                                delivered = true;
                                break;
                            }
                            Err(RuntimeError::HostPanicked(_)) => {}
                            Err(e) => return Err(e),
                        }
                    }
                    if !delivered {
                        return Err(RuntimeError::Unavailable);
                    }
                }
            }
            Ok(())
        })();
        if let Err(e) = sent {
            // Some ops may already be in flight: abandon every correlation
            // id of the failed batch so their replies are dropped on
            // arrival instead of parked.
            for &corr in &corrs {
                client.mark_stale(corr);
            }
            return Err(e);
        }
        Ok(corrs)
    }

    /// Waits for one update's outcome, resubmitting once — re-tagged with
    /// the original `op_id` — when the wait times out while a host is dead
    /// (the signature of an update lost in a crashed host's mailbox). The
    /// apply path's idempotence ledger makes the retry exactly-once: if the
    /// first attempt actually landed, the resubmit is echoed its recorded
    /// outcome instead of applying again.
    fn collect_update(
        &self,
        client: &EngineClient<D>,
        mut corr: u64,
        op_id: u64,
        origin: usize,
        kind: UpdateKind,
        item: &D::Item,
    ) -> Result<UpdateReply, RuntimeError> {
        let policy = client.timeouts();
        let timeout = policy.update;
        // Same budget split as `collect_query` under a lossy transport;
        // resubmitted updates stay exactly-once through the idempotence
        // ledger keyed on `(client, op_id)`.
        let lossy = self.runtime.transport_lossy();
        let max_resubmits = if lossy {
            policy.lossy_resubmits
        } else {
            policy.resubmits
        };
        let mut resubmits = 0usize;
        loop {
            match client.recv_corr(corr, timeout) {
                Ok(reply) => {
                    return match reply.body {
                        ReplyBody::Updated { applied } => Ok(UpdateReply {
                            corr,
                            applied,
                            hops: reply.hops,
                        }),
                        ReplyBody::Unavailable => Err(RuntimeError::Unavailable),
                        ReplyBody::Answer(_) | ReplyBody::Partial { .. } => {
                            unreachable!("update correlation id matched a query")
                        }
                    };
                }
                Err(RuntimeError::Timeout)
                    if resubmits < max_resubmits
                        && (lossy || self.runtime.membership().first_dead().is_some()) =>
                {
                    resubmits += 1;
                    // Abandon the first attempt: its late reply (if it was
                    // merely slow, not lost) is dropped and counted.
                    client.mark_stale(corr);
                    let topo = self.shared.current_topo();
                    // The snapshot may have shrunk since the origin was
                    // chosen; clamp it — the lookup origin only seeds the
                    // descent, any valid item works.
                    let origin = origin.min(topo.origins.len().saturating_sub(1));
                    corr = self.submit_update_at(
                        client,
                        topo,
                        origin,
                        kind,
                        item.clone(),
                        Some(op_id),
                    )?;
                }
                Err(e) => {
                    client.mark_stale(corr);
                    return Err(e);
                }
            }
        }
    }

    /// Runs one insert end to end with an explicit origin and bit string
    /// (see [`submit_insert`](Self::submit_insert)), blocking up to the
    /// client's update timeout (default 30 s).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of bounds on a non-empty web.
    pub fn insert_with(
        &self,
        client: &EngineClient<D>,
        origin: usize,
        item: D::Item,
        bits: u64,
    ) -> Result<UpdateReply, RuntimeError> {
        let kind = UpdateKind::Insert { bits };
        let corr = self.submit_update(client, origin, kind, item.clone())?;
        self.collect_update(client, corr, corr, origin, kind, &item)
    }

    /// Runs one remove end to end with an explicit origin (see
    /// [`submit_remove`](Self::submit_remove)), blocking up to the
    /// client's update timeout (default 30 s).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of bounds when the lookup phase runs.
    pub fn remove_with(
        &self,
        client: &EngineClient<D>,
        origin: usize,
        item: D::Item,
    ) -> Result<UpdateReply, RuntimeError> {
        let corr = self.submit_remove(client, origin, item.clone())?;
        self.collect_update(client, corr, corr, origin, UpdateKind::Remove, &item)
    }

    /// Runs one insert end to end, drawing the lookup origin and the
    /// item's level bits from the engine's seeded generator — the live
    /// counterpart of [`SkipWeb::insert`].
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn insert(
        &self,
        client: &EngineClient<D>,
        item: D::Item,
    ) -> Result<UpdateReply, RuntimeError> {
        // Draw the origin against the same snapshot the update is admitted
        // under, so a concurrent apply can never shrink it out of bounds.
        let topo = self.shared.current_topo();
        let len = topo.origins.len();
        let (origin, bits) = {
            let mut st = self.shared.state.lock();
            let origin = if len > 0 { st.rng.gen_range(0..len) } else { 0 };
            (origin, st.rng.gen())
        };
        let kind = UpdateKind::Insert { bits };
        let corr = self.submit_update_at(client, topo, origin, kind, item.clone(), None)?;
        self.collect_update(client, corr, corr, origin, kind, &item)
    }

    /// Runs one remove end to end, drawing the lookup origin from the
    /// engine's seeded generator — the live counterpart of
    /// [`SkipWeb::remove`].
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn remove(
        &self,
        client: &EngineClient<D>,
        item: D::Item,
    ) -> Result<UpdateReply, RuntimeError> {
        // Same snapshot for origin draw and admission (see `insert`).
        let topo = self.shared.current_topo();
        let len = topo.origins.len();
        let origin = if len > 0 {
            self.shared.state.lock().rng.gen_range(0..len)
        } else {
            0
        };
        let corr =
            self.submit_update_at(client, topo, origin, UpdateKind::Remove, item.clone(), None)?;
        self.collect_update(client, corr, corr, origin, UpdateKind::Remove, &item)
    }

    /// Runs a batch of inserts with explicit `(origin, item, bits)` triples
    /// end to end — the deterministic batched counterpart of
    /// [`insert_with`](Self::insert_with), returning per-op outcomes in
    /// submission order. All ops are admitted under one snapshot, coalesce
    /// per destination host at every hop ([`FabricMsg::Batch`]), and the
    /// applies that land on one host together install with a single
    /// structural rebuild and a single snapshot publish — so a batch of N
    /// inserts crosses fewer host boundaries than N serial calls while
    /// leaving byte-identical state and applied flags (for distinct items;
    /// ops on the *same* item race by arrival order, as concurrent serial
    /// clients would). Lost ops resubmit exactly-once like `insert_with`.
    ///
    /// # Errors
    ///
    /// As [`insert_with`](Self::insert_with), per op — the first failing op
    /// aborts the collection.
    ///
    /// # Panics
    ///
    /// Panics if an origin is out of bounds on a non-empty web.
    pub fn insert_batch_with(
        &self,
        client: &EngineClient<D>,
        ops: Vec<(usize, D::Item, u64)>,
    ) -> Result<Vec<UpdateReply>, RuntimeError> {
        let planned: Vec<(usize, UpdateKind, D::Item)> = ops
            .into_iter()
            .map(|(origin, item, bits)| (origin, UpdateKind::Insert { bits }, item))
            .collect();
        self.update_batch(client, planned)
    }

    /// Runs a batch of inserts end to end, drawing each op's lookup origin
    /// and level bits from the engine's seeded generator — the batched
    /// counterpart of [`insert`](Self::insert).
    ///
    /// # Errors
    ///
    /// As [`insert`](Self::insert), per op.
    pub fn insert_batch(
        &self,
        client: &EngineClient<D>,
        items: Vec<D::Item>,
    ) -> Result<Vec<UpdateReply>, RuntimeError> {
        let len = self.shared.current_topo().origins.len();
        let planned: Vec<(usize, UpdateKind, D::Item)> = {
            let mut st = self.shared.state.lock();
            items
                .into_iter()
                .map(|item| {
                    let origin = if len > 0 { st.rng.gen_range(0..len) } else { 0 };
                    let bits: u64 = st.rng.gen();
                    (origin, UpdateKind::Insert { bits }, item)
                })
                .collect()
        };
        self.update_batch(client, planned)
    }

    /// Runs a batch of removes with explicit `(origin, item)` pairs end to
    /// end — the batched counterpart of [`remove_with`](Self::remove_with);
    /// see [`insert_batch_with`](Self::insert_batch_with) for the batching
    /// semantics.
    ///
    /// # Errors
    ///
    /// As [`remove_with`](Self::remove_with), per op.
    ///
    /// # Panics
    ///
    /// Panics if an origin is out of bounds when its lookup phase runs.
    pub fn remove_batch_with(
        &self,
        client: &EngineClient<D>,
        ops: Vec<(usize, D::Item)>,
    ) -> Result<Vec<UpdateReply>, RuntimeError> {
        let planned: Vec<(usize, UpdateKind, D::Item)> = ops
            .into_iter()
            .map(|(origin, item)| (origin, UpdateKind::Remove, item))
            .collect();
        self.update_batch(client, planned)
    }

    /// Runs a batch of removes end to end, drawing lookup origins from the
    /// engine's seeded generator — the batched counterpart of
    /// [`remove`](Self::remove).
    ///
    /// # Errors
    ///
    /// As [`remove`](Self::remove), per op.
    pub fn remove_batch(
        &self,
        client: &EngineClient<D>,
        items: Vec<D::Item>,
    ) -> Result<Vec<UpdateReply>, RuntimeError> {
        let len = self.shared.current_topo().origins.len();
        let planned: Vec<(usize, UpdateKind, D::Item)> = {
            let mut st = self.shared.state.lock();
            items
                .into_iter()
                .map(|item| {
                    let origin = if len > 0 { st.rng.gen_range(0..len) } else { 0 };
                    (origin, UpdateKind::Remove, item)
                })
                .collect()
        };
        self.update_batch(client, planned)
    }

    fn update_batch(
        &self,
        client: &EngineClient<D>,
        ops: Vec<(usize, UpdateKind, D::Item)>,
    ) -> Result<Vec<UpdateReply>, RuntimeError> {
        if ops.is_empty() {
            return Ok(Vec::new());
        }
        let corrs = self.submit_update_batch(client, &ops)?;
        let mut replies = Vec::with_capacity(corrs.len());
        for (i, (&corr, (origin, kind, item))) in corrs.iter().zip(ops).enumerate() {
            match self.collect_update(client, corr, corr, origin, kind, &item) {
                Ok(reply) => replies.push(reply),
                Err(e) => {
                    // Abandon the uncollected tail (see `query_batch`).
                    for &stale in &corrs[i + 1..] {
                        client.mark_stale(stale);
                    }
                    return Err(e);
                }
            }
        }
        Ok(replies)
    }

    /// A snapshot of the current ground set, in canonical order.
    pub fn ground(&self) -> Vec<D::Item> {
        self.shared.state.lock().web.ground().to_vec()
    }

    /// Number of items currently stored.
    pub fn len(&self) -> usize {
        self.shared.state.lock().web.len()
    }

    /// Whether the web currently stores no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total host-to-host messages since spawn.
    pub fn message_count(&self) -> u64 {
        self.runtime.message_count()
    }

    /// Per-host sent/received message counters since spawn, with the
    /// update-tagged share broken out (routing + repair messages of §4).
    pub fn traffic(&self) -> HostTraffic {
        self.runtime.host_traffic()
    }

    /// Number of (physical) hosts ever spawned, including dead and
    /// decommissioned ones.
    pub fn hosts(&self) -> usize {
        self.runtime.hosts()
    }

    /// A point-in-time membership snapshot of the fabric (alive / dead /
    /// decommissioned per host) — an `Arc` clone of the runtime's cached
    /// view.
    pub fn membership(&self) -> Arc<Membership> {
        self.runtime.membership()
    }

    /// A health report for the fabric: host liveness, the replication
    /// factor in effect, and the current topology-snapshot version.
    pub fn health(&self) -> EngineHealth {
        let membership = self.runtime.membership();
        let replication = self.shared.state.lock().web.replication().k;
        EngineHealth {
            alive: membership.alive_hosts(),
            dead: membership.dead_hosts(),
            decommissioned: membership.decommissioned_hosts(),
            replication,
            topology_version: self.shared.current_topo().version,
        }
    }

    /// Crashes `host` for fault injection: its mailbox is discarded and
    /// every later message to it is dropped, exactly like an actor panic.
    /// With replication `k ≥ 2` the fabric keeps answering from replicas;
    /// run [`heal`](Self::heal) (or any update) to re-home the dead host's
    /// blocks permanently.
    pub fn kill_host(&self, host: HostId) {
        self.runtime.kill(host);
    }

    /// Gracefully removes `host` from the fabric: a new topology snapshot
    /// re-homes every block it held (so no new operation routes to it),
    /// and only then is the host marked as draining — operations already
    /// in flight under older snapshots still complete on it. Safe to call
    /// concurrently with queries and updates.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::HostDown`] if the host is not currently alive, and
    /// [`RuntimeError::Unavailable`] if it is the last alive host.
    pub fn decommission(&self, host: HostId) -> Result<(), RuntimeError> {
        // The whole operation — guard included — runs under the state lock,
        // so concurrent decommissions serialize and the second caller sees
        // the first one's drained host when it re-reads the membership.
        let st = &mut *self.shared.state.lock();
        let membership = self.runtime.membership();
        if !membership.is_alive(host) {
            return Err(RuntimeError::HostDown(host));
        }
        if membership.alive_count() <= 1 {
            return Err(RuntimeError::Unavailable);
        }
        st.placement.excluded.insert(host.0);
        self.shared.republish(st, &membership);
        // Only after the re-homed snapshot is published does the host stop
        // being a routing target; everything already addressed to it under
        // old snapshots is still delivered and processed.
        self.runtime.decommission(host);
        Ok(())
    }

    /// Adds one host to the running fabric and rebalances the placement
    /// onto it (the fold modulus grows to cover the new host). Returns the
    /// new host's id. Safe to call concurrently with queries and updates.
    pub fn spawn_host(&self) -> HostId {
        let st = &mut *self.shared.state.lock();
        let host = self.runtime.add_host(EngineActor {
            shared: Arc::clone(&self.shared),
        });
        st.placement.phys = host.index() + 1;
        self.shared.republish(st, &self.runtime.membership());
        host
    }

    /// Re-homes blocks away from hosts that have crashed since the last
    /// snapshot: publishes a new topology whose placement excludes every
    /// dead host, so even a `k = 1` web regains availability (any update
    /// apply does the same implicitly).
    pub fn heal(&self) {
        let st = &*self.shared.state.lock();
        self.shared.republish(st, &self.runtime.membership());
    }

    /// The current ground set zipped with each item's level bit string, in
    /// canonical order — exactly what a durability layer checkpoints so
    /// recovery can rebuild the identical web, tower for tower
    /// ([`SkipWebBuilder::bits`](crate::skipweb::SkipWebBuilder::bits)).
    pub fn ground_with_bits(&self) -> Vec<(D::Item, u64)> {
        let st = self.shared.state.lock();
        st.web
            .ground()
            .iter()
            .cloned()
            .zip(st.web.item_bits().iter().copied())
            .collect()
    }

    /// The idempotence ledger in eviction (FIFO) order: identity and
    /// recorded outcome of every remembered update that reached the apply
    /// step. Durability layers checkpoint this alongside the ground set and
    /// seed it back via [`FabricBuilder::restore_ledger`] (cold start) or
    /// [`restore`](Self::restore) (in-place recovery), so resubmits stay
    /// exactly-once across a crash.
    pub fn applied_ledger(&self) -> Vec<((ClientId, u64), bool)> {
        let st = self.shared.state.lock();
        st.applied_order
            .iter()
            .map(|key| (*key, st.applied_ops[key]))
            .collect()
    }

    /// Replaces the authoritative web and idempotence ledger with state
    /// recovered from a log, publishing a fresh topology snapshot — the
    /// state half of crash recovery. Pair with
    /// [`rejoin_host`](Self::rejoin_host) to bring the crashed hosts
    /// themselves back.
    pub fn restore(&self, web: SkipWeb<D>, ledger: Vec<((ClientId, u64), bool)>) {
        let st = &mut *self.shared.state.lock();
        st.web = web;
        st.applied_ops.clear();
        st.applied_order.clear();
        for (key, applied) in ledger {
            st.record_outcome(key, applied);
        }
        self.shared.republish(st, &self.runtime.membership());
    }

    /// Revives a crashed host in place (fresh mailbox and actor thread,
    /// same id — see [`Runtime::revive`]) and publishes a topology
    /// snapshot that routes to it again: the rejoin-with-state path, so a
    /// recovered host returns to live membership instead of staying
    /// tombstoned forever. Returns `false` unless the host is currently
    /// dead.
    pub fn rejoin_host(&self, host: HostId) -> bool {
        let st = &*self.shared.state.lock();
        let revived = self.runtime.revive(
            host,
            EngineActor {
                shared: Arc::clone(&self.shared),
            },
        );
        if revived {
            self.shared.republish(st, &self.runtime.membership());
        }
        revived
    }

    /// Cumulative transport-level counters (messages carried, losses,
    /// reorders, bytes on the wire). All zeros for the default in-process
    /// channel transport, which has nothing to count.
    pub fn transport_stats(&self) -> TransportStats {
        self.runtime.transport_stats()
    }

    /// Stops all host threads. On a TCP deployment this first broadcasts
    /// the teardown to every peer process, so their
    /// [`serve_until_peer_shutdown`](Self::serve_until_peer_shutdown)
    /// calls return instead of reporting a severed transport.
    pub fn shutdown(self) {
        if let Some(tcp) = &self.tcp {
            tcp.broadcast_shutdown();
        }
        self.runtime.shutdown()
    }
}

impl<D: crate::wire::WireCodec + Send + Sync + 'static> DistributedSkipWeb<D> {
    /// Worker-side teardown: blocks until the driver broadcasts shutdown
    /// (or `timeout` elapses), then stops the local host threads. Returns
    /// `true` when the deployment was torn down on purpose, `false` on
    /// timeout.
    pub fn serve_until_peer_shutdown(self, timeout: Duration) -> bool {
        let closed = match &self.tcp {
            Some(tcp) => tcp.wait_closed(timeout),
            None => false,
        };
        self.runtime.shutdown();
        closed
    }
}

/// The fabric-health report returned by [`DistributedSkipWeb::health`]: the
/// failover-relevant state in one read — which hosts can serve, which are
/// gone, how many crashes the placement tolerates (`replication - 1`), and
/// how many topology snapshots have been published.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineHealth {
    /// Hosts currently accepting new work.
    pub alive: Vec<HostId>,
    /// Hosts that crashed (panic or injected kill).
    pub dead: Vec<HostId>,
    /// Hosts gracefully drained via [`DistributedSkipWeb::decommission`].
    pub decommissioned: Vec<HostId>,
    /// The replication factor `k` of the served web: any `k - 1` hosts may
    /// crash without losing availability.
    pub replication: usize,
    /// Version of the currently published topology snapshot (bumped by
    /// every update apply, decommission, spawn-host, and heal).
    pub topology_version: u64,
}

impl fmt::Display for EngineHealth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "alive={} dead={:?} decommissioned={:?} k={} topo=v{}",
            self.alive.len(),
            self.dead,
            self.decommissioned,
            self.replication,
            self.topology_version
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::multidim::{
        QuadtreeAnswer, QuadtreeRequest, QuadtreeSkipWeb, TrapezoidSkipWeb, TrieSkipWeb,
    };
    use skipweb_net::sim::MessageMeter;
    use skipweb_structures::quadtree::PointKey;
    use skipweb_structures::trapezoid::Segment;

    fn grid_points(n: u32) -> Vec<PointKey<2>> {
        (0..n)
            .map(|i| PointKey::new([i * 104_729 + 13, i * 49_979 + 7]))
            .collect()
    }

    #[test]
    fn quadtree_point_location_matches_simulator_with_hop_parity() {
        let web = QuadtreeSkipWeb::builder(grid_points(96)).seed(21).build();
        let dist = web.serve();
        let client = dist.client();
        for s in 0..30u64 {
            let q = PointKey::new([(s * 77_777_777) as u32, (s * 33_333_331) as u32]);
            let origin = web.random_origin(s);
            let sim = web.locate_point(origin, q);
            let reply = dist
                .query(&client, origin, QuadtreeRequest::Locate(q))
                .expect("runtime alive");
            assert_eq!(
                reply.answer,
                QuadtreeAnswer::Located {
                    cell: sim.cell,
                    approx_nearest: sim.approx_nearest,
                },
                "cell parity for {q:?}"
            );
            assert_eq!(u64::from(reply.hops), sim.messages, "hop parity for {q:?}");
        }
        dist.shutdown();
    }

    #[test]
    fn quadtree_box_reporting_over_the_runtime_matches_the_simulator() {
        let web = QuadtreeSkipWeb::builder(grid_points(200)).seed(22).build();
        let dist = web.serve();
        let client = dist.client();
        let boxes: [([u32; 2], [u32; 2]); 3] = [
            ([0, 0], [u32::MAX / 2, u32::MAX / 2]),
            ([1 << 20, 1 << 20], [1 << 24, 1 << 24]),
            ([0, 0], [u32::MAX, u32::MAX]),
        ];
        for (lo, hi) in boxes {
            let sim = web.points_in_box(web.random_origin(3), lo, hi);
            let reply = dist
                .query(
                    &client,
                    web.random_origin(3),
                    QuadtreeRequest::InBox { lo, hi },
                )
                .expect("runtime alive");
            assert_eq!(
                reply.answer,
                QuadtreeAnswer::Points(sim.points),
                "box {lo:?}..{hi:?}"
            );
        }
        dist.shutdown();
    }

    #[test]
    fn trie_prefix_search_matches_simulator_with_hop_parity() {
        let mut strings: Vec<String> = (0..80).map(|i| format!("isbn-97802{i:03}x")).collect();
        strings.push("zzz".into());
        let web = TrieSkipWeb::builder(strings).seed(23).build();
        let dist = web.serve();
        let client = dist.client();
        for prefix in ["isbn-97802", "isbn-978020", "isbn", "zzz", "nope", ""] {
            let origin = web.random_origin(prefix.len() as u64);
            let sim = web.prefix_search(origin, prefix);
            let reply = dist
                .query(&client, origin, prefix.to_string())
                .expect("runtime alive");
            assert_eq!(reply.answer.matched_len, sim.matched_len, "len {prefix:?}");
            assert_eq!(reply.answer.matches, sim.matches, "matches {prefix:?}");
            assert_eq!(
                u64::from(reply.hops),
                sim.messages,
                "hop parity for {prefix:?}"
            );
        }
        dist.shutdown();
    }

    #[test]
    fn trapezoid_point_location_answers_match_the_simulator() {
        let segments: Vec<Segment> = (0..24)
            .map(|i| {
                let x = i * 100;
                Segment::new((x, i * 5), (x + 60, i * 5 + 3))
            })
            .collect();
        let web = TrapezoidSkipWeb::builder(segments).seed(24).build();
        let dist = web.serve();
        let client = dist.client();
        for s in 0..20i64 {
            let q = (s * 137 - 150, s * 11 - 40);
            let origin = web.random_origin(s as u64);
            let sim = web.locate_point(origin, q);
            let reply = dist.query(&client, origin, q).expect("runtime alive");
            assert_eq!(reply.answer, sim.trapezoid, "trapezoid for {q:?}");
            // BFS tie-breaks may reroute step walks, so assert the hop
            // budget rather than exact parity here.
            assert!(
                u64::from(reply.hops) <= 4 * sim.messages + 16,
                "hops {} vs sim {}",
                reply.hops,
                sim.messages
            );
        }
        dist.shutdown();
    }

    #[test]
    fn consolidation_caps_hosts_and_keeps_answers() {
        let keys: Vec<u64> = (0..300).map(|i| i * 3 + 1).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(25).build();
        let full = DistributedSkipWeb::builder(web.inner()).spawn();
        let four = DistributedSkipWeb::builder(web.inner())
            .consolidated(4)
            .spawn();
        let one = DistributedSkipWeb::builder(web.inner())
            .consolidated(1)
            .spawn();
        assert_eq!(full.hosts(), 300);
        assert_eq!(four.hosts(), 4);
        assert_eq!(one.hosts(), 1);
        let (cf, c4, c1) = (full.client(), four.client(), one.client());
        for s in 0..25u64 {
            let q = (s * 211) % 1000;
            let origin = web.random_origin(s);
            let want = web.nearest(origin, q).answer.nearest;
            assert_eq!(full.query(&cf, origin, q).unwrap().answer, Some(want));
            assert_eq!(four.query(&c4, origin, q).unwrap().answer, Some(want));
            assert_eq!(one.query(&c1, origin, q).unwrap().answer, Some(want));
        }
        // Folding hosts can only remove crossings, never add them — and a
        // single host never pays a message at all.
        assert!(four.message_count() <= full.message_count());
        assert_eq!(one.message_count(), 0);
        // Per-host counters sum to the global counter; no updates ran.
        let traffic = four.traffic();
        assert_eq!(traffic.hosts(), 4);
        assert_eq!(traffic.total_sent(), four.message_count());
        assert_eq!(traffic.total_update_sent(), 0);
        full.shutdown();
        four.shutdown();
        one.shutdown();
    }

    #[test]
    fn live_onedim_updates_match_the_simulator_hop_for_hop() {
        let keys: Vec<u64> = (0..80).map(|i| i * 10).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(26).build();
        let mut sim = web.inner().clone();
        // Headroom so inserted items get their own hosts, as in the sim.
        let dist = DistributedSkipWeb::builder(web.inner())
            .capacity(80 + 16)
            .spawn();
        let client = dist.client();
        for i in 0..16u64 {
            let key = 5 + i * 37;
            let bits = i.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xABCD;
            let origin = (i as usize * 7) % sim.len();
            let mut meter = MessageMeter::new();
            let sim_applied = sim.insert_with(Some(origin), key, bits, &mut meter);
            let reply = dist.insert_with(&client, origin, key, bits).unwrap();
            assert_eq!(reply.applied, sim_applied, "insert {key}");
            assert_eq!(u64::from(reply.hops), meter.messages(), "hops insert {key}");
        }
        for i in 0..8u64 {
            let key = i * 30; // some present, some already gone
            let origin = (i as usize * 11) % sim.len();
            let sim_origin = (sim.len() > 1).then_some(origin);
            let mut meter = MessageMeter::new();
            let sim_applied = sim.remove_with(sim_origin, &key, &mut meter);
            let reply = dist.remove_with(&client, origin, key).unwrap();
            assert_eq!(reply.applied, sim_applied, "remove {key}");
            assert_eq!(u64::from(reply.hops), meter.messages(), "hops remove {key}");
        }
        // Post-churn state and query parity.
        assert_eq!(dist.ground(), sim.ground());
        for s in 0..20u64 {
            let q = (s * 131) % 1000;
            let origin = s as usize % sim.len();
            let mut meter = MessageMeter::new();
            let out = sim.query(origin, &q, &mut meter);
            let locus = sim.base().range(out.locus);
            let want = crate::onedim::nearest_from_locus(&locus, q);
            let reply = dist.query(&client, origin, q).unwrap();
            assert_eq!(reply.answer, want.or(sim.base().nearest_key(q)), "q={q}");
            assert_eq!(u64::from(reply.hops), out.messages, "query hops q={q}");
        }
        // Update traffic is metered separately from query traffic.
        let traffic = dist.traffic();
        assert!(traffic.total_update_sent() > 0);
        assert!(traffic.total_query_sent() > 0);
        assert_eq!(traffic.total_sent(), dist.message_count());
        dist.shutdown();
    }

    #[test]
    fn duplicate_inserts_and_absent_removes_are_noops() {
        let keys: Vec<u64> = (0..32).map(|i| i * 4).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(27).build();
        let dist = DistributedSkipWeb::builder(web.inner()).spawn();
        let client = dist.client();
        // Duplicate insert: pays the lookup, applies nothing.
        let dup = dist.insert_with(&client, 3, 16, 0xBEEF).unwrap();
        assert!(!dup.applied);
        assert_eq!(dist.len(), 32);
        // Absent remove: free no-op, like the simulator.
        let gone = dist.remove_with(&client, 0, 999).unwrap();
        assert!(!gone.applied);
        assert_eq!(gone.hops, 0);
        assert_eq!(dist.len(), 32);
        dist.shutdown();
    }

    #[test]
    fn updates_grow_and_shrink_through_the_empty_web() {
        let web = crate::onedim::OneDimSkipWeb::builder(vec![7])
            .seed(28)
            .build();
        let dist = DistributedSkipWeb::builder(web.inner()).capacity(8).spawn();
        let client = dist.client();
        // Remove the last item (no lookup phase, like the simulator).
        assert!(dist.remove(&client, 7).unwrap().applied);
        assert!(dist.is_empty());
        // Insert into the empty web, then query it.
        assert!(dist.insert(&client, 42).unwrap().applied);
        assert!(dist.insert(&client, 50).unwrap().applied);
        assert_eq!(dist.ground(), vec![42, 50]);
        let reply = dist.query(&client, 0, 45).unwrap();
        assert_eq!(reply.answer, Some(42));
        dist.shutdown();
    }

    #[test]
    fn inadmissible_trapezoid_insert_is_rejected_not_fatal() {
        let segments: Vec<Segment> = (0..12)
            .map(|i| Segment::new((i * 100, i * 10), (i * 100 + 60, i * 10 + 3)))
            .collect();
        let web = TrapezoidSkipWeb::builder(segments).seed(29).build();
        let dist = DistributedSkipWeb::builder(web.inner())
            .capacity(16)
            .spawn();
        let client = dist.client();
        // Shares an endpoint x-coordinate with a stored segment: violates
        // general position. The actor must reject it, not panic.
        let bad = Segment::new((0, 500), (77, 501));
        let reply = dist.insert(&client, bad).unwrap();
        assert!(!reply.applied);
        assert!(dist.health().dead.is_empty(), "fabric must stay healthy");
        // A good segment above all bands still applies.
        let good = Segment::new((41, 2_000), (83, 2_001));
        assert!(dist.insert(&client, good).unwrap().applied);
        let reply = dist.query(&client, 0, (60i64, 2_005i64)).unwrap();
        assert_eq!(reply.answer.bottom, Some(good));
        assert!(dist.remove(&client, good).unwrap().applied);
        dist.shutdown();
    }

    #[test]
    fn in_flight_queries_never_observe_a_half_applied_update() {
        // Readers hammer the web while a writer churns; every answer must
        // be a key that was a member of some pre- or post-update snapshot,
        // and nothing may hang or panic.
        let keys: Vec<u64> = (0..100).map(|i| i * 100).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(30).build();
        let dist = DistributedSkipWeb::builder(web.inner())
            .capacity(100 + 32)
            .spawn();
        std::thread::scope(|scope| {
            let writer = {
                let dist = &dist;
                scope.spawn(move || {
                    let client = dist.client();
                    for i in 0..24u64 {
                        let key = 50 + i * 200;
                        assert!(dist.insert(&client, key).unwrap().applied);
                        if i % 3 == 0 {
                            assert!(dist.remove(&client, key).unwrap().applied);
                        }
                    }
                })
            };
            for r in 0..3u64 {
                let dist = &dist;
                scope.spawn(move || {
                    let client = dist.client();
                    for i in 0..60u64 {
                        let q = (r * 97 + i * 131) % 11_000;
                        let reply = dist.query(&client, (i as usize) % 100, q).unwrap();
                        let a = reply.answer.expect("web never empties");
                        assert!(
                            a.is_multiple_of(100) || (a >= 50 && (a - 50).is_multiple_of(200)),
                            "answer {a} was never a member"
                        );
                    }
                });
            }
            writer.join().unwrap();
        });
        dist.shutdown();
    }

    /// Blocks until `host` shows up dead in the engine's membership view
    /// (a panicking thread publishes its tombstone as it unwinds).
    fn await_dead<D: Routable + Send + Sync + 'static>(dist: &DistributedSkipWeb<D>, host: HostId) {
        for _ in 0..2000 {
            if dist.membership().dead_hosts().contains(&host) {
                return;
            }
            std::thread::sleep(Duration::from_millis(1));
        }
        panic!("{host} never tombstoned");
    }

    #[test]
    fn host_panic_mid_update_is_contained_and_reported_by_health() {
        let keys: Vec<u64> = (0..64).map(|i| i * 3).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys)
            .seed(31)
            .replicate(2)
            .build();
        let dist = DistributedSkipWeb::builder(web.inner()).spawn();
        let client = dist.client();
        client.set_timeouts(Timeouts::uniform(Duration::from_millis(300)));
        // A corrupt address makes host 5 die mid-update processing.
        let topo = dist.shared.current_topo();
        client
            .inner
            .send(
                HostId(5),
                FabricMsg::One(EngineMsg {
                    op: EngineOp::Update(UpdateOp {
                        kind: UpdateKind::Insert { bits: 1 },
                        item: 7,
                        phase: UpdatePhase::Route,
                        op_id: 777,
                    }),
                    at: GlobalRef {
                        level: 0,
                        set: 0,
                        range: u32::MAX,
                    },
                    client: client.id(),
                    corr: 777,
                    hops: 0,
                    topo,
                }),
            )
            .unwrap();
        // The blocked client surfaces the lost op as a timeout, not a hang.
        let err = client.recv_corr(777, Duration::from_secs(2)).unwrap_err();
        assert_eq!(err, RuntimeError::Timeout);
        await_dead(&dist, HostId(5));
        let health = dist.health();
        assert_eq!(health.dead, vec![HostId(5)]);
        assert_eq!(health.replication, 2);
        assert_eq!(health.alive.len(), 63);
        // The membership view exposes the same first-crash signal the old
        // `poisoned_by` shim used to.
        assert_eq!(dist.membership().first_dead(), Some(HostId(5)));
        // The crash is contained: with k = 2 the fabric keeps serving
        // queries and updates from replicas instead of failing fast.
        client.set_timeouts(Timeouts::new(
            Duration::from_secs(10),
            Duration::from_secs(30),
        ));
        assert!(dist.insert(&client, 999).unwrap().applied);
        let reply = dist.query(&client, 0, 998).unwrap();
        assert_eq!(reply.answer, Some(999));
        dist.shutdown();
    }

    #[test]
    fn killing_a_host_with_replication_keeps_every_query_answerable() {
        let keys: Vec<u64> = (0..120).map(|i| i * 10).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys)
            .seed(32)
            .replicate(2)
            .build();
        let dist = DistributedSkipWeb::builder(web.inner()).spawn();
        let client = dist.client();
        dist.kill_host(HostId(7));
        for s in 0..40u64 {
            let q = (s * 211) % 1300;
            let origin = web.random_origin(s);
            let want = web.nearest(origin, q).answer.nearest;
            let reply = dist.query(&client, origin, q).unwrap();
            assert_eq!(reply.answer, Some(want), "q={q} after crash");
        }
        // Origins homed on the dead host enter at a replica.
        let dead_origin = 7usize;
        assert!(dist
            .query(&client, dead_origin, 75)
            .unwrap()
            .answer
            .is_some());
        dist.shutdown();
    }

    #[test]
    fn unreplicated_crash_fails_fast_and_heal_restores_availability() {
        let keys: Vec<u64> = (0..64).map(|i| i * 10).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(33).build();
        let dist = DistributedSkipWeb::builder(web.inner()).spawn();
        let client = dist.client();
        client.set_timeouts(Timeouts::uniform(Duration::from_secs(2)));
        dist.kill_host(HostId(9));
        // Some query must need host 9's tower with k = 1: it reports
        // Unavailable (fail fast) rather than timing out.
        let mut saw_unavailable = false;
        for s in 0..64u64 {
            match dist.query(&client, web.random_origin(s), s * 10 + 5) {
                Ok(_) => {}
                Err(RuntimeError::Unavailable) => saw_unavailable = true,
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        assert!(saw_unavailable, "k = 1 cannot survive a crash everywhere");
        // Healing re-homes the dead host's blocks; the web then answers
        // every query again (from the rebuilt placement).
        let v_before = dist.health().topology_version;
        dist.heal();
        assert!(dist.health().topology_version > v_before);
        for s in 0..64u64 {
            assert!(
                dist.query(&client, web.random_origin(s), s * 10 + 5)
                    .unwrap()
                    .answer
                    .is_some(),
                "healed web must answer"
            );
        }
        dist.shutdown();
    }

    #[test]
    fn decommission_rehomes_blocks_and_keeps_answers() {
        let keys: Vec<u64> = (0..80).map(|i| i * 5).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(34).build();
        let dist = DistributedSkipWeb::builder(web.inner())
            .consolidated(8)
            .spawn();
        let client = dist.client();
        dist.decommission(HostId(3)).unwrap();
        let health = dist.health();
        assert_eq!(health.decommissioned, vec![HostId(3)]);
        assert_eq!(health.alive.len(), 7);
        // Double decommission and last-host decommission are rejected.
        assert_eq!(
            dist.decommission(HostId(3)).unwrap_err(),
            RuntimeError::HostDown(HostId(3))
        );
        for s in 0..30u64 {
            let q = (s * 97) % 450;
            let origin = web.random_origin(s);
            let want = web.nearest(origin, q).answer.nearest;
            assert_eq!(dist.query(&client, origin, q).unwrap().answer, Some(want));
        }
        // After the drain, no new query traffic lands on host 3 (the old
        // snapshot's in-flight ops are long gone).
        let before = dist.traffic().received[3];
        for s in 0..30u64 {
            let _ = dist.query(&client, web.random_origin(s), s * 13).unwrap();
        }
        assert_eq!(dist.traffic().received[3], before);
        dist.shutdown();
    }

    #[test]
    fn spawn_host_grows_the_fabric_and_rebalances() {
        let keys: Vec<u64> = (0..60).map(|i| i * 4).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(35).build();
        let dist = DistributedSkipWeb::builder(web.inner())
            .consolidated(4)
            .spawn();
        let client = dist.client();
        let new = dist.spawn_host();
        assert_eq!(new, HostId(4));
        assert_eq!(dist.hosts(), 5);
        for s in 0..30u64 {
            let q = (s * 101) % 250;
            let origin = web.random_origin(s);
            let want = web.nearest(origin, q).answer.nearest;
            assert_eq!(dist.query(&client, origin, q).unwrap().answer, Some(want));
        }
        // The new host actually participates in the rebalanced placement.
        assert!(
            dist.traffic().received[4] > 0,
            "spawned host must receive traffic"
        );
        assert!(dist.insert(&client, 999).unwrap().applied);
        dist.shutdown();
    }

    #[test]
    fn batched_queries_and_updates_match_serial_with_fewer_crossings() {
        let keys: Vec<u64> = (0..200).map(|i| i * 10).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(41).build();
        let serial = DistributedSkipWeb::builder(web.inner())
            .capacity(200 + 16)
            .spawn();
        let batched = DistributedSkipWeb::builder(web.inner())
            .capacity(200 + 16)
            .spawn();
        let (cs, cb) = (serial.client(), batched.client());
        // Queries: byte-identical answers, strictly fewer crossings.
        let qs: Vec<u64> = (0..64u64).map(|s| (s * 157) % 2100).collect();
        let want: Vec<Option<u64>> = qs
            .iter()
            .map(|&q| serial.query(&cs, 3, q).unwrap().answer)
            .collect();
        let got: Vec<Option<u64>> = batched
            .query_batch(&cb, 3, qs.clone())
            .unwrap()
            .into_iter()
            .map(|r| r.answer)
            .collect();
        assert_eq!(got, want);
        let (q_serial, q_batched) = (serial.message_count(), batched.message_count());
        assert!(
            q_batched < q_serial,
            "batch crossings {q_batched} must undercut serial {q_serial}"
        );
        // Per-op hops still equal the serial route length: the envelope is
        // what got cheaper, not the route.
        for (reply, &q) in batched
            .query_batch(&cb, 5, qs.clone())
            .unwrap()
            .iter()
            .zip(&qs)
        {
            let serial_reply = serial.query(&cs, 5, q).unwrap();
            assert_eq!(reply.hops, serial_reply.hops, "route length for q={q}");
        }
        // Updates: same (origin, item, bits) triples through both paths
        // leave identical flags and ground sets, with coalesced envelopes
        // metered on the batch side. One shared origin and clustered keys
        // keep the routes overlapping, so the batch demonstrably coalesces.
        let ins: Vec<(usize, u64, u64)> = (0..12u64)
            .map(|i| (3usize, 901 + i * 2, i.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
            .collect();
        let serial_flags: Vec<bool> = ins
            .iter()
            .map(|&(o, k, b)| serial.insert_with(&cs, o, k, b).unwrap().applied)
            .collect();
        let batch_flags: Vec<bool> = batched
            .insert_batch_with(&cb, ins.clone())
            .unwrap()
            .into_iter()
            .map(|r| r.applied)
            .collect();
        assert_eq!(batch_flags, serial_flags);
        assert_eq!(batched.ground(), serial.ground());
        let rem: Vec<(usize, u64)> = ins.iter().map(|&(o, k, _)| (o, k)).collect();
        let serial_flags: Vec<bool> = rem
            .iter()
            .map(|&(o, k)| serial.remove_with(&cs, o, k).unwrap().applied)
            .collect();
        let batch_flags: Vec<bool> = batched
            .remove_batch_with(&cb, rem)
            .unwrap()
            .into_iter()
            .map(|r| r.applied)
            .collect();
        assert_eq!(batch_flags, serial_flags);
        assert_eq!(batched.ground(), serial.ground());
        assert!(
            batched.traffic().total_update_batch_ops() > 0,
            "update coalescing must be metered"
        );
        serial.shutdown();
        batched.shutdown();
    }

    #[test]
    fn scattered_box_and_prefix_reports_match_the_serial_answers() {
        // Quadtree: scatter-gathered box reports are byte-identical to the
        // locus-computed ones, while the fan-out pays real crossings.
        let web = QuadtreeSkipWeb::builder(grid_points(180)).seed(42).build();
        let dist = web.serve();
        let client = dist.client();
        let boxes: [([u32; 2], [u32; 2]); 3] = [
            ([0, 0], [u32::MAX / 2, u32::MAX / 2]),
            ([1 << 20, 1 << 20], [1 << 26, 1 << 26]),
            ([0, 0], [u32::MAX, u32::MAX]),
        ];
        for (lo, hi) in boxes {
            let origin = web.random_origin(5);
            let serial = dist
                .query(&client, origin, QuadtreeRequest::InBox { lo, hi })
                .unwrap();
            let scattered = dist
                .query_scatter(&client, origin, QuadtreeRequest::InBox { lo, hi })
                .unwrap();
            assert_eq!(scattered.answer, serial.answer, "box {lo:?}..{hi:?}");
        }
        // A locate request has nothing to scatter and falls back serially.
        let q = PointKey::new([7, 9]);
        let serial = dist.query(&client, 0, QuadtreeRequest::Locate(q)).unwrap();
        let scattered = dist
            .query_scatter(&client, 0, QuadtreeRequest::Locate(q))
            .unwrap();
        assert_eq!(scattered.answer, serial.answer);
        assert_eq!(scattered.hops, serial.hops);
        dist.shutdown();

        // Trie: prefix enumeration scatter-gathers across the hosts owning
        // the matches.
        let strings: Vec<String> = (0..90).map(|i| format!("isbn-97802{i:03}x")).collect();
        let web = TrieSkipWeb::builder(strings).seed(43).build();
        let dist = web.serve();
        let client = dist.client();
        for prefix in ["isbn-97802", "isbn-978020", "isbn", "nope", ""] {
            let origin = web.random_origin(prefix.len() as u64);
            let serial = dist.query(&client, origin, prefix.to_string()).unwrap();
            let scattered = dist
                .query_scatter(&client, origin, prefix.to_string())
                .unwrap();
            assert_eq!(
                scattered.answer.matched_len, serial.answer.matched_len,
                "len {prefix:?}"
            );
            assert_eq!(
                scattered.answer.matches, serial.answer.matches,
                "matches {prefix:?}"
            );
        }
        dist.shutdown();
    }

    #[test]
    fn scattered_reports_survive_a_crash_with_replicas() {
        let web = QuadtreeSkipWeb::builder(grid_points(120))
            .seed(44)
            .replicate(2)
            .build();
        let dist = web.serve();
        let client = dist.client();
        let (lo, hi) = ([0u32, 0u32], [u32::MAX, u32::MAX]);
        let want = dist
            .query(
                &client,
                web.random_origin(1),
                QuadtreeRequest::InBox { lo, hi },
            )
            .unwrap();
        dist.kill_host(HostId(9));
        let got = dist
            .query_scatter(
                &client,
                web.random_origin(1),
                QuadtreeRequest::InBox { lo, hi },
            )
            .unwrap();
        assert_eq!(got.answer, want.answer, "scatter steers around the crash");
        dist.shutdown();
    }

    #[test]
    fn resubmitted_update_with_same_op_id_never_double_applies() {
        let keys: Vec<u64> = (0..32).map(|i| i * 4).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(45).build();
        let dist = DistributedSkipWeb::builder(web.inner())
            .capacity(40)
            .spawn();
        let client = dist.client();
        // First attempt of the logical insert lands normally.
        let topo = dist.shared.current_topo();
        let corr0 = dist
            .submit_update_at(
                &client,
                topo,
                3,
                UpdateKind::Insert { bits: 0xBEEF },
                333,
                None,
            )
            .unwrap();
        let first = dist
            .collect_update(
                &client,
                corr0,
                corr0,
                3,
                UpdateKind::Insert { bits: 0xBEEF },
                &333,
            )
            .unwrap();
        assert!(first.applied);
        assert!(dist.ground().contains(&333));
        // A concurrent client removes the key before the (simulated)
        // timeout-resubmit of the original attempt arrives.
        let other = dist.client();
        assert!(dist.remove(&other, 333).unwrap().applied);
        let version = dist.health().topology_version;
        // The resubmit carries the original op id: the apply path finds the
        // recorded outcome and echoes it instead of re-inserting — without
        // the ledger this second attempt would double-apply and resurrect
        // the removed key.
        let topo = dist.shared.current_topo();
        let corr1 = dist
            .submit_update_at(
                &client,
                topo,
                3,
                UpdateKind::Insert { bits: 0xBEEF },
                333,
                Some(corr0),
            )
            .unwrap();
        let replay = dist
            .collect_update(
                &client,
                corr1,
                corr0,
                3,
                UpdateKind::Insert { bits: 0xBEEF },
                &333,
            )
            .unwrap();
        assert!(replay.applied, "echoed outcome reports the first landing");
        assert!(
            !dist.ground().contains(&333),
            "the resubmit must not re-apply the insert"
        );
        assert_eq!(
            dist.health().topology_version,
            version,
            "an echoed replay publishes no new snapshot"
        );
        dist.shutdown();
    }

    #[test]
    fn lost_update_is_resubmitted_and_applies_exactly_once() {
        let keys: Vec<u64> = (0..48).map(|i| i * 10).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys)
            .seed(46)
            .replicate(2)
            .build();
        let dist = DistributedSkipWeb::builder(web.inner()).spawn();
        let client = dist.client();
        client.set_timeouts(Timeouts::new(
            Duration::from_millis(400),
            Duration::from_millis(400),
        ));
        // Poison the origin's entry host with a corrupt address, then race
        // the real insert into its mailbox: whether the insert queues
        // behind the poison (lost with the crash → timeout → resubmit) or
        // the tombstone beats the send (failover at submit), the blocking
        // call must land the insert exactly once.
        let topo = dist.shared.current_topo();
        let (entry_host, _) = topo.origins[0];
        client
            .inner
            .send(
                entry_host,
                FabricMsg::One(EngineMsg {
                    op: EngineOp::Query {
                        req: 0u64,
                        gather: false,
                    },
                    at: GlobalRef {
                        level: 0,
                        set: 0,
                        range: u32::MAX,
                    },
                    client: client.id(),
                    corr: u64::MAX,
                    hops: 0,
                    topo: Arc::clone(&topo),
                }),
            )
            .unwrap();
        let before = dist.health().topology_version;
        let reply = dist.insert_with(&client, 0, 7, 0xF00D).unwrap();
        assert!(reply.applied);
        assert!(dist.ground().contains(&7));
        assert_eq!(
            dist.health().topology_version,
            before + 1,
            "exactly one apply published exactly one snapshot"
        );
        await_dead(&dist, entry_host);
        dist.shutdown();
    }

    #[test]
    fn late_replies_for_abandoned_correlations_are_dropped_and_counted() {
        let keys: Vec<u64> = (0..64).map(|i| i * 3).collect();
        let web = crate::onedim::OneDimSkipWeb::builder(keys).seed(47).build();
        let dist = DistributedSkipWeb::builder(web.inner()).spawn();
        let client = dist.client();
        let corr = dist.submit(&client, 0, 55u64).unwrap();
        // Abandon the operation before draining its reply: the late answer
        // must be dropped on arrival — and counted — instead of sitting in
        // the pending buffer where a later recv_any would misread it.
        client.mark_stale(corr);
        let err = client.recv_any(Duration::from_millis(600)).unwrap_err();
        assert_eq!(err, RuntimeError::Timeout);
        assert_eq!(dist.traffic().stale_replies, 1, "drop is observable");
        assert!(client.pending.lock().is_empty(), "nothing parked");
        // A fresh operation on the same client is unaffected.
        let reply = dist.query(&client, 0, 55).unwrap();
        assert_eq!(reply.corr, corr + 1);
        assert!(reply.answer.is_some());
        dist.shutdown();
    }

    #[test]
    fn client_timeouts_are_configurable_per_client() {
        let web = crate::onedim::OneDimSkipWeb::builder(vec![1, 2, 3])
            .seed(36)
            .build();
        let dist = DistributedSkipWeb::builder(web.inner()).spawn();
        let client = dist.client();
        assert_eq!(client.query_timeout(), DEFAULT_QUERY_TIMEOUT);
        assert_eq!(client.update_timeout(), DEFAULT_UPDATE_TIMEOUT);
        client.set_timeouts(Timeouts::uniform(Duration::from_millis(250)));
        assert_eq!(client.query_timeout(), Duration::from_millis(250));
        assert_eq!(client.update_timeout(), Duration::from_millis(250));
        client.set_timeouts(Timeouts::new(
            Duration::from_secs(1),
            Duration::from_secs(2),
        ));
        assert_eq!(client.query_timeout(), Duration::from_secs(1));
        assert_eq!(client.update_timeout(), Duration::from_secs(2));
        // A second client keeps the defaults: the setting is per client.
        let other = dist.client();
        assert_eq!(other.query_timeout(), DEFAULT_QUERY_TIMEOUT);
        dist.shutdown();
    }
}
