//! Distributed blocking: assigning structure ranges to hosts (§2.4).
//!
//! Two strategies from the paper:
//!
//! * [`Blocking::OwnerHosted`] — `H = n`: every ground item owns a host and
//!   every range lives with its owning item, so an item's "tower" of ranges
//!   across levels is co-located (Figure 2's gray nodes). This is the
//!   arbitrary-assignment regime of §2.4 with skip-graph-style ownership.
//! * [`Blocking::Bucketed { memory }`] — §2.4.1: levels are stratified with
//!   *basic* levels every `L = ⌈log₂ M⌉` levels; each basic-level structure
//!   is cut into blocks of `~M/L` contiguous ranges, one block per host, and
//!   every non-basic range is stored with the basic block it projects onto
//!   (following its hyperlink chain downward). A query then pays messages
//!   only when crossing basic levels: `O(log n / log M)` in expectation.

use std::fmt;

/// Strategy for assigning ranges to hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blocking {
    /// One host per ground item; ranges live with their owner item.
    OwnerHosted,
    /// Bucketed placement of §2.4.1 with per-host memory budget `memory`
    /// (the paper's `M`).
    Bucketed {
        /// Per-host memory budget `M ≥ 2` (items + pointers + host IDs).
        memory: usize,
    },
}

impl Blocking {
    /// The stratification width `L = ⌈log₂ M⌉` for bucketed placement
    /// (1 for owner-hosted placement, where every level is "basic").
    pub fn stratum_width(&self) -> u32 {
        match self {
            Blocking::OwnerHosted => 1,
            Blocking::Bucketed { memory } => {
                let m = (*memory).max(2);
                (usize::BITS - (m - 1).leading_zeros()).max(1)
            }
        }
    }

    /// Whether `level` is a basic level under this strategy.
    pub fn is_basic(&self, level: u32) -> bool {
        level.is_multiple_of(self.stratum_width())
    }

    /// The basic level at or below `level`.
    pub fn basic_below(&self, level: u32) -> u32 {
        level - (level % self.stratum_width())
    }

    /// Block size in ranges for basic levels (`max(1, M / L)`); meaningless
    /// for owner-hosted placement.
    pub fn block_size(&self) -> usize {
        match self {
            Blocking::OwnerHosted => 1,
            Blocking::Bucketed { memory } => {
                let l = self.stratum_width() as usize;
                (memory / l).max(1)
            }
        }
    }
}

impl fmt::Display for Blocking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Blocking::OwnerHosted => write!(f, "owner-hosted (H = n)"),
            Blocking::Bucketed { memory } => write!(f, "bucketed (M = {memory})"),
        }
    }
}

/// Replication factor layered over a [`Blocking`] strategy: every range's
/// replica set is extended to `k` distinct hosts (the primary plus its ring
/// successors), so each `GlobalRef` resolves to a *replica set* instead of
/// a single host and the structure stays available through up to `k - 1`
/// host crashes.
///
/// `k = 1` (the default, [`Replication::NONE`]) reproduces the paper's
/// fail-free model exactly: one authoritative copy per range (plus whatever
/// co-location bucketed placement already does), and the engine's hop
/// accounting stays in lock-step with the cost-model simulator. With
/// `k ≥ 2` the placement trades that exact hop parity for availability:
/// replicas create extra co-location, so live hop counts can only shrink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Replication {
    /// Number of hosts storing a copy of every range (`k ≥ 1`).
    pub k: usize,
}

impl Replication {
    /// No replication: one copy per range, the paper's fail-free model.
    pub const NONE: Replication = Replication { k: 1 };

    /// Replication factor `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero (every range needs at least one copy).
    pub fn new(k: usize) -> Self {
        assert!(k >= 1, "every range needs at least one copy");
        Replication { k }
    }

    /// How many simultaneous host crashes this factor survives (`k - 1`).
    pub fn survives_crashes(&self) -> usize {
        self.k - 1
    }
}

impl Default for Replication {
    fn default() -> Self {
        Replication::NONE
    }
}

impl fmt::Display for Replication {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k = {}", self.k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn owner_hosted_treats_every_level_as_basic() {
        let b = Blocking::OwnerHosted;
        assert_eq!(b.stratum_width(), 1);
        assert!(b.is_basic(0));
        assert!(b.is_basic(7));
        assert_eq!(b.basic_below(7), 7);
    }

    #[test]
    fn bucketed_stratum_width_is_ceil_log2_memory() {
        assert_eq!(Blocking::Bucketed { memory: 2 }.stratum_width(), 1);
        assert_eq!(Blocking::Bucketed { memory: 4 }.stratum_width(), 2);
        assert_eq!(Blocking::Bucketed { memory: 5 }.stratum_width(), 3);
        assert_eq!(Blocking::Bucketed { memory: 1024 }.stratum_width(), 10);
    }

    #[test]
    fn basic_levels_are_multiples_of_the_width() {
        let b = Blocking::Bucketed { memory: 16 }; // L = 4
        assert!(b.is_basic(0));
        assert!(b.is_basic(4));
        assert!(!b.is_basic(5));
        assert_eq!(b.basic_below(5), 4);
        assert_eq!(b.basic_below(7), 4);
        assert_eq!(b.basic_below(8), 8);
    }

    #[test]
    fn block_size_splits_memory_over_the_stratum() {
        let b = Blocking::Bucketed { memory: 64 }; // L = 6
        assert_eq!(b.block_size(), 64 / 6);
        let tiny = Blocking::Bucketed { memory: 2 };
        assert!(tiny.block_size() >= 1);
    }

    #[test]
    fn display_names_the_strategy() {
        assert!(Blocking::OwnerHosted.to_string().contains("H = n"));
        assert!(Blocking::Bucketed { memory: 8 }
            .to_string()
            .contains("M = 8"));
    }

    #[test]
    fn replication_defaults_to_a_single_copy() {
        assert_eq!(Replication::default(), Replication::NONE);
        assert_eq!(Replication::NONE.k, 1);
        assert_eq!(Replication::NONE.survives_crashes(), 0);
    }

    #[test]
    fn replication_factor_names_its_crash_budget() {
        let r = Replication::new(3);
        assert_eq!(r.k, 3);
        assert_eq!(r.survives_crashes(), 2);
        assert_eq!(r.to_string(), "k = 3");
    }

    #[test]
    #[should_panic(expected = "at least one copy")]
    fn zero_replication_is_rejected() {
        let _ = Replication::new(0);
    }
}
