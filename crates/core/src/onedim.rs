//! One-dimensional skip-webs: nearest-neighbour search over sorted keys
//! (§2.4.1), including the bucketed variant from the last two rows of
//! Table 1.

use skipweb_net::sim::{MessageMeter, SimNetwork};
use skipweb_net::HostId;
use skipweb_structures::interval::Endpoint;
use skipweb_structures::linked_list::SortedLinkedList;
use skipweb_structures::traits::{RangeDetermined, RangeId};
use skipweb_structures::KeyInterval;

use crate::engine::{DistributedSkipWeb, Routable};
use crate::placement::{Blocking, Replication};
use crate::skipweb::{SkipWeb, SkipWebBuilder};

/// The 1-D skip-web routes plain keys and answers with the nearest stored
/// key, extracted from the level-0 locus interval alone — exactly the local
/// information the answering host holds.
impl Routable for SortedLinkedList {
    type Request = u64;
    type Answer = Option<u64>;

    fn target(req: &u64) -> u64 {
        *req
    }

    fn answer(&self, locus: RangeId, req: &u64) -> Option<u64> {
        nearest_from_locus(&RangeDetermined::range(self, locus), *req)
            .or_else(|| self.nearest_key(*req))
    }
}

/// Wire layout: requests and items are bare `u64` keys; the answer is an
/// option tag byte followed by the key when present.
impl crate::wire::WireCodec for SortedLinkedList {
    fn encode_request(req: &u64, buf: &mut Vec<u8>) {
        skipweb_net::wire::put_u64(buf, *req);
    }

    fn decode_request(r: &mut skipweb_net::wire::WireReader<'_>) -> Option<u64> {
        r.read_u64()
    }

    fn encode_answer(ans: &Option<u64>, buf: &mut Vec<u8>) {
        match ans {
            None => skipweb_net::wire::put_u8(buf, 0),
            Some(k) => {
                skipweb_net::wire::put_u8(buf, 1);
                skipweb_net::wire::put_u64(buf, *k);
            }
        }
    }

    fn decode_answer(r: &mut skipweb_net::wire::WireReader<'_>) -> Option<Option<u64>> {
        match r.read_u8()? {
            0 => Some(None),
            1 => Some(Some(r.read_u64()?)),
            _ => None,
        }
    }

    fn encode_item(item: &u64, buf: &mut Vec<u8>) {
        skipweb_net::wire::put_u64(buf, *item);
    }

    fn decode_item(r: &mut skipweb_net::wire::WireReader<'_>) -> Option<u64> {
        r.read_u64()
    }
}

/// The answer of a 1-D nearest-neighbour query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NearestAnswer {
    /// The stored key nearest to the query (ties to the smaller key).
    pub nearest: u64,
    /// The level-0 range the search terminated in — the point-location
    /// answer (a node for exact hits, a link interval otherwise).
    pub locus: KeyInterval,
}

/// A completed 1-D query with its cost accounting.
#[derive(Debug, Clone)]
pub struct NearestOutcome {
    /// The answer.
    pub answer: NearestAnswer,
    /// Messages spent routing the query.
    pub messages: u64,
    /// Ranges touched per level (top first) — expected `O(1)` each.
    pub per_level_touches: Vec<u32>,
    /// The full meter (hosts visited, for congestion studies).
    pub meter: MessageMeter,
}

/// A completed 1-D range query.
#[derive(Debug, Clone)]
pub struct RangeOutcome {
    /// Stored keys in `[lo, hi]`, ascending.
    pub keys: Vec<u64>,
    /// Messages spent: the `O(log n)` descent to `lo`'s locus plus the
    /// output-sensitive walk along the level-0 list.
    pub messages: u64,
}

/// A distributed one-dimensional skip-web over `u64` keys.
///
/// # Example
///
/// ```
/// use skipweb_core::onedim::OneDimSkipWeb;
///
/// let web = OneDimSkipWeb::builder((0..50).map(|i| i * 4).collect()).build();
/// let out = web.nearest(0, 41);
/// assert_eq!(out.answer.nearest, 40);
///
/// // Bucketed variant (§2.4.1): fewer hosts, fewer messages.
/// let bucket = OneDimSkipWeb::builder((0..200).map(|i| i * 4).collect())
///     .bucketed(64)
///     .build();
/// assert!(bucket.hosts() < 200);
/// ```
#[derive(Debug, Clone)]
pub struct OneDimSkipWeb {
    web: SkipWeb<SortedLinkedList>,
}

impl OneDimSkipWeb {
    /// Starts building a 1-D skip-web over `keys`.
    pub fn builder(keys: Vec<u64>) -> OneDimSkipWebBuilder {
        OneDimSkipWebBuilder {
            inner: SkipWeb::builder(keys),
        }
    }

    /// The stored keys in sorted order.
    pub fn keys(&self) -> &[u64] {
        self.web.ground()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.web.len()
    }

    /// Whether no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.web.is_empty()
    }

    /// Number of hosts `H`.
    pub fn hosts(&self) -> usize {
        self.web.hosts()
    }

    /// The blocking strategy in effect.
    pub fn blocking(&self) -> Blocking {
        self.web.blocking()
    }

    /// The top level index `⌈log₂ n⌉`.
    pub fn top_level(&self) -> u32 {
        self.web.top_level()
    }

    /// Set sizes at `level` (Figure 2 reproduction).
    pub fn level_set_sizes(&self, level: u32) -> Vec<usize> {
        self.web.level_set_sizes(level)
    }

    /// A deterministic pseudo-random query origin.
    ///
    /// # Panics
    ///
    /// Panics if the web is empty.
    pub fn random_origin(&self, seed: u64) -> usize {
        self.web.random_origin(seed)
    }

    /// The home host of a stored key's item.
    pub fn host_of_item(&self, item: usize) -> HostId {
        self.web.host_of_item(item)
    }

    /// Routes a nearest-neighbour query for `q` from `origin_item`'s host.
    ///
    /// # Panics
    ///
    /// Panics if the web is empty.
    pub fn nearest(&self, origin_item: usize, q: u64) -> NearestOutcome {
        let mut meter = MessageMeter::new();
        let outcome = self.web.query(origin_item, &q, &mut meter);
        let locus = self.web.base().range(outcome.locus);
        let nearest = nearest_from_locus(&locus, q)
            .unwrap_or_else(|| self.web.base().nearest_key(q).expect("nonempty web"));
        NearestOutcome {
            answer: NearestAnswer { nearest, locus },
            messages: outcome.messages,
            per_level_touches: outcome.per_level_touches,
            meter,
        }
    }

    /// Range query (§1's "range query over numerical attributes"): routes
    /// to `lo`'s locus, then walks the level-0 list rightward collecting
    /// keys through `hi` — `O(log n + k)` messages for `k` results.
    ///
    /// # Panics
    ///
    /// Panics if the web is empty or `lo > hi`.
    pub fn range(&self, origin_item: usize, lo: u64, hi: u64) -> RangeOutcome {
        assert!(lo <= hi, "range endpoints out of order");
        let mut meter = MessageMeter::new();
        let outcome = self.web.query(origin_item, &lo, &mut meter);
        let levels = self.web.level_structs();
        let set = &levels[0].sets[0];
        let base = &set.structure;
        let mut keys = Vec::new();
        let mut cur = outcome.locus;
        loop {
            meter.visit(set.range_host[cur.index()][0]);
            let iv = base.range(cur);
            if iv.is_singleton() {
                if let Endpoint::Key(x) = iv.lo() {
                    if (lo..=hi).contains(&x) {
                        keys.push(x);
                    }
                }
            }
            let past_hi = match iv.hi() {
                Endpoint::Key(h) => h > hi,
                Endpoint::PosInf => true,
                Endpoint::NegInf => false,
            };
            if past_hi {
                break;
            }
            let (_, right) = base.adjacent(cur);
            match right {
                Some(r) => cur = r,
                None => break,
            }
        }
        RangeOutcome {
            keys,
            messages: meter.messages(),
        }
    }

    /// Inserts `key`; returns the update's message cost, or `None` if the
    /// key was already present (the lookup cost is still incurred).
    pub fn insert(&mut self, key: u64) -> Option<u64> {
        let mut meter = MessageMeter::new();
        self.web.insert(key, &mut meter).then(|| meter.messages())
    }

    /// Removes `key`; returns the update's message cost, or `None` if the
    /// key was absent.
    pub fn remove(&mut self, key: u64) -> Option<u64> {
        let mut meter = MessageMeter::new();
        self.web.remove(&key, &mut meter).then(|| meter.messages())
    }

    /// A simulated network sized for this web with storage and reference
    /// accounting applied.
    pub fn network(&self) -> SimNetwork {
        self.web.network()
    }

    /// Registers storage/reference accounting with an existing network.
    pub fn account(&self, net: &mut SimNetwork) {
        self.web.account(net)
    }

    /// Serves this web over the threaded actor runtime: spawns one actor
    /// thread per host executing the same routing decisions under real
    /// concurrent message passing (see [`crate::engine`]).
    pub fn serve(&self) -> DistributedSkipWeb<SortedLinkedList> {
        DistributedSkipWeb::builder(&self.web).spawn()
    }

    /// The underlying generic skip-web.
    pub fn inner(&self) -> &SkipWeb<SortedLinkedList> {
        &self.web
    }

    /// Mutable access to the underlying generic skip-web (e.g. to thread an
    /// external [`MessageMeter`] through updates).
    pub fn inner_mut(&mut self) -> &mut SkipWeb<SortedLinkedList> {
        &mut self.web
    }
}

/// Builder returned by [`OneDimSkipWeb::builder`].
#[derive(Debug, Clone)]
pub struct OneDimSkipWebBuilder {
    inner: SkipWebBuilder<SortedLinkedList>,
}

impl OneDimSkipWebBuilder {
    /// Seeds the level randomization.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// Uses bucketed placement with per-host memory `memory` (§2.4.1).
    pub fn bucketed(mut self, memory: usize) -> Self {
        self.inner = self.inner.bucketed(memory);
        self
    }

    /// Uses an explicit blocking strategy.
    pub fn blocking(mut self, blocking: Blocking) -> Self {
        self.inner = self.inner.blocking(blocking);
        self
    }

    /// Uses an explicit replication policy.
    pub fn replication(mut self, replication: Replication) -> Self {
        self.inner = self.inner.replication(replication);
        self
    }

    /// Places every range on `k` hosts so the served web survives up to
    /// `k - 1` host crashes (see [`Replication`]).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn replicate(mut self, k: usize) -> Self {
        self.inner = self.inner.replicate(k);
        self
    }

    /// Builds the web.
    pub fn build(self) -> OneDimSkipWeb {
        OneDimSkipWeb {
            web: self.inner.build(),
        }
    }
}

/// Extracts the nearest stored key to `q` from the level-0 locus interval,
/// which is exactly the local information the answering host holds.
pub(crate) fn nearest_from_locus(locus: &KeyInterval, q: u64) -> Option<u64> {
    match (locus.lo(), locus.hi()) {
        (Endpoint::Key(x), Endpoint::Key(y)) => {
            if q <= x {
                Some(x)
            } else if q >= y {
                Some(y)
            } else if q - x <= y - q {
                Some(x)
            } else {
                Some(y)
            }
        }
        (Endpoint::NegInf, Endpoint::Key(y)) => Some(y),
        (Endpoint::Key(x), Endpoint::PosInf) => Some(x),
        _ => None, // universe link of an empty list
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(n: u64) -> Vec<u64> {
        (0..n).map(|i| i * 10).collect()
    }

    #[test]
    fn nearest_matches_oracle_on_many_queries() {
        let web = OneDimSkipWeb::builder(keys(200)).seed(3).build();
        let oracle = |q: u64| -> u64 {
            *web.keys()
                .iter()
                .min_by_key(|&&k| (k.abs_diff(q), k))
                .unwrap()
        };
        for s in 0..300u64 {
            let q = (s * 37) % 2200;
            let out = web.nearest(web.random_origin(s), q);
            assert_eq!(out.answer.nearest, oracle(q), "query {q}");
        }
    }

    #[test]
    fn exact_hits_terminate_on_node_ranges() {
        let web = OneDimSkipWeb::builder(keys(64)).seed(4).build();
        let out = web.nearest(0, 130);
        assert!(out.answer.locus.is_singleton());
        assert_eq!(out.answer.nearest, 130);
    }

    #[test]
    fn messages_grow_logarithmically() {
        let mut means = Vec::new();
        for exp in [6u32, 8, 10] {
            let n = 1u64 << exp;
            let web = OneDimSkipWeb::builder(keys(n)).seed(5).build();
            let mut total = 0u64;
            let trials = 80u64;
            for s in 0..trials {
                let q = (s * 7919) % (n * 10);
                total += web.nearest(web.random_origin(s), q).messages;
            }
            means.push(total as f64 / trials as f64);
        }
        // Quadrupling n should grow messages roughly additively (log), far
        // slower than linearly.
        assert!(means[2] < means[0] * 4.0, "means {means:?} not log-like");
        assert!(means[2] > means[0], "deeper webs route further: {means:?}");
    }

    #[test]
    fn bucketed_reduces_messages_at_same_size() {
        let n = 4096u64;
        let owner = OneDimSkipWeb::builder(keys(n)).seed(6).build();
        let bucket = OneDimSkipWeb::builder(keys(n))
            .seed(6)
            .bucketed(144)
            .build();
        let (mut mo, mut mb) = (0u64, 0u64);
        for s in 0..50u64 {
            let q = (s * 997) % (n * 10);
            mo += owner.nearest(owner.random_origin(s), q).messages;
            mb += bucket.nearest(bucket.random_origin(s), q).messages;
        }
        assert!(mb < mo, "bucketed {mb} should not exceed owner-hosted {mo}");
    }

    #[test]
    fn insert_then_query_returns_new_key() {
        let mut web = OneDimSkipWeb::builder(keys(32)).seed(7).build();
        let cost = web.insert(155).expect("155 is new");
        let _ = cost;
        let out = web.nearest(0, 154);
        assert_eq!(out.answer.nearest, 155);
        assert!(web.insert(155).is_none(), "duplicate insert rejected");
    }

    #[test]
    fn remove_then_query_falls_back_to_neighbor() {
        let mut web = OneDimSkipWeb::builder(keys(32)).seed(8).build();
        web.remove(100).expect("100 present");
        let out = web.nearest(0, 100);
        assert!(out.answer.nearest == 90 || out.answer.nearest == 110);
        assert!(web.remove(100).is_none());
    }

    #[test]
    fn nearest_from_locus_handles_all_interval_shapes() {
        assert_eq!(
            nearest_from_locus(&KeyInterval::between(10, 20), 14),
            Some(10)
        );
        assert_eq!(
            nearest_from_locus(&KeyInterval::between(10, 20), 16),
            Some(20)
        );
        assert_eq!(
            nearest_from_locus(&KeyInterval::between(10, 20), 15),
            Some(10)
        );
        assert_eq!(nearest_from_locus(&KeyInterval::singleton(7), 7), Some(7));
        assert_eq!(nearest_from_locus(&KeyInterval::below(5), 1), Some(5));
        assert_eq!(nearest_from_locus(&KeyInterval::above(5), 99), Some(5));
        assert_eq!(nearest_from_locus(&KeyInterval::everything(), 3), None);
    }

    #[test]
    fn range_query_matches_filter_oracle() {
        let web = OneDimSkipWeb::builder(keys(200)).seed(21).build();
        for (lo, hi) in [
            (0u64, 500u64),
            (995, 1205),
            (1990, 1990),
            (2500, 9000),
            (0, 0),
        ] {
            let out = web.range(web.random_origin(lo + hi), lo, hi);
            let want: Vec<u64> = web
                .keys()
                .iter()
                .copied()
                .filter(|k| (lo..=hi).contains(k))
                .collect();
            assert_eq!(out.keys, want, "range [{lo}, {hi}]");
        }
    }

    #[test]
    fn range_query_cost_is_log_plus_output() {
        let web = OneDimSkipWeb::builder(keys(1024)).seed(22).build();
        // Narrow range: cost ~ a point query.
        let narrow = web.range(0, 5000, 5050);
        // Wide range: cost grows with the k results, not with n.
        let wide = web.range(0, 0, 3000);
        assert!(narrow.messages < 60);
        assert!(wide.keys.len() > 250);
        assert!(
            wide.messages as usize <= 60 + 2 * wide.keys.len(),
            "wide range cost {} not output-sensitive",
            wide.messages
        );
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_range_is_rejected() {
        let web = OneDimSkipWeb::builder(keys(8)).build();
        let _ = web.range(0, 10, 5);
    }

    #[test]
    fn update_costs_stay_logarithmic() {
        let mut web = OneDimSkipWeb::builder(keys(1024)).seed(9).build();
        let mut worst = 0u64;
        for i in 0..20u64 {
            let cost = web.insert(5 + i * 32).expect("new key");
            worst = worst.max(cost);
        }
        assert!(worst < 120, "update cost {worst} not O(log n)-like");
    }
}
