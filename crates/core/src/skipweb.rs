//! The skip-web structure: levels, hyperlinks, placement, queries (§2.3–2.5)
//! and updates (§4), generic over any range-determined link structure.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use skipweb_net::sim::{MessageMeter, SimNetwork};
use skipweb_net::HostId;
use skipweb_structures::traits::{RangeDetermined, RangeId};

use crate::levels::{draw_bits, group_by_key, level_count, parent_key, set_key};
use crate::placement::{Blocking, Replication};

/// One level-`ℓ` set `S_b` with its structure `D(S_b)`, hyperlinks, and
/// host placement.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct LevelSet<D: RangeDetermined> {
    /// The `ℓ`-bit key `b` of this set.
    pub key: u64,
    /// The structure `D(S_b)`.
    pub structure: D,
    /// Structure item index → ground item index.
    pub ground: Vec<u32>,
    /// Per range: hyperlinks to the conflicting ranges `C(Q, S_{b'})` in the
    /// parent set one level down (§2.3). Empty at level 0.
    pub down: Vec<Vec<RangeId>>,
    /// Per range: the hosts storing a copy of it. Owner-hosted placement
    /// keeps a single copy; bucketed placement replicates non-basic ranges
    /// onto every block host whose cone they belong to (§2.4.1 notes that
    /// "copies of some of these ranges may be stored on multiple hosts").
    pub range_host: Vec<Vec<HostId>>,
}

/// All sets of one level.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct Level<D: RangeDetermined> {
    pub sets: Vec<LevelSet<D>>,
    /// Ground item index → set index within this level.
    pub set_of_item: Vec<u32>,
    /// Ground item index → item index inside its set's structure.
    pub local_of_item: Vec<u32>,
    /// Set key → set index.
    pub set_by_key: HashMap<u64, u32>,
}

/// Below this many stored items a full rebuild is cheaper than planning an
/// incremental repair.
const INCREMENTAL_MIN_N: usize = 64;

/// Fall back to a full rebuild once a batch changes ≥ 1/this of the ground
/// set: most level sets are dirty anyway at that point.
const INCREMENTAL_DIRTY_FACTOR: usize = 4;

/// The staged outcome of an incremental batch apply: the ground set and bit
/// array are already spliced; these are the sets left to rebuild.
#[derive(Debug)]
struct RepairPlan {
    /// The `(level, key)` pairs whose membership changed.
    dirty: BTreeSet<(u32, u64)>,
    /// One rebuild job per dirty set with surviving members, sorted by
    /// `(level, key)`.
    builds: Vec<BuildJob>,
    /// Old ground index → new ground index (`u32::MAX` for removed items).
    remap: Vec<u32>,
}

/// One dirty set to rebuild — the items are disjoint across jobs, which is
/// what lets the rebuild stage fan out across threads.
#[derive(Debug)]
struct BuildJob {
    level: u32,
    key: u64,
    /// New ground indices of the members, ascending — which is canonical
    /// order, since the spliced ground set is canonically sorted.
    members: Vec<u32>,
}

/// Runs `f` over `jobs` on up to `threads` scoped workers, preserving
/// result order. Jobs are dealt round-robin: rebuild jobs arrive sorted
/// bottom-up (level 0 — the whole ground set — first), so the few big
/// low-level jobs land on distinct workers.
fn par_map<J: Sync, T: Send>(jobs: &[J], threads: usize, f: impl Fn(&J) -> T + Sync) -> Vec<T> {
    if threads <= 1 || jobs.len() <= 1 {
        return jobs.iter().map(f).collect();
    }
    let workers = threads.min(jobs.len());
    let mut out: Vec<Option<T>> = Vec::with_capacity(jobs.len());
    out.resize_with(jobs.len(), || None);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                let f = &f;
                scope.spawn(move || {
                    let mut part = Vec::new();
                    let mut i = w;
                    while i < jobs.len() {
                        part.push((i, f(&jobs[i])));
                        i += workers;
                    }
                    part
                })
            })
            .collect();
        for handle in handles {
            for (i, v) in handle.join().expect("apply worker panicked") {
                out[i] = Some(v);
            }
        }
    });
    out.into_iter()
        .map(|v| v.expect("round-robin covers every job"))
        .collect()
}

/// Points every range's copy list at its owning item's host — the
/// owner-hosted placement sweep of the full-rebuild path. (The repair
/// path never runs it: rebuilt sets are born with owner primaries and
/// kept sets have theirs remapped in place during the install.)
/// Clear-and-push keeps each copy list's buffer across reassignments.
fn owner_host_sweep<D: RangeDetermined>(levels: &mut [Level<D>]) {
    for level in levels {
        for set in &mut level.sets {
            for r in set.structure.range_ids() {
                let owner_local = set.structure.owner(r);
                let owner_ground = set.ground.get(owner_local).copied().unwrap_or(0);
                let copies = &mut set.range_host[r.index()];
                copies.clear();
                copies.push(HostId(owner_ground));
            }
        }
    }
}

/// Moves `adjust(arr[g])` to `arr[remap[g]]` in place for an
/// order-preserving splice remap, then sizes `arr` to `n_new`. Growing
/// remaps copy back-to-front (every target sits at or beyond its source,
/// and strictly beyond any smaller source's target), shrinking ones
/// front-to-back (targets trail their sources), skipping the `u32::MAX`
/// holes of removed entries — so every read still sees the original value.
fn permute_by_remap(arr: &mut Vec<u32>, remap: &[u32], n_new: usize, adjust: impl Fn(u32) -> u32) {
    let n_old = remap.len();
    debug_assert_eq!(arr.len(), n_old);
    if n_new >= n_old {
        arr.resize(n_new, 0);
        for g in (0..n_old).rev() {
            arr[remap[g] as usize] = adjust(arr[g]);
        }
    } else {
        for g in 0..n_old {
            let target = remap[g];
            if target != u32::MAX {
                arr[target as usize] = adjust(arr[g]);
            }
        }
        arr.truncate(n_new);
    }
}

/// Merges one level's rebuilt sets into its tables: old sets keep their
/// structures and hyperlinks verbatim (ground indices remapped through the
/// splice), emptied sets are dropped, new sets land at their key-sorted
/// position, and the level's item maps are brought back in sync. `jobs` /
/// `built` are this level's slice of the repair plan (see
/// `SkipWeb::split_installs`); each level's merge touches only its own
/// tables, so the threaded apply path runs this over levels in parallel.
fn install_level<D: RangeDetermined>(
    level: &mut Level<D>,
    li: u32,
    jobs: &[BuildJob],
    built: Vec<LevelSet<D>>,
    plan: &RepairPlan,
    n: usize,
    owner_hosted: bool,
) {
    let (dirty, remap) = (&plan.dirty, &plan.remap[..]);
    debug_assert!(jobs.iter().all(|j| j.level == li));
    let mut incoming = jobs.iter().zip(built).peekable();
    // A freshly grown top level has no maps to update in place.
    let fresh_level = level.set_of_item.len() != remap.len();
    let old_sets = std::mem::take(&mut level.sets);
    let mut sets: Vec<LevelSet<D>> = Vec::with_capacity(old_sets.len() + 1);
    // A set added or dropped mid-level shifts every later set's index by
    // one. `breaks` records, per add/drop, the old index it happened
    // before — turning the old→new index fix-up into a prefix count
    // instead of a wholesale map rebuild.
    let mut breaks: Vec<u32> = Vec::new();
    let mut added: Vec<(u64, u32)> = Vec::new();
    let mut dropped_keys: Vec<u64> = Vec::new();
    let mut old_idx: u32 = 0;
    for mut set in old_sets {
        while incoming.peek().is_some_and(|(j, _)| j.key < set.key) {
            let (job, built_set) = incoming.next().expect("peeked");
            added.push((job.key, sets.len() as u32));
            breaks.push(old_idx);
            sets.push(built_set);
        }
        if dirty.contains(&(li, set.key)) {
            // Replaced by its rebuilt version — or emptied: drop.
            if incoming.peek().is_some_and(|(j, _)| j.key == set.key) {
                sets.push(incoming.next().expect("peeked").1);
            } else {
                dropped_keys.push(set.key);
                breaks.push(old_idx);
            }
        } else {
            // Untouched sets never contain removed items (a removed item
            // dirties its set at every level), so every entry remaps
            // cleanly.
            for g in &mut set.ground {
                *g = remap[*g as usize];
                debug_assert!(*g != u32::MAX);
            }
            if owner_hosted {
                // Each range's primary copy is its owning item — a member
                // of this clean set — so the owner-hosted placement remaps
                // right along with the ground entries; replicas beyond the
                // primary are ring successors of stale host ids, dropped
                // here and regrown by `extend_replicas`.
                for copies in &mut set.range_host {
                    copies.truncate(1);
                    if let Some(primary) = copies.first_mut() {
                        primary.0 = remap[primary.0 as usize];
                        debug_assert!(primary.0 != u32::MAX);
                    }
                }
            }
            sets.push(set);
        }
        old_idx += 1;
    }
    for (job, built_set) in incoming {
        added.push((job.key, sets.len() as u32));
        breaks.push(old_idx);
        sets.push(built_set);
    }
    if fresh_level {
        // Build the maps wholesale; every slot is covered because the sets
        // partition the ground set.
        let mut set_of_item = vec![0u32; n];
        let mut local_of_item = vec![0u32; n];
        level.set_by_key = sets
            .iter()
            .enumerate()
            .map(|(si, s)| (s.key, si as u32))
            .collect();
        for (si, set) in sets.iter().enumerate() {
            for (local, &g) in set.ground.iter().enumerate() {
                set_of_item[g as usize] = si as u32;
                local_of_item[g as usize] = local as u32;
            }
        }
        level.set_of_item = set_of_item;
        level.local_of_item = local_of_item;
    } else {
        // Untouched items keep their map entries verbatim modulo the index
        // shifts: permute them to the spliced ground positions in place
        // (folding the shift fix-up into the copy), then patch only the
        // rebuilt sets' members — which include every item the batch
        // touched. A single plan only ever adds sets (inserts never empty
        // one) or only drops them (removes never create one), so the shift
        // direction is uniform.
        debug_assert!(added.is_empty() || dropped_keys.is_empty());
        let delta: i64 = if dropped_keys.is_empty() { 1 } else { -1 };
        let adjust = |si: u32| -> u32 {
            if breaks.is_empty() {
                return si;
            }
            let crossed = breaks.partition_point(|&b| b <= si) as i64;
            (i64::from(si) + delta * crossed) as u32
        };
        for key in &dropped_keys {
            level.set_by_key.remove(key);
        }
        if !breaks.is_empty() {
            for v in level.set_by_key.values_mut() {
                *v = adjust(*v);
            }
        }
        for &(key, idx) in &added {
            level.set_by_key.insert(key, idx);
        }
        permute_by_remap(&mut level.set_of_item, remap, n, adjust);
        permute_by_remap(&mut level.local_of_item, remap, n, |local| local);
        for job in jobs {
            let si = level.set_by_key[&job.key];
            for (local, &g) in job.members.iter().enumerate() {
                level.set_of_item[g as usize] = si;
                level.local_of_item[g as usize] = local as u32;
            }
        }
    }
    level.sets = sets;
}

/// Result of a skip-web query descent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryOutcome {
    /// The maximal level-0 range containing the query — the answer locus.
    pub locus: RangeId,
    /// Messages spent by this query (also recorded in the meter).
    pub messages: u64,
    /// Ranges touched per level (top level first) — the per-level work that
    /// the set-halving lemmas bound by `O(1)`.
    pub per_level_touches: Vec<u32>,
}

/// A distributed skip-web over structure `D` (§2).
///
/// Build one with [`SkipWeb::builder`]; run queries with
/// [`SkipWeb::query`]; apply updates with [`SkipWeb::insert`] /
/// [`SkipWeb::remove`]. Domain-specific wrappers with typed answers live in
/// [`crate::onedim`] and [`crate::multidim`].
#[derive(Debug, Clone)]
pub struct SkipWeb<D: RangeDetermined> {
    ground: Vec<D::Item>,
    item_bits: Vec<u64>,
    levels: Vec<Level<D>>,
    host_of_item: Vec<HostId>,
    hosts: usize,
    blocking: Blocking,
    replication: Replication,
    rng: StdRng,
}

/// Structural equality: two webs are equal when their ground sets, bit
/// assignments, level hierarchies (sets, hyperlinks, placement) and host
/// maps all match byte for byte. The insertion rng is deliberately
/// excluded — it only affects *future* random draws, not the structure —
/// so the parity tests can compare an incrementally repaired web against a
/// fully rebuilt one.
impl<D: RangeDetermined + PartialEq> PartialEq for SkipWeb<D> {
    fn eq(&self, other: &Self) -> bool {
        self.ground == other.ground
            && self.item_bits == other.item_bits
            && self.levels == other.levels
            && self.host_of_item == other.host_of_item
            && self.hosts == other.hosts
            && self.blocking == other.blocking
            && self.replication == other.replication
    }
}

/// Configures and builds a [`SkipWeb`].
#[derive(Debug, Clone)]
pub struct SkipWebBuilder<D: RangeDetermined> {
    items: Vec<D::Item>,
    seed: u64,
    blocking: Blocking,
    replication: Replication,
    bits: Option<Vec<u64>>,
}

impl<D: RangeDetermined> SkipWebBuilder<D> {
    /// Seeds the randomized level assignment (default 0). Two webs built
    /// with the same items and seed are identical.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Chooses the blocking strategy (default [`Blocking::OwnerHosted`]).
    pub fn blocking(mut self, blocking: Blocking) -> Self {
        self.blocking = blocking;
        self
    }

    /// Bucketed placement with per-host memory `memory` (§2.4.1).
    pub fn bucketed(self, memory: usize) -> Self {
        self.blocking(Blocking::Bucketed { memory })
    }

    /// Chooses the replication policy (default [`Replication::NONE`]).
    pub fn replication(mut self, replication: Replication) -> Self {
        self.replication = replication;
        self
    }

    /// Places every range on `k` hosts (the primary plus ring successors),
    /// so the served structure survives up to `k - 1` host crashes.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn replicate(self, k: usize) -> Self {
        self.replication(Replication::new(k))
    }

    /// Pins the per-item level bit strings instead of drawing them from the
    /// seed, matched positionally to the **canonical** (structure-sorted)
    /// ground order. Skip-webs are range-determined (§2.1): items plus bits
    /// uniquely determine the whole hierarchy, so a recovery layer that
    /// logged each item's bits can rebuild the exact pre-crash web —
    /// tower-for-tower — rather than a freshly randomized one.
    pub fn bits(mut self, bits: Vec<u64>) -> Self {
        self.bits = Some(bits);
        self
    }

    /// Builds the skip-web.
    ///
    /// # Panics
    ///
    /// Panics if [`bits`](Self::bits) was given a vector whose length does
    /// not match the canonical ground set.
    pub fn build(self) -> SkipWeb<D> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        // Canonicalize the ground set through the structure's own builder.
        let ground = D::build(self.items).items().to_vec();
        let item_bits = match self.bits {
            Some(bits) => {
                assert_eq!(
                    bits.len(),
                    ground.len(),
                    "explicit bits must cover the canonical ground set"
                );
                // Advance the rng exactly as the drawing path would, so
                // later live inserts draw the same towers either way.
                let _ = draw_bits(ground.len(), &mut rng);
                bits
            }
            None => draw_bits(ground.len(), &mut rng),
        };
        let mut web = SkipWeb {
            ground,
            item_bits,
            levels: Vec::new(),
            host_of_item: Vec::new(),
            hosts: 0,
            blocking: self.blocking,
            replication: self.replication,
            rng,
        };
        web.rebuild();
        web
    }
}

impl<D: RangeDetermined> SkipWeb<D> {
    /// Starts building a skip-web over `items`.
    pub fn builder(items: Vec<D::Item>) -> SkipWebBuilder<D> {
        SkipWebBuilder {
            items,
            seed: 0,
            blocking: Blocking::OwnerHosted,
            replication: Replication::NONE,
            bits: None,
        }
    }

    /// A copy of this web rebuilt under replication policy `replication` —
    /// same ground set, same towers (the level bits are kept), different
    /// range-to-host placement. This is how
    /// [`FabricBuilder::replicate`](crate::engine::FabricBuilder::replicate)
    /// overrides a build-time policy at deployment time.
    pub fn with_replication(&self, replication: Replication) -> SkipWeb<D> {
        let mut web = self.clone();
        web.replication = replication;
        web.rebuild();
        web
    }

    /// The canonical ground set.
    pub fn ground(&self) -> &[D::Item] {
        &self.ground
    }

    /// Number of stored items `n`.
    pub fn len(&self) -> usize {
        self.ground.len()
    }

    /// Whether the web stores no items.
    pub fn is_empty(&self) -> bool {
        self.ground.is_empty()
    }

    /// Number of hosts `H`.
    pub fn hosts(&self) -> usize {
        self.hosts
    }

    /// The top level index `k = ⌈log₂ n⌉`.
    pub fn top_level(&self) -> u32 {
        (self.levels.len() - 1) as u32
    }

    /// The blocking strategy in effect.
    pub fn blocking(&self) -> Blocking {
        self.blocking
    }

    /// The replication policy in effect.
    pub fn replication(&self) -> Replication {
        self.replication
    }

    /// Sizes of the sets at `level` (for the Figure 2 reproduction).
    ///
    /// # Panics
    ///
    /// Panics if `level` exceeds [`top_level`](Self::top_level).
    pub fn level_set_sizes(&self, level: u32) -> Vec<usize> {
        self.levels[level as usize]
            .sets
            .iter()
            .map(|s| s.ground.len())
            .collect()
    }

    /// Total ranges stored across all levels (structure nodes + links).
    pub fn total_ranges(&self) -> usize {
        self.levels
            .iter()
            .flat_map(|l| &l.sets)
            .map(|s| s.structure.num_ranges())
            .sum()
    }

    /// The level-0 structure `D(S)`.
    pub fn base(&self) -> &D {
        &self.levels[0].sets[0].structure
    }

    /// The host owning ground item `item` (query origins start here).
    ///
    /// # Panics
    ///
    /// Panics if `item >= self.len()`.
    pub fn host_of_item(&self, item: usize) -> HostId {
        self.host_of_item[item]
    }

    /// A deterministic pseudo-random query origin (ground item index).
    ///
    /// # Panics
    ///
    /// Panics if the web is empty.
    pub fn random_origin(&self, seed: u64) -> usize {
        assert!(!self.is_empty(), "an empty web has no query origins");
        let mut rng = StdRng::seed_from_u64(seed);
        rng.gen_range(0..self.len())
    }

    /// Routes a query from the root of `origin_item`'s host down to the
    /// maximal level-0 range containing `q` (§2.5), charging every touched
    /// range's host to `meter`.
    ///
    /// # Panics
    ///
    /// Panics if the web is empty or `origin_item` is out of bounds.
    pub fn query(
        &self,
        origin_item: usize,
        q: &D::Query,
        meter: &mut MessageMeter,
    ) -> QueryOutcome {
        assert!(!self.is_empty(), "cannot query an empty skip-web");
        assert!(origin_item < self.len(), "origin item out of bounds");
        let start_messages = meter.messages();
        let top = self.top_level() as usize;
        let mut level = top;
        let mut set_idx = self.levels[top].set_of_item[origin_item] as usize;
        let mut entry = self.levels[top].sets[set_idx]
            .structure
            .entry_of_item(self.levels[top].local_of_item[origin_item] as usize);
        let mut per_level_touches = Vec::with_capacity(top + 1);
        // Non-basic ranges are replicated across block hosts; which copy the
        // walk reads is only determined once the descent reaches the basic
        // level below (the block holding the query's cone stores the whole
        // stratum, §2.4.1). Defer their host resolution until that anchor is
        // known, then charge the co-located copy when one exists.
        let mut pending: Vec<Vec<HostId>> = Vec::new();
        loop {
            let set = &self.levels[level].sets[set_idx];
            let path = set.structure.search_path(entry, q);
            if self.blocking.is_basic(level as u32) {
                for (i, r) in path.iter().enumerate() {
                    let host = set.range_host[r.index()][0];
                    if i == 0 {
                        for replicas in pending.drain(..) {
                            let copy = if replicas.contains(&host) {
                                host
                            } else {
                                replicas[0]
                            };
                            meter.visit(copy);
                        }
                    }
                    meter.visit(host);
                }
            } else {
                for r in &path {
                    pending.push(set.range_host[r.index()].clone());
                }
            }
            per_level_touches.push(path.len() as u32);
            let locus = *path.last().expect("search paths include their start");
            if level == 0 {
                debug_assert!(pending.is_empty(), "level 0 is always basic");
                return QueryOutcome {
                    locus,
                    messages: meter.messages() - start_messages,
                    per_level_touches,
                };
            }
            let candidates = &set.down[locus.index()];
            assert!(
                !candidates.is_empty(),
                "hyperlinks of a subset range into its superset cannot be empty"
            );
            let parent_idx = self.parent_set_index(level as u32, set.key);
            let parent = &self.levels[level - 1].sets[parent_idx];
            entry = parent.structure.best_entry(candidates, q);
            level -= 1;
            set_idx = parent_idx;
        }
    }

    fn parent_set_index(&self, level: u32, key: u64) -> usize {
        let pkey = parent_key(key, level);
        self.levels[(level - 1) as usize].set_by_key[&pkey] as usize
    }

    /// Inserts `item`, charging the §4 bottom-up repair messages to `meter`.
    /// Returns `false` (and charges only the lookup) when the item is
    /// already present.
    pub fn insert(&mut self, item: D::Item, meter: &mut MessageMeter) -> bool {
        let origin = if self.is_empty() {
            None
        } else {
            Some(self.rng.gen_range(0..self.len()))
        };
        if self.contains_item(&item) {
            // Route to the duplicate's locus (the paper's step 1) so the
            // failed insert still pays its lookup, then reject it without
            // consuming a bit string.
            if let Some(o) = origin {
                let q = D::item_query(&item);
                let _ = self.query(o, &q, meter);
            }
            return false;
        }
        let bits: u64 = self.rng.gen();
        self.insert_with(origin, item, bits, meter)
    }

    /// Deterministic insert: routes from `origin` (when given) to the
    /// item's level-0 locus, charges the §4 repair neighbourhoods, and
    /// installs the item at the levels selected by `bits`. This is the
    /// entry point the distributed engine mirrors hop for hop — driving
    /// the simulator and a [`crate::engine::DistributedSkipWeb`] with the
    /// same `(origin, bits)` yields identical structures and message
    /// counts. Returns `false` when the item is already present.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of bounds.
    pub fn insert_with(
        &mut self,
        origin: Option<usize>,
        item: D::Item,
        bits: u64,
        meter: &mut MessageMeter,
    ) -> bool {
        // Route to the item's level-0 locus first (the paper's step 1).
        if let Some(o) = origin {
            let q = D::item_query(&item);
            let _ = self.query(o, &q, meter);
        }
        if self.contains_item(&item) {
            return false;
        }
        // Charge the per-level conflict neighbourhoods that the insertion
        // rewires, bottom-up (§4): the ranges conflicting with the item's
        // new node range at every level it joins.
        self.meter_update_neighbourhood(&item, bits, meter);
        self.apply_insert(item, bits);
        true
    }

    /// Removes `item`, charging the symmetric §4 repair messages. Returns
    /// `false` when the item was not present.
    pub fn remove(&mut self, item: &D::Item, meter: &mut MessageMeter) -> bool {
        if !self.contains_item(item) {
            return false;
        }
        let origin = if self.len() > 1 {
            Some(self.rng.gen_range(0..self.len()))
        } else {
            None
        };
        self.remove_with(origin, item, meter)
    }

    /// Deterministic remove: routes from `origin` (when given) to the
    /// item's locus and charges the symmetric §4 repair — the counterpart
    /// of [`insert_with`](Self::insert_with) that the distributed engine
    /// mirrors. Returns `false` (charging nothing) when the item was not
    /// present.
    ///
    /// # Panics
    ///
    /// Panics if `origin` is out of bounds.
    pub fn remove_with(
        &mut self,
        origin: Option<usize>,
        item: &D::Item,
        meter: &mut MessageMeter,
    ) -> bool {
        let Ok(pos) = self.ground.binary_search_by(|g| D::canonical_cmp(g, item)) else {
            return false;
        };
        if let Some(o) = origin {
            let q = D::item_query(item);
            let _ = self.query(o, &q, meter);
        }
        let bits = self.item_bits[pos];
        self.meter_update_neighbourhood(item, bits, meter);
        let applied = self.apply_remove_batch(std::slice::from_ref(item));
        debug_assert!(applied[0], "the item was just located");
        true
    }

    /// Installs `item` at the levels selected by `bits` without any
    /// metering — the structural half of an insert, applied by the
    /// distributed engine once its repair walk has already paid the
    /// messages. Returns `false` for duplicates.
    pub(crate) fn apply_insert(&mut self, item: D::Item, bits: u64) -> bool {
        self.apply_insert_batch(vec![(item, bits)])[0]
    }

    /// Installs a batch of `(item, bits)` pairs in **one** structural
    /// repair — the apply half of the engine's batched update path. The
    /// final structure is identical to applying the pairs one at a time
    /// (the hierarchy is fully determined by the surviving ground set and
    /// its bit strings), and byte-identical to a from-scratch
    /// [`apply_insert_batch_full`](Self::apply_insert_batch_full), but only
    /// the level sets the batch dirties are rebuilt: an item with bit
    /// string `b` belongs at level `ℓ` to exactly the set keyed by its
    /// `ℓ`-bit prefix, so a batch touches a bounded `(level, key)`
    /// collection and every other set is reused verbatim. Returns the
    /// per-item applied flags in input order; duplicates — against the
    /// stored set or earlier in the same batch — come back `false`.
    pub fn apply_insert_batch(&mut self, items: Vec<(D::Item, u64)>) -> Vec<bool> {
        let (applied, plan) = self.stage_inserts(items, false);
        if let Some(plan) = plan {
            self.repair_serial(plan);
        }
        applied
    }

    /// [`apply_insert_batch`](Self::apply_insert_batch) through the
    /// original full-rebuild path: every level set is rebuilt from scratch.
    /// Kept as the reference implementation — the parity proptests assert
    /// the incremental path matches it byte for byte, and the `rebuild`
    /// bench experiment measures the two against each other.
    pub fn apply_insert_batch_full(&mut self, items: Vec<(D::Item, u64)>) -> Vec<bool> {
        self.stage_inserts(items, true).0
    }

    /// Removes a batch of items in **one** structural repair — the
    /// structural half of distributed removes, the counterpart of
    /// [`apply_insert_batch`](Self::apply_insert_batch), with the same
    /// dirty-set incrementality. Returns the per-item applied flags in
    /// input order (`false` for absent items and repeats within the batch).
    pub fn apply_remove_batch(&mut self, items: &[D::Item]) -> Vec<bool> {
        let (applied, plan) = self.stage_removes(items, false);
        if let Some(plan) = plan {
            self.repair_serial(plan);
        }
        applied
    }

    /// [`apply_remove_batch`](Self::apply_remove_batch) through the
    /// original full-rebuild path — the reference implementation for parity
    /// tests and the rebuild benchmark.
    pub fn apply_remove_batch_full(&mut self, items: &[D::Item]) -> Vec<bool> {
        self.stage_removes(items, true).0
    }

    /// Whether an incremental repair is impossible or not worth planning:
    /// the web is tiny, the batch empties it, or the batch dirties too
    /// large a fraction of the ground set — at which point most level sets
    /// need rebuilding anyway and the full path's simplicity wins. A
    /// level-count change of one is handled incrementally (a new top level
    /// is planned wholesale, a vanishing one is dropped); larger jumps
    /// would need multiple levels rebuilt, but the dirty-fraction bound
    /// already makes them unreachable (crossing two power-of-two
    /// boundaries requires changing more than a quarter of the items), so
    /// the guard is defensive.
    fn must_rebuild_fully(&self, n_old: usize, n_new: usize, changed: usize) -> bool {
        n_old < INCREMENTAL_MIN_N
            || n_new == 0
            || level_count(n_old).abs_diff(level_count(n_new)) > 1
            || changed * INCREMENTAL_DIRTY_FACTOR >= n_old
    }

    /// Grows or shrinks the level table to match the spliced ground size —
    /// by at most one level, per [`must_rebuild_fully`]'s guard. A grown
    /// top level starts empty and returns `true`: the caller's repair plan
    /// marks every item's set there dirty, so the install stage populates
    /// it. A dropped level just vanishes — no `down` link points upward
    /// into it.
    fn sync_level_count(&mut self) -> bool {
        let want = level_count(self.ground.len()) as usize + 1;
        match want.cmp(&self.levels.len()) {
            std::cmp::Ordering::Greater => {
                debug_assert_eq!(want, self.levels.len() + 1);
                self.levels.push(Level {
                    sets: Vec::new(),
                    set_of_item: Vec::new(),
                    local_of_item: Vec::new(),
                    set_by_key: HashMap::new(),
                });
                true
            }
            std::cmp::Ordering::Less => {
                debug_assert_eq!(want, self.levels.len() - 1);
                self.levels.pop();
                false
            }
            std::cmp::Ordering::Equal => false,
        }
    }

    /// Insert staging: dedups the batch, splices the fresh items into the
    /// canonical ground order (one merge pass — no whole-set `D::build`
    /// reorder), and computes the dirty-set repair plan. Returns the
    /// per-item applied flags, plus `None` when nothing changed or the
    /// full-rebuild fallback already ran (`force_full`, or
    /// [`must_rebuild_fully`](Self::must_rebuild_fully)).
    fn stage_inserts(
        &mut self,
        items: Vec<(D::Item, u64)>,
        force_full: bool,
    ) -> (Vec<bool>, Option<RepairPlan>) {
        let mut applied = Vec::with_capacity(items.len());
        // Membership and batch-internal dedup in one pass: `fresh` is kept
        // sorted under the canonical order, so each candidate costs one
        // binary search against the ground set and one against the batch —
        // replacing the old per-item `ground.contains` linear scans.
        let mut fresh: Vec<(D::Item, u64)> = Vec::new();
        for (item, bits) in items {
            if self.contains_item(&item) {
                applied.push(false);
                continue;
            }
            match fresh.binary_search_by(|(f, _)| D::canonical_cmp(f, &item)) {
                Ok(_) => applied.push(false),
                Err(pos) => {
                    fresh.insert(pos, (item, bits));
                    applied.push(true);
                }
            }
        }
        if fresh.is_empty() {
            return (applied, None);
        }
        let n_old = self.ground.len();
        let n_new = n_old + fresh.len();
        if force_full || self.must_rebuild_fully(n_old, n_new, fresh.len()) {
            for (item, bits) in fresh {
                self.ground.push(item);
                self.item_bits.push(bits);
            }
            self.rebuild();
            return (applied, None);
        }
        // Splice: merge the sorted fresh items into the (already canonical)
        // ground order, recording the old→new index remap as a side effect.
        let mut ground = Vec::with_capacity(n_new);
        let mut bits_vec = Vec::with_capacity(n_new);
        let mut remap = Vec::with_capacity(n_old);
        let mut dirty_bits = Vec::with_capacity(fresh.len());
        let mut fresh_iter = fresh.into_iter().peekable();
        let old_items = std::mem::take(&mut self.ground);
        let old_bits = std::mem::take(&mut self.item_bits);
        for (item, bits) in old_items.into_iter().zip(old_bits) {
            while fresh_iter
                .peek()
                .is_some_and(|(f, _)| D::canonical_cmp(f, &item).is_lt())
            {
                let (f, fb) = fresh_iter.next().expect("peeked");
                dirty_bits.push(fb);
                ground.push(f);
                bits_vec.push(fb);
            }
            remap.push(ground.len() as u32);
            ground.push(item);
            bits_vec.push(bits);
        }
        for (f, fb) in fresh_iter {
            dirty_bits.push(fb);
            ground.push(f);
            bits_vec.push(fb);
        }
        self.ground = ground;
        self.item_bits = bits_vec;
        let grew_top = self.sync_level_count();
        let plan = self.plan_from_dirty_bits(&dirty_bits, remap, grew_top);
        (applied, Some(plan))
    }

    /// Remove staging: resolves the batch against the canonical order,
    /// compacts the ground set in a single pass (replacing the old
    /// per-item `position` scans and shifting `Vec::remove`s), and computes
    /// the dirty-set repair plan — or runs the full-rebuild fallback.
    fn stage_removes(
        &mut self,
        items: &[D::Item],
        force_full: bool,
    ) -> (Vec<bool>, Option<RepairPlan>) {
        let mut applied = Vec::with_capacity(items.len());
        let n_old = self.ground.len();
        let mut doomed = vec![false; n_old];
        let mut changed = 0usize;
        for item in items {
            match self.ground.binary_search_by(|g| D::canonical_cmp(g, item)) {
                Ok(pos) if !doomed[pos] => {
                    doomed[pos] = true;
                    changed += 1;
                    applied.push(true);
                }
                _ => applied.push(false),
            }
        }
        if changed == 0 {
            return (applied, None);
        }
        let n_new = n_old - changed;
        let full = force_full || self.must_rebuild_fully(n_old, n_new, changed);
        // One compaction pass either way, building the old→new remap
        // (`u32::MAX` marks the removed slots).
        let mut remap = vec![u32::MAX; n_old];
        let mut dirty_bits = Vec::with_capacity(changed);
        let mut write = 0usize;
        for read in 0..n_old {
            if doomed[read] {
                dirty_bits.push(self.item_bits[read]);
                continue;
            }
            if write != read {
                self.ground.swap(write, read);
                self.item_bits.swap(write, read);
            }
            remap[read] = write as u32;
            write += 1;
        }
        self.ground.truncate(write);
        self.item_bits.truncate(write);
        if full {
            self.rebuild();
            return (applied, None);
        }
        let grew_top = self.sync_level_count();
        debug_assert!(!grew_top, "removals cannot raise the level count");
        let plan = self.plan_from_dirty_bits(&dirty_bits, remap, false);
        (applied, Some(plan))
    }

    /// Collects the dirty `(level, key)` pairs selected by the changed
    /// items' bit strings — plus, when `new_top` is set, every item's set
    /// at the freshly grown top level — then scans the (already-spliced)
    /// bit array once per level to compute each dirty set's surviving
    /// membership — in ground order, which *is* the canonical order, so
    /// the rebuild jobs need no per-set reorder.
    fn plan_from_dirty_bits(
        &self,
        changed_bits: &[u64],
        remap: Vec<u32>,
        new_top: bool,
    ) -> RepairPlan {
        let k = level_count(self.ground.len());
        debug_assert_eq!(
            k as usize + 1,
            self.levels.len(),
            "sync_level_count runs before planning"
        );
        let mut dirty: BTreeSet<(u32, u64)> = BTreeSet::new();
        for &bits in changed_bits {
            for level in 0..=k {
                dirty.insert((level, set_key(bits, level)));
            }
        }
        if new_top {
            for &bits in &self.item_bits {
                dirty.insert((k, set_key(bits, k)));
            }
        }
        // Dirty keys land in `builds` key-sorted per level (from the
        // BTreeSet), so the membership scan resolves each item's set by
        // binary search over a contiguous slice — much cheaper per probe
        // than the tree-map this replaced.
        let mut builds: Vec<BuildJob> = Vec::with_capacity(dirty.len());
        let mut level_bounds: Vec<(usize, usize)> = Vec::with_capacity(k as usize + 1);
        for level in 0..=k {
            let start = builds.len();
            builds.extend(
                dirty
                    .range((level, 0)..=(level, u64::MAX))
                    .map(|&(_, key)| BuildJob {
                        level,
                        key,
                        members: Vec::new(),
                    }),
            );
            level_bounds.push((start, builds.len()));
        }
        // Content-dirtiness is downward-monotone in the level: a set is
        // dirty iff it holds a changed item, and sharing an `ℓ`-bit prefix
        // with that item implies sharing every shorter prefix. So each
        // item's dirty sets occupy levels `[0, L]` — walk up and stop at
        // the first clean level, instead of scanning every item at every
        // level. A freshly grown top level is dirty by fiat (not by
        // content), so it is excluded from the walk and scanned in full.
        let walk_levels = if new_top { k } else { k + 1 };
        for (g, &bits) in self.item_bits.iter().enumerate() {
            for level in 0..walk_levels {
                let (s, e) = level_bounds[level as usize];
                let fresh = &mut builds[s..e];
                match fresh.binary_search_by_key(&set_key(bits, level), |j| j.key) {
                    Ok(i) => fresh[i].members.push(g as u32),
                    Err(_) => break,
                }
            }
        }
        if new_top {
            let (s, e) = level_bounds[k as usize];
            let fresh = &mut builds[s..e];
            for (g, &bits) in self.item_bits.iter().enumerate() {
                if let Ok(i) = fresh.binary_search_by_key(&set_key(bits, k), |j| j.key) {
                    fresh[i].members.push(g as u32);
                }
            }
        }
        // A dirty key with no surviving members is a set deletion: no build
        // job; the install stage drops it.
        builds.retain(|j| !j.members.is_empty());
        RepairPlan {
            dirty,
            builds,
            remap,
        }
    }

    /// Runs a repair plan on the calling thread. The threaded variant is
    /// [`apply_insert_batch_threads`](Self::apply_insert_batch_threads) /
    /// [`apply_remove_batch_threads`](Self::apply_remove_batch_threads).
    fn repair_serial(&mut self, plan: RepairPlan) {
        let built = plan.builds.iter().map(|j| self.exec_build(j)).collect();
        let links = self.install_sets(&plan, built);
        let downs = links.iter().map(|&j| self.exec_link(j)).collect();
        self.install_links(&links, downs);
        self.finish_hosts();
        self.debug_check_invariants();
    }

    /// Debug-build-only invariant sweep after an incremental repair: a
    /// repair bug panics at the apply that corrupted the web instead of
    /// surfacing as a rebuild-parity failure many batches later.
    #[inline]
    fn debug_check_invariants(&self) {
        #[cfg(debug_assertions)]
        if let Err(violation) = self.check_invariants() {
            panic!("skip-web invariant violated after apply: {violation}");
        }
    }

    /// Checks every structural invariant the paper's framework guarantees
    /// (§2.1–§2.4), returning the first violation as a description.
    ///
    /// * **Shape** — `item_bits` matches the ground set; the level table has
    ///   exactly `level_count(n) + 1` levels.
    /// * **Membership** — at every level, each item sits in exactly the set
    ///   keyed by its bit prefix (`set_key(bits, ℓ)`), which makes level
    ///   membership monotone in level (a level-`ℓ` set key extends the
    ///   level-`ℓ-1` key); `set_of_item` / `local_of_item` form a
    ///   permutation consistent with each set's `ground`, and `set_by_key`
    ///   indexes the sets bijectively.
    /// * **Hyperlinks** — at level 0 all `down` lists are empty; above it,
    ///   each range's `down` list equals its conflict list in the parent
    ///   set one level down (§2.3).
    /// * **Placement** — every range of every set is hosted somewhere, the
    ///   copies are distinct, and all host ids (including `host_of_item`)
    ///   are in range.
    ///
    /// Intended for `debug_assert!` after incremental applies and for tests;
    /// the sweep recomputes every conflict list, so it is far too slow for
    /// release hot paths.
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.ground.len();
        if self.item_bits.len() != n {
            return Err(format!(
                "item_bits has {} entries for {} ground items",
                self.item_bits.len(),
                n
            ));
        }
        let want_levels = level_count(n) as usize + 1;
        if self.levels.len() != want_levels {
            return Err(format!(
                "{} levels for {} items (want {})",
                self.levels.len(),
                n,
                want_levels
            ));
        }
        if self.host_of_item.len() != n {
            return Err(format!(
                "host_of_item has {} entries for {} ground items",
                self.host_of_item.len(),
                n
            ));
        }
        let hosts = self.hosts as u32;
        for (g, host) in self.host_of_item.iter().enumerate() {
            if host.0 >= hosts {
                return Err(format!(
                    "item {g} homed on host {} of {} hosts",
                    host.0, hosts
                ));
            }
        }

        for (li, level) in self.levels.iter().enumerate() {
            let li = li as u32;
            if level.set_of_item.len() != n || level.local_of_item.len() != n {
                return Err(format!("level {li}: item maps not sized to the ground set"));
            }
            if level.set_by_key.len() != level.sets.len() {
                return Err(format!(
                    "level {li}: {} keys index {} sets",
                    level.set_by_key.len(),
                    level.sets.len()
                ));
            }
            let mut claimed = vec![false; n];
            for (si, set) in level.sets.iter().enumerate() {
                let si = si as u32;
                if level.set_by_key.get(&set.key) != Some(&si) {
                    return Err(format!(
                        "level {li}: set {si} (key {:#x}) not indexed by its key",
                        set.key
                    ));
                }
                if set.structure.len() != set.ground.len() {
                    return Err(format!(
                        "level {li} set {si}: structure holds {} items, ground map {}",
                        set.structure.len(),
                        set.ground.len()
                    ));
                }
                let num_ranges = set.structure.num_ranges();
                if set.down.len() != num_ranges || set.range_host.len() != num_ranges {
                    return Err(format!(
                        "level {li} set {si}: down/range_host not sized to {num_ranges} ranges"
                    ));
                }
                for (local, &g) in set.ground.iter().enumerate() {
                    let g = g as usize;
                    if g >= n {
                        return Err(format!(
                            "level {li} set {si}: ground index {g} out of bounds"
                        ));
                    }
                    if claimed[g] {
                        return Err(format!(
                            "level {li}: item {g} belongs to two sets (second: {si})"
                        ));
                    }
                    claimed[g] = true;
                    // Bit-prefix membership; keys nest across levels, so
                    // passing here at every level is exactly the "membership
                    // monotone in level" property.
                    let want_key = set_key(self.item_bits[g], li);
                    if set.key != want_key {
                        return Err(format!(
                            "level {li} set {si}: item {g} has prefix {want_key:#x} but sits in set keyed {:#x}",
                            set.key
                        ));
                    }
                    if set.structure.items()[local] != self.ground[g] {
                        return Err(format!(
                            "level {li} set {si}: structure item {local} diverges from ground item {g}"
                        ));
                    }
                    if level.set_of_item[g] != si || level.local_of_item[g] as usize != local {
                        return Err(format!(
                            "level {li}: item map points item {g} at ({}, {}), set says ({si}, {local})",
                            level.set_of_item[g], level.local_of_item[g]
                        ));
                    }
                }
            }
            // With per-item claims unique and the maps agreeing, any
            // unclaimed item means some level fails to cover the ground set.
            if let Some(g) = claimed.iter().position(|&c| !c) {
                return Err(format!("level {li}: item {g} belongs to no set"));
            }

            for (si, set) in level.sets.iter().enumerate() {
                let parent = (li > 0)
                    .then(|| {
                        let below = &self.levels[li as usize - 1];
                        let pkey = parent_key(set.key, li);
                        below
                            .set_by_key
                            .get(&pkey)
                            .map(|&pi| &below.sets[pi as usize])
                            .ok_or_else(|| {
                                format!(
                                    "level {li} set {si}: no parent set keyed {pkey:#x} one level down"
                                )
                            })
                    })
                    .transpose()?;
                for r in set.structure.range_ids() {
                    let down = &set.down[r.index()];
                    match parent {
                        None => {
                            if !down.is_empty() {
                                return Err(format!(
                                    "level 0 set {si}: {r} carries {} down links",
                                    down.len()
                                ));
                            }
                        }
                        Some(parent) => {
                            let want = parent.structure.conflicts(&set.structure.range(r));
                            if *down != want {
                                return Err(format!(
                                    "level {li} set {si}: {r} down links diverge from the parent conflict list ({down:?} vs {want:?})"
                                ));
                            }
                        }
                    }
                    let copies = &set.range_host[r.index()];
                    if copies.is_empty() {
                        return Err(format!("level {li} set {si}: {r} is hosted nowhere"));
                    }
                    for (i, host) in copies.iter().enumerate() {
                        if host.0 >= hosts {
                            return Err(format!(
                                "level {li} set {si}: {r} copy on host {} of {} hosts",
                                host.0, hosts
                            ));
                        }
                        if copies[..i].contains(host) {
                            return Err(format!(
                                "level {li} set {si}: {r} lists host {} twice",
                                host.0
                            ));
                        }
                    }
                }
            }
        }
        Ok(())
    }

    /// Rebuilds one dirty set from its (already-spliced) members — the
    /// parallelizable unit of the repair: reads the ground set immutably
    /// and returns an owned set, with hyperlinks and placement filled in by
    /// the later stages.
    fn exec_build(&self, job: &BuildJob) -> LevelSet<D> {
        let items: Vec<D::Item> = job
            .members
            .iter()
            .map(|&g| self.ground[g as usize].clone())
            .collect();
        let structure = D::build(items);
        debug_assert!(
            structure.items().len() == job.members.len()
                && structure
                    .items()
                    .iter()
                    .zip(&job.members)
                    .all(|(it, &g)| *it == self.ground[g as usize]),
            "splice must preserve the canonical order (canonical_cmp contract)"
        );
        let num_ranges = structure.num_ranges();
        // Owner-hosted primaries are fused into the (parallelizable) build:
        // each range's copy list starts at its owning item's host, so the
        // repair path never needs the full placement sweep. Bucketed webs
        // get their placement wholesale from `assign_bucketed` instead.
        let range_host = if matches!(self.blocking, Blocking::OwnerHosted) {
            structure
                .range_ids()
                .map(|r| {
                    let owner_local = structure.owner(r);
                    let owner_ground = job.members.get(owner_local).copied().unwrap_or(0);
                    vec![HostId(owner_ground)]
                })
                .collect()
        } else {
            vec![Vec::new(); num_ranges]
        };
        LevelSet {
            key: job.key,
            structure,
            ground: job.members.clone(),
            down: vec![Vec::new(); num_ranges],
            range_host,
        }
    }

    /// Splits the `(level, key)`-sorted build jobs and their rebuilt sets
    /// into per-level chunks aligned with `self.levels`, so each level's
    /// merge becomes self-contained — which is what lets the threaded
    /// apply path fan [`install_level`] out.
    fn split_installs(
        plan: &RepairPlan,
        built: Vec<LevelSet<D>>,
        levels: usize,
    ) -> Vec<(&[BuildJob], Vec<LevelSet<D>>)> {
        let mut built_iter = built.into_iter();
        let mut cursor = 0usize;
        let parts: Vec<(&[BuildJob], Vec<LevelSet<D>>)> = (0..levels as u32)
            .map(|li| {
                let s = cursor;
                while cursor < plan.builds.len() && plan.builds[cursor].level == li {
                    cursor += 1;
                }
                let jobs = &plan.builds[s..cursor];
                let sets: Vec<LevelSet<D>> = built_iter.by_ref().take(jobs.len()).collect();
                (jobs, sets)
            })
            .collect();
        debug_assert!(
            cursor == plan.builds.len() && built_iter.next().is_none(),
            "every rebuilt set must land on a level"
        );
        parts
    }

    /// Merges the rebuilt sets into the level tables — old sets keep their
    /// structures and hyperlinks verbatim (ground indices remapped through
    /// the splice), emptied sets are dropped, new sets land at their
    /// key-sorted position — and recomputes the per-level item maps.
    /// Returns the sets whose hyperlinks must be recomputed: every rebuilt
    /// set plus the children of rebuilt parents (their `down` arrays index
    /// into the parent's new structure).
    fn install_sets(&mut self, plan: &RepairPlan, built: Vec<LevelSet<D>>) -> Vec<(u32, u32)> {
        let n = self.ground.len();
        let owner_hosted = matches!(self.blocking, Blocking::OwnerHosted);
        let parts = Self::split_installs(plan, built, self.levels.len());
        for ((li, level), (jobs, sets)) in (0u32..).zip(self.levels.iter_mut()).zip(parts) {
            install_level(level, li, jobs, sets, plan, n, owner_hosted);
        }
        self.link_jobs(plan)
    }

    /// Host-table finisher for the repair path. Owner-hosted placement was
    /// fused into the repair itself — rebuilt sets are born with owner
    /// primaries ([`exec_build`](Self::exec_build)) and kept sets have
    /// theirs remapped in place ([`install_level`]) — leaving only the host
    /// count, the item homes, and the replica regrowth. Bucketed placement
    /// numbers blocks sequentially over the whole web, so it reruns
    /// [`assign_hosts`](Self::assign_hosts) wholesale.
    fn finish_hosts(&mut self) {
        match self.blocking {
            Blocking::OwnerHosted => {
                let n = self.ground.len();
                self.hosts = n.max(1);
                self.host_of_item.clear();
                self.host_of_item.extend((0..n).map(|i| HostId(i as u32)));
                self.extend_replicas();
            }
            Blocking::Bucketed { .. } => self.assign_hosts(),
        }
    }

    /// The hyperlink recompute jobs a repair implies: every rebuilt set
    /// plus the children of rebuilt parents, resolved to surviving
    /// `(level, set_index)` pairs.
    fn link_jobs(&self, plan: &RepairPlan) -> Vec<(u32, u32)> {
        let mut link_keys: BTreeSet<(u32, u64)> = BTreeSet::new();
        let top = (self.levels.len() - 1) as u32;
        for &(level, key) in &plan.dirty {
            if level >= 1 {
                link_keys.insert((level, key));
            }
            if level < top {
                // Children of a level-`ℓ` set extend its key by bit `ℓ`.
                link_keys.insert((level + 1, key));
                link_keys.insert((level + 1, key | (1u64 << level)));
            }
        }
        link_keys
            .into_iter()
            .filter_map(|(level, key)| {
                self.levels[level as usize]
                    .set_by_key
                    .get(&key)
                    .map(|&si| (level, si))
            })
            .collect()
    }

    /// Recomputes one set's hyperlinks into its parent (§2.3) — the second
    /// parallelizable unit: reads the installed levels immutably.
    fn exec_link(&self, (level, set_idx): (u32, u32)) -> Vec<Vec<RangeId>> {
        let set = &self.levels[level as usize].sets[set_idx as usize];
        let pkey = parent_key(set.key, level);
        let parent_level = &self.levels[level as usize - 1];
        let parent = &parent_level.sets[parent_level.set_by_key[&pkey] as usize];
        set.structure
            .range_ids()
            .map(|r| parent.structure.conflicts(&set.structure.range(r)))
            .collect()
    }

    fn install_links(&mut self, jobs: &[(u32, u32)], downs: Vec<Vec<Vec<RangeId>>>) {
        for (&(level, set_idx), down) in jobs.iter().zip(downs) {
            self.levels[level as usize].sets[set_idx as usize].down = down;
        }
    }

    /// Whether `item` is stored — a binary search against the canonical
    /// ground order.
    fn contains_item(&self, item: &D::Item) -> bool {
        self.ground
            .binary_search_by(|g| D::canonical_cmp(g, item))
            .is_ok()
    }

    /// Per-item level bit strings, aligned with [`ground`](Self::ground).
    pub(crate) fn item_bits(&self) -> &[u64] {
        &self.item_bits
    }

    /// Visits the hosts of the ranges conflicting with `item`'s entry
    /// neighbourhood at every level the item belongs to — the message cost
    /// of the bottom-up repair of §4. Uses the item's singleton structure to
    /// materialize its node range.
    fn meter_update_neighbourhood(&self, item: &D::Item, bits: u64, meter: &mut MessageMeter) {
        let probe_range = D::probe_range(item);
        // The simulator models the paper's fail-free network, so every
        // replica is alive and the walk cannot abort.
        let complete = walk_update_neighbourhood(
            bits,
            self.blocking,
            self.levels.len(),
            |level, key| self.levels[level as usize].set_by_key.get(&key).copied(),
            |level, set_idx| {
                let set = &self.levels[level as usize].sets[set_idx as usize];
                set.structure
                    .conflicts(&probe_range)
                    .into_iter()
                    .map(|r| set.range_host[r.index()].clone())
                    .collect()
            },
            |_| true,
            |host| meter.visit(host),
        );
        debug_assert!(complete, "fail-free walks always complete");
    }

    /// Rebuilds levels, hyperlinks and placement from the current ground
    /// set and bit assignment. Deterministic: bit strings fully determine
    /// the hierarchy, so queries and accounting are reproducible.
    fn rebuild(&mut self) {
        let n = self.ground.len();
        let k = level_count(n);
        // Canonical order may have changed after an update: reorder ground
        // (and bits) through the structure builder once.
        let canonical = D::build(self.ground.clone());
        let order: Vec<usize> = {
            let mut index: BTreeMap<&D::Item, usize> = BTreeMap::new();
            for (i, it) in self.ground.iter().enumerate() {
                index.insert(it, i);
            }
            canonical.items().iter().map(|it| index[it]).collect()
        };
        let bits: Vec<u64> = order.iter().map(|&i| self.item_bits[i]).collect();
        self.ground = canonical.items().to_vec();
        self.item_bits = bits;

        let item_index: BTreeMap<&D::Item, u32> = self
            .ground
            .iter()
            .enumerate()
            .map(|(i, it)| (it, i as u32))
            .collect();

        // --- Levels ---------------------------------------------------------
        let mut levels: Vec<Level<D>> = Vec::with_capacity(k as usize + 1);
        for level in 0..=k {
            let groups = group_by_key(&self.item_bits, level);
            let mut sets = Vec::with_capacity(groups.len());
            let mut set_of_item = vec![0u32; n];
            let mut local_of_item = vec![0u32; n];
            let mut set_by_key = HashMap::with_capacity(groups.len());
            for (key, members) in groups {
                let items: Vec<D::Item> = members
                    .iter()
                    .map(|&g| self.ground[g as usize].clone())
                    .collect();
                let structure = D::build(items);
                let ground: Vec<u32> = structure.items().iter().map(|it| item_index[it]).collect();
                let set_idx = sets.len() as u32;
                for (local, &g) in ground.iter().enumerate() {
                    set_of_item[g as usize] = set_idx;
                    local_of_item[g as usize] = local as u32;
                }
                set_by_key.insert(key, set_idx);
                let num_ranges = structure.num_ranges();
                sets.push(LevelSet {
                    key,
                    structure,
                    ground,
                    down: vec![Vec::new(); num_ranges],
                    range_host: vec![Vec::new(); num_ranges],
                });
            }
            if n == 0 {
                // Keep a single empty level-0 set for uniformity.
                let structure = D::build(Vec::new());
                let num_ranges = structure.num_ranges();
                sets.push(LevelSet {
                    key: 0,
                    structure,
                    ground: Vec::new(),
                    down: vec![Vec::new(); num_ranges],
                    range_host: vec![Vec::new(); num_ranges],
                });
                set_by_key.insert(0, 0);
            }
            levels.push(Level {
                sets,
                set_of_item,
                local_of_item,
                set_by_key,
            });
        }

        // --- Hyperlinks (§2.3) ----------------------------------------------
        for level in 1..=k {
            let (lower, upper) = levels.split_at_mut(level as usize);
            let parent_level = &lower[level as usize - 1];
            for set in &mut upper[0].sets {
                let pkey = parent_key(set.key, level);
                let parent = &parent_level.sets[parent_level.set_by_key[&pkey] as usize];
                for r in set.structure.range_ids() {
                    set.down[r.index()] = parent.structure.conflicts(&set.structure.range(r));
                }
            }
        }

        self.levels = levels;
        self.assign_hosts();
    }

    /// Computes `range_host` for every set per the blocking strategy, plus
    /// per-item home hosts.
    fn assign_hosts(&mut self) {
        let n = self.ground.len();
        match self.blocking {
            Blocking::OwnerHosted => {
                self.hosts = n.max(1);
                self.host_of_item.clear();
                self.host_of_item.extend((0..n).map(|i| HostId(i as u32)));
                owner_host_sweep(&mut self.levels);
                if n == 0 {
                    self.host_of_item.clear();
                }
            }
            Blocking::Bucketed { .. } => self.assign_bucketed(),
        }
        self.extend_replicas();
    }

    /// The replication pass layered over either blocking strategy: extends
    /// every range's copy list to `k` distinct hosts by walking the ring of
    /// host ids upward from the primary. The primary stays `copies[0]`, so
    /// all single-copy accounting (and the `k = 1` default) is untouched.
    fn extend_replicas(&mut self) {
        let hosts = self.hosts.max(1) as u32;
        let k = self.replication.k.min(hosts as usize);
        if k <= 1 {
            return;
        }
        for level in &mut self.levels {
            for set in &mut level.sets {
                for copies in &mut set.range_host {
                    let primary = copies[0].0;
                    let mut next = primary;
                    while copies.len() < k {
                        next = (next + 1) % hosts;
                        if next == primary {
                            break; // full circle: fewer hosts than k
                        }
                        let candidate = HostId(next);
                        if !copies.contains(&candidate) {
                            copies.push(candidate);
                        }
                    }
                }
            }
        }
    }

    /// The bucketed placement of §2.4.1: basic levels are chopped into
    /// blocks of contiguous ranges (one host each); non-basic ranges follow
    /// their hyperlink chain down to the basic level and live with the block
    /// they land on.
    fn assign_bucketed(&mut self) {
        let block_size = self.blocking.block_size();
        let mut next_host: u32 = 0;
        // Pass 1: basic levels, blocks of contiguous ranges. Blocks fill
        // across set boundaries (sets visited in key order) so that the many
        // tiny sets of high levels share hosts instead of each burning one —
        // keeping H within the paper's O(n log n / M).
        for (level_idx, level) in self.levels.iter_mut().enumerate() {
            if !self.blocking.is_basic(level_idx as u32) {
                continue;
            }
            let mut fill = 0usize;
            let mut started = false;
            for set in &mut level.sets {
                // Contiguity: order ranges by (owning item, id) — owner order
                // follows the structure's canonical layout.
                let mut order: Vec<RangeId> = set.structure.range_ids().collect();
                order.sort_by_key(|r| (set.structure.owner(*r), r.index()));
                for r in order {
                    if fill == block_size || !started {
                        if started {
                            next_host += 1;
                        }
                        started = true;
                        fill = 0;
                    }
                    set.range_host[r.index()] = vec![HostId(next_host)];
                    fill += 1;
                }
            }
            if started {
                next_host += 1; // close the level's last open block
            }
        }
        // Pass 2: non-basic ranges are replicated onto every host holding a
        // copy of a range they hyperlink to one level down (so each block's
        // whole non-basic cone is co-located with it, as §2.4.1 describes).
        // Ascending level order guarantees the level below is already placed.
        for level_idx in 1..self.levels.len() {
            if self.blocking.is_basic(level_idx as u32) {
                continue;
            }
            for set_idx in 0..self.levels[level_idx].sets.len() {
                let key = self.levels[level_idx].sets[set_idx].key;
                let parent_idx = self.parent_set_index(level_idx as u32, key);
                for r_idx in 0..self.levels[level_idx].sets[set_idx].range_host.len() {
                    let mut hosts: Vec<HostId> = Vec::new();
                    for t in &self.levels[level_idx].sets[set_idx].down[r_idx] {
                        hosts.extend(
                            self.levels[level_idx - 1].sets[parent_idx].range_host[t.index()]
                                .iter()
                                .copied(),
                        );
                    }
                    hosts.sort_unstable();
                    hosts.dedup();
                    debug_assert!(!hosts.is_empty(), "non-basic range must have a cone");
                    self.levels[level_idx].sets[set_idx].range_host[r_idx] = hosts;
                }
            }
        }
        self.hosts = (next_host as usize).max(1);
        // Item homes: the host of the item's top-level entry range.
        let top = self.top_level() as usize;
        self.host_of_item = (0..self.ground.len())
            .map(|g| {
                let set = &self.levels[top].sets[self.levels[top].set_of_item[g] as usize];
                let entry = set
                    .structure
                    .entry_of_item(self.levels[top].local_of_item[g] as usize);
                set.range_host[entry.index()][0]
            })
            .collect();
    }

    /// Registers the web's storage and reference footprint with a simulated
    /// network (the `M` and `C(n)` accounting of §1.1). The network must
    /// have at least [`hosts`](Self::hosts) hosts.
    ///
    /// # Panics
    ///
    /// Panics if `net` has fewer hosts than the web requires.
    pub fn account(&self, net: &mut SimNetwork) {
        assert!(
            net.hosts() >= self.hosts,
            "network too small: {} hosts < {} required",
            net.hosts(),
            self.hosts
        );
        net.set_items(self.len());
        for level in &self.levels {
            for set in &level.sets {
                for r in set.structure.range_ids() {
                    let neighbors = set.structure.neighbors(r);
                    let down = &set.down[r.index()];
                    let copies = &set.range_host[r.index()];
                    for (c, &host) in copies.iter().enumerate() {
                        let mut local = 0u64;
                        let mut remote = 0u64;
                        for nb in &neighbors {
                            if set.range_host[nb.index()].contains(&host) {
                                local += 1;
                            } else {
                                remote += 1;
                            }
                        }
                        if c == 0 {
                            // The primary copy stores the range plus every
                            // pointer (each a (host, addr) pair).
                            net.add_storage(host, 1 + neighbors.len() as u64 + down.len() as u64);
                            net.add_refs(host, local, remote);
                        } else {
                            // Replicas serve the intra-block descent: the
                            // range, its co-located pointers, and a single
                            // fallback pointer to the primary.
                            net.add_storage(host, 2 + local);
                            net.add_refs(host, local, 1);
                        }
                    }
                }
            }
        }
        // Hyperlink references point across levels.
        for level_idx in 1..self.levels.len() {
            for set in &self.levels[level_idx].sets {
                let parent_idx = self.parent_set_index(level_idx as u32, set.key);
                let parent = &self.levels[level_idx - 1].sets[parent_idx];
                for r in set.structure.range_ids() {
                    for (c, &host) in set.range_host[r.index()].iter().enumerate() {
                        let mut local = 0u64;
                        let mut remote = 0u64;
                        for t in &set.down[r.index()] {
                            if parent.range_host[t.index()].contains(&host) {
                                local += 1;
                            } else {
                                remote += 1;
                            }
                        }
                        if c == 0 {
                            net.add_refs(host, local, remote);
                        } else {
                            // Replicas keep co-located hyperlinks only.
                            net.add_refs(host, local, 0);
                            net.add_storage(host, local);
                        }
                    }
                }
            }
        }
    }

    /// Fresh simulated network sized for this web with accounting applied.
    pub fn network(&self) -> SimNetwork {
        let mut net = SimNetwork::new(self.hosts.max(1));
        self.account(&mut net);
        net
    }

    pub(crate) fn level_structs(&self) -> &[Level<D>] {
        &self.levels
    }
}

/// The threaded apply variants. Dirty sets hold disjoint item groups and
/// each rebuild reads the spliced ground set immutably, so the repair's two
/// heavy stages — set rebuilds and hyperlink recomputes — fan out across a
/// [`std::thread::scope`] worker pool. Exposed to deployments as
/// [`FabricBuilder::apply_threads`](crate::engine::FabricBuilder::apply_threads).
impl<D> SkipWeb<D>
where
    D: RangeDetermined + Send + Sync,
    D::Item: Send + Sync,
{
    /// [`apply_insert_batch`](Self::apply_insert_batch) with the dirty-set
    /// rebuilds fanned out over `threads` scoped workers. `threads <= 1`
    /// runs on the calling thread. The result is byte-identical either way
    /// (jobs are deterministic and installed in plan order).
    pub fn apply_insert_batch_threads(
        &mut self,
        items: Vec<(D::Item, u64)>,
        threads: usize,
    ) -> Vec<bool> {
        let (applied, plan) = self.stage_inserts(items, false);
        if let Some(plan) = plan {
            self.repair_threads(plan, threads);
        }
        applied
    }

    /// [`apply_remove_batch`](Self::apply_remove_batch) with the dirty-set
    /// rebuilds fanned out over `threads` scoped workers.
    pub fn apply_remove_batch_threads(&mut self, items: &[D::Item], threads: usize) -> Vec<bool> {
        let (applied, plan) = self.stage_removes(items, false);
        if let Some(plan) = plan {
            self.repair_threads(plan, threads);
        }
        applied
    }

    fn repair_threads(&mut self, plan: RepairPlan, threads: usize) {
        if threads <= 1 {
            return self.repair_serial(plan);
        }
        let built = par_map(&plan.builds, threads, |j| self.exec_build(j));
        let links = self.install_sets_threads(&plan, built, threads);
        let downs = par_map(&links, threads, |&j| self.exec_link(j));
        self.install_links(&links, downs);
        self.finish_hosts();
        self.debug_check_invariants();
    }

    /// [`install_sets`](Self::install_sets) with the per-level merges
    /// chunked across `threads` scoped workers. Once the build jobs are
    /// sliced per level, each merge touches only its own level's tables —
    /// and every level costs roughly `O(n)` (the item-map permutes), so
    /// the chunks balance. The link-job enumeration stays serial: it is a
    /// cheap scan of the dirty key set.
    fn install_sets_threads(
        &mut self,
        plan: &RepairPlan,
        built: Vec<LevelSet<D>>,
        threads: usize,
    ) -> Vec<(u32, u32)> {
        let n = self.ground.len();
        let owner_hosted = matches!(self.blocking, Blocking::OwnerHosted);
        let parts = Self::split_installs(plan, built, self.levels.len());
        let mut work: Vec<InstallWork<'_, D>> = (0u32..)
            .zip(self.levels.iter_mut())
            .zip(parts)
            .map(|((li, level), (jobs, sets))| (li, level, jobs, sets))
            .collect();
        let chunk = work.len().div_ceil(threads);
        std::thread::scope(|scope| {
            for batch in work.chunks_mut(chunk) {
                scope.spawn(move || {
                    for (li, level, jobs, sets) in batch.iter_mut() {
                        let sets = std::mem::take(sets);
                        install_level(level, *li, jobs, sets, plan, n, owner_hosted);
                    }
                });
            }
        });
        drop(work);
        self.link_jobs(plan)
    }
}

/// One level's unit of parallel install work: the level index, the level
/// itself, and its slice of the repair plan's build jobs with their
/// rebuilt sets (see `SkipWeb::install_sets_threads`).
type InstallWork<'a, D> = (u32, &'a mut Level<D>, &'a [BuildJob], Vec<LevelSet<D>>);

/// The single §4 repair walk both cost models drive: enumerates, bottom-up,
/// one host per range conflicting with the update's probe at every level
/// selected by `bits`, applying the stratum-anchor rule (within a stratum,
/// non-basic neighbourhoods act on the copy co-located with the basic block
/// just repaired). The simulator's meter and the distributed engine's
/// repair trail both call this, so their message accounting cannot drift
/// apart.
///
/// `set_of(level, key)` resolves the item's set at a level (`None` when the
/// item opens a brand-new set there); `conflict_replicas(level, set)`
/// yields the replica host list of each conflicting range, in conflict
/// order; `alive` filters which replicas may be acted on (the simulator's
/// fail-free model passes `|_| true`; the engine passes its membership
/// view, which is how a repair steers around crashed hosts); `visit`
/// observes each acted-on host in walk order.
///
/// Returns `false` — aborting the walk — when some range has no alive
/// replica: more hosts crashed than the replication factor covers, so the
/// repair cannot complete. With every host alive the walk always returns
/// `true` and visits exactly the hosts the pre-failover walk visited.
pub(crate) fn walk_update_neighbourhood(
    bits: u64,
    blocking: Blocking,
    num_levels: usize,
    mut set_of: impl FnMut(u32, u64) -> Option<u32>,
    mut conflict_replicas: impl FnMut(u32, u32) -> Vec<Vec<HostId>>,
    mut alive: impl FnMut(HostId) -> bool,
    mut visit: impl FnMut(HostId),
) -> bool {
    let mut anchor: Option<HostId> = None;
    for level in 0..num_levels as u32 {
        let key = set_key(bits, level);
        let Some(set_idx) = set_of(level, key) else {
            continue;
        };
        let basic = blocking.is_basic(level);
        for (i, replicas) in conflict_replicas(level, set_idx).into_iter().enumerate() {
            let host = match anchor {
                Some(a) if replicas.contains(&a) && alive(a) => a,
                _ => match replicas.iter().copied().find(|&h| alive(h)) {
                    Some(h) => h,
                    None => return false,
                },
            };
            visit(host);
            if basic && i == 0 {
                anchor = Some(host);
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipweb_structures::linked_list::SortedLinkedList;

    fn web(n: u64, seed: u64) -> SkipWeb<SortedLinkedList> {
        SkipWeb::builder((0..n).map(|i| i * 10).collect())
            .seed(seed)
            .build()
    }

    #[test]
    fn builder_canonicalizes_ground_set() {
        let w = SkipWeb::<SortedLinkedList>::builder(vec![30, 10, 20, 10]).build();
        assert_eq!(w.ground(), &[10, 20, 30]);
        assert_eq!(w.len(), 3);
        assert_eq!(w.top_level(), 2);
    }

    #[test]
    fn level_sets_partition_items_and_halve() {
        let w = web(256, 1);
        for level in 0..=w.top_level() {
            let sizes = w.level_set_sizes(level);
            assert_eq!(sizes.iter().sum::<usize>(), 256);
        }
        // Level 1 splits into two roughly even halves.
        let l1 = w.level_set_sizes(1);
        assert_eq!(l1.len(), 2);
        assert!(l1.iter().all(|&s| s > 80 && s < 176), "split {l1:?}");
    }

    #[test]
    fn owner_hosted_uses_one_host_per_item() {
        let w = web(64, 2);
        assert_eq!(w.hosts(), 64);
        for i in 0..64 {
            assert_eq!(w.host_of_item(i), HostId(i as u32));
        }
    }

    #[test]
    fn query_finds_the_correct_level0_locus() {
        let w = web(128, 3);
        for q in [0u64, 5, 321, 635, 1270, 9999] {
            let mut meter = MessageMeter::new();
            let outcome = w.query(w.random_origin(q), &q, &mut meter);
            let want = w.base().locate(&q);
            assert_eq!(outcome.locus, want, "locus mismatch for {q}");
            assert_eq!(outcome.messages, meter.messages());
        }
    }

    #[test]
    fn query_touches_constant_work_per_level() {
        let w = web(512, 4);
        let mut total = 0f64;
        let mut count = 0f64;
        for s in 0..50u64 {
            let mut meter = MessageMeter::new();
            let q = s * 101 + 7;
            let outcome = w.query(w.random_origin(s), &q, &mut meter);
            total += outcome
                .per_level_touches
                .iter()
                .map(|&t| t as f64)
                .sum::<f64>();
            count += outcome.per_level_touches.len() as f64;
        }
        let per_level = total / count;
        assert!(per_level < 6.0, "per-level work too high: {per_level}");
    }

    #[test]
    fn query_messages_scale_logarithmically() {
        let w = web(1024, 5);
        let mut worst = 0u64;
        for s in 0..100u64 {
            let mut meter = MessageMeter::new();
            let q = s * 103;
            let outcome = w.query(w.random_origin(s), &q, &mut meter);
            worst = worst.max(outcome.messages);
        }
        // k = 10 levels; expected O(1) messages per level with slack.
        assert!(worst < 60, "query messages {worst} not O(log n)-like");
    }

    #[test]
    fn same_seed_same_web() {
        let a = web(100, 9);
        let b = web(100, 9);
        let mut m1 = MessageMeter::new();
        let mut m2 = MessageMeter::new();
        let o1 = a.query(3, &555, &mut m1);
        let o2 = b.query(3, &555, &mut m2);
        assert_eq!(o1, o2);
    }

    #[test]
    fn bucketed_placement_uses_fewer_hosts_and_scale_free_memory() {
        let memory = 64usize;
        let build = |n: u64| {
            SkipWeb::<SortedLinkedList>::builder((0..n).map(|i| i * 3).collect())
                .seed(6)
                .bucketed(memory)
                .build()
        };
        let small = build(512);
        let big = build(4096);
        assert!(small.hosts() < 512, "bucketing must reduce host count");
        let m_small = small.network().max_memory();
        let m_big = big.network().max_memory();
        // The paper's claim is per-host memory O(M) *independent of n*: an
        // 8x larger ground set must not grow the per-host maximum much
        // (constants cover conflict-list tails and replication).
        assert!(
            (m_big as f64) < (m_small as f64) * 2.5,
            "per-host memory grew with n: {m_small} -> {m_big}"
        );
        // Linear in M with a constant covering pointer fan-out (~12 units
        // per range with closed-interval conflict lists) and stratum overlap.
        assert!(
            m_big <= 50 * memory as u64,
            "per-host memory {m_big} beyond O(M) constants"
        );
        // Doubling M should not blow memory up super-linearly.
        let double = SkipWeb::<SortedLinkedList>::builder((0..4096u64).map(|i| i * 3).collect())
            .seed(6)
            .bucketed(2 * memory)
            .build();
        let m_double = double.network().max_memory();
        assert!(
            (m_double as f64) < (m_big as f64) * 3.0,
            "memory not O(M)-linear: {m_big} -> {m_double}"
        );
    }

    #[test]
    fn bucketed_queries_cross_fewer_hosts() {
        let n: u64 = 4096;
        let items: Vec<u64> = (0..n).map(|i| i * 7).collect();
        let owner = SkipWeb::<SortedLinkedList>::builder(items.clone())
            .seed(7)
            .build();
        let bucket = SkipWeb::<SortedLinkedList>::builder(items)
            .seed(7)
            .bucketed(64)
            .build();
        let mut owner_total = 0u64;
        let mut bucket_total = 0u64;
        for s in 0..60u64 {
            let q = s * 397 + 11;
            let mut m1 = MessageMeter::new();
            owner.query(owner.random_origin(s), &q, &mut m1);
            owner_total += m1.messages();
            let mut m2 = MessageMeter::new();
            bucket.query(bucket.random_origin(s), &q, &mut m2);
            bucket_total += m2.messages();
        }
        assert!(
            bucket_total * 2 < owner_total * 3,
            "bucketed ({bucket_total}) should beat owner-hosted ({owner_total}) on messages"
        );
    }

    #[test]
    fn replication_places_every_range_on_k_distinct_hosts() {
        let w = SkipWeb::<SortedLinkedList>::builder((0..64u64).map(|i| i * 10).collect())
            .seed(5)
            .replicate(3)
            .build();
        assert_eq!(w.replication().k, 3);
        let plain = web(64, 5);
        for (level, plain_level) in w.level_structs().iter().zip(plain.level_structs()) {
            for (set, plain_set) in level.sets.iter().zip(&plain_level.sets) {
                for (copies, plain_copies) in set.range_host.iter().zip(&plain_set.range_host) {
                    assert!(copies.len() >= 3, "range has {} copies", copies.len());
                    let mut unique = copies.clone();
                    unique.sort_unstable();
                    unique.dedup();
                    assert_eq!(unique.len(), copies.len(), "replicas must be distinct");
                    // The primary copy is exactly the unreplicated placement.
                    assert_eq!(copies[0], plain_copies[0]);
                }
            }
        }
        // Owner-hosted metering reads primaries only, so the simulated
        // Q(n) is untouched by the replication factor.
        for s in 0..10u64 {
            let q = s * 37 + 3;
            let mut m_rep = MessageMeter::new();
            let mut m_plain = MessageMeter::new();
            let o_rep = w.query(w.random_origin(s), &q, &mut m_rep);
            let o_plain = plain.query(plain.random_origin(s), &q, &mut m_plain);
            assert_eq!(o_rep.locus, o_plain.locus);
            assert_eq!(m_rep.messages(), m_plain.messages());
        }
    }

    #[test]
    fn replication_is_capped_by_the_host_count() {
        let w = SkipWeb::<SortedLinkedList>::builder(vec![1, 2, 3])
            .seed(6)
            .replicate(64)
            .build();
        for level in w.level_structs() {
            for set in &level.sets {
                for copies in &set.range_host {
                    assert!(copies.len() <= w.hosts());
                }
            }
        }
    }

    #[test]
    fn insert_makes_item_queryable() {
        let mut w = web(32, 8);
        let mut meter = MessageMeter::new();
        assert!(w.insert(155, &mut meter));
        assert!(meter.messages() > 0 || w.hosts() == 1);
        assert!(w.ground().contains(&155));
        let mut m2 = MessageMeter::new();
        let out = w.query(w.random_origin(1), &155, &mut m2);
        assert_eq!(out.locus, w.base().locate(&155));
    }

    #[test]
    fn duplicate_insert_is_rejected() {
        let mut w = web(16, 8);
        let mut meter = MessageMeter::new();
        assert!(!w.insert(10, &mut meter)); // 10 already present
        assert_eq!(w.len(), 16);
    }

    #[test]
    fn remove_deletes_item_and_keeps_web_consistent() {
        let mut w = web(32, 10);
        let mut meter = MessageMeter::new();
        assert!(w.remove(&100, &mut meter));
        assert!(!w.ground().contains(&100));
        assert_eq!(w.len(), 31);
        // Still queryable, and 100's locus is now a link.
        let mut m2 = MessageMeter::new();
        let out = w.query(w.random_origin(0), &100, &mut m2);
        assert_eq!(out.locus, w.base().locate(&100));
        assert!(!w.remove(&100, &mut MessageMeter::new()));
    }

    #[test]
    fn growth_adds_levels() {
        let mut w = web(2, 11);
        assert_eq!(w.top_level(), 1);
        for i in 0..30u64 {
            w.insert(1000 + i, &mut MessageMeter::new());
        }
        assert_eq!(w.len(), 32);
        assert_eq!(w.top_level(), 5);
    }

    #[test]
    fn batch_applies_match_sequential_applies() {
        let mut batch = web(24, 13);
        let mut seq = web(24, 13);
        let inserts: Vec<(u64, u64)> = (0..6).map(|i| (5 + i * 37, i * 0x9E37 + 11)).collect();
        // A mid-batch duplicate (value already inserted earlier in the same
        // batch) and a stored duplicate must both come back `false`.
        let mut with_dups = inserts.clone();
        with_dups.push(inserts[0]);
        with_dups.push((10, 0));
        let flags = batch.apply_insert_batch(with_dups.clone());
        let want: Vec<bool> = with_dups
            .iter()
            .map(|&(k, b)| seq.apply_insert(k, b))
            .collect();
        assert_eq!(flags, want);
        assert_eq!(batch.ground(), seq.ground());
        let removes: Vec<u64> = vec![5, 100, 99_999, 5];
        let flags = batch.apply_remove_batch(&removes);
        let want: Vec<bool> = removes
            .iter()
            .map(|k| seq.apply_remove_batch(std::slice::from_ref(k))[0])
            .collect();
        assert_eq!(flags, want);
        assert_eq!(batch.ground(), seq.ground());
        // Identical hierarchies: same query loci everywhere.
        for q in [0u64, 42, 151, 500] {
            let mut m1 = MessageMeter::new();
            let mut m2 = MessageMeter::new();
            assert_eq!(
                batch.query(0, &q, &mut m1).locus,
                seq.query(0, &q, &mut m2).locus
            );
        }
    }

    #[test]
    fn accounting_reports_logarithmic_memory_for_owner_hosting() {
        let w = web(256, 12);
        let net = w.network();
        assert_eq!(net.hosts(), 256);
        // Each host stores O(log n) ranges (its tower) with constant-degree
        // pointers; generous constant.
        assert!(
            net.max_memory() <= 40 * 8,
            "owner-hosted max memory {} not O(log n)",
            net.max_memory()
        );
        assert!(net.max_congestion() > 0.0);
    }

    #[test]
    #[should_panic(expected = "empty skip-web")]
    fn querying_empty_web_panics() {
        let w = SkipWeb::<SortedLinkedList>::builder(vec![]).build();
        let mut meter = MessageMeter::new();
        let _ = w.query(0, &5, &mut meter);
    }
}
