//! The 1-D skip-web on the threaded actor runtime — now a thin wrapper over
//! the generic engine.
//!
//! Historically this module held a bespoke `ShardActor`/`Lookup` pair that
//! executed the §2.5 forwarding protocol for sorted keys only. That logic
//! now lives in [`crate::engine`], generic over every range-determined
//! structure; [`DistributedOneDim`] remains as the stable 1-D entry point
//! (spawn, per-client nearest-neighbour queries, message counting) so
//! existing integration tests and examples keep working unchanged.

use skipweb_net::runtime::RuntimeError;
use skipweb_net::HostTraffic;
use skipweb_structures::linked_list::SortedLinkedList;

use crate::engine::{DistributedSkipWeb, EngineActor, EngineClient, EngineMsg};
use crate::onedim::OneDimSkipWeb;

pub use crate::engine::GlobalRef;

/// Client handle for a [`DistributedOneDim`]; supports many concurrent
/// in-flight queries via correlation ids (see [`crate::engine`]).
pub type OneDimClient = EngineClient<SortedLinkedList>;

/// Host-to-host query message of the 1-D engine.
#[deprecated(
    since = "0.1.0",
    note = "the bespoke 1-D message type was generalized; use \
            `skipweb_core::engine::EngineMsg` via `DistributedSkipWeb`"
)]
pub type Lookup = EngineMsg<SortedLinkedList>;

/// Per-host actor holding one shard of the 1-D skip-web.
#[deprecated(
    since = "0.1.0",
    note = "the bespoke 1-D actor was generalized; use \
            `skipweb_core::engine::EngineActor` via `DistributedSkipWeb`"
)]
pub type ShardActor = EngineActor<SortedLinkedList>;

/// A running distributed 1-D skip-web: one actor thread per host, answering
/// nearest-neighbour queries with real concurrent message passing.
pub struct DistributedOneDim {
    inner: DistributedSkipWeb<SortedLinkedList>,
}

impl DistributedOneDim {
    /// Shards a built skip-web across actor threads and starts them.
    pub fn spawn(web: &OneDimSkipWeb) -> Self {
        DistributedOneDim {
            inner: DistributedSkipWeb::spawn(web.inner()),
        }
    }

    /// Like [`spawn`](Self::spawn) but folding the web's logical hosts onto
    /// at most `hosts` actor threads (see
    /// [`DistributedSkipWeb::spawn_consolidated`]).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    pub fn spawn_consolidated(web: &OneDimSkipWeb, hosts: usize) -> Self {
        DistributedOneDim {
            inner: DistributedSkipWeb::spawn_consolidated(web.inner(), hosts),
        }
    }

    /// Registers a client.
    pub fn client(&self) -> OneDimClient {
        self.inner.client()
    }

    /// Runs one nearest-neighbour query end to end, blocking up to 10 s.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn nearest(
        &self,
        client: &OneDimClient,
        origin_item: usize,
        q: u64,
    ) -> Result<Option<u64>, RuntimeError> {
        self.inner.query(client, origin_item, q).map(|r| r.answer)
    }

    /// The generic engine underneath (for [`DistributedSkipWeb::submit`]
    /// and correlation-id based concurrent queries).
    pub fn engine(&self) -> &DistributedSkipWeb<SortedLinkedList> {
        &self.inner
    }

    /// Total host-to-host messages since spawn.
    pub fn message_count(&self) -> u64 {
        self.inner.message_count()
    }

    /// Per-host sent/received message counters since spawn.
    pub fn traffic(&self) -> HostTraffic {
        self.inner.traffic()
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.inner.hosts()
    }

    /// Stops all host threads.
    pub fn shutdown(self) {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn distributed_answers_match_the_simulator() {
        let keys: Vec<u64> = (0..256).map(|i| i * 9 + 1).collect();
        let web = OneDimSkipWeb::builder(keys).seed(13).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        for s in 0..60u64 {
            let q = (s * 131) % 2400;
            let sim = web.nearest(web.random_origin(s), q).answer.nearest;
            let got = dist
                .nearest(&client, web.random_origin(s), q)
                .expect("runtime alive")
                .expect("nonempty web");
            assert_eq!(got, sim, "query {q}");
        }
        dist.shutdown();
    }

    #[test]
    fn distributed_hops_equal_the_simulators_metered_crossings() {
        let keys: Vec<u64> = (0..512).map(|i| i * 5).collect();
        let web = OneDimSkipWeb::builder(keys).seed(14).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        let trials = 40u64;
        let mut sim_total = 0u64;
        for s in 0..trials {
            let q = (s * 401) % 2560;
            let origin = web.random_origin(s);
            let sim = web.nearest(origin, q);
            sim_total += sim.messages;
            let reply = dist.engine().query(&client, origin, q).unwrap();
            assert_eq!(
                u64::from(reply.hops),
                sim.messages,
                "hop parity for query {q}"
            );
        }
        // The runtime's global counter agrees with the per-query hops.
        assert_eq!(dist.message_count(), sim_total);
        let per_query = dist.message_count() as f64 / trials as f64;
        // k = 9 levels; expected O(1) messages per level.
        assert!(per_query < 40.0, "per-query messages {per_query}");
        dist.shutdown();
    }

    #[test]
    fn distributed_bucketed_web_also_routes_correctly() {
        let keys: Vec<u64> = (0..300).map(|i| i * 7 + 3).collect();
        let web = OneDimSkipWeb::builder(keys).seed(15).bucketed(32).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        for s in 0..30u64 {
            let q = (s * 211) % 2200;
            let sim = web.nearest(web.random_origin(s), q).answer.nearest;
            let got = dist
                .nearest(&client, web.random_origin(s), q)
                .unwrap()
                .unwrap();
            assert_eq!(got, sim, "query {q}");
        }
        dist.shutdown();
    }

    #[test]
    fn concurrent_clients_get_independent_answers() {
        let keys: Vec<u64> = (0..128).map(|i| i * 11).collect();
        let web = OneDimSkipWeb::builder(keys).seed(16).build();
        let dist = DistributedOneDim::spawn(&web);
        let a = dist.client();
        let b = dist.client();
        let origin_a = web.keys().iter().position(|&k| k == 55).unwrap_or(0);
        dist.engine().submit(&a, origin_a, 55).unwrap();
        dist.engine().submit(&b, 1, 1100).unwrap();
        let ans_a = a.recv_any(Duration::from_secs(10)).unwrap();
        let ans_b = b.recv_any(Duration::from_secs(10)).unwrap();
        assert_eq!(ans_a.answer, Some(55));
        assert_eq!(ans_b.answer, Some(1100));
        dist.shutdown();
    }

    #[test]
    fn one_client_pipelines_many_queries_by_correlation_id() {
        let keys: Vec<u64> = (0..200).map(|i| i * 10).collect();
        let web = OneDimSkipWeb::builder(keys).seed(17).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        // Fire 24 queries before reading a single reply …
        let corrs: Vec<(u64, u64)> = (0..24u64)
            .map(|s| {
                let q = (s * 83) % 2000;
                let corr = dist
                    .engine()
                    .submit(&client, web.random_origin(s), q)
                    .unwrap();
                (corr, q)
            })
            .collect();
        // … then collect them in reverse submission order.
        for &(corr, q) in corrs.iter().rev() {
            let reply = client.recv_corr(corr, Duration::from_secs(10)).unwrap();
            assert_eq!(reply.corr, corr);
            let want = web.nearest(0, q).answer.nearest;
            assert_eq!(reply.answer, Some(want), "query {q}");
        }
        dist.shutdown();
    }
}
