//! The 1-D skip-web running on the threaded actor runtime.
//!
//! The simulator (`SkipWeb::query`) measures message costs; this module
//! demonstrates the same routing decisions executing under real concurrent
//! message passing: every host holds only its own shard (ranges with their
//! intervals, list neighbours, and down-hyperlinks — each tagged with the
//! owning host, exactly the `(host, address)` pairs of §2.3), processes a
//! query "as far as it can internally" (§2.5), and forwards it otherwise.

use std::collections::HashMap;
use std::time::Duration;

use skipweb_net::runtime::{Actor, Client, ClientId, Context, Runtime, RuntimeError, Sender};
use skipweb_net::HostId;
use skipweb_structures::interval::Endpoint;
use skipweb_structures::traits::RangeDetermined;
use skipweb_structures::KeyInterval;

use crate::levels::parent_key;
use crate::onedim::{nearest_from_locus, OneDimSkipWeb};

/// Globally unique address of a range: level, set index, range index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalRef {
    /// Level in the hierarchy (0 = ground).
    pub level: u16,
    /// Set index within the level.
    pub set: u32,
    /// Range id within the set's structure.
    pub range: u32,
}

#[derive(Debug, Clone)]
struct RangeRec {
    interval: KeyInterval,
    left: Option<(GlobalRef, HostId)>,
    right: Option<(GlobalRef, HostId)>,
    down: Vec<(GlobalRef, HostId, KeyInterval)>,
}

/// Host-to-host query message.
#[derive(Debug, Clone)]
pub struct Lookup {
    /// The key being searched.
    pub q: u64,
    /// Where to resume processing.
    pub at: GlobalRef,
    /// Client awaiting the answer.
    pub client: ClientId,
}

/// Per-host actor holding one shard of the skip-web.
pub struct ShardActor {
    shard: HashMap<GlobalRef, RangeRec>,
}

impl Actor for ShardActor {
    type Msg = Lookup;
    type Reply = Option<u64>;

    fn on_message(
        &mut self,
        _from: Sender,
        msg: Lookup,
        ctx: &mut Context<'_, Lookup, Option<u64>>,
    ) {
        let mut at = msg.at;
        let q = msg.q;
        loop {
            let Some(rec) = self.shard.get(&at) else {
                // Shouldn't happen with consistent shards; fail soft.
                ctx.reply(msg.client, None);
                return;
            };
            if rec.interval.contains(q) {
                if at.level == 0 {
                    ctx.reply(msg.client, nearest_from_locus(&rec.interval, q));
                    return;
                }
                // Descend: prefer the node range spelling q exactly, then
                // any containing range.
                let choice = rec
                    .down
                    .iter()
                    .filter(|(_, _, iv)| iv.contains(q))
                    .min_by_key(|(_, _, iv)| if iv.is_singleton() { 0 } else { 1 })
                    .or_else(|| rec.down.first());
                let Some(&(target, host, _)) = choice else {
                    ctx.reply(msg.client, None);
                    return;
                };
                if host == ctx.host() {
                    at = target;
                } else {
                    ctx.send(
                        host,
                        Lookup {
                            q,
                            at: target,
                            client: msg.client,
                        },
                    );
                    return;
                }
            } else {
                // Walk along the level's list toward q.
                let step = if Endpoint::Key(q) < rec.interval.lo() {
                    rec.left
                } else {
                    rec.right
                };
                let Some((target, host)) = step else {
                    ctx.reply(msg.client, None);
                    return;
                };
                if host == ctx.host() {
                    at = target;
                } else {
                    ctx.send(
                        host,
                        Lookup {
                            q,
                            at: target,
                            client: msg.client,
                        },
                    );
                    return;
                }
            }
        }
    }
}

/// A running distributed 1-D skip-web: one actor thread per host.
pub struct DistributedOneDim {
    runtime: Runtime<ShardActor>,
    /// Per ground item: the host and address where its queries start (the
    /// "root node for that host" of §1.1).
    origins: Vec<(HostId, GlobalRef)>,
}

impl DistributedOneDim {
    /// Shards a built skip-web across actor threads and starts them.
    pub fn spawn(web: &OneDimSkipWeb) -> Self {
        let inner = web.inner();
        let hosts = inner.hosts().max(1);
        let mut shards: Vec<HashMap<GlobalRef, RangeRec>> =
            (0..hosts).map(|_| HashMap::new()).collect();
        let levels = inner.level_structs();
        // Resolve a pointer from the perspective of the replica on `me`:
        // prefer the co-located copy (free to chase), else the first copy.
        let pick = |hosts: &[HostId], me: HostId| -> HostId {
            if hosts.contains(&me) {
                me
            } else {
                hosts[0]
            }
        };
        for (lvl, level) in levels.iter().enumerate() {
            for (set_idx, set) in level.sets.iter().enumerate() {
                let parent = (lvl > 0).then(|| {
                    let pkey = parent_key(set.key, lvl as u32);
                    let pidx = levels[lvl - 1].set_by_key[&pkey] as usize;
                    (pidx, &levels[lvl - 1].sets[pidx])
                });
                for r in set.structure.range_ids() {
                    let gref = GlobalRef {
                        level: lvl as u16,
                        set: set_idx as u32,
                        range: r.0,
                    };
                    let (left, right) = set.structure.adjacent(r);
                    for &me in &set.range_host[r.index()] {
                        let to_ref = |rid: skipweb_structures::RangeId| {
                            (
                                GlobalRef {
                                    level: lvl as u16,
                                    set: set_idx as u32,
                                    range: rid.0,
                                },
                                pick(&set.range_host[rid.index()], me),
                            )
                        };
                        let down: Vec<(GlobalRef, HostId, KeyInterval)> = parent
                            .as_ref()
                            .map(|(pidx, pset)| {
                                set.down[r.index()]
                                    .iter()
                                    .map(|t| {
                                        (
                                            GlobalRef {
                                                level: (lvl - 1) as u16,
                                                set: *pidx as u32,
                                                range: t.0,
                                            },
                                            pick(&pset.range_host[t.index()], me),
                                            pset.structure.range(*t),
                                        )
                                    })
                                    .collect()
                            })
                            .unwrap_or_default();
                        let rec = RangeRec {
                            interval: set.structure.range(r),
                            left: left.map(to_ref),
                            right: right.map(to_ref),
                            down,
                        };
                        shards[me.index()].insert(gref, rec);
                    }
                }
            }
        }
        let top = inner.top_level() as usize;
        let origins = (0..inner.len())
            .map(|g| {
                let level = &levels[top];
                let set = &level.sets[level.set_of_item[g] as usize];
                let entry = set.structure.entry_of_item(level.local_of_item[g] as usize);
                (
                    set.range_host[entry.index()][0],
                    GlobalRef {
                        level: top as u16,
                        set: level.set_of_item[g],
                        range: entry.0,
                    },
                )
            })
            .collect();
        let runtime = Runtime::spawn(hosts, move |h| ShardActor {
            shard: std::mem::take(&mut shards[h.index()]),
        });
        DistributedOneDim { runtime, origins }
    }

    /// Registers a client.
    pub fn client(&self) -> Client<Lookup, Option<u64>> {
        self.runtime.client()
    }

    /// Runs one nearest-neighbour query end to end, blocking up to 10 s.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down, timeout, disconnect).
    pub fn nearest(
        &self,
        client: &Client<Lookup, Option<u64>>,
        origin_item: usize,
        q: u64,
    ) -> Result<Option<u64>, RuntimeError> {
        let (host, at) = self.origins[origin_item];
        client.send(
            host,
            Lookup {
                q,
                at,
                client: client.id(),
            },
        )?;
        client.recv_timeout(Duration::from_secs(10))
    }

    /// Total host-to-host messages since spawn.
    pub fn message_count(&self) -> u64 {
        self.runtime.message_count()
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.runtime.hosts()
    }

    /// Stops all host threads.
    pub fn shutdown(self) {
        self.runtime.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributed_answers_match_the_simulator() {
        let keys: Vec<u64> = (0..256).map(|i| i * 9 + 1).collect();
        let web = OneDimSkipWeb::builder(keys).seed(13).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        for s in 0..60u64 {
            let q = (s * 131) % 2400;
            let sim = web.nearest(web.random_origin(s), q).answer.nearest;
            let got = dist
                .nearest(&client, web.random_origin(s), q)
                .expect("runtime alive")
                .expect("nonempty web");
            assert_eq!(got, sim, "query {q}");
        }
        dist.shutdown();
    }

    #[test]
    fn distributed_message_counts_are_logarithmic() {
        let keys: Vec<u64> = (0..512).map(|i| i * 5).collect();
        let web = OneDimSkipWeb::builder(keys).seed(14).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        let trials = 40u64;
        for s in 0..trials {
            let q = (s * 401) % 2560;
            dist.nearest(&client, web.random_origin(s), q).unwrap();
        }
        let per_query = dist.message_count() as f64 / trials as f64;
        // k = 9 levels; expected O(1) messages per level.
        assert!(per_query < 40.0, "per-query messages {per_query}");
        dist.shutdown();
    }

    #[test]
    fn distributed_bucketed_web_also_routes_correctly() {
        let keys: Vec<u64> = (0..300).map(|i| i * 7 + 3).collect();
        let web = OneDimSkipWeb::builder(keys).seed(15).bucketed(32).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        for s in 0..30u64 {
            let q = (s * 211) % 2200;
            let sim = web.nearest(web.random_origin(s), q).answer.nearest;
            let got = dist
                .nearest(&client, web.random_origin(s), q)
                .unwrap()
                .unwrap();
            assert_eq!(got, sim, "query {q}");
        }
        dist.shutdown();
    }

    #[test]
    fn concurrent_clients_get_independent_answers() {
        let keys: Vec<u64> = (0..128).map(|i| i * 11).collect();
        let web = OneDimSkipWeb::builder(keys).seed(16).build();
        let dist = DistributedOneDim::spawn(&web);
        let a = dist.client();
        let b = dist.client();
        let (ha, ra) = (dist.origins[0], dist.origins[1]);
        a.send(
            ha.0,
            Lookup {
                q: 55,
                at: ha.1,
                client: a.id(),
            },
        )
        .unwrap();
        b.send(
            ra.0,
            Lookup {
                q: 1100,
                at: ra.1,
                client: b.id(),
            },
        )
        .unwrap();
        let ans_a = a.recv_timeout(Duration::from_secs(10)).unwrap().unwrap();
        let ans_b = b.recv_timeout(Duration::from_secs(10)).unwrap().unwrap();
        assert_eq!(ans_a, 55);
        assert_eq!(ans_b, 1100);
        dist.shutdown();
    }
}
