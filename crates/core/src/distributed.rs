//! The 1-D skip-web on the threaded actor runtime — a thin wrapper over
//! the generic engine.
//!
//! Historically this module held a bespoke actor/message pair that executed
//! the §2.5 forwarding protocol for sorted keys only. That logic now lives
//! in [`crate::engine`], generic over every range-determined structure;
//! [`DistributedOneDim`] remains as the stable 1-D entry point (spawn,
//! per-client nearest-neighbour queries, live inserts/removes, message
//! counting) so existing integration tests and examples keep working
//! unchanged.

use skipweb_net::runtime::RuntimeError;
use skipweb_net::HostTraffic;
use skipweb_structures::linked_list::SortedLinkedList;

use crate::engine::{DistributedSkipWeb, EngineClient, EngineHealth, UpdateReply};
use crate::onedim::OneDimSkipWeb;

pub use crate::engine::GlobalRef;

/// Client handle for a [`DistributedOneDim`]; supports many concurrent
/// in-flight operations via correlation ids (see [`crate::engine`]).
pub type OneDimClient = EngineClient<SortedLinkedList>;

/// A running distributed 1-D skip-web: one actor thread per host, answering
/// nearest-neighbour queries — and applying live key inserts/removes (§4) —
/// with real concurrent message passing.
pub struct DistributedOneDim {
    inner: DistributedSkipWeb<SortedLinkedList>,
}

impl DistributedOneDim {
    /// Shards a built skip-web across actor threads and starts them
    /// (routes through [`FabricBuilder`](crate::engine::FabricBuilder)).
    pub fn spawn(web: &OneDimSkipWeb) -> Self {
        DistributedOneDim {
            inner: DistributedSkipWeb::builder(web.inner()).spawn(),
        }
    }

    /// Like [`spawn`](Self::spawn) but folding the web's logical hosts onto
    /// at most `hosts` actor threads (see
    /// [`FabricBuilder::consolidated`](crate::engine::FabricBuilder::consolidated)).
    ///
    /// # Panics
    ///
    /// Panics if `hosts` is zero.
    pub fn spawn_consolidated(web: &OneDimSkipWeb, hosts: usize) -> Self {
        DistributedOneDim {
            inner: DistributedSkipWeb::builder(web.inner())
                .consolidated(hosts)
                .spawn(),
        }
    }

    /// Like [`spawn`](Self::spawn) but with `capacity` actor threads, which
    /// may exceed the web's host count to leave headroom for live inserts
    /// (see [`FabricBuilder::capacity`](crate::engine::FabricBuilder::capacity)).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn spawn_with_capacity(web: &OneDimSkipWeb, capacity: usize) -> Self {
        DistributedOneDim {
            inner: DistributedSkipWeb::builder(web.inner())
                .capacity(capacity)
                .spawn(),
        }
    }

    /// Registers a client.
    pub fn client(&self) -> OneDimClient {
        self.inner.client()
    }

    /// Runs one nearest-neighbour query end to end, blocking up to the
    /// client's query timeout (default 10 s, see
    /// [`EngineClient::set_timeouts`]).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn nearest(
        &self,
        client: &OneDimClient,
        origin_item: usize,
        q: u64,
    ) -> Result<Option<u64>, RuntimeError> {
        self.inner.query(client, origin_item, q).map(|r| r.answer)
    }

    /// Runs a whole batch of nearest-neighbour queries under one
    /// correlation group (see [`DistributedSkipWeb::query_batch`]): the
    /// keys enter at `origin_item`'s root in one envelope and keep sharing
    /// envelopes wherever they agree on the next host, so the batch crosses
    /// strictly fewer host boundaries than the same queries run serially —
    /// with byte-identical answers, returned in submission order.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn nearest_batch(
        &self,
        client: &OneDimClient,
        origin_item: usize,
        qs: Vec<u64>,
    ) -> Result<Vec<Option<u64>>, RuntimeError> {
        Ok(self
            .inner
            .query_batch(client, origin_item, qs)?
            .into_iter()
            .map(|r| r.answer)
            .collect())
    }

    /// Inserts a batch of keys through the live network, coalescing routing
    /// and repair messages per destination host and applying the ones that
    /// land together under a single rebuild (see
    /// [`DistributedSkipWeb::insert_batch`]).
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn insert_batch(
        &self,
        client: &OneDimClient,
        keys: Vec<u64>,
    ) -> Result<Vec<UpdateReply>, RuntimeError> {
        self.inner.insert_batch(client, keys)
    }

    /// Removes a batch of keys through the live network (see
    /// [`DistributedSkipWeb::remove_batch`]). Absent keys complete as free
    /// no-ops, like the simulator.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn remove_batch(
        &self,
        client: &OneDimClient,
        keys: Vec<u64>,
    ) -> Result<Vec<UpdateReply>, RuntimeError> {
        self.inner.remove_batch(client, keys)
    }

    /// Inserts `key` through the live network (§4): routes to the key's
    /// locus, walks the bottom-up repair, applies atomically. Returns the
    /// update outcome with its remote-hop cost.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn insert(&self, client: &OneDimClient, key: u64) -> Result<UpdateReply, RuntimeError> {
        self.inner.insert(client, key)
    }

    /// Removes `key` through the live network (§4). Absent keys complete as
    /// free no-ops, like the simulator.
    ///
    /// # Errors
    ///
    /// Propagates runtime errors (host down or panicked, timeout,
    /// disconnect).
    pub fn remove(&self, client: &OneDimClient, key: u64) -> Result<UpdateReply, RuntimeError> {
        self.inner.remove(client, key)
    }

    /// The generic engine underneath (for [`DistributedSkipWeb::submit`],
    /// correlation-id pipelining, and explicit-bits updates).
    pub fn engine(&self) -> &DistributedSkipWeb<SortedLinkedList> {
        &self.inner
    }

    /// A snapshot of the currently stored keys, sorted.
    pub fn keys(&self) -> Vec<u64> {
        self.inner.ground()
    }

    /// Total host-to-host messages since spawn.
    pub fn message_count(&self) -> u64 {
        self.inner.message_count()
    }

    /// Per-host sent/received message counters since spawn, with the
    /// update-tagged share broken out.
    pub fn traffic(&self) -> HostTraffic {
        self.inner.traffic()
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.inner.hosts()
    }

    /// A fabric-health report: alive/dead/decommissioned hosts, the
    /// replication factor, and the topology-snapshot version (see
    /// [`DistributedSkipWeb::health`]).
    pub fn health(&self) -> EngineHealth {
        self.inner.health()
    }

    /// Stops all host threads.
    pub fn shutdown(self) {
        self.inner.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn distributed_answers_match_the_simulator() {
        let keys: Vec<u64> = (0..256).map(|i| i * 9 + 1).collect();
        let web = OneDimSkipWeb::builder(keys).seed(13).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        for s in 0..60u64 {
            let q = (s * 131) % 2400;
            let sim = web.nearest(web.random_origin(s), q).answer.nearest;
            let got = dist
                .nearest(&client, web.random_origin(s), q)
                .expect("runtime alive")
                .expect("nonempty web");
            assert_eq!(got, sim, "query {q}");
        }
        dist.shutdown();
    }

    #[test]
    fn distributed_hops_equal_the_simulators_metered_crossings() {
        let keys: Vec<u64> = (0..512).map(|i| i * 5).collect();
        let web = OneDimSkipWeb::builder(keys).seed(14).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        let trials = 40u64;
        let mut sim_total = 0u64;
        for s in 0..trials {
            let q = (s * 401) % 2560;
            let origin = web.random_origin(s);
            let sim = web.nearest(origin, q);
            sim_total += sim.messages;
            let reply = dist.engine().query(&client, origin, q).unwrap();
            assert_eq!(
                u64::from(reply.hops),
                sim.messages,
                "hop parity for query {q}"
            );
        }
        // The runtime's global counter agrees with the per-query hops.
        assert_eq!(dist.message_count(), sim_total);
        let per_query = dist.message_count() as f64 / trials as f64;
        // k = 9 levels; expected O(1) messages per level.
        assert!(per_query < 40.0, "per-query messages {per_query}");
        dist.shutdown();
    }

    #[test]
    fn distributed_bucketed_web_also_routes_correctly() {
        let keys: Vec<u64> = (0..300).map(|i| i * 7 + 3).collect();
        let web = OneDimSkipWeb::builder(keys).seed(15).bucketed(32).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        for s in 0..30u64 {
            let q = (s * 211) % 2200;
            let sim = web.nearest(web.random_origin(s), q).answer.nearest;
            let got = dist
                .nearest(&client, web.random_origin(s), q)
                .unwrap()
                .unwrap();
            assert_eq!(got, sim, "query {q}");
        }
        dist.shutdown();
    }

    #[test]
    fn concurrent_clients_get_independent_answers() {
        let keys: Vec<u64> = (0..128).map(|i| i * 11).collect();
        let web = OneDimSkipWeb::builder(keys).seed(16).build();
        let dist = DistributedOneDim::spawn(&web);
        let a = dist.client();
        let b = dist.client();
        let origin_a = web.keys().iter().position(|&k| k == 55).unwrap_or(0);
        dist.engine().submit(&a, origin_a, 55).unwrap();
        dist.engine().submit(&b, 1, 1100).unwrap();
        let ans_a = a.recv_any(Duration::from_secs(10)).unwrap();
        let ans_b = b.recv_any(Duration::from_secs(10)).unwrap();
        assert_eq!(ans_a.try_into_answer().unwrap(), Some(55));
        assert_eq!(ans_b.try_into_answer().unwrap(), Some(1100));
        dist.shutdown();
    }

    #[test]
    fn one_client_pipelines_many_queries_by_correlation_id() {
        let keys: Vec<u64> = (0..200).map(|i| i * 10).collect();
        let web = OneDimSkipWeb::builder(keys).seed(17).build();
        let dist = DistributedOneDim::spawn(&web);
        let client = dist.client();
        // Fire 24 queries before reading a single reply …
        let corrs: Vec<(u64, u64)> = (0..24u64)
            .map(|s| {
                let q = (s * 83) % 2000;
                let corr = dist
                    .engine()
                    .submit(&client, web.random_origin(s), q)
                    .unwrap();
                (corr, q)
            })
            .collect();
        // … then collect them in reverse submission order.
        for &(corr, q) in corrs.iter().rev() {
            let reply = client.recv_corr(corr, Duration::from_secs(10)).unwrap();
            assert_eq!(reply.corr, corr);
            let want = web.nearest(0, q).answer.nearest;
            assert_eq!(reply.try_into_answer().unwrap(), Some(want), "query {q}");
        }
        dist.shutdown();
    }

    #[test]
    fn batched_nearest_matches_serial_with_fewer_crossings() {
        let keys: Vec<u64> = (0..256).map(|i| i * 9 + 1).collect();
        let web = OneDimSkipWeb::builder(keys).seed(19).build();
        let serial = DistributedOneDim::spawn(&web);
        let batched = DistributedOneDim::spawn(&web);
        let (cs, cb) = (serial.client(), batched.client());
        let qs: Vec<u64> = (0..48u64).map(|s| (s * 131) % 2400).collect();
        let origin = web.random_origin(7);
        let want: Vec<Option<u64>> = qs
            .iter()
            .map(|&q| serial.nearest(&cs, origin, q).expect("runtime alive"))
            .collect();
        let got = batched
            .nearest_batch(&cb, origin, qs)
            .expect("runtime alive");
        assert_eq!(got, want);
        assert!(
            batched.message_count() < serial.message_count(),
            "batch must cross fewer host boundaries: {} vs {}",
            batched.message_count(),
            serial.message_count()
        );
        assert!(
            batched.traffic().total_batch_ops() > 0,
            "coalescing metered"
        );
        // Batched updates round-trip through the same wrapper.
        let ins = batched.insert_batch(&cb, vec![5_000, 5_002]).unwrap();
        assert!(ins.iter().all(|r| r.applied));
        let rem = batched
            .remove_batch(&cb, vec![5_000, 5_002, 9_999])
            .unwrap();
        assert_eq!(
            rem.iter().map(|r| r.applied).collect::<Vec<_>>(),
            vec![true, true, false]
        );
        serial.shutdown();
        batched.shutdown();
    }

    #[test]
    fn live_updates_change_the_served_answers() {
        let keys: Vec<u64> = (0..64).map(|i| i * 100).collect();
        let web = OneDimSkipWeb::builder(keys).seed(18).build();
        let dist = DistributedOneDim::spawn_with_capacity(&web, 70);
        let client = dist.client();
        assert_eq!(dist.nearest(&client, 0, 5_550).unwrap(), Some(5_500));
        let ins = dist.insert(&client, 5_551).unwrap();
        assert!(ins.applied);
        assert!(ins.hops > 0, "updates on H=n webs pay messages");
        assert_eq!(dist.nearest(&client, 0, 5_550).unwrap(), Some(5_551));
        assert!(dist.remove(&client, 5_551).unwrap().applied);
        assert_eq!(dist.nearest(&client, 0, 5_550).unwrap(), Some(5_500));
        assert!(dist.keys().contains(&5_500));
        assert!(!dist.keys().contains(&5_551));
        assert!(dist.traffic().total_update_sent() > 0);
        dist.shutdown();
    }
}
