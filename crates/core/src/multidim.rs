//! Multi-dimensional skip-webs (§3): quadtree/octree point location and
//! approximate nearest neighbour, trie prefix search, and trapezoidal-map
//! point location — each `O(log n)` messages even when the underlying
//! structure has `O(n)` depth.

use skipweb_net::sim::{MessageMeter, SimNetwork};
use skipweb_structures::geometry::Cell;
use skipweb_structures::quadtree::{CompressedQuadtree, PointKey};
use skipweb_structures::traits::{RangeDetermined, RangeId};
use skipweb_structures::trapezoid::{Segment, Trapezoid, TrapezoidalMap};
use skipweb_structures::trie::CompressedTrie;

use crate::engine::{DistributedSkipWeb, Routable};
use crate::placement::{Blocking, Replication};
use crate::skipweb::{SkipWeb, SkipWebBuilder};

/// A request routed through a distributed quadtree skip-web.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuadtreeRequest<const D: usize> {
    /// Point location (and approximate nearest neighbour) for a point.
    Locate(PointKey<D>),
    /// Orthogonal range reporting over the axis-aligned box `[lo, hi]`
    /// (inclusive corners); the descent routes toward the box centre, then
    /// the anchoring host scans output-sensitively (§3.1). Corners given
    /// out of order are normalized per axis before routing — actors never
    /// trust wire input enough to panic on it.
    InBox {
        /// Lower corner, per axis.
        lo: [u32; D],
        /// Upper corner, per axis.
        hi: [u32; D],
    },
}

/// Normalizes box corners so `lo[a] <= hi[a]` on every axis.
fn normalized_box<const D: usize>(lo: &[u32; D], hi: &[u32; D]) -> ([u32; D], [u32; D]) {
    let mut nlo = *lo;
    let mut nhi = *hi;
    for a in 0..D {
        if nlo[a] > nhi[a] {
            std::mem::swap(&mut nlo[a], &mut nhi[a]);
        }
    }
    (nlo, nhi)
}

/// The answer to a [`QuadtreeRequest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QuadtreeAnswer<const D: usize> {
    /// Point-location result.
    Located {
        /// The deepest quadtree cell containing the query point.
        cell: Cell<D>,
        /// The approximate nearest neighbour of §3.1.
        approx_nearest: Option<PointKey<D>>,
    },
    /// Stored points inside the requested box, in Morton order.
    Points(Vec<PointKey<D>>),
}

impl<const D: usize> Routable for CompressedQuadtree<D> {
    type Request = QuadtreeRequest<D>;
    type Answer = QuadtreeAnswer<D>;

    fn target(req: &QuadtreeRequest<D>) -> PointKey<D> {
        match req {
            QuadtreeRequest::Locate(p) => *p,
            QuadtreeRequest::InBox { lo, hi } => {
                let (lo, hi) = normalized_box(lo, hi);
                let mut centre = [0u32; D];
                for a in 0..D {
                    centre[a] = lo[a] + (hi[a] - lo[a]) / 2;
                }
                PointKey::new(centre)
            }
        }
    }

    fn answer(&self, locus: RangeId, req: &QuadtreeRequest<D>) -> QuadtreeAnswer<D> {
        match req {
            QuadtreeRequest::Locate(q) => {
                // Widen to the parent subtree for the approximate-NN
                // candidate set, as in the simulator path.
                let around = self.parent_of(locus).unwrap_or(locus);
                QuadtreeAnswer::Located {
                    cell: RangeDetermined::range(self, locus),
                    approx_nearest: self.nearest_in_subtree(around, q),
                }
            }
            QuadtreeRequest::InBox { lo, hi } => {
                let (lo, hi) = normalized_box(lo, hi);
                QuadtreeAnswer::Points(scan_box(self, locus, &lo, &hi, |_| {}))
            }
        }
    }

    fn report_ranges(&self, locus: RangeId, req: &QuadtreeRequest<D>) -> Option<Vec<RangeId>> {
        match req {
            QuadtreeRequest::Locate(_) => None,
            QuadtreeRequest::InBox { lo, hi } => {
                let (lo, hi) = normalized_box(lo, hi);
                Some(box_report_nodes(self, locus, &lo, &hi, |_| {}))
            }
        }
    }

    fn partial_answer(&self, ranges: &[RangeId], req: &QuadtreeRequest<D>) -> QuadtreeAnswer<D> {
        match req {
            // Wire input is never trusted enough to panic on: a locate can
            // only reach here through a malformed message, so degrade to an
            // empty report.
            QuadtreeRequest::Locate(_) => QuadtreeAnswer::Points(Vec::new()),
            QuadtreeRequest::InBox { lo, hi } => {
                let (lo, hi) = normalized_box(lo, hi);
                QuadtreeAnswer::Points(points_from_nodes(self, ranges, &lo, &hi))
            }
        }
    }

    fn merge_answers(parts: Vec<QuadtreeAnswer<D>>) -> QuadtreeAnswer<D> {
        // Partials cover disjoint node sets, so a merge is concatenation
        // back into Morton order — byte-identical to the serial scan.
        let mut points: Vec<PointKey<D>> = parts
            .into_iter()
            .flat_map(|p| match p {
                QuadtreeAnswer::Points(pts) => pts,
                QuadtreeAnswer::Located { .. } => Vec::new(),
            })
            .collect();
        points.sort_by_key(PointKey::morton);
        QuadtreeAnswer::Points(points)
    }
}

/// The answer to a distributed trie prefix query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixAnswer {
    /// How many bytes of the query lie on the stored-set trie.
    pub matched_len: usize,
    /// Stored strings extending the full query prefix (empty when the query
    /// diverges before its end), sorted.
    pub matches: Vec<String>,
}

impl Routable for CompressedTrie {
    type Request = String;
    type Answer = PrefixAnswer;

    fn target(req: &String) -> String {
        req.clone()
    }

    fn answer(&self, _locus: RangeId, req: &String) -> PrefixAnswer {
        let matched_len = self.matched_len(req.as_bytes());
        let matches = if matched_len == req.len() {
            self.strings_with_prefix(req.as_bytes())
                .into_iter()
                .map(str::to_owned)
                .collect()
        } else {
            Vec::new()
        };
        PrefixAnswer {
            matched_len,
            matches,
        }
    }

    fn report_ranges(&self, _locus: RangeId, req: &String) -> Option<Vec<RangeId>> {
        if self.matched_len(req.as_bytes()) != req.len() {
            // Off-trie prefix: the answer is an empty match list, computed
            // for free at the locus — nothing to scatter.
            return None;
        }
        // The matching strings are a contiguous run of the sorted ground
        // set; each item's node range names the host storing it.
        let items = self.items();
        let start = items.partition_point(|s| s.as_str() < req.as_str());
        let ids: Vec<RangeId> = items[start..]
            .iter()
            .take_while(|s| s.starts_with(req.as_str()))
            .enumerate()
            .map(|(off, _)| self.entry_of_item(start + off))
            .collect();
        (!ids.is_empty()).then_some(ids)
    }

    fn partial_answer(&self, ranges: &[RangeId], req: &String) -> PrefixAnswer {
        let matched_len = self.matched_len(req.as_bytes());
        let mut matches: Vec<String> = ranges
            .iter()
            .map(|&r| self.items()[self.owner(r)].clone())
            .filter(|s| s.starts_with(req.as_str()))
            .collect();
        matches.sort();
        PrefixAnswer {
            matched_len,
            matches,
        }
    }

    fn merge_answers(parts: Vec<PrefixAnswer>) -> PrefixAnswer {
        // Every partial computes matched_len from the shared structure
        // description, so any of them carries the right value.
        let matched_len = parts.iter().map(|p| p.matched_len).max().unwrap_or(0);
        let mut matches: Vec<String> = parts.into_iter().flat_map(|p| p.matches).collect();
        matches.sort();
        matches.dedup();
        PrefixAnswer {
            matched_len,
            matches,
        }
    }
}

impl Routable for TrapezoidalMap {
    type Request = (i64, i64);
    type Answer = Trapezoid;

    fn target(req: &(i64, i64)) -> (i64, i64) {
        *req
    }

    fn answer(&self, locus: RangeId, _req: &(i64, i64)) -> Trapezoid {
        RangeDetermined::range(self, locus)
    }

    fn admissible(&self, item: &Segment) -> bool {
        // Building with a general-position violation panics; a live insert
        // over the wire must degrade to a rejected no-op instead.
        self.admits(item)
    }
}

mod codecs {
    //! [`WireCodec`] layouts for the multi-dimensional webs. Decoders guard
    //! every constructor precondition (cell depth bounds, segment general
    //! position) so malformed wire bytes degrade to `None`, never a panic.

    use skipweb_net::wire::{put_i64, put_str, put_u128, put_u32, put_u8, WireReader};
    use skipweb_structures::geometry::MAX_DEPTH;

    use super::*;
    use crate::wire::WireCodec;

    fn put_point<const D: usize>(p: &PointKey<D>, buf: &mut Vec<u8>) {
        for c in p.coords() {
            put_u32(buf, c);
        }
    }

    fn read_point<const D: usize>(r: &mut WireReader<'_>) -> Option<PointKey<D>> {
        let mut coords = [0u32; D];
        for c in &mut coords {
            *c = r.read_u32()?;
        }
        Some(PointKey::new(coords))
    }

    fn put_cell<const D: usize>(cell: &Cell<D>, buf: &mut Vec<u8>) {
        put_u128(buf, cell.prefix());
        put_u32(buf, cell.depth());
    }

    fn read_cell<const D: usize>(r: &mut WireReader<'_>) -> Option<Cell<D>> {
        let prefix = r.read_u128()?;
        let depth = r.read_u32()?;
        (depth <= MAX_DEPTH).then(|| Cell::at_depth(prefix, depth))
    }

    /// Requests and items are raw per-axis `u32` coordinates (1 or 2 point
    /// tuples behind a variant tag); answers tag `Located`/`Points`.
    impl<const D: usize> WireCodec for CompressedQuadtree<D> {
        fn encode_request(req: &QuadtreeRequest<D>, buf: &mut Vec<u8>) {
            match req {
                QuadtreeRequest::Locate(p) => {
                    put_u8(buf, 0);
                    put_point(p, buf);
                }
                QuadtreeRequest::InBox { lo, hi } => {
                    put_u8(buf, 1);
                    put_point(&PointKey::new(*lo), buf);
                    put_point(&PointKey::new(*hi), buf);
                }
            }
        }

        fn decode_request(r: &mut WireReader<'_>) -> Option<QuadtreeRequest<D>> {
            match r.read_u8()? {
                0 => Some(QuadtreeRequest::Locate(read_point(r)?)),
                1 => Some(QuadtreeRequest::InBox {
                    lo: read_point::<D>(r)?.coords(),
                    hi: read_point::<D>(r)?.coords(),
                }),
                _ => None,
            }
        }

        fn encode_answer(ans: &QuadtreeAnswer<D>, buf: &mut Vec<u8>) {
            match ans {
                QuadtreeAnswer::Located {
                    cell,
                    approx_nearest,
                } => {
                    put_u8(buf, 0);
                    put_cell(cell, buf);
                    match approx_nearest {
                        None => put_u8(buf, 0),
                        Some(p) => {
                            put_u8(buf, 1);
                            put_point(p, buf);
                        }
                    }
                }
                QuadtreeAnswer::Points(ps) => {
                    put_u8(buf, 1);
                    put_u32(buf, ps.len() as u32);
                    for p in ps {
                        put_point(p, buf);
                    }
                }
            }
        }

        fn decode_answer(r: &mut WireReader<'_>) -> Option<QuadtreeAnswer<D>> {
            match r.read_u8()? {
                0 => {
                    let cell = read_cell(r)?;
                    let approx_nearest = match r.read_u8()? {
                        0 => None,
                        1 => Some(read_point(r)?),
                        _ => return None,
                    };
                    Some(QuadtreeAnswer::Located {
                        cell,
                        approx_nearest,
                    })
                }
                1 => {
                    let len = r.read_u32()? as usize;
                    let mut ps = Vec::with_capacity(len.min(1024));
                    for _ in 0..len {
                        ps.push(read_point(r)?);
                    }
                    Some(QuadtreeAnswer::Points(ps))
                }
                _ => None,
            }
        }

        fn encode_item(item: &PointKey<D>, buf: &mut Vec<u8>) {
            put_point(item, buf);
        }

        fn decode_item(r: &mut WireReader<'_>) -> Option<PointKey<D>> {
            read_point(r)
        }
    }

    /// Requests and items are length-prefixed UTF-8; the answer is the
    /// matched length followed by the sorted match list.
    impl WireCodec for CompressedTrie {
        fn encode_request(req: &String, buf: &mut Vec<u8>) {
            put_str(buf, req);
        }

        fn decode_request(r: &mut WireReader<'_>) -> Option<String> {
            r.read_str()
        }

        fn encode_answer(ans: &PrefixAnswer, buf: &mut Vec<u8>) {
            put_u32(buf, ans.matched_len as u32);
            put_u32(buf, ans.matches.len() as u32);
            for m in &ans.matches {
                put_str(buf, m);
            }
        }

        fn decode_answer(r: &mut WireReader<'_>) -> Option<PrefixAnswer> {
            let matched_len = r.read_u32()? as usize;
            let len = r.read_u32()? as usize;
            let mut matches = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                matches.push(r.read_str()?);
            }
            Some(PrefixAnswer {
                matched_len,
                matches,
            })
        }

        fn encode_item(item: &String, buf: &mut Vec<u8>) {
            put_str(buf, item);
        }

        fn decode_item(r: &mut WireReader<'_>) -> Option<String> {
            r.read_str()
        }
    }

    fn put_segment(s: &Segment, buf: &mut Vec<u8>) {
        let (lx, ly) = s.left();
        let (rx, ry) = s.right();
        put_i64(buf, lx);
        put_i64(buf, ly);
        put_i64(buf, rx);
        put_i64(buf, ry);
    }

    fn read_segment(r: &mut WireReader<'_>) -> Option<Segment> {
        let p = (r.read_i64()?, r.read_i64()?);
        let q = (r.read_i64()?, r.read_i64()?);
        // Segment::new asserts general position and i32-range coordinates;
        // check both so wire input cannot panic the host.
        let in_range = [p.0, p.1, q.0, q.1]
            .iter()
            .all(|&v| i32::try_from(v).is_ok());
        (p.0 != q.0 && in_range).then(|| Segment::new(p, q))
    }

    fn put_opt_i64(v: &Option<i64>, buf: &mut Vec<u8>) {
        match v {
            None => put_u8(buf, 0),
            Some(x) => {
                put_u8(buf, 1);
                put_i64(buf, *x);
            }
        }
    }

    fn read_opt_i64(r: &mut WireReader<'_>) -> Option<Option<i64>> {
        match r.read_u8()? {
            0 => Some(None),
            1 => Some(Some(r.read_i64()?)),
            _ => None,
        }
    }

    /// Requests are `(x, y)` query points; answers serialize the four
    /// optional trapezoid bounds; items are segments as two endpoints.
    impl WireCodec for TrapezoidalMap {
        fn encode_request(req: &(i64, i64), buf: &mut Vec<u8>) {
            put_i64(buf, req.0);
            put_i64(buf, req.1);
        }

        fn decode_request(r: &mut WireReader<'_>) -> Option<(i64, i64)> {
            Some((r.read_i64()?, r.read_i64()?))
        }

        fn encode_answer(ans: &Trapezoid, buf: &mut Vec<u8>) {
            for side in [&ans.top, &ans.bottom] {
                match side {
                    None => put_u8(buf, 0),
                    Some(s) => {
                        put_u8(buf, 1);
                        put_segment(s, buf);
                    }
                }
            }
            put_opt_i64(&ans.left_x, buf);
            put_opt_i64(&ans.right_x, buf);
        }

        fn decode_answer(r: &mut WireReader<'_>) -> Option<Trapezoid> {
            let mut sides = [None, None];
            for side in &mut sides {
                *side = match r.read_u8()? {
                    0 => None,
                    1 => Some(read_segment(r)?),
                    _ => return None,
                };
            }
            Some(Trapezoid {
                top: sides[0],
                bottom: sides[1],
                left_x: read_opt_i64(r)?,
                right_x: read_opt_i64(r)?,
            })
        }

        fn encode_item(item: &Segment, buf: &mut Vec<u8>) {
            put_segment(item, buf);
        }

        fn decode_item(r: &mut WireReader<'_>) -> Option<Segment> {
            read_segment(r)
        }
    }
}

/// Ascends from the descent locus to the smallest cell covering the whole
/// box, then reports stored points output-sensitively by DFS with subtree
/// pruning. `touch` observes every range acted on (the simulator meters its
/// host; the distributed engine executes the scan on the anchoring host —
/// or, under scatter-gather, splits [`box_report_nodes`] across the hosts
/// owning them).
pub(crate) fn scan_box<const D: usize>(
    base: &CompressedQuadtree<D>,
    locus: RangeId,
    lo: &[u32; D],
    hi: &[u32; D],
    touch: impl FnMut(RangeId),
) -> Vec<PointKey<D>> {
    let nodes = box_report_nodes(base, locus, lo, hi, touch);
    points_from_nodes(base, &nodes, lo, hi)
}

/// The node ranges supporting a box report: ascend from `locus` to the
/// smallest cell covering the whole box, then DFS with subtree pruning —
/// every node visited in walk order. The stored points of exactly these
/// nodes (filtered through the box) are the report's answer, which is what
/// lets a scatter-gather split them across owning hosts.
pub(crate) fn box_report_nodes<const D: usize>(
    base: &CompressedQuadtree<D>,
    locus: RangeId,
    lo: &[u32; D],
    hi: &[u32; D],
    mut touch: impl FnMut(RangeId),
) -> Vec<RangeId> {
    let lo_pt = PointKey::new(*lo);
    let hi_pt = PointKey::new(*hi);
    // Ascend to the smallest node whose cell covers the whole box.
    let mut node = locus;
    while !(base.node_cell(node).contains_point(&lo_pt)
        && base.node_cell(node).contains_point(&hi_pt))
    {
        match base.parent_of(node) {
            Some(p) => {
                node = p;
                touch(node);
            }
            None => break, // the universe root covers everything
        }
    }
    // Output-sensitive DFS, pruning subtrees outside the box.
    let mut visited = Vec::new();
    let mut stack = vec![node];
    while let Some(v) = stack.pop() {
        if !base.node_cell(v).intersects_box(lo, hi) {
            continue;
        }
        touch(v);
        visited.push(v);
        for nb in base.neighbors(v) {
            // children sit behind the node's child links
            if nb.index() >= base.num_nodes() {
                let cell = RangeDetermined::range(base, nb);
                if cell.depth() > base.node_cell(v).depth() && cell.intersects_box(lo, hi) {
                    // link target = child node; resolve through link id
                    let child = base
                        .neighbors(nb)
                        .into_iter()
                        .find(|c| *c != v)
                        .expect("links join two nodes");
                    stack.push(child);
                }
            }
        }
    }
    visited
}

/// The stored points of `nodes` inside the box, in Morton order — the
/// answer (or one scattered partial of it) of a box report.
pub(crate) fn points_from_nodes<const D: usize>(
    base: &CompressedQuadtree<D>,
    nodes: &[RangeId],
    lo: &[u32; D],
    hi: &[u32; D],
) -> Vec<PointKey<D>> {
    let mut points: Vec<PointKey<D>> = nodes
        .iter()
        .filter_map(|&v| base.leaf_point(v))
        .filter(|p| p.in_box(lo, hi))
        .collect();
    points.sort_by_key(PointKey::morton);
    points
}

/// Builder that produces a typed wrapper around a generic skip-web.
#[derive(Debug, Clone)]
pub struct WrappedBuilder<D: RangeDetermined, W> {
    inner: SkipWebBuilder<D>,
    wrap: fn(SkipWeb<D>) -> W,
}

impl<D: RangeDetermined, W> WrappedBuilder<D, W> {
    /// Seeds the level randomization.
    pub fn seed(mut self, seed: u64) -> Self {
        self.inner = self.inner.seed(seed);
        self
    }

    /// Uses bucketed placement with per-host memory `memory` (§2.4.1).
    pub fn bucketed(mut self, memory: usize) -> Self {
        self.inner = self.inner.bucketed(memory);
        self
    }

    /// Uses an explicit blocking strategy.
    pub fn blocking(mut self, blocking: Blocking) -> Self {
        self.inner = self.inner.blocking(blocking);
        self
    }

    /// Uses an explicit replication policy.
    pub fn replication(mut self, replication: Replication) -> Self {
        self.inner = self.inner.replication(replication);
        self
    }

    /// Places every range on `k` hosts so the served web survives up to
    /// `k - 1` host crashes (see [`Replication`]).
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn replicate(mut self, k: usize) -> Self {
        self.inner = self.inner.replicate(k);
        self
    }

    /// Builds the wrapped skip-web.
    pub fn build(self) -> W {
        (self.wrap)(self.inner.build())
    }
}

/// Outcome of a point-location query in a quadtree skip-web.
#[derive(Debug, Clone)]
pub struct CellOutcome<const D: usize> {
    /// The deepest quadtree cell containing the query point.
    pub cell: Cell<D>,
    /// The stored point nearest the query within that cell's subtree (and
    /// its parent's subtree) — the approximate nearest neighbour that §3.1
    /// derives from point location.
    pub approx_nearest: Option<PointKey<D>>,
    /// Messages spent.
    pub messages: u64,
    /// Ranges touched per level, top first.
    pub per_level_touches: Vec<u32>,
}

/// A distributed skip-web over a compressed quadtree (`D = 2`) or octree
/// (`D = 3`), supporting point location and approximate nearest neighbour
/// with `O(log n)` messages (§3.1).
///
/// # Example
///
/// ```
/// use skipweb_core::multidim::QuadtreeSkipWeb;
/// use skipweb_structures::PointKey;
///
/// let pts: Vec<PointKey<2>> = (0..64).map(|i| PointKey::new([i * 13, i * 29])).collect();
/// let web = QuadtreeSkipWeb::builder(pts).seed(2).build();
/// let out = web.locate_point(web.random_origin(0), PointKey::new([100, 230]));
/// assert!(out.cell.contains_point(&PointKey::new([100, 230])));
/// ```
#[derive(Debug, Clone)]
pub struct QuadtreeSkipWeb<const D: usize> {
    web: SkipWeb<CompressedQuadtree<D>>,
}

impl<const D: usize> QuadtreeSkipWeb<D> {
    /// Starts building over a point set.
    pub fn builder(points: Vec<PointKey<D>>) -> WrappedBuilder<CompressedQuadtree<D>, Self> {
        WrappedBuilder {
            inner: SkipWeb::builder(points),
            wrap: Self::from_web,
        }
    }

    /// Wraps a built generic web.
    pub fn from_web(web: SkipWeb<CompressedQuadtree<D>>) -> Self {
        QuadtreeSkipWeb { web }
    }

    /// The stored points (Morton order).
    pub fn points(&self) -> &[PointKey<D>] {
        self.web.ground()
    }

    /// Number of stored points.
    pub fn len(&self) -> usize {
        self.web.len()
    }

    /// Whether the web is empty.
    pub fn is_empty(&self) -> bool {
        self.web.is_empty()
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.web.hosts()
    }

    /// Deterministic pseudo-random origin item.
    pub fn random_origin(&self, seed: u64) -> usize {
        self.web.random_origin(seed)
    }

    /// Point location: routes to the deepest level-0 cell containing `q`
    /// and extracts the approximate nearest neighbour (§3.1).
    pub fn locate_point(&self, origin_item: usize, q: PointKey<D>) -> CellOutcome<D> {
        let mut meter = MessageMeter::new();
        let outcome = self.web.query(origin_item, &q, &mut meter);
        let base = self.web.base();
        let cell = base.range(outcome.locus);
        // The located range is a node (search terminates on nodes); widen to
        // its parent subtree for the approximate-NN candidate set.
        let node = outcome.locus;
        let around = base.parent_of(node).unwrap_or(node);
        let approx_nearest = base.nearest_in_subtree(around, &q);
        CellOutcome {
            cell,
            approx_nearest,
            messages: outcome.messages,
            per_level_touches: outcome.per_level_touches,
        }
    }

    /// Reports every stored point in the axis-aligned box `[lo, hi]`
    /// (inclusive corners) — the approximate range searching §3.1 derives
    /// from point location. Routes to the box's covering cell in
    /// `O(log n)` messages, then scans output-sensitively.
    ///
    /// # Panics
    ///
    /// Panics if the web is empty or `lo` exceeds `hi` on any axis.
    pub fn points_in_box(&self, origin_item: usize, lo: [u32; D], hi: [u32; D]) -> BoxOutcome<D> {
        assert!((0..D).all(|a| lo[a] <= hi[a]), "box corners out of order");
        // Route toward the box centre.
        let mut centre = [0u32; D];
        for a in 0..D {
            centre[a] = lo[a] + (hi[a] - lo[a]) / 2;
        }
        let mut meter = MessageMeter::new();
        let outcome = self
            .web
            .query(origin_item, &PointKey::new(centre), &mut meter);
        let levels = self.web.level_structs();
        let set = &levels[0].sets[0];
        let points = scan_box(&set.structure, outcome.locus, &lo, &hi, |r| {
            meter.visit(set.range_host[r.index()][0])
        });
        BoxOutcome {
            points,
            messages: meter.messages(),
        }
    }

    /// Serves this web over the threaded actor runtime (see
    /// [`crate::engine`]): point-location and box-reporting requests — and
    /// live point inserts/removes — are routed with real concurrent message
    /// passing.
    pub fn serve(&self) -> DistributedSkipWeb<CompressedQuadtree<D>> {
        DistributedSkipWeb::builder(&self.web).spawn()
    }

    /// Inserts a point, returning the update's message cost (`None` for
    /// duplicates).
    pub fn insert(&mut self, p: PointKey<D>) -> Option<u64> {
        let mut meter = MessageMeter::new();
        self.web.insert(p, &mut meter).then(|| meter.messages())
    }

    /// Removes a point, returning the update's message cost (`None` when
    /// absent).
    pub fn remove(&mut self, p: &PointKey<D>) -> Option<u64> {
        let mut meter = MessageMeter::new();
        self.web.remove(p, &mut meter).then(|| meter.messages())
    }

    /// A simulated network with accounting applied.
    pub fn network(&self) -> SimNetwork {
        self.web.network()
    }

    /// The underlying generic skip-web.
    pub fn inner(&self) -> &SkipWeb<CompressedQuadtree<D>> {
        &self.web
    }

    /// Mutable access to the underlying generic skip-web (e.g. to drive
    /// deterministic [`SkipWeb::insert_with`] updates for parity studies).
    pub fn inner_mut(&mut self) -> &mut SkipWeb<CompressedQuadtree<D>> {
        &mut self.web
    }
}

/// Outcome of a box-reporting query in a quadtree skip-web.
#[derive(Debug, Clone)]
pub struct BoxOutcome<const D: usize> {
    /// Stored points inside the box, in Morton order.
    pub points: Vec<PointKey<D>>,
    /// Messages spent: descent + ascent to the box's covering cell + the
    /// output-sensitive subtree scan.
    pub messages: u64,
}

/// Outcome of a prefix query in a trie skip-web.
#[derive(Debug, Clone)]
pub struct PrefixOutcome {
    /// How many bytes of the query lie on the stored-set trie.
    pub matched_len: usize,
    /// Stored strings extending the full query prefix (empty when the query
    /// diverges before its end), sorted.
    pub matches: Vec<String>,
    /// Messages spent routing to the locus.
    pub messages: u64,
    /// Ranges touched per level, top first.
    pub per_level_touches: Vec<u32>,
}

/// A distributed skip-web over a compressed trie: string prefix search with
/// `O(log n)` messages even for `O(n)`-depth tries (§3.2).
///
/// # Example
///
/// ```
/// use skipweb_core::multidim::TrieSkipWeb;
///
/// let web = TrieSkipWeb::builder(vec![
///     "9780201demo".into(),
///     "9780201rust".into(),
///     "9781492next".into(),
/// ]).build();
/// let out = web.prefix_search(web.random_origin(1), "9780201");
/// assert_eq!(out.matches.len(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct TrieSkipWeb {
    web: SkipWeb<CompressedTrie>,
}

impl TrieSkipWeb {
    /// Starts building over a string set.
    pub fn builder(strings: Vec<String>) -> WrappedBuilder<CompressedTrie, Self> {
        WrappedBuilder {
            inner: SkipWeb::builder(strings),
            wrap: Self::from_web,
        }
    }

    /// Wraps a built generic web.
    pub fn from_web(web: SkipWeb<CompressedTrie>) -> Self {
        TrieSkipWeb { web }
    }

    /// The stored strings (sorted).
    pub fn strings(&self) -> &[String] {
        self.web.ground()
    }

    /// Number of stored strings.
    pub fn len(&self) -> usize {
        self.web.len()
    }

    /// Whether the web is empty.
    pub fn is_empty(&self) -> bool {
        self.web.is_empty()
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.web.hosts()
    }

    /// Deterministic pseudo-random origin item.
    pub fn random_origin(&self, seed: u64) -> usize {
        self.web.random_origin(seed)
    }

    /// Prefix search: routes to the trie locus of `prefix` and collects the
    /// stored strings extending it.
    pub fn prefix_search(&self, origin_item: usize, prefix: &str) -> PrefixOutcome {
        let mut meter = MessageMeter::new();
        let q = prefix.to_string();
        let outcome = self.web.query(origin_item, &q, &mut meter);
        let base = self.web.base();
        let matched_len = base.matched_len(prefix.as_bytes());
        let matches = if matched_len == prefix.len() {
            base.strings_with_prefix(prefix.as_bytes())
                .into_iter()
                .map(str::to_owned)
                .collect()
        } else {
            Vec::new()
        };
        PrefixOutcome {
            matched_len,
            matches,
            messages: outcome.messages,
            per_level_touches: outcome.per_level_touches,
        }
    }

    /// Inserts a string, returning the update's message cost (`None` for
    /// duplicates).
    pub fn insert(&mut self, s: String) -> Option<u64> {
        let mut meter = MessageMeter::new();
        self.web.insert(s, &mut meter).then(|| meter.messages())
    }

    /// Removes a string, returning the update's message cost (`None` when
    /// absent).
    pub fn remove(&mut self, s: &str) -> Option<u64> {
        let mut meter = MessageMeter::new();
        self.web
            .remove(&s.to_string(), &mut meter)
            .then(|| meter.messages())
    }

    /// Serves this web over the threaded actor runtime (see
    /// [`crate::engine`]): prefix requests — and live string
    /// inserts/removes — are routed with real concurrent message passing.
    pub fn serve(&self) -> DistributedSkipWeb<CompressedTrie> {
        DistributedSkipWeb::builder(&self.web).spawn()
    }

    /// A simulated network with accounting applied.
    pub fn network(&self) -> SimNetwork {
        self.web.network()
    }

    /// The underlying generic skip-web.
    pub fn inner(&self) -> &SkipWeb<CompressedTrie> {
        &self.web
    }

    /// Mutable access to the underlying generic skip-web (e.g. to drive
    /// deterministic [`SkipWeb::insert_with`] updates for parity studies).
    pub fn inner_mut(&mut self) -> &mut SkipWeb<CompressedTrie> {
        &mut self.web
    }
}

/// Outcome of a point-location query in a trapezoidal-map skip-web.
#[derive(Debug, Clone)]
pub struct TrapezoidOutcome {
    /// The trapezoid containing the query point.
    pub trapezoid: Trapezoid,
    /// Messages spent.
    pub messages: u64,
    /// Ranges touched per level, top first.
    pub per_level_touches: Vec<u32>,
}

/// A distributed skip-web over a trapezoidal map: planar point location in a
/// subdivision by non-crossing segments (§3.3), e.g. a campus or city map.
///
/// # Example
///
/// ```
/// use skipweb_core::multidim::TrapezoidSkipWeb;
/// use skipweb_structures::Segment;
///
/// let web = TrapezoidSkipWeb::builder(vec![
///     Segment::new((0, 0), (11, 1)),
///     Segment::new((2, 6), (15, 7)),
/// ]).build();
/// let out = web.locate_point(0, (5, 3));
/// assert!(out.trapezoid.contains((5, 3)));
/// ```
#[derive(Debug, Clone)]
pub struct TrapezoidSkipWeb {
    web: SkipWeb<TrapezoidalMap>,
}

impl TrapezoidSkipWeb {
    /// Starts building over a segment set.
    pub fn builder(segments: Vec<Segment>) -> WrappedBuilder<TrapezoidalMap, Self> {
        WrappedBuilder {
            inner: SkipWeb::builder(segments),
            wrap: Self::from_web,
        }
    }

    /// Wraps a built generic web.
    pub fn from_web(web: SkipWeb<TrapezoidalMap>) -> Self {
        TrapezoidSkipWeb { web }
    }

    /// The stored segments (sorted).
    pub fn segments(&self) -> &[Segment] {
        self.web.ground()
    }

    /// Number of stored segments.
    pub fn len(&self) -> usize {
        self.web.len()
    }

    /// Whether the web is empty.
    pub fn is_empty(&self) -> bool {
        self.web.is_empty()
    }

    /// Number of hosts.
    pub fn hosts(&self) -> usize {
        self.web.hosts()
    }

    /// Deterministic pseudo-random origin item.
    pub fn random_origin(&self, seed: u64) -> usize {
        self.web.random_origin(seed)
    }

    /// Point location: routes to the trapezoid containing `q`.
    pub fn locate_point(&self, origin_item: usize, q: (i64, i64)) -> TrapezoidOutcome {
        let mut meter = MessageMeter::new();
        let outcome = self.web.query(origin_item, &q, &mut meter);
        TrapezoidOutcome {
            trapezoid: self.web.base().range(outcome.locus),
            messages: outcome.messages,
            per_level_touches: outcome.per_level_touches,
        }
    }

    /// Inserts a segment, returning the update's message cost (`None` for
    /// duplicates). The paper amortizes trapezoid-map insertions against
    /// their output-sensitive fan-out (§4); the meter charges the conflict
    /// neighbourhoods the new segment's trapezoids replace.
    ///
    /// # Panics
    ///
    /// Panics if the segment violates general position against the stored
    /// set (crossings, shared endpoint x-coordinates).
    pub fn insert(&mut self, s: Segment) -> Option<u64> {
        let mut meter = MessageMeter::new();
        self.web.insert(s, &mut meter).then(|| meter.messages())
    }

    /// Removes a segment, returning the update's message cost (`None` when
    /// absent).
    pub fn remove(&mut self, s: &Segment) -> Option<u64> {
        let mut meter = MessageMeter::new();
        self.web.remove(s, &mut meter).then(|| meter.messages())
    }

    /// Serves this web over the threaded actor runtime (see
    /// [`crate::engine`]): planar point-location requests — and live
    /// segment inserts/removes, gated by the general-position admission
    /// check — are routed with real concurrent message passing.
    pub fn serve(&self) -> DistributedSkipWeb<TrapezoidalMap> {
        DistributedSkipWeb::builder(&self.web).spawn()
    }

    /// A simulated network with accounting applied.
    pub fn network(&self) -> SimNetwork {
        self.web.network()
    }

    /// The underlying generic skip-web.
    pub fn inner(&self) -> &SkipWeb<TrapezoidalMap> {
        &self.web
    }

    /// Mutable access to the underlying generic skip-web (e.g. to drive
    /// deterministic [`SkipWeb::insert_with`] updates for parity studies).
    pub fn inner_mut(&mut self) -> &mut SkipWeb<TrapezoidalMap> {
        &mut self.web
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    fn random_points(n: usize, seed: u64) -> Vec<PointKey<2>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| PointKey::new([rng.gen(), rng.gen()]))
            .collect()
    }

    #[test]
    fn quadtree_point_location_matches_oracle() {
        let pts = random_points(128, 1);
        let web = QuadtreeSkipWeb::builder(pts).seed(1).build();
        let mut rng = StdRng::seed_from_u64(2);
        for s in 0..40u64 {
            let q = PointKey::new([rng.gen(), rng.gen()]);
            let out = web.locate_point(web.random_origin(s), q);
            let oracle = web.inner().base().range(web.inner().base().locate(&q));
            assert_eq!(out.cell, oracle);
        }
    }

    #[test]
    fn quadtree_approx_nearest_is_reasonable() {
        // A grid of points: the approximate NN must land within the located
        // neighbourhood — for member queries it is exact.
        let pts: Vec<PointKey<2>> = (0..8)
            .flat_map(|x| (0..8).map(move |y| PointKey::new([x * 1000, y * 1000])))
            .collect();
        let web = QuadtreeSkipWeb::builder(pts.clone()).seed(3).build();
        for p in pts.iter().step_by(7) {
            let out = web.locate_point(0, *p);
            assert_eq!(out.approx_nearest, Some(*p), "member point is its own NN");
        }
    }

    #[test]
    fn quadtree_messages_logarithmic_even_for_deep_trees() {
        // A clustered set that makes the uncompressed quadtree very deep.
        let mut pts = vec![PointKey::new([0u32, 0]), PointKey::new([1, 1])];
        pts.extend((0..126).map(|i| PointKey::new([i * 33_000_000 + 7, i * 17_000_000 + 3])));
        let web = QuadtreeSkipWeb::builder(pts).seed(4).build();
        let out = web.locate_point(web.random_origin(1), PointKey::new([2, 2]));
        assert!(out.messages < 60, "messages {} not O(log n)", out.messages);
    }

    #[test]
    fn box_reporting_matches_filter_oracle() {
        let pts = random_points(300, 31);
        let web = QuadtreeSkipWeb::builder(pts.clone()).seed(31).build();
        let boxes: [([u32; 2], [u32; 2]); 3] = [
            ([0, 0], [u32::MAX / 2, u32::MAX / 2]),
            ([1 << 30, 1 << 29], [3 << 30, 3 << 29]),
            ([5, 5], [6, 6]),
        ];
        for (lo, hi) in boxes {
            let out = web.points_in_box(web.random_origin(1), lo, hi);
            let mut want: Vec<PointKey<2>> = web
                .points()
                .iter()
                .copied()
                .filter(|p| p.in_box(&lo, &hi))
                .collect();
            want.sort_by_key(PointKey::morton);
            assert_eq!(out.points, want, "box {lo:?}..{hi:?}");
        }
    }

    #[test]
    fn box_reporting_is_output_sensitive() {
        let pts = random_points(512, 33);
        let web = QuadtreeSkipWeb::builder(pts).seed(33).build();
        let tiny = web.points_in_box(0, [0, 0], [1000, 1000]);
        assert!(tiny.messages < 80, "empty box cost {}", tiny.messages);
        let huge = web.points_in_box(0, [0, 0], [u32::MAX, u32::MAX]);
        assert_eq!(huge.points.len(), 512);
    }

    #[test]
    fn trie_prefix_search_returns_all_matches() {
        let mut strings: Vec<String> = (0..60).map(|i| format!("978020{i:02}rest")).collect();
        strings.push("9799999zzz".into());
        let web = TrieSkipWeb::builder(strings).seed(5).build();
        let out = web.prefix_search(web.random_origin(1), "97802");
        assert_eq!(out.matches.len(), 60);
        assert_eq!(out.matched_len, 5);
        let none = web.prefix_search(web.random_origin(2), "000");
        assert!(none.matches.is_empty());
    }

    #[test]
    fn trie_updates_route_and_apply() {
        let strings: Vec<String> = (0..32).map(|i| format!("w{i:03}")).collect();
        let mut web = TrieSkipWeb::builder(strings).seed(6).build();
        assert!(web.insert("w999x".into()).is_some());
        let out = web.prefix_search(0, "w999");
        assert_eq!(out.matches, vec!["w999x".to_string()]);
        assert!(web.remove("w999x").is_some());
        assert!(web.prefix_search(0, "w999").matches.is_empty());
    }

    #[test]
    fn trapezoid_point_location_matches_oracle() {
        let segments: Vec<Segment> = (0..24)
            .map(|i| {
                let x = i * 100;
                Segment::new((x, i * 5), (x + 60, i * 5 + 3))
            })
            .collect();
        let web = TrapezoidSkipWeb::builder(segments).seed(7).build();
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..30 {
            let q = (rng.gen_range(-200..2600), rng.gen_range(-50..200));
            let out = web.locate_point(web.random_origin(3), q);
            let base = web.inner().base();
            let oracle = base.trapezoid(base.locate(&q));
            assert_eq!(out.trapezoid, oracle, "query {q:?}");
        }
    }

    #[test]
    fn trapezoid_updates_route_and_apply() {
        let segments: Vec<Segment> = (0..16)
            .map(|i| Segment::new((i * 100, i * 50), (i * 100 + 60, i * 50 + 3)))
            .collect();
        let mut web = TrapezoidSkipWeb::builder(segments).seed(11).build();
        let fresh = Segment::new((41, 2_000), (83, 2_001)); // above all bands
        let cost = web.insert(fresh).expect("new segment");
        assert!(cost > 0);
        assert!(web.insert(fresh).is_none(), "duplicate rejected");
        // The new segment's trapezoids are now locatable.
        let probe = (60i64, 2_005i64);
        let out = web.locate_point(0, probe);
        assert_eq!(out.trapezoid.bottom, Some(fresh));
        assert!(web.remove(&fresh).is_some());
        assert!(web.remove(&fresh).is_none());
        let out = web.locate_point(0, probe);
        assert_ne!(out.trapezoid.bottom, Some(fresh));
    }

    #[test]
    fn trapezoid_queries_touch_constant_per_level() {
        let segments: Vec<Segment> = (0..32)
            .map(|i| Segment::new((i * 50, (i % 7) * 9), (i * 50 + 30, (i % 7) * 9 + 2)))
            .collect();
        let web = TrapezoidSkipWeb::builder(segments).seed(9).build();
        let out = web.locate_point(0, (777, 33));
        let mean = out.per_level_touches.iter().map(|&t| t as f64).sum::<f64>()
            / out.per_level_touches.len() as f64;
        assert!(
            mean < 8.0,
            "per-level touches {mean} should be constant-ish"
        );
    }
}
