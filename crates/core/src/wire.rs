//! Byte-level wire format for engine envelopes: the [`WireCodec`] trait the
//! served structures implement, plus the [`FabricMsg`]/[`EngineReply`]
//! codecs the multi-process [`TcpTransport`](skipweb_net::TcpTransport)
//! rides on.
//!
//! The workspace is offline (no serde), so every layout is hand-rolled from
//! the little-endian primitives in [`skipweb_net::wire`]. A structure only
//! has to serialize its three leaf types (`Request`, `Answer`, `Item`); the
//! engine-level envelope around them is encoded once, here:
//!
//! ```text
//! EngineMsg   := at.level u16 · at.set u32 · at.range u32
//!              · client u64 · corr u64 · hops u32 · op
//! op          := 0 · gather u8 · Request                      (query)
//!              | 1 · kind · phase · op_id u64 · Item          (update)
//!              | 2 · of u32 · ranges (u32 len + u32 each) · Request  (scatter)
//! kind        := 0 · bits u64 (insert) | 1 (remove)
//! phase       := 0 (route) | 1 · cursor u64 · trail (u32 len + u32 each)
//! FabricMsg   := 0 · EngineMsg | 1 · count u32 · EngineMsg×count
//! EngineReply := corr u64 · hops u32 · body
//! body        := 0 · Answer | 1 · Answer · of u32
//!              | 2 · applied u8 | 3 (unavailable)
//! ```
//!
//! One deliberate omission: the topology snapshot `Arc` every in-flight
//! message carries is **not** serialized. Skip-webs are range-determined
//! (§2.1 of the paper): the ground set and build seed uniquely determine
//! the whole overlay, so every process of a deployment rebuilds an
//! identical topology locally and the fabric-message decoder re-attaches the
//! receiving process's own snapshot. Decoders never trust wire input:
//! malformed bytes yield `None`, not a panic.

use std::sync::Arc;

use skipweb_net::wire::{put_bool, put_u16, put_u32, put_u64, put_u8, WireReader};
use skipweb_net::HostId;
use skipweb_structures::traits::RangeId;

use crate::engine::{
    BatchMsg, EngineMsg, EngineOp, EngineReply, FabricMsg, GlobalRef, ReplyBody, Routable,
    Topology, UpdateKind, UpdateOp, UpdatePhase,
};

/// A [`Routable`] structure whose leaf types can cross process boundaries:
/// byte-level encode/decode for requests, answers, and items. Implemented
/// by all four shipped webs (1-D sorted list, quadtree, trie, trapezoidal
/// map); the engine derives the full envelope codec from these six methods.
///
/// Decoders serve wire input and must return `None` on malformed bytes
/// instead of panicking. Every implementation satisfies
/// `decode(encode(x)) == x` (pinned by proptests per structure).
pub trait WireCodec: Routable {
    /// Serializes a request.
    fn encode_request(req: &Self::Request, buf: &mut Vec<u8>);
    /// Deserializes a request.
    fn decode_request(r: &mut WireReader<'_>) -> Option<Self::Request>;
    /// Serializes an answer.
    fn encode_answer(ans: &Self::Answer, buf: &mut Vec<u8>);
    /// Deserializes an answer.
    fn decode_answer(r: &mut WireReader<'_>) -> Option<Self::Answer>;
    /// Serializes a ground item.
    fn encode_item(item: &Self::Item, buf: &mut Vec<u8>);
    /// Deserializes a ground item.
    fn decode_item(r: &mut WireReader<'_>) -> Option<Self::Item>;
}

fn encode_engine_msg<D: WireCodec>(msg: &EngineMsg<D>, buf: &mut Vec<u8>) {
    put_u16(buf, msg.at.level);
    put_u32(buf, msg.at.set);
    put_u32(buf, msg.at.range);
    put_u64(buf, msg.client.0);
    put_u64(buf, msg.corr);
    put_u32(buf, msg.hops);
    match &msg.op {
        EngineOp::Query { req, gather } => {
            put_u8(buf, 0);
            put_bool(buf, *gather);
            D::encode_request(req, buf);
        }
        EngineOp::Update(up) => {
            put_u8(buf, 1);
            match up.kind {
                UpdateKind::Insert { bits } => {
                    put_u8(buf, 0);
                    put_u64(buf, bits);
                }
                UpdateKind::Remove => put_u8(buf, 1),
            }
            match &up.phase {
                UpdatePhase::Route => put_u8(buf, 0),
                UpdatePhase::Repair { cursor, trail } => {
                    put_u8(buf, 1);
                    put_u64(buf, *cursor as u64);
                    put_u32(buf, trail.len() as u32);
                    for h in trail {
                        put_u32(buf, h.0);
                    }
                }
            }
            put_u64(buf, up.op_id);
            D::encode_item(&up.item, buf);
        }
        EngineOp::Scatter { req, ranges, of } => {
            put_u8(buf, 2);
            put_u32(buf, *of);
            put_u32(buf, ranges.len() as u32);
            for r in ranges {
                put_u32(buf, r.0);
            }
            D::encode_request(req, buf);
        }
    }
}

fn decode_engine_msg<D: WireCodec>(
    r: &mut WireReader<'_>,
    topo: &Arc<Topology<D>>,
) -> Option<EngineMsg<D>> {
    let at = GlobalRef {
        level: r.read_u16()?,
        set: r.read_u32()?,
        range: r.read_u32()?,
    };
    let client = skipweb_net::runtime::ClientId(r.read_u64()?);
    let corr = r.read_u64()?;
    let hops = r.read_u32()?;
    let op = match r.read_u8()? {
        0 => EngineOp::Query {
            gather: r.read_bool()?,
            req: D::decode_request(r)?,
        },
        1 => {
            let kind = match r.read_u8()? {
                0 => UpdateKind::Insert {
                    bits: r.read_u64()?,
                },
                1 => UpdateKind::Remove,
                _ => return None,
            };
            let phase = match r.read_u8()? {
                0 => UpdatePhase::Route,
                1 => {
                    let cursor = usize::try_from(r.read_u64()?).ok()?;
                    let len = r.read_u32()? as usize;
                    let mut trail = Vec::with_capacity(len.min(1024));
                    for _ in 0..len {
                        trail.push(HostId(r.read_u32()?));
                    }
                    UpdatePhase::Repair { cursor, trail }
                }
                _ => return None,
            };
            let op_id = r.read_u64()?;
            let item = D::decode_item(r)?;
            EngineOp::Update(UpdateOp {
                kind,
                item,
                phase,
                op_id,
            })
        }
        2 => {
            let of = r.read_u32()?;
            let len = r.read_u32()? as usize;
            let mut ranges = Vec::with_capacity(len.min(1024));
            for _ in 0..len {
                ranges.push(RangeId(r.read_u32()?));
            }
            EngineOp::Scatter {
                req: D::decode_request(r)?,
                ranges,
                of,
            }
        }
        _ => return None,
    };
    Some(EngineMsg {
        op,
        at,
        client,
        corr,
        hops,
        topo: Arc::clone(topo),
    })
}

/// Serializes a fabric envelope (without its topology snapshot — see the
/// [module docs](self)).
pub(crate) fn encode_fabric_msg<D: WireCodec>(msg: &FabricMsg<D>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(64);
    match msg {
        FabricMsg::One(m) => {
            put_u8(&mut buf, 0);
            encode_engine_msg(m, &mut buf);
        }
        FabricMsg::Batch(b) => {
            put_u8(&mut buf, 1);
            put_u32(&mut buf, b.ops.len() as u32);
            for m in &b.ops {
                encode_engine_msg(m, &mut buf);
            }
        }
    }
    buf
}

/// Deserializes a fabric envelope, re-attaching the receiving process's
/// own topology snapshot (identical on every process by
/// range-determinism). Returns `None` on malformed or trailing bytes.
pub(crate) fn decode_fabric_msg<D: WireCodec>(
    bytes: &[u8],
    topo: &Arc<Topology<D>>,
) -> Option<FabricMsg<D>> {
    let mut r = WireReader::new(bytes);
    let msg = match r.read_u8()? {
        0 => FabricMsg::One(decode_engine_msg(&mut r, topo)?),
        1 => {
            let count = r.read_u32()? as usize;
            let mut ops = Vec::with_capacity(count.min(1024));
            for _ in 0..count {
                ops.push(decode_engine_msg(&mut r, topo)?);
            }
            FabricMsg::Batch(BatchMsg { ops })
        }
        _ => return None,
    };
    r.is_empty().then_some(msg)
}

/// Serializes an engine reply.
pub(crate) fn encode_reply<D: WireCodec>(reply: &EngineReply<D>) -> Vec<u8> {
    let mut buf = Vec::with_capacity(32);
    put_u64(&mut buf, reply.corr);
    put_u32(&mut buf, reply.hops);
    match &reply.body {
        ReplyBody::Answer(a) => {
            put_u8(&mut buf, 0);
            D::encode_answer(a, &mut buf);
        }
        ReplyBody::Partial { answer, of } => {
            put_u8(&mut buf, 1);
            D::encode_answer(answer, &mut buf);
            put_u32(&mut buf, *of);
        }
        ReplyBody::Updated { applied } => {
            put_u8(&mut buf, 2);
            put_bool(&mut buf, *applied);
        }
        ReplyBody::Unavailable => put_u8(&mut buf, 3),
    }
    buf
}

/// Deserializes an engine reply. Returns `None` on malformed or trailing
/// bytes.
pub(crate) fn decode_reply<D: WireCodec>(bytes: &[u8]) -> Option<EngineReply<D>> {
    let mut r = WireReader::new(bytes);
    let corr = r.read_u64()?;
    let hops = r.read_u32()?;
    let body = match r.read_u8()? {
        0 => ReplyBody::Answer(D::decode_answer(&mut r)?),
        1 => {
            let answer = D::decode_answer(&mut r)?;
            ReplyBody::Partial {
                answer,
                of: r.read_u32()?,
            }
        }
        2 => ReplyBody::Updated {
            applied: r.read_bool()?,
        },
        3 => ReplyBody::Unavailable,
        _ => return None,
    };
    r.is_empty().then_some(EngineReply { corr, hops, body })
}

#[cfg(test)]
mod tests {
    use proptest::collection;
    use proptest::prelude::*;
    use skipweb_net::runtime::ClientId;
    use skipweb_structures::geometry::{Cell, MAX_DEPTH};
    use skipweb_structures::quadtree::{CompressedQuadtree, PointKey};
    use skipweb_structures::trapezoid::{Segment, Trapezoid, TrapezoidalMap};
    use skipweb_structures::trie::CompressedTrie;
    use skipweb_structures::SortedLinkedList;

    use super::*;
    use crate::engine::{build_topology, PlacementCtl};
    use crate::multidim::{PrefixAnswer, QuadtreeAnswer, QuadtreeRequest};
    use crate::skipweb::SkipWeb;

    /// A tiny but real topology snapshot for decode to re-attach; its
    /// contents are irrelevant to the codec (the wire never carries it).
    fn topo<D>(items: Vec<D::Item>) -> Arc<Topology<D>>
    where
        D: WireCodec + Send + Sync + 'static,
        D::Item: Ord,
    {
        let web = SkipWeb::<D>::builder(items).build();
        Arc::new(build_topology(&web, &PlacementCtl::new(2), 0))
    }

    /// Drives one envelope through encode → decode → re-encode and checks
    /// byte-for-byte stability (encode is deterministic, so byte equality
    /// of the re-encode is exactly `decode(encode(m)) == m` minus the
    /// unserialized topology `Arc`).
    fn assert_msg_roundtrips<D>(msg: &FabricMsg<D>, topo: &Arc<Topology<D>>)
    where
        D: WireCodec + Send + Sync + 'static,
    {
        let bytes = encode_fabric_msg(msg);
        let decoded = decode_fabric_msg::<D>(&bytes, topo).expect("well-formed envelope decodes");
        assert_eq!(
            encode_fabric_msg(&decoded),
            bytes,
            "decode must invert encode"
        );
        // Truncations of a valid envelope never decode (and never panic).
        for cut in [0, 1, bytes.len() / 2, bytes.len().saturating_sub(1)] {
            if cut < bytes.len() {
                assert!(decode_fabric_msg::<D>(&bytes[..cut], topo).is_none());
            }
        }
        // Trailing garbage is rejected too.
        let mut long = bytes.clone();
        long.push(0);
        assert!(decode_fabric_msg::<D>(&long, topo).is_none());
    }

    fn assert_reply_roundtrips<D>(reply: &EngineReply<D>)
    where
        D: WireCodec + Send + Sync + 'static,
    {
        let bytes = encode_reply(reply);
        let decoded = decode_reply::<D>(&bytes).expect("well-formed reply decodes");
        assert_eq!(encode_reply(&decoded), bytes, "decode must invert encode");
        assert_eq!(decoded.corr, reply.corr);
        assert_eq!(decoded.hops, reply.hops);
        assert_eq!(decoded.body.kind(), reply.body.kind());
        for cut in [0, bytes.len().saturating_sub(1)] {
            if cut < bytes.len() {
                assert!(decode_reply::<D>(&bytes[..cut]).is_none());
            }
        }
    }

    /// Builds the three op shapes around a request/item pair, exercising
    /// both update kinds and both update phases.
    fn msgs_around<D: WireCodec>(
        topo: &Arc<Topology<D>>,
        req: D::Request,
        item: D::Item,
        seed: u64,
    ) -> Vec<FabricMsg<D>> {
        let at = GlobalRef {
            level: (seed % 7) as u16,
            set: (seed % 11) as u32,
            range: (seed % 13) as u32,
        };
        let client = ClientId(seed);
        let mk = |op: EngineOp<D>| EngineMsg {
            op,
            at,
            client,
            corr: seed ^ 0xabcd,
            hops: (seed % 40) as u32,
            topo: Arc::clone(topo),
        };
        let query = mk(EngineOp::Query {
            req: req.clone(),
            gather: seed.is_multiple_of(2),
        });
        let insert = mk(EngineOp::Update(UpdateOp {
            kind: UpdateKind::Insert { bits: seed },
            item: item.clone(),
            phase: UpdatePhase::Route,
            op_id: seed.wrapping_mul(3),
        }));
        let remove = mk(EngineOp::Update(UpdateOp {
            kind: UpdateKind::Remove,
            item,
            phase: UpdatePhase::Repair {
                cursor: (seed % 5) as usize,
                trail: (0..seed % 6).map(|h| HostId(h as u32)).collect(),
            },
            op_id: seed.wrapping_mul(5),
        }));
        let scatter = mk(EngineOp::Scatter {
            req: req.clone(),
            ranges: (0..seed % 4).map(|r| RangeId(r as u32)).collect(),
            of: (seed % 9) as u32,
        });
        let batch = FabricMsg::Batch(BatchMsg {
            ops: vec![
                mk(EngineOp::Query { req, gather: false }),
                mk(EngineOp::Update(UpdateOp {
                    kind: UpdateKind::Insert { bits: !seed },
                    item: insert_item_clone(&insert),
                    phase: UpdatePhase::Route,
                    op_id: seed,
                })),
            ],
        });
        vec![
            FabricMsg::One(query),
            FabricMsg::One(insert),
            FabricMsg::One(remove),
            FabricMsg::One(scatter),
            batch,
        ]
    }

    fn insert_item_clone<D: WireCodec>(msg: &EngineMsg<D>) -> D::Item {
        match &msg.op {
            EngineOp::Update(up) => up.item.clone(),
            _ => unreachable!(),
        }
    }

    /// All four reply bodies, with `Partial { of }` edge values and
    /// `Unavailable`.
    fn replies_around<D: WireCodec>(answer: D::Answer, seed: u64) -> Vec<EngineReply<D>> {
        let mut replies = vec![
            EngineReply {
                corr: seed,
                hops: 1,
                body: ReplyBody::Answer(answer.clone()),
            },
            EngineReply {
                corr: seed ^ 1,
                hops: u32::MAX,
                body: ReplyBody::Updated {
                    applied: seed.is_multiple_of(2),
                },
            },
            EngineReply {
                corr: u64::MAX,
                hops: 0,
                body: ReplyBody::Unavailable,
            },
        ];
        for of in [0u32, 1, 2, u32::MAX] {
            replies.push(EngineReply {
                corr: seed.rotate_left(7),
                hops: (seed % 3) as u32,
                body: ReplyBody::Partial {
                    answer: answer.clone(),
                    of,
                },
            });
        }
        replies
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        /// 1-D web: `u64` keys and `Option<u64>` answers.
        #[test]
        fn onedim_envelopes_round_trip(key in any::<u64>(), seed in any::<u64>()) {
            let topo = topo::<SortedLinkedList>(vec![1, 2, 3]);
            for msg in msgs_around::<SortedLinkedList>(&topo, key, key ^ 7, seed) {
                assert_msg_roundtrips(&msg, &topo);
            }
            for reply in replies_around::<SortedLinkedList>(
                (seed.is_multiple_of(2)).then_some(key),
                seed,
            ) {
                assert_reply_roundtrips(&reply);
            }
        }

        /// Quadtree web: point and box requests, located and report
        /// answers.
        #[test]
        fn quadtree_envelopes_round_trip(
            coords in collection::vec((any::<u32>(), any::<u32>()), 2..6),
            code in any::<u64>(),
            depth in 0u32..33,
            seed in any::<u64>(),
        ) {
            let base: Vec<PointKey<2>> =
                vec![PointKey::new([1, 2]), PointKey::new([8, 3]), PointKey::new([5, 9])];
            let topo = topo::<CompressedQuadtree<2>>(base);
            let pts: Vec<PointKey<2>> =
                coords.iter().map(|&(x, y)| PointKey::new([x, y])).collect();
            let (x0, y0) = coords[0];
            let (x1, y1) = coords[1];
            let reqs = [
                QuadtreeRequest::Locate(pts[0]),
                QuadtreeRequest::InBox { lo: [x0, y0], hi: [x1, y1] },
            ];
            for req in reqs {
                for msg in msgs_around::<CompressedQuadtree<2>>(&topo, req, pts[1], seed) {
                    assert_msg_roundtrips(&msg, &topo);
                }
            }
            prop_assert!(depth <= MAX_DEPTH);
            let answers = [
                QuadtreeAnswer::Located {
                    cell: Cell::<2>::at_depth(code as u128, depth),
                    approx_nearest: (seed.is_multiple_of(2)).then_some(pts[0]),
                },
                QuadtreeAnswer::Points(pts.clone()),
                QuadtreeAnswer::Points(Vec::new()),
            ];
            for answer in answers {
                for reply in replies_around::<CompressedQuadtree<2>>(answer.clone(), seed) {
                    assert_reply_roundtrips(&reply);
                }
            }
        }

        /// Trie web: UTF-8 strings both ways, including the empty string.
        #[test]
        fn trie_envelopes_round_trip(
            words in collection::vec("[a-z]{0,12}", 1..5),
            matched_len in 0u32..64,
            seed in any::<u64>(),
        ) {
            let topo = topo::<CompressedTrie>(vec![
                "alpha".into(),
                "beta".into(),
                "gamma".into(),
            ]);
            for msg in msgs_around::<CompressedTrie>(
                &topo,
                words[0].clone(),
                words[words.len() - 1].clone(),
                seed,
            ) {
                assert_msg_roundtrips(&msg, &topo);
            }
            let mut matches = words.clone();
            matches.sort();
            let answer = PrefixAnswer {
                matched_len: matched_len as usize,
                matches,
            };
            for reply in replies_around::<CompressedTrie>(answer, seed) {
                assert_reply_roundtrips(&reply);
            }
        }

        /// Trapezoidal map: segments and optional-bounded trapezoids.
        #[test]
        fn trapezoid_envelopes_round_trip(
            q in (-1_000_000i64..1_000_000, -1_000_000i64..1_000_000),
            ends in collection::vec((-1_000i64..1_000, -1_000i64..1_000), 4..8),
            seed in any::<u64>(),
        ) {
            let topo = topo::<TrapezoidalMap>(vec![
                Segment::new((0, 0), (10, 1)),
                Segment::new((2, 5), (9, 6)),
            ]);
            let seg = |a: (i64, i64), mut b: (i64, i64)| {
                if a.0 == b.0 {
                    b.0 += 1; // general position: never vertical
                }
                Segment::new(a, b)
            };
            let item = seg(ends[0], ends[1]);
            for msg in msgs_around::<TrapezoidalMap>(&topo, q, item, seed) {
                assert_msg_roundtrips(&msg, &topo);
            }
            let answers = [
                Trapezoid {
                    top: Some(seg(ends[2], ends[3])),
                    bottom: Some(item),
                    left_x: Some(q.0),
                    right_x: Some(q.0 + 5),
                },
                Trapezoid {
                    top: None,
                    bottom: None,
                    left_x: None,
                    right_x: None,
                },
            ];
            for answer in answers {
                for reply in replies_around::<TrapezoidalMap>(answer, seed) {
                    assert_reply_roundtrips(&reply);
                }
            }
        }
    }

    /// A vertical or out-of-`i32` segment on the wire must decode to
    /// `None` instead of tripping `Segment::new`'s asserts.
    #[test]
    fn malformed_segment_bytes_never_panic() {
        let mut vertical = Vec::new();
        for v in [5i64, 0, 5, 9] {
            skipweb_net::wire::put_i64(&mut vertical, v);
        }
        let mut huge = Vec::new();
        for v in [i64::MIN, 0, 17, 9] {
            skipweb_net::wire::put_i64(&mut huge, v);
        }
        for bytes in [vertical, huge] {
            let mut reply = Vec::new();
            skipweb_net::wire::put_u64(&mut reply, 1); // corr
            skipweb_net::wire::put_u32(&mut reply, 0); // hops
            skipweb_net::wire::put_u8(&mut reply, 0); // Answer
            skipweb_net::wire::put_u8(&mut reply, 1); // top = Some(segment)
            reply.extend_from_slice(&bytes);
            skipweb_net::wire::put_u8(&mut reply, 0); // bottom = None
            skipweb_net::wire::put_u8(&mut reply, 0); // left_x = None
            skipweb_net::wire::put_u8(&mut reply, 0); // right_x = None
            assert!(decode_reply::<TrapezoidalMap>(&reply).is_none());
        }
    }
}
