//! The randomized level hierarchy of §2.3.
//!
//! Every ground item draws an infinite random bit string (here: 64 bits,
//! far more than the `⌈log n⌉` levels ever used). The level-`ℓ` set
//! containing an item is identified by the first `ℓ` bits of its string:
//! `S_b` for the `ℓ`-bit string `b`. Level 0 is the whole ground set; each
//! level splits every set into two expected halves, which is exactly the
//! sampling process the set-halving lemmas (§2.2) analyze.

use rand::Rng;

/// Number of random bits drawn per item — an effective "infinite" supply
/// for any practical ground-set size (`2^64` items would be needed to
/// exhaust it).
pub const MAX_LEVEL_BITS: u32 = 64;

/// The number of levels *above* level 0 for a ground set of `n` items:
/// `⌈log₂ n⌉`, so the expected top-level set size is `O(1)`.
///
/// # Example
///
/// ```
/// use skipweb_core::levels::level_count;
/// assert_eq!(level_count(0), 0);
/// assert_eq!(level_count(1), 0);
/// assert_eq!(level_count(2), 1);
/// assert_eq!(level_count(3), 2);
/// assert_eq!(level_count(1024), 10);
/// ```
pub fn level_count(n: usize) -> u32 {
    if n <= 1 {
        0
    } else {
        usize::BITS - (n - 1).leading_zeros()
    }
}

/// Draws the per-item membership bit strings.
pub fn draw_bits<R: Rng>(n: usize, rng: &mut R) -> Vec<u64> {
    (0..n).map(|_| rng.gen()).collect()
}

/// The level-`level` set key of an item with bit string `bits`: its first
/// `level` bits (level 0 maps everything to the single key 0).
///
/// # Panics
///
/// Panics if `level > MAX_LEVEL_BITS`.
///
/// # Example
///
/// ```
/// use skipweb_core::levels::set_key;
/// assert_eq!(set_key(0b1011, 0), 0);
/// assert_eq!(set_key(0b1011, 1), 0b1);
/// assert_eq!(set_key(0b1011, 3), 0b011);
/// ```
pub fn set_key(bits: u64, level: u32) -> u64 {
    assert!(level <= MAX_LEVEL_BITS, "level exceeds available bits");
    if level == 0 {
        0
    } else if level == MAX_LEVEL_BITS {
        bits
    } else {
        bits & ((1u64 << level) - 1)
    }
}

/// The key of the parent set (one level down the hierarchy, i.e. the set
/// this one was sampled from): drop the highest of the `level` bits.
///
/// # Panics
///
/// Panics if `level == 0` (level 0 has no parent).
pub fn parent_key(key: u64, level: u32) -> u64 {
    assert!(level > 0, "level 0 is the ground structure");
    set_key(key, level - 1)
}

/// Groups item indices by their level-`level` set key, returning
/// `(key, member item indices)` pairs sorted by key. Members keep their
/// input order.
pub fn group_by_key(item_bits: &[u64], level: u32) -> Vec<(u64, Vec<u32>)> {
    let mut groups: std::collections::BTreeMap<u64, Vec<u32>> = std::collections::BTreeMap::new();
    for (i, &bits) in item_bits.iter().enumerate() {
        groups
            .entry(set_key(bits, level))
            .or_default()
            .push(i as u32);
    }
    groups.into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn level_count_is_ceil_log2() {
        assert_eq!(level_count(2), 1);
        assert_eq!(level_count(4), 2);
        assert_eq!(level_count(5), 3);
        assert_eq!(level_count(65_536), 16);
        assert_eq!(level_count(65_537), 17);
    }

    #[test]
    fn set_keys_nest_under_parents() {
        let bits = 0b1101_0110u64;
        for level in 1..=8u32 {
            let key = set_key(bits, level);
            assert_eq!(parent_key(key, level), set_key(bits, level - 1));
        }
    }

    #[test]
    fn level_zero_is_a_single_group() {
        let mut rng = StdRng::seed_from_u64(3);
        let bits = draw_bits(100, &mut rng);
        let groups = group_by_key(&bits, 0);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].1.len(), 100);
    }

    #[test]
    fn groups_partition_the_items() {
        let mut rng = StdRng::seed_from_u64(4);
        let bits = draw_bits(257, &mut rng);
        for level in 0..=level_count(257) {
            let groups = group_by_key(&bits, level);
            let total: usize = groups.iter().map(|(_, m)| m.len()).sum();
            assert_eq!(total, 257, "level {level} must partition the set");
            // Each member's key matches its group.
            for (key, members) in &groups {
                for &m in members {
                    assert_eq!(set_key(bits[m as usize], level), *key);
                }
            }
        }
    }

    #[test]
    fn halving_is_roughly_balanced() {
        let mut rng = StdRng::seed_from_u64(5);
        let bits = draw_bits(4096, &mut rng);
        let groups = group_by_key(&bits, 1);
        assert_eq!(groups.len(), 2);
        let a = groups[0].1.len() as f64;
        // Chernoff: a fair split of 4096 stays within ±10% whp.
        assert!((a - 2048.0).abs() < 205.0, "unbalanced split: {a}");
    }

    #[test]
    fn full_width_key_is_identity() {
        assert_eq!(set_key(u64::MAX, MAX_LEVEL_BITS), u64::MAX);
    }

    #[test]
    #[should_panic(expected = "ground structure")]
    fn parent_of_level_zero_panics() {
        let _ = parent_key(0, 0);
    }
}
