// Fixture for the `wire-cap` rule: `decode_unguarded` allocates from a
// wire-read length with no MAX_FRAME check and must trip it;
// `decode_guarded` checks the cap just above the allocation and must not.
// MAX_FRAME is deliberately declared BELOW the unguarded decoder — the rule
// only searches the preceding lines, so the const itself must not count as
// a guard there.

pub fn decode_unguarded(bytes: &[u8]) -> Vec<u8> {
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    vec![0u8; len as usize]
}

pub const MAX_FRAME: u32 = 64 << 20;

pub fn decode_guarded(bytes: &[u8]) -> Option<Vec<u8>> {
    let len = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    if len > MAX_FRAME {
        return None;
    }
    Some(vec![0u8; len as usize])
}
