// Fixture for the `no-unwrap` rule: the two calls in `hot_path` must trip
// it; the test module below must NOT (test code may panic freely).

pub fn hot_path(input: Option<u32>) -> u32 {
    let a = input.unwrap();
    let b = input.expect("fixture");
    a + b
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_in_tests_is_fine() {
        assert_eq!(Some(1).unwrap(), 1);
    }
}
