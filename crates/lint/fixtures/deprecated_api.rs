// Fixture for the `deprecated-api` rule, used as TWO synthetic files by the
// self-test: one declaring a deprecated item, one calling it. The call must
// trip the rule; the declaration itself must not.

#[deprecated(note = "use new_route instead")]
pub fn old_route(x: u32) -> u32 {
    x
}

pub fn new_route(x: u32) -> u32 {
    x + 1
}
