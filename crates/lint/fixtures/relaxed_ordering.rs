// Fixture for the `relaxed-ordering` rule: the Relaxed store publishing a
// flag must trip it; the Release store must not.

use std::sync::atomic::{AtomicBool, Ordering};

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed);
}

pub fn publish_correctly(flag: &AtomicBool) {
    flag.store(true, Ordering::Release);
}
