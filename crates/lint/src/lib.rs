//! Workspace invariant lint: project rules `clippy` cannot express.
//!
//! Four rules, all lexical (the build environment is offline, so no `syn`):
//!
//! | rule | scope | what it enforces |
//! |------|-------|------------------|
//! | `no-unwrap` | non-test `crates/net`, `crates/core`, `crates/store` src | no `.unwrap()` / `.expect(` — fallible paths must return errors |
//! | `relaxed-ordering` | same | no `Ordering::Relaxed` on atomics; publish/ledger state needs `Acquire`/`Release`, metrics counters go on the allowlist |
//! | `wire-cap` | same | every allocation sized by a wire-read length (`vec![0u8; n as usize]`, `with_capacity(n as usize)`) must have a `MAX_FRAME` cap check in the preceding lines |
//! | `deprecated-api` | whole workspace | no internal use of items marked `#[deprecated]` |
//!
//! Known-and-justified violations live in the committed `lint.allow` at the
//! workspace root, one per line: `rule<TAB>path<TAB>needle` (the needle must
//! be a substring of the flagged line; `#` starts a comment). A violation
//! not covered by the allowlist makes `skipweb-lint` exit nonzero, so CI
//! blocks new ones while the committed debt stays visible and diffable.
//!
//! Lexical linting has known blind spots (macro-generated code, braces in
//! string literals confusing the `#[cfg(test)]` tracker) — rules here are
//! tuned to this workspace's idiom, and the fixtures under
//! `crates/lint/fixtures/` pin the behaviour for each rule.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

/// One rule violation at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule identifier (`no-unwrap`, `relaxed-ordering`, `wire-cap`,
    /// `deprecated-api`).
    pub rule: &'static str,
    /// Workspace-relative path, `/`-separated.
    pub path: String,
    /// 1-based line number.
    pub line_no: usize,
    /// The offending line, trimmed.
    pub line: String,
}

/// Result of a full lint run.
#[derive(Debug, Default)]
pub struct Outcome {
    /// Human-readable report lines, ready to print.
    pub lines: Vec<String>,
    /// Number of files scanned.
    pub files_checked: usize,
    /// All violations found, allowlisted or not.
    pub total: usize,
    /// How many of `total` were covered by the allowlist.
    pub allowlisted: usize,
    /// Violations NOT covered by the allowlist — these fail the run.
    pub new_violations: Vec<Violation>,
    /// Allowlist entries that matched nothing (candidates for deletion).
    pub stale_allow: Vec<String>,
}

/// Crates whose non-test sources must be panic-free and ordering-disciplined.
const STRICT_PREFIXES: &[&str] = &["crates/net/src/", "crates/core/src/", "crates/store/src/"];

/// How many preceding lines the `wire-cap` rule searches for a `MAX_FRAME`
/// guard before a length-sized allocation.
const WIRE_CAP_WINDOW: usize = 12;

/// Walks up from the current directory to the first `Cargo.toml` declaring
/// `[workspace]`.
pub fn workspace_root() -> Option<PathBuf> {
    let mut dir = std::env::current_dir().ok()?;
    loop {
        let manifest = dir.join("Cargo.toml");
        if let Ok(body) = std::fs::read_to_string(&manifest) {
            if body.contains("[workspace]") {
                return Some(dir);
            }
        }
        if !dir.pop() {
            return None;
        }
    }
}

/// Strips a trailing `//` comment, with just enough string-literal awareness
/// to not truncate `"http://…"`. Lines that are entirely a doc or line
/// comment become empty.
fn strip_line_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1, // skip the escaped char
            b'"' => in_str = !in_str,
            b'/' if !in_str && i + 1 < bytes.len() && bytes[i + 1] == b'/' => {
                return &line[..i];
            }
            _ => {}
        }
        i += 1;
    }
    line
}

fn count_braces(code: &str) -> i64 {
    let mut depth = 0i64;
    let mut in_str = false;
    let bytes = code.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'\\' if in_str => i += 1,
            b'"' => in_str = !in_str,
            b'{' if !in_str => depth += 1,
            b'}' if !in_str => depth -= 1,
            _ => {}
        }
        i += 1;
    }
    depth
}

/// Marks each line that belongs to a `#[cfg(test)]` item (the attribute
/// line, the item header, and everything until its closing brace).
fn test_line_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        let code = strip_line_comment(lines[i]);
        if code.trim_start().starts_with("#[cfg(test)]") {
            // Consume through the guarded item's braced body.
            let mut depth = 0i64;
            let mut opened = false;
            let mut j = i;
            while j < lines.len() {
                mask[j] = true;
                let body = strip_line_comment(lines[j]);
                let d = count_braces(body);
                if d != 0 || body.contains('{') {
                    opened = true;
                }
                depth += d;
                if opened && depth <= 0 {
                    break;
                }
                // A `#[cfg(test)]` on a brace-less item (e.g. `use`) ends at
                // the first `;` before any `{`.
                if !opened && body.contains(';') {
                    break;
                }
                j += 1;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

fn is_strict(path: &str) -> bool {
    STRICT_PREFIXES.iter().any(|p| path.starts_with(p))
}

/// Extracts the item name from a definition line like `pub fn foo(` /
/// `struct Bar {`.
fn item_name(code: &str) -> Option<String> {
    let toks: Vec<&str> = code
        .split(|c: char| c.is_whitespace() || "(<{;:".contains(c))
        .filter(|t| !t.is_empty())
        .collect();
    let keywords = ["fn", "struct", "enum", "trait", "type", "const", "mod"];
    for (i, tok) in toks.iter().enumerate() {
        if keywords.contains(tok) {
            return toks.get(i + 1).map(|n| n.to_string());
        }
    }
    None
}

fn contains_word(haystack: &str, needle: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = haystack[start..].find(needle) {
        let abs = start + pos;
        let before_ok = abs == 0
            || !haystack[..abs]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let end = abs + needle.len();
        let after_ok = end >= haystack.len()
            || !haystack[end..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = end;
    }
    false
}

/// Lints a set of workspace sources given as `(workspace-relative path,
/// contents)` pairs. Pure — the binary and the self-tests both call this.
pub fn lint_sources(files: &[(String, String)]) -> Vec<Violation> {
    let mut violations = Vec::new();

    // Pass 1: collect #[deprecated] item names and their definition sites.
    let mut deprecated: BTreeMap<String, String> = BTreeMap::new(); // name -> defining path
    for (path, body) in files {
        let lines: Vec<&str> = body.lines().collect();
        for (i, raw) in lines.iter().enumerate() {
            let code = strip_line_comment(raw);
            if !code.trim_start().starts_with("#[deprecated") {
                continue;
            }
            // The deprecated item's definition follows, possibly after more
            // attributes or the rest of a multi-line #[deprecated(...)].
            for follow in lines.iter().skip(i + 1).take(8) {
                let fcode = strip_line_comment(follow).trim_start();
                if fcode.is_empty() || fcode.starts_with("#[") || fcode.starts_with(')') {
                    continue;
                }
                if let Some(name) = item_name(fcode) {
                    deprecated.entry(name).or_insert_with(|| path.clone());
                }
                break;
            }
        }
    }

    // Pass 2: per-file line rules.
    for (path, body) in files {
        let lines: Vec<&str> = body.lines().collect();
        let in_test = test_line_mask(&lines);
        let strict = is_strict(path);
        // The wire-cap rule only makes sense where lengths are decoded from
        // untrusted bytes; elsewhere `with_capacity(n as usize)` is normal
        // arithmetic sizing.
        let decodes_wire = body.contains("WireReader")
            || body.contains("MAX_FRAME")
            || body.contains("from_le_bytes")
            || body.contains("from_be_bytes");
        let mut flag = |rule: &'static str, line_no: usize, line: &str| {
            violations.push(Violation {
                rule,
                path: path.clone(),
                line_no,
                line: line.trim().to_string(),
            });
        };
        for (i, raw) in lines.iter().enumerate() {
            if in_test[i] {
                continue;
            }
            let code = strip_line_comment(raw);
            if code.trim().is_empty() {
                continue;
            }
            if strict {
                if code.contains(".unwrap()") || code.contains(".expect(") {
                    flag("no-unwrap", i + 1, raw);
                }
                if code.contains("Ordering::Relaxed") {
                    flag("relaxed-ordering", i + 1, raw);
                }
                let allocates = decodes_wire
                    && (code.contains("vec![0u8;") || code.contains("with_capacity("))
                    && code.contains("as usize");
                if allocates {
                    let guarded = (i.saturating_sub(WIRE_CAP_WINDOW)..=i)
                        .any(|j| strip_line_comment(lines[j]).contains("MAX_FRAME"));
                    if !guarded {
                        flag("wire-cap", i + 1, raw);
                    }
                }
            }
            for (name, def_path) in &deprecated {
                if def_path == path {
                    continue; // uses inside the defining file are its own business
                }
                if code.trim_start().starts_with("#[deprecated") {
                    continue;
                }
                if contains_word(code, name) {
                    flag("deprecated-api", i + 1, raw);
                }
            }
        }
    }
    violations
}

/// One parsed `lint.allow` entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule the entry silences.
    pub rule: String,
    /// Workspace-relative path it applies to.
    pub path: String,
    /// Substring of the flagged line that must match.
    pub needle: String,
}

/// Parses `lint.allow` bodies: `rule<TAB>path<TAB>needle`, `#` comments.
pub fn parse_allowlist(body: &str) -> Vec<AllowEntry> {
    body.lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.trim_start().starts_with('#'))
        .filter_map(|l| {
            let mut parts = l.splitn(3, '\t');
            Some(AllowEntry {
                rule: parts.next()?.trim().to_string(),
                path: parts.next()?.trim().to_string(),
                needle: parts.next()?.to_string(),
            })
        })
        .collect()
}

/// Splits violations into (allowlisted, new) and reports allow entries that
/// matched nothing.
pub fn apply_allowlist(
    violations: Vec<Violation>,
    allow: &[AllowEntry],
) -> (Vec<Violation>, Vec<Violation>, Vec<AllowEntry>) {
    let mut matched = vec![false; allow.len()];
    let mut allowed = Vec::new();
    let mut fresh = Vec::new();
    for v in violations {
        let hit = allow.iter().enumerate().find(|(_, a)| {
            a.rule == v.rule && a.path == v.path && v.line.contains(a.needle.trim())
        });
        match hit {
            Some((i, _)) => {
                matched[i] = true;
                allowed.push(v);
            }
            None => fresh.push(v),
        }
    }
    let stale = allow
        .iter()
        .zip(&matched)
        .filter(|(_, m)| !**m)
        .map(|(a, _)| a.clone())
        .collect();
    (allowed, fresh, stale)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name == "target" || name == ".git" || name == "fixtures" {
                continue;
            }
            walk_rs(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

/// Collects the `(relative path, contents)` pairs [`lint_sources`] wants:
/// every `.rs` file under `crates/*/src` and the root `src/`, plus the
/// vendored stand-ins (for `#[deprecated]` definitions), excluding
/// `target/` and lint fixtures.
pub fn collect_sources(root: &Path) -> Vec<(String, String)> {
    let mut paths = Vec::new();
    for base in ["crates", "src", "vendor"] {
        walk_rs(&root.join(base), &mut paths);
    }
    let mut files = Vec::new();
    for path in paths {
        // Only src/ trees: integration tests and benches may unwrap freely.
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let in_src = rel.starts_with("src/") || rel.contains("/src/");
        if !in_src {
            continue;
        }
        if let Ok(body) = std::fs::read_to_string(&path) {
            files.push((rel, body));
        }
    }
    files
}

/// Full run: collect sources, lint, apply `lint.allow`, format a report.
pub fn run(root: &Path, list_all: bool) -> Outcome {
    let files = collect_sources(root);
    let violations = lint_sources(&files);
    let allow_body = std::fs::read_to_string(root.join("lint.allow")).unwrap_or_default();
    let allow = parse_allowlist(&allow_body);
    let total = violations.len();
    let (allowed, fresh, stale) = apply_allowlist(violations, &allow);

    let mut lines = Vec::new();
    if list_all {
        for v in &allowed {
            lines.push(format!(
                "[allowed] {}\t{}:{}\t{}",
                v.rule, v.path, v.line_no, v.line
            ));
        }
    }
    for v in &fresh {
        lines.push(format!("{}\t{}:{}\t{}", v.rule, v.path, v.line_no, v.line));
    }
    for a in &stale {
        lines.push(format!(
            "[stale allow] {}\t{}\t{}",
            a.rule, a.path, a.needle
        ));
    }
    Outcome {
        lines,
        files_checked: files.len(),
        total,
        allowlisted: allowed.len(),
        new_violations: fresh,
        stale_allow: stale
            .iter()
            .map(|a| format!("{}\t{}\t{}", a.rule, a.path, a.needle))
            .collect(),
    }
}
