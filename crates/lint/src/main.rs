//! `skipweb-lint`: enforce workspace invariants clippy cannot express.
//!
//! Run from anywhere inside the workspace:
//!
//! ```text
//! cargo run -p skipweb-lint            # lint the workspace, exit 1 on new violations
//! cargo run -p skipweb-lint -- --list  # print every violation incl. allowlisted
//! ```

use std::process::ExitCode;

fn main() -> ExitCode {
    let list_all = std::env::args().any(|a| a == "--list");
    let root = match skipweb_lint::workspace_root() {
        Some(root) => root,
        None => {
            eprintln!("skipweb-lint: could not locate the workspace root (no Cargo.toml with [workspace] above the current directory)");
            return ExitCode::from(2);
        }
    };
    let outcome = skipweb_lint::run(&root, list_all);
    for line in &outcome.lines {
        println!("{line}");
    }
    println!(
        "skipweb-lint: {} file(s) checked, {} violation(s) ({} allowlisted, {} new){}",
        outcome.files_checked,
        outcome.total,
        outcome.allowlisted,
        outcome.new_violations.len(),
        if outcome.stale_allow.is_empty() {
            String::new()
        } else {
            format!(", {} stale allowlist entr(ies)", outcome.stale_allow.len())
        },
    );
    if outcome.new_violations.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
