//! Self-tests pinning each lint rule against the committed fixtures.
//!
//! The fixtures are fed through [`skipweb_lint::lint_sources`] under
//! synthetic workspace-relative paths, so these tests exercise exactly the
//! code path the `skipweb-lint` binary runs — only the filesystem walk is
//! bypassed.

use skipweb_lint::{apply_allowlist, lint_sources, parse_allowlist, Violation};

const NO_UNWRAP: &str = include_str!("../fixtures/no_unwrap.rs");
const RELAXED: &str = include_str!("../fixtures/relaxed_ordering.rs");
const WIRE_CAP: &str = include_str!("../fixtures/wire_cap.rs");
const DEPRECATED: &str = include_str!("../fixtures/deprecated_api.rs");

fn lint_one(path: &str, body: &str) -> Vec<Violation> {
    lint_sources(&[(path.to_string(), body.to_string())])
}

fn by_rule<'a>(vs: &'a [Violation], rule: &str) -> Vec<&'a Violation> {
    vs.iter().filter(|v| v.rule == rule).collect()
}

#[test]
fn no_unwrap_flags_both_calls_but_not_test_module() {
    let vs = lint_one("crates/net/src/fixture.rs", NO_UNWRAP);
    let hits = by_rule(&vs, "no-unwrap");
    assert_eq!(hits.len(), 2, "one per .unwrap()/.expect( call: {vs:?}");
    assert!(hits[0].line.contains(".unwrap()"));
    assert!(hits[1].line.contains(".expect("));
    // The .unwrap() inside #[cfg(test)] mod tests must be masked out.
    let test_mod_line = NO_UNWRAP
        .lines()
        .position(|l| l.contains("mod tests"))
        .expect("fixture has a test module")
        + 1;
    assert!(
        hits.iter().all(|v| v.line_no < test_mod_line),
        "test-module unwrap leaked through the cfg(test) mask: {hits:?}"
    );
}

#[test]
fn no_unwrap_only_applies_to_strict_crates() {
    let vs = lint_one("crates/bench/src/fixture.rs", NO_UNWRAP);
    assert!(
        by_rule(&vs, "no-unwrap").is_empty(),
        "bench is not a strict crate: {vs:?}"
    );
}

#[test]
fn relaxed_ordering_flags_relaxed_store_only() {
    let vs = lint_one("crates/core/src/fixture.rs", RELAXED);
    let hits = by_rule(&vs, "relaxed-ordering");
    assert_eq!(hits.len(), 1, "exactly the Relaxed store: {vs:?}");
    assert!(hits[0].line.contains("Ordering::Relaxed"));
    assert!(
        !vs.iter().any(|v| v.line.contains("Ordering::Release")),
        "the Release store is correct and must not be flagged"
    );
}

#[test]
fn wire_cap_flags_unguarded_allocation_only() {
    let vs = lint_one("crates/store/src/fixture.rs", WIRE_CAP);
    let hits = by_rule(&vs, "wire-cap");
    assert_eq!(hits.len(), 1, "only the unguarded decoder: {vs:?}");
    let unguarded_fn = WIRE_CAP
        .lines()
        .position(|l| l.contains("fn decode_unguarded"))
        .expect("fixture defines decode_unguarded")
        + 1;
    let guarded_fn = WIRE_CAP
        .lines()
        .position(|l| l.contains("fn decode_guarded"))
        .expect("fixture defines decode_guarded")
        + 1;
    assert!(
        hits[0].line_no > unguarded_fn && hits[0].line_no < guarded_fn,
        "flagged line must be inside decode_unguarded: {hits:?}"
    );
}

#[test]
fn wire_cap_needs_a_wire_decoding_file() {
    // The same allocation pattern in a file that never decodes wire bytes is
    // ordinary arithmetic sizing and must not trip the rule.
    let body = "pub fn grow(n: u32) -> Vec<u8> {\n    vec![0u8; n as usize]\n}\n";
    let vs = lint_one("crates/core/src/fixture.rs", body);
    assert!(by_rule(&vs, "wire-cap").is_empty(), "{vs:?}");
}

#[test]
fn deprecated_api_flags_cross_file_use_only() {
    let caller = "pub fn route(x: u32) -> u32 {\n    old_route(x)\n}\n\
                  pub fn bold_router(x: u32) -> u32 {\n    x\n}\n";
    let files = vec![
        (
            "crates/core/src/old_api.rs".to_string(),
            DEPRECATED.to_string(),
        ),
        ("crates/bench/src/caller.rs".to_string(), caller.to_string()),
    ];
    let vs = lint_sources(&files);
    let hits = by_rule(&vs, "deprecated-api");
    assert_eq!(hits.len(), 1, "exactly the cross-file call: {vs:?}");
    assert_eq!(hits[0].path, "crates/bench/src/caller.rs");
    assert!(hits[0].line.contains("old_route(x)"));
    // `bold_router` contains `old_route` as a substring but not as a word.
    assert!(
        !hits.iter().any(|v| v.line.contains("bold_router")),
        "word-boundary check failed: {hits:?}"
    );
}

#[test]
fn allowlist_parses_tabs_and_skips_comments() {
    let body = "# comment line\n\
                \n\
                no-unwrap\tcrates/net/src/a.rs\t.expect(\"len checked\")\n\
                relaxed-ordering\tcrates/net/src/b.rs\tcounter.fetch_add\n";
    let entries = parse_allowlist(body);
    assert_eq!(entries.len(), 2);
    assert_eq!(entries[0].rule, "no-unwrap");
    assert_eq!(entries[0].path, "crates/net/src/a.rs");
    assert_eq!(entries[0].needle, ".expect(\"len checked\")");
}

#[test]
fn allowlist_splits_matched_fresh_and_stale() {
    let violations = vec![
        Violation {
            rule: "no-unwrap",
            path: "crates/net/src/a.rs".to_string(),
            line_no: 3,
            line: "let x = v.pop().expect(\"len checked\");".to_string(),
        },
        Violation {
            rule: "no-unwrap",
            path: "crates/net/src/a.rs".to_string(),
            line_no: 9,
            line: "let y = other.unwrap();".to_string(),
        },
    ];
    let allow = parse_allowlist(
        "no-unwrap\tcrates/net/src/a.rs\t.expect(\"len checked\")\n\
         no-unwrap\tcrates/net/src/gone.rs\tnever matches\n",
    );
    let (allowed, fresh, stale) = apply_allowlist(violations, &allow);
    assert_eq!(allowed.len(), 1, "the expect is allowlisted");
    assert_eq!(allowed[0].line_no, 3);
    assert_eq!(fresh.len(), 1, "the bare unwrap is a new violation");
    assert_eq!(fresh[0].line_no, 9);
    assert_eq!(stale.len(), 1, "the gone.rs entry matched nothing");
    assert_eq!(stale[0].path, "crates/net/src/gone.rs");
}

#[test]
fn committed_allowlist_is_clean_against_the_workspace() {
    // The real end-to-end run the binary performs: zero new violations and
    // zero stale entries against the committed lint.allow.
    let root = skipweb_lint::workspace_root().expect("test runs inside the workspace");
    let outcome = skipweb_lint::run(&root, false);
    assert!(
        outcome.new_violations.is_empty(),
        "new lint violations:\n{}",
        outcome.lines.join("\n")
    );
    assert!(
        outcome.stale_allow.is_empty(),
        "stale lint.allow entries:\n{}",
        outcome.stale_allow.join("\n")
    );
}
