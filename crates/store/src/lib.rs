#![warn(missing_docs)]

//! A durable key-value store fronting the 1-D distributed skip-web.
//!
//! [`Store`] exposes the five-call façade an application wants —
//! [`put`](Store::put), [`get`](Store::get), [`delete`](Store::delete),
//! [`scan`](Store::scan), [`flush`](Store::flush) — while keys live in a
//! [`DistributedSkipWeb`] over a [`SortedLinkedList`] and every update is
//! write-ahead logged before it becomes visible. The durability hook
//! ([`Durability`]) runs **under the engine's apply lock**, so log order
//! equals apply order and no query can observe an unlogged operation.
//!
//! # Durability model
//!
//! Replication (`k ≥ 2`) masks *crashes*: as long as one replica of each
//! range survives, the fabric keeps answering. The WAL masks *loss of the
//! whole fabric*: after every host dies — or the process cold-starts —
//! [`Store::recover`] (in place) or [`StoreBuilder::open`] (from scratch)
//! rebuilds the exact store from disk:
//!
//! * the key set **and each key's tower bits** come from the latest
//!   [`wal::Checkpoint`] plus replayed [`wal::WalRecord`]s, so
//!   [`SkipWebBuilder::bits`](skipweb_core::skipweb::SkipWebBuilder::bits)
//!   rebuilds the *identical* hierarchy, tower for tower — range
//!   determinism (§2.1 of the paper) means nothing else about the
//!   topology needs logging;
//! * the idempotence ledger survives replay, so a client resubmitting an
//!   operation from before the crash still gets exactly-once semantics;
//! * crashed hosts **rejoin live membership** under their original ids
//!   ([`DistributedSkipWeb::rejoin_host`]) instead of staying tombstoned.
//!
//! A put of an existing key never reaches the web's apply step (the
//! insert is a duplicate), so the store logs those as value-only
//! [`Upsert`](wal::WalRecord::Upsert) records on its own lane.

pub mod wal;

use parking_lot::Mutex;
use skipweb_core::engine::{
    DistributedSkipWeb, Durability, DurableKind, DurableOp, EngineClient, Timeouts,
};
use skipweb_core::skipweb::SkipWeb;
use skipweb_net::runtime::RuntimeError;
use skipweb_net::HostId;
use skipweb_structures::SortedLinkedList;
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::ops::RangeBounds;
use std::path::{Path, PathBuf};
use std::sync::Arc;
use std::time::{Duration, Instant};
use wal::{Checkpoint, WalRecord};

/// Anything a store call can fail with.
#[derive(Debug)]
pub enum StoreError {
    /// The distributed fabric failed the operation (host down, timeout,
    /// disconnect). The web and the log are unchanged for this operation.
    Fabric(RuntimeError),
    /// The write-ahead log or checkpoint failed. The in-memory fabric may
    /// be ahead of the log; treat the store as needing recovery.
    Io(io::Error),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Fabric(e) => write!(f, "fabric: {e}"),
            StoreError::Io(e) => write!(f, "wal: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<RuntimeError> for StoreError {
    fn from(e: RuntimeError) -> Self {
        StoreError::Fabric(e)
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

/// One stored key's durable companions: the tower bits that shape its
/// place in the hierarchy and the value bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Entry {
    bits: u64,
    value: Vec<u8>,
}

/// The store-side state shared with the durability hook. One lock guards
/// values, pending puts, the sequence counter, and the WAL writers, so
/// the hook (already serialized by the engine's state lock) and the
/// store-lane paths (upserts, flush, checkpoint) interleave atomically.
/// Lock order is engine-state → backing; nothing here ever calls back
/// into the fabric.
struct Backing {
    dir: PathBuf,
    /// The materialized view: key → (tower bits, value), maintained
    /// write-through by the durability hook for applied operations.
    values: BTreeMap<u64, Entry>,
    /// Values of in-flight puts, registered before the insert is
    /// submitted so the apply-side hook can log them.
    pending: HashMap<u64, Vec<u8>>,
    /// Global apply-order sequence number, shared by every lane.
    seq: u64,
    /// Records logged since the last checkpoint.
    since_checkpoint: u64,
    /// Open WAL appenders, one per lane file, created lazily.
    writers: HashMap<String, File>,
    /// First WAL write failure, surfaced on the next store call (the hook
    /// runs under the engine's apply lock and cannot return errors).
    wal_error: Option<io::Error>,
}

impl Backing {
    /// Appends `rec` to lane file `lane` (creating it on first use),
    /// recording rather than returning a failure.
    fn append(&mut self, lane: String, rec: &WalRecord) {
        let result = (|| -> io::Result<()> {
            let path = self.dir.join(&lane);
            let file = match self.writers.entry(lane) {
                std::collections::hash_map::Entry::Occupied(e) => e.into_mut(),
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(OpenOptions::new().append(true).create(true).open(path)?)
                }
            };
            wal::append_record(file, rec)
        })();
        if let Err(e) = result {
            self.wal_error.get_or_insert(e);
        }
        self.since_checkpoint += 1;
    }

    fn take_error(&mut self) -> Result<(), StoreError> {
        match self.wal_error.take() {
            Some(e) => Err(StoreError::Io(e)),
            None => Ok(()),
        }
    }
}

/// WAL lane file for host `host`'s applies.
fn host_lane(host: HostId) -> String {
    format!("wal-{:04}.log", host.index())
}

/// WAL lane file for store-side records (value-only upserts).
const STORE_LANE: &str = "wal-store.log";

/// The apply-path sink: invoked by the applying host under the engine's
/// state lock, before the new topology snapshot publishes.
struct StoreDurability {
    backing: Arc<Mutex<Backing>>,
}

impl Durability<SortedLinkedList> for StoreDurability {
    fn append(&self, host: HostId, ops: &[DurableOp<'_, SortedLinkedList>]) {
        let mut b = self.backing.lock();
        for op in ops {
            let key = *op.item;
            b.seq += 1;
            let seq = b.seq;
            let rec = match op.kind {
                DurableKind::Insert { bits } => {
                    // The put registered its value before submitting; a
                    // replayed log must not depend on that in-memory map,
                    // so the bytes ride in the record itself.
                    let value = b.pending.get(&key).cloned().unwrap_or_default();
                    if op.applied {
                        b.values.insert(
                            key,
                            Entry {
                                bits,
                                value: value.clone(),
                            },
                        );
                    }
                    WalRecord::Insert {
                        seq,
                        client: op.client.0,
                        op_id: op.op_id,
                        key,
                        bits,
                        applied: op.applied,
                        value,
                    }
                }
                DurableKind::Remove => {
                    if op.applied {
                        b.values.remove(&key);
                    }
                    WalRecord::Remove {
                        seq,
                        client: op.client.0,
                        op_id: op.op_id,
                        key,
                        applied: op.applied,
                    }
                }
            };
            b.append(host_lane(host), &rec);
        }
    }
}

/// What recovery found on disk and what it did with it.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// Dead hosts revived back into live membership.
    pub rejoined: usize,
    /// Keys restored straight from the checkpoint.
    pub checkpoint_ops: usize,
    /// Total WAL records found on disk (all lanes).
    pub wal_records: usize,
    /// Records replayed (`seq` past the checkpoint).
    pub replayed: usize,
    /// Records skipped as already covered by the checkpoint.
    pub skipped: usize,
    /// Wall-clock time of the whole recovery.
    pub duration: Duration,
}

/// Everything recovery derives from disk before touching the fabric.
struct DiskState {
    entries: BTreeMap<u64, Entry>,
    ledger: Vec<((skipweb_net::runtime::ClientId, u64), bool)>,
    seq: u64,
    checkpoint_ops: usize,
    wal_records: usize,
    replayed: usize,
    skipped: usize,
}

/// Reads the checkpoint and every WAL lane under `dir`, merges the lanes
/// by global sequence number, and replays records past the checkpoint.
fn load_disk_state(dir: &Path) -> io::Result<DiskState> {
    let ck = wal::read_checkpoint(&dir.join(CHECKPOINT_FILE))?.unwrap_or_default();
    let checkpoint_ops = ck.entries.len();
    let mut entries: BTreeMap<u64, Entry> = ck
        .entries
        .into_iter()
        .map(|(key, bits, value)| (key, Entry { bits, value }))
        .collect();
    let mut ledger: Vec<((skipweb_net::runtime::ClientId, u64), bool)> = ck
        .ledger
        .into_iter()
        .map(|(c, op, applied)| ((skipweb_net::runtime::ClientId(c), op), applied))
        .collect();

    let mut records = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("wal-") && name.ends_with(".log") {
            records.extend(wal::read_wal(&entry.path())?.records);
        }
    }
    // Lanes are individually ordered; the global order is by seq.
    records.sort_by_key(WalRecord::seq);
    let wal_records = records.len();
    let mut seq = ck.last_seq;
    let mut replayed = 0usize;
    let mut skipped = 0usize;
    for rec in records {
        if rec.seq() <= ck.last_seq {
            skipped += 1;
            continue;
        }
        replayed += 1;
        seq = seq.max(rec.seq());
        match rec {
            WalRecord::Insert {
                client,
                op_id,
                key,
                bits,
                applied,
                value,
                ..
            } => {
                ledger.push(((skipweb_net::runtime::ClientId(client), op_id), applied));
                if applied {
                    entries.insert(key, Entry { bits, value });
                }
            }
            WalRecord::Remove {
                client,
                op_id,
                key,
                applied,
                ..
            } => {
                ledger.push(((skipweb_net::runtime::ClientId(client), op_id), applied));
                if applied {
                    entries.remove(&key);
                }
            }
            WalRecord::Upsert { key, value, .. } => {
                // Upserts are only logged for keys already stored; a key
                // deleted by a racing remove stays deleted.
                if let Some(e) = entries.get_mut(&key) {
                    e.value = value;
                }
            }
        }
    }
    Ok(DiskState {
        entries,
        ledger,
        seq,
        checkpoint_ops,
        wal_records,
        replayed,
        skipped,
    })
}

/// Rebuilds the skip-web the disk state describes: keys in canonical
/// (ascending) order, each with its logged tower bits.
fn rebuild_web(
    entries: &BTreeMap<u64, Entry>,
    seed: u64,
    replication: usize,
) -> SkipWeb<SortedLinkedList> {
    let keys: Vec<u64> = entries.keys().copied().collect();
    let bits: Vec<u64> = entries.values().map(|e| e.bits).collect();
    let mut builder = SkipWeb::<SortedLinkedList>::builder(keys)
        .seed(seed)
        .bits(bits);
    if replication > 1 {
        builder = builder.replicate(replication);
    }
    builder.build()
}

/// Checkpoint file name under the store directory.
const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// Configures and opens a [`Store`]. `open` on a directory with existing
/// WAL/checkpoint files is a cold-start recovery; on an empty directory
/// it creates a fresh store.
#[derive(Debug, Clone)]
pub struct StoreBuilder {
    dir: PathBuf,
    hosts: usize,
    replication: usize,
    checkpoint_every: u64,
    timeouts: Timeouts,
    seed: u64,
}

impl StoreBuilder {
    /// A store rooted at `dir` (created if missing): 4 consolidated
    /// hosts, no replication, a checkpoint every 256 logged records.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        StoreBuilder {
            dir: dir.into(),
            hosts: 4,
            replication: 1,
            checkpoint_every: 256,
            timeouts: Timeouts::DEFAULT,
            seed: 42,
        }
    }

    /// Number of consolidated actor hosts serving the web.
    pub fn hosts(mut self, hosts: usize) -> Self {
        self.hosts = hosts;
        self
    }

    /// Replication factor `k` (1 = none): any `k - 1` hosts may crash
    /// without losing availability, orthogonally to the WAL.
    pub fn replicate(mut self, k: usize) -> Self {
        self.replication = k;
        self
    }

    /// Checkpoint after this many logged records (0 disables automatic
    /// checkpoints; [`Store::checkpoint`] still works).
    pub fn checkpoint_every(mut self, every: u64) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Wait-and-retry policy for the store's fabric clients.
    pub fn timeouts(mut self, timeouts: Timeouts) -> Self {
        self.timeouts = timeouts;
        self
    }

    /// Seed for the engine's level-bit generator.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Opens the store: recovers whatever state the directory holds (an
    /// empty directory recovers to an empty store), spawns the fabric
    /// with the recovered web and idempotence ledger, and installs the
    /// WAL hook.
    ///
    /// # Errors
    ///
    /// I/O errors reading or creating the directory, checkpoint, or logs.
    pub fn open(self) -> Result<Store, StoreError> {
        fs::create_dir_all(&self.dir)?;
        let disk = load_disk_state(&self.dir)?;
        let web = rebuild_web(&disk.entries, self.seed, self.replication);
        let backing = Arc::new(Mutex::new(Backing {
            dir: self.dir.clone(),
            values: disk.entries,
            pending: HashMap::new(),
            seq: disk.seq,
            since_checkpoint: 0,
            writers: HashMap::new(),
            wal_error: None,
        }));
        // The previous incarnation's op ids live on in the ledger; keep
        // the new client's ids past all of them so a fresh put can never
        // echo a recovered outcome.
        let corr_floor = disk
            .ledger
            .iter()
            .map(|((_, op_id), _)| op_id + 1)
            .max()
            .unwrap_or(0);
        // `capacity`, not `consolidated`: the host count must hold even
        // while the web is still empty (a fresh store grows into it).
        let fabric = DistributedSkipWeb::builder(&web)
            .capacity(self.hosts)
            .timeouts(self.timeouts)
            .durability(Arc::new(StoreDurability {
                backing: Arc::clone(&backing),
            }))
            .restore_ledger(disk.ledger)
            .spawn();
        let client = fabric.client();
        client.advance_corr(corr_floor);
        Ok(Store {
            fabric,
            client,
            backing,
            dir: self.dir,
            seed: self.seed,
            replication: self.replication,
            checkpoint_every: self.checkpoint_every,
        })
    }
}

/// A durable key-value store over the distributed 1-D skip-web. See the
/// [crate docs](crate) for the durability model.
pub struct Store {
    fabric: DistributedSkipWeb<SortedLinkedList>,
    client: EngineClient<SortedLinkedList>,
    backing: Arc<Mutex<Backing>>,
    dir: PathBuf,
    seed: u64,
    replication: usize,
    checkpoint_every: u64,
}

impl Store {
    /// Opens a store rooted at `dir` with default settings — shorthand
    /// for [`StoreBuilder::new`]`(dir).open()`.
    ///
    /// # Errors
    ///
    /// As [`StoreBuilder::open`].
    pub fn open(dir: impl Into<PathBuf>) -> Result<Store, StoreError> {
        StoreBuilder::new(dir).open()
    }

    /// Stores `value` under `key`, write-ahead logged before it becomes
    /// visible. Returns `true` when the key is new, `false` when an
    /// existing key's value was overwritten.
    ///
    /// # Errors
    ///
    /// [`StoreError::Fabric`] when the distributed insert fails (the log
    /// and the view are unchanged); [`StoreError::Io`] when the WAL
    /// write failed.
    pub fn put(&self, key: u64, value: Vec<u8>) -> Result<bool, StoreError> {
        self.backing.lock().pending.insert(key, value.clone());
        let result = self.fabric.insert(&self.client, key);
        let mut b = self.backing.lock();
        b.pending.remove(&key);
        let reply = match result {
            Ok(reply) => reply,
            Err(e) => {
                b.take_error()?;
                return Err(StoreError::Fabric(e));
            }
        };
        if !reply.applied {
            // The key was already in the web, so the insert never reached
            // the apply step: log the overwrite on the store lane.
            b.seq += 1;
            let rec = WalRecord::Upsert {
                seq: b.seq,
                key,
                value: value.clone(),
            };
            b.append(STORE_LANE.to_string(), &rec);
            if let Some(e) = b.values.get_mut(&key) {
                e.value = value;
            }
        }
        b.take_error()?;
        drop(b);
        self.maybe_checkpoint()?;
        Ok(reply.applied)
    }

    /// Looks `key` up, routing the membership query through the
    /// distributed web (an `O(log n)`-hop descent) and serving the bytes
    /// from the store's materialized view. Returns `None` for absent
    /// keys.
    ///
    /// # Errors
    ///
    /// [`StoreError::Fabric`] when the query cannot complete (e.g. every
    /// replica of the key's range is down).
    pub fn get(&self, key: u64) -> Result<Option<Vec<u8>>, StoreError> {
        if self.fabric.is_empty() {
            return Ok(None);
        }
        let reply = self.fabric.query(&self.client, 0, key)?;
        if reply.answer != Some(key) {
            return Ok(None);
        }
        Ok(self
            .backing
            .lock()
            .values
            .get(&key)
            .map(|e| e.value.clone()))
    }

    /// Deletes `key`, write-ahead logged. Returns `true` when the key
    /// existed.
    ///
    /// # Errors
    ///
    /// As [`put`](Self::put).
    pub fn delete(&self, key: u64) -> Result<bool, StoreError> {
        if self.fabric.is_empty() {
            // Nothing to remove, and an empty web has no host to route
            // the lookup through.
            return Ok(false);
        }
        let reply = match self.fabric.remove(&self.client, key) {
            Ok(reply) => reply,
            Err(e) => {
                self.backing.lock().take_error()?;
                return Err(StoreError::Fabric(e));
            }
        };
        self.backing.lock().take_error()?;
        self.maybe_checkpoint()?;
        Ok(reply.applied)
    }

    /// All `(key, value)` pairs with keys in `range`, ascending — served
    /// from the materialized view the durability hook maintains under the
    /// engine's apply lock.
    pub fn scan(&self, range: impl RangeBounds<u64>) -> Vec<(u64, Vec<u8>)> {
        self.backing
            .lock()
            .values
            .range(range)
            .map(|(k, e)| (*k, e.value.clone()))
            .collect()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.backing.lock().values.len()
    }

    /// Whether the store holds no keys.
    pub fn is_empty(&self) -> bool {
        self.backing.lock().values.is_empty()
    }

    /// Forces every WAL lane to stable storage (`fsync`).
    ///
    /// # Errors
    ///
    /// Propagates the first WAL error, including any deferred one from
    /// the apply-path hook.
    pub fn flush(&self) -> Result<(), StoreError> {
        let mut b = self.backing.lock();
        b.take_error()?;
        for file in b.writers.values_mut() {
            file.flush()?;
            file.sync_data()?;
        }
        Ok(())
    }

    /// Writes a full-state checkpoint, bounding future WAL replay. The
    /// snapshot and its `last_seq` are captured under one lock, so replay
    /// from it is always consistent; the ledger is fetched after, which
    /// can only make it *more* complete than `last_seq` requires.
    ///
    /// # Errors
    ///
    /// Propagates checkpoint I/O errors.
    pub fn checkpoint(&self) -> Result<(), StoreError> {
        let (entries, last_seq) = {
            let b = self.backing.lock();
            let entries: Vec<(u64, u64, Vec<u8>)> = b
                .values
                .iter()
                .map(|(k, e)| (*k, e.bits, e.value.clone()))
                .collect();
            (entries, b.seq)
        };
        let ledger = self
            .fabric
            .applied_ledger()
            .into_iter()
            .map(|((c, op), applied)| (c.0, op, applied))
            .collect();
        let ck = Checkpoint {
            last_seq,
            entries,
            ledger,
        };
        wal::write_checkpoint(&self.dir.join(CHECKPOINT_FILE), &ck)?;
        self.backing.lock().since_checkpoint = 0;
        Ok(())
    }

    fn maybe_checkpoint(&self) -> Result<(), StoreError> {
        if self.checkpoint_every > 0
            && self.backing.lock().since_checkpoint >= self.checkpoint_every
        {
            self.checkpoint()?;
        }
        Ok(())
    }

    /// Recovers the store from disk, in place: flushes the lanes, reads
    /// the checkpoint and WAL back, rebuilds the web tower-for-tower from
    /// the logged bits, restores the engine's state and idempotence
    /// ledger, revives every dead host under its original id, and heals
    /// the topology. After it returns the fabric answers again — even
    /// when **every** host had been killed — with a scan byte-identical
    /// to the pre-crash store.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; the fabric is left as it was on failure.
    pub fn recover(&self) -> Result<RecoveryReport, StoreError> {
        let start = Instant::now();
        self.flush()?;
        let disk = load_disk_state(&self.dir)?;
        let web = rebuild_web(&disk.entries, self.seed, self.replication);
        // Revive the dead hosts before publishing the restored topology:
        // after a total crash the placement needs at least one live host
        // to route to.
        let mut rejoined = 0;
        for host in self.fabric.health().dead {
            if self.fabric.rejoin_host(host) {
                rejoined += 1;
            }
        }
        self.fabric.restore(web, disk.ledger);
        {
            let mut b = self.backing.lock();
            b.values = disk.entries;
            b.seq = b.seq.max(disk.seq);
        }
        self.fabric.heal();
        Ok(RecoveryReport {
            rejoined,
            checkpoint_ops: disk.checkpoint_ops,
            wal_records: disk.wal_records,
            replayed: disk.replayed,
            skipped: disk.skipped,
            duration: start.elapsed(),
        })
    }

    /// The underlying fabric, for health checks and fault injection.
    pub fn fabric(&self) -> &DistributedSkipWeb<SortedLinkedList> {
        &self.fabric
    }

    /// The store's fabric client.
    pub fn client(&self) -> &EngineClient<SortedLinkedList> {
        &self.client
    }

    /// The directory holding the WAL lanes and checkpoint.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Stops the fabric's host threads. Does not flush; call
    /// [`flush`](Self::flush) first for a clean shutdown.
    pub fn shutdown(self) {
        self.fabric.shutdown();
    }
}
