//! The on-disk write-ahead log and checkpoint formats.
//!
//! Both reuse the network layer's little-endian primitives
//! ([`skipweb_net::wire`]) so the store adds exactly one new framing
//! concept: a CRC32 trailer. A WAL file is a sequence of frames
//!
//! ```text
//! [u32 len][payload bytes][u32 crc32(payload)]
//! ```
//!
//! with `len` capped at the wire codec's [`MAX_FRAME`] (64 MiB), and the
//! payload a tagged [`WalRecord`]. Appends are atomic-enough for the
//! failure model here — a crash mid-append leaves a *torn tail* (short
//! frame or CRC mismatch) that [`read_wal`] detects and drops, keeping
//! every record before it. The log is never truncated or rewritten;
//! checkpoints bound replay instead: a [`Checkpoint`] snapshots the full
//! key → (bits, value) map plus the idempotence ledger at `last_seq`, and
//! recovery replays only WAL records with `seq > last_seq`. Replay is
//! idempotent (set / remove by key), so a checkpoint that races a
//! concurrent writer is still safe as long as its `last_seq` is captured
//! together with the snapshot — which [`crate::Store::checkpoint`] does
//! under one lock.

use skipweb_net::wire::{self, WireReader, MAX_FRAME};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::Path;

/// IEEE CRC32 lookup table, built at compile time (the container has no
/// crc crate; the polynomial is eight lines of const eval).
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// IEEE CRC32 (the `zlib`/Ethernet polynomial) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xff) as usize];
    }
    !crc
}

/// One durable store operation, in global apply order (`seq` is strictly
/// increasing across *all* per-host WAL files, so recovery can merge them
/// by sorting).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WalRecord {
    /// A web insert that reached the apply step. Carries the tower `bits`
    /// so recovery rebuilds the identical hierarchy, the operation
    /// identity (`client`, `op_id`) so the idempotence ledger survives
    /// replay, and the value bytes the put carried. `applied = false`
    /// records a duplicate insert: logged for the ledger, no state change.
    Insert {
        /// Global apply-order sequence number.
        seq: u64,
        /// Submitting client id.
        client: u64,
        /// Client-scoped operation id (resubmits reuse it).
        op_id: u64,
        /// The key.
        key: u64,
        /// The tower's level bit string.
        bits: u64,
        /// Whether the web changed.
        applied: bool,
        /// The value bytes.
        value: Vec<u8>,
    },
    /// A web remove that reached the apply step.
    Remove {
        /// Global apply-order sequence number.
        seq: u64,
        /// Submitting client id.
        client: u64,
        /// Client-scoped operation id.
        op_id: u64,
        /// The key.
        key: u64,
        /// Whether the web changed (`false` for absent keys).
        applied: bool,
    },
    /// A value-only overwrite of a key already in the web. Puts on
    /// existing keys never reach the apply step (the insert is a
    /// duplicate), so the store logs the new bytes itself, on the store
    /// lane rather than an apply host's lane.
    Upsert {
        /// Global apply-order sequence number.
        seq: u64,
        /// The key.
        key: u64,
        /// The new value bytes.
        value: Vec<u8>,
    },
}

const TAG_INSERT: u8 = 1;
const TAG_REMOVE: u8 = 2;
const TAG_UPSERT: u8 = 3;

impl WalRecord {
    /// The record's global sequence number.
    pub fn seq(&self) -> u64 {
        match self {
            WalRecord::Insert { seq, .. }
            | WalRecord::Remove { seq, .. }
            | WalRecord::Upsert { seq, .. } => *seq,
        }
    }

    /// Appends the tagged payload encoding (no frame) to `buf`.
    pub fn encode(&self, buf: &mut Vec<u8>) {
        match self {
            WalRecord::Insert {
                seq,
                client,
                op_id,
                key,
                bits,
                applied,
                value,
            } => {
                wire::put_u8(buf, TAG_INSERT);
                wire::put_u64(buf, *seq);
                wire::put_u64(buf, *client);
                wire::put_u64(buf, *op_id);
                wire::put_u64(buf, *key);
                wire::put_u64(buf, *bits);
                wire::put_bool(buf, *applied);
                wire::put_bytes(buf, value);
            }
            WalRecord::Remove {
                seq,
                client,
                op_id,
                key,
                applied,
            } => {
                wire::put_u8(buf, TAG_REMOVE);
                wire::put_u64(buf, *seq);
                wire::put_u64(buf, *client);
                wire::put_u64(buf, *op_id);
                wire::put_u64(buf, *key);
                wire::put_bool(buf, *applied);
            }
            WalRecord::Upsert { seq, key, value } => {
                wire::put_u8(buf, TAG_UPSERT);
                wire::put_u64(buf, *seq);
                wire::put_u64(buf, *key);
                wire::put_bytes(buf, value);
            }
        }
    }

    /// Decodes one record from a full payload, rejecting trailing garbage.
    pub fn decode(payload: &[u8]) -> Option<WalRecord> {
        let mut r = WireReader::new(payload);
        let rec = match r.read_u8()? {
            TAG_INSERT => WalRecord::Insert {
                seq: r.read_u64()?,
                client: r.read_u64()?,
                op_id: r.read_u64()?,
                key: r.read_u64()?,
                bits: r.read_u64()?,
                applied: r.read_bool()?,
                value: r.read_bytes()?.to_vec(),
            },
            TAG_REMOVE => WalRecord::Remove {
                seq: r.read_u64()?,
                client: r.read_u64()?,
                op_id: r.read_u64()?,
                key: r.read_u64()?,
                applied: r.read_bool()?,
            },
            TAG_UPSERT => WalRecord::Upsert {
                seq: r.read_u64()?,
                key: r.read_u64()?,
                value: r.read_bytes()?.to_vec(),
            },
            _ => return None,
        };
        if r.is_empty() {
            Some(rec)
        } else {
            None
        }
    }
}

/// Appends one framed record to `w`.
///
/// # Errors
///
/// `InvalidInput` when the encoded record exceeds [`MAX_FRAME`] (a value
/// near the 64 MiB cap); otherwise propagates the underlying write error.
pub fn append_record(w: &mut impl Write, rec: &WalRecord) -> io::Result<()> {
    let mut payload = Vec::new();
    rec.encode(&mut payload);
    if payload.len() > MAX_FRAME as usize {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "WAL record of {} bytes exceeds the frame cap",
                payload.len()
            ),
        ));
    }
    // One write_all for the whole frame: a crash tears at most this frame.
    let mut frame = Vec::with_capacity(payload.len() + 8);
    frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    frame.extend_from_slice(&payload);
    frame.extend_from_slice(&crc32(&payload).to_le_bytes());
    w.write_all(&frame)
}

/// Why a WAL file's decoding stopped before its end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TornReason {
    /// Fewer bytes remain than the frame header + trailer demand — the
    /// classic crash-mid-append tail.
    TruncatedFrame,
    /// The payload's CRC32 does not match its trailer (torn or corrupted
    /// write).
    CrcMismatch,
    /// The frame header claims more than [`MAX_FRAME`] bytes — garbage,
    /// not a length.
    Oversized,
    /// The payload framed and checksummed correctly but is not a valid
    /// [`WalRecord`] encoding.
    Malformed,
}

/// How a WAL file ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalTail {
    /// Every byte decoded.
    Clean,
    /// Decoding stopped at `offset`; the bytes from there on were dropped.
    Torn {
        /// Byte offset of the first undecodable frame.
        offset: u64,
        /// What was wrong with it.
        reason: TornReason,
    },
}

/// The decoded contents of one WAL file.
#[derive(Debug)]
pub struct WalScan {
    /// Every cleanly framed record, in file order.
    pub records: Vec<WalRecord>,
    /// Whether the file ended cleanly or with a torn tail.
    pub tail: WalTail,
}

/// Reads a little-endian `u32` at `at`. The caller has already
/// length-checked `bytes`; going through a fixed array keeps the recovery
/// parser free of unwraps on slice conversions.
///
/// # Panics
///
/// Panics if fewer than 4 bytes remain at `at`.
fn le_u32(bytes: &[u8], at: usize) -> u32 {
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[at..at + 4]);
    u32::from_le_bytes(buf)
}

/// [`le_u32`]'s `u64` counterpart.
///
/// # Panics
///
/// Panics if fewer than 8 bytes remain at `at`.
fn le_u64(bytes: &[u8], at: usize) -> u64 {
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[at..at + 8]);
    u64::from_le_bytes(buf)
}

/// Reads and decodes one WAL file, tolerating a torn tail (records before
/// the tear are kept, everything from it on is dropped). A missing file is
/// an empty clean log.
///
/// # Errors
///
/// Propagates I/O errors other than the file not existing.
pub fn read_wal(path: &Path) -> io::Result<WalScan> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {}
        Err(e) => return Err(e),
    }
    let mut records = Vec::new();
    let mut at = 0usize;
    let tail = loop {
        if at == bytes.len() {
            break WalTail::Clean;
        }
        let torn = |reason| WalTail::Torn {
            offset: at as u64,
            reason,
        };
        if bytes.len() - at < 4 {
            break torn(TornReason::TruncatedFrame);
        }
        let len = le_u32(&bytes, at) as usize;
        if len > MAX_FRAME as usize {
            break torn(TornReason::Oversized);
        }
        if bytes.len() - at < 4 + len + 4 {
            break torn(TornReason::TruncatedFrame);
        }
        let payload = &bytes[at + 4..at + 4 + len];
        let stored = le_u32(&bytes, at + 4 + len);
        if crc32(payload) != stored {
            break torn(TornReason::CrcMismatch);
        }
        let Some(rec) = WalRecord::decode(payload) else {
            break torn(TornReason::Malformed);
        };
        records.push(rec);
        at += 8 + len;
    };
    Ok(WalScan { records, tail })
}

/// Magic prefix of a checkpoint file.
pub const CHECKPOINT_MAGIC: [u8; 4] = *b"SWCK";
/// Current checkpoint format version.
pub const CHECKPOINT_VERSION: u16 = 1;

/// A full-state snapshot bounding WAL replay: everything the store needs
/// to rebuild the web (tower for tower), its values, and the idempotence
/// ledger, as of global sequence number `last_seq`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Checkpoint {
    /// Replay skips WAL records with `seq <= last_seq`.
    pub last_seq: u64,
    /// `(key, tower bits, value)` for every stored key, ascending by key —
    /// exactly the canonical ground order
    /// [`SkipWebBuilder::bits`](skipweb_core::skipweb::SkipWebBuilder::bits)
    /// expects.
    pub entries: Vec<(u64, u64, Vec<u8>)>,
    /// The idempotence ledger: `(client, op id, applied)` in eviction
    /// order.
    pub ledger: Vec<(u64, u64, bool)>,
}

impl Checkpoint {
    fn encode_body(&self) -> Vec<u8> {
        let mut body = Vec::new();
        wire::put_u16(&mut body, CHECKPOINT_VERSION);
        wire::put_u64(&mut body, self.last_seq);
        wire::put_u32(&mut body, self.entries.len() as u32);
        for (key, bits, value) in &self.entries {
            wire::put_u64(&mut body, *key);
            wire::put_u64(&mut body, *bits);
            wire::put_bytes(&mut body, value);
        }
        wire::put_u32(&mut body, self.ledger.len() as u32);
        for (client, op_id, applied) in &self.ledger {
            wire::put_u64(&mut body, *client);
            wire::put_u64(&mut body, *op_id);
            wire::put_bool(&mut body, *applied);
        }
        body
    }

    fn decode_body(body: &[u8]) -> Option<Checkpoint> {
        let mut r = WireReader::new(body);
        if r.read_u16()? != CHECKPOINT_VERSION {
            return None;
        }
        let last_seq = r.read_u64()?;
        let n = r.read_u32()? as usize;
        let mut entries = Vec::with_capacity(n.min(1 << 20));
        for _ in 0..n {
            let key = r.read_u64()?;
            let bits = r.read_u64()?;
            let value = r.read_bytes()?.to_vec();
            entries.push((key, bits, value));
        }
        let m = r.read_u32()? as usize;
        let mut ledger = Vec::with_capacity(m.min(1 << 20));
        for _ in 0..m {
            let client = r.read_u64()?;
            let op_id = r.read_u64()?;
            let applied = r.read_bool()?;
            ledger.push((client, op_id, applied));
        }
        if r.is_empty() {
            Some(Checkpoint {
                last_seq,
                entries,
                ledger,
            })
        } else {
            None
        }
    }
}

/// Writes `ck` to `path` atomically: encode, write to a sibling temp file,
/// fsync, rename over the target. The body is checksummed whole, so a
/// half-written checkpoint (or a crash before the rename) is detected and
/// ignored by [`read_checkpoint`], falling back to the previous one.
///
/// # Errors
///
/// Propagates the underlying file-system errors.
pub fn write_checkpoint(path: &Path, ck: &Checkpoint) -> io::Result<()> {
    let body = ck.encode_body();
    let tmp = path.with_extension("tmp");
    {
        let mut f = OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(&CHECKPOINT_MAGIC)?;
        f.write_all(&(body.len() as u64).to_le_bytes())?;
        f.write_all(&body)?;
        f.write_all(&crc32(&body).to_le_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// Reads the checkpoint at `path`. Returns `Ok(None)` when the file is
/// missing **or corrupt in any way** (bad magic, short, CRC mismatch,
/// malformed body) — recovery then replays the WAL from the beginning, so
/// a bad checkpoint costs time, never data.
///
/// # Errors
///
/// Propagates I/O errors other than the file not existing.
pub fn read_checkpoint(path: &Path) -> io::Result<Option<Checkpoint>> {
    let mut bytes = Vec::new();
    match File::open(path) {
        Ok(mut f) => {
            f.read_to_end(&mut bytes)?;
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    if bytes.len() < 4 + 8 + 4 || bytes[..4] != CHECKPOINT_MAGIC {
        return Ok(None);
    }
    let len = le_u64(&bytes, 4) as usize;
    if bytes.len() != 4 + 8 + len + 4 {
        return Ok(None);
    }
    let body = &bytes[12..12 + len];
    let stored = le_u32(&bytes, 12 + len);
    if crc32(body) != stored {
        return Ok(None);
    }
    Ok(Checkpoint::decode_body(body))
}
