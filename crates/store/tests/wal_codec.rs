//! WAL record codec and file-format gates, in the style of the engine's
//! wire-codec tests: round-trip proptests plus adversarial torn-write,
//! truncated-tail, and CRC-mismatch rejection.

use proptest::collection;
use proptest::prelude::*;
use skipweb_store::wal::{
    self, append_record, crc32, read_checkpoint, read_wal, write_checkpoint, Checkpoint,
    TornReason, WalRecord, WalTail,
};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// A unique scratch directory per test (no tempfile crate in the
/// container; process id + counter keeps parallel runs apart).
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "skipweb-store-{}-{tag}-{}",
        std::process::id(),
        NEXT.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

/// Synthesizes one record of any of the three kinds from four drawn
/// words and a value (the vendored proptest stand-in has no `prop_map`,
/// so diversity comes from the drawn tuple instead of a composed
/// strategy).
fn record_from(kind: u64, a: u64, b: u64, c: u64, value: Vec<u8>) -> WalRecord {
    match kind % 3 {
        0 => WalRecord::Insert {
            seq: a,
            client: b,
            op_id: b ^ c,
            key: c,
            bits: a.rotate_left(17) ^ b,
            applied: kind.is_multiple_of(2),
            value,
        },
        1 => WalRecord::Remove {
            seq: a,
            client: b,
            op_id: b ^ c,
            key: c,
            applied: kind.is_multiple_of(2),
        },
        _ => WalRecord::Upsert {
            seq: a,
            key: c,
            value,
        },
    }
}

/// Drives one record through encode → decode and checks the payload
/// rejects truncation and trailing garbage, like the wire envelopes do.
fn assert_record_roundtrips(rec: &WalRecord) {
    let mut payload = Vec::new();
    rec.encode(&mut payload);
    let decoded = WalRecord::decode(&payload).expect("well-formed record decodes");
    assert_eq!(&decoded, rec, "decode must invert encode");
    for cut in [0, 1, payload.len() / 2, payload.len().saturating_sub(1)] {
        if cut < payload.len() {
            assert!(
                WalRecord::decode(&payload[..cut]).is_none(),
                "truncated payload must not decode"
            );
        }
    }
    let mut long = payload.clone();
    long.push(0);
    assert!(
        WalRecord::decode(&long).is_none(),
        "trailing garbage must be rejected"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn records_round_trip(
        draws in collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 1..8),
        value in collection::vec(any::<u8>(), 0..64),
    ) {
        for &(kind, a, b, c) in &draws {
            assert_record_roundtrips(&record_from(kind, a, b, c, value.clone()));
        }
    }

    #[test]
    fn wal_files_round_trip(
        draws in collection::vec((any::<u64>(), any::<u64>(), any::<u64>(), any::<u64>()), 0..16),
    ) {
        let recs: Vec<WalRecord> = draws
            .iter()
            .map(|&(kind, a, b, c)| record_from(kind, a, b, c, c.to_le_bytes().to_vec()))
            .collect();
        let dir = scratch("roundtrip");
        let path = dir.join("wal.log");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            for rec in &recs {
                append_record(&mut f, rec).unwrap();
            }
        }
        let scan = read_wal(&path).unwrap();
        prop_assert_eq!(scan.tail, WalTail::Clean);
        prop_assert_eq!(scan.records, recs);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoints_round_trip(
        last_seq in any::<u64>(),
        raw_entries in collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..16),
        raw_ledger in collection::vec((any::<u64>(), any::<u64>(), any::<bool>()), 0..16),
    ) {
        let entries: Vec<(u64, u64, Vec<u8>)> = raw_entries
            .into_iter()
            .map(|(key, bits, v)| (key, bits, v.to_le_bytes().to_vec()))
            .collect();
        let ledger: Vec<(u64, u64, bool)> = raw_ledger;
        let dir = scratch("ck");
        let path = dir.join("checkpoint.bin");
        let ck = Checkpoint { last_seq, entries, ledger };
        write_checkpoint(&path, &ck).unwrap();
        prop_assert_eq!(read_checkpoint(&path).unwrap(), Some(ck));
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Encodes `recs` into a single in-memory WAL byte stream.
fn wal_bytes(recs: &[WalRecord]) -> Vec<u8> {
    let mut buf = Vec::new();
    for rec in recs {
        append_record(&mut buf, rec).unwrap();
    }
    buf
}

fn sample_records() -> Vec<WalRecord> {
    vec![
        WalRecord::Insert {
            seq: 1,
            client: 0,
            op_id: 0,
            key: 10,
            bits: 0b1011,
            applied: true,
            value: b"ten".to_vec(),
        },
        WalRecord::Upsert {
            seq: 2,
            key: 10,
            value: b"ten again".to_vec(),
        },
        WalRecord::Remove {
            seq: 3,
            client: 0,
            op_id: 1,
            key: 10,
            applied: true,
        },
    ]
}

fn write_and_scan(tag: &str, bytes: &[u8]) -> wal::WalScan {
    let dir = scratch(tag);
    let path = dir.join("wal.log");
    std::fs::write(&path, bytes).unwrap();
    let scan = read_wal(&path).unwrap();
    std::fs::remove_dir_all(&dir).ok();
    scan
}

#[test]
fn torn_write_keeps_the_records_before_the_tear() {
    let recs = sample_records();
    let clean = wal_bytes(&recs);
    // Every strict prefix that cuts into the last frame keeps exactly the
    // first two records and reports the tear at the last frame's offset.
    let second_frame_end = wal_bytes(&recs[..2]).len();
    for cut in second_frame_end + 1..clean.len() {
        let scan = write_and_scan("torn", &clean[..cut]);
        assert_eq!(scan.records, recs[..2], "cut at {cut}");
        assert_eq!(
            scan.tail,
            WalTail::Torn {
                offset: second_frame_end as u64,
                reason: TornReason::TruncatedFrame,
            },
            "cut at {cut}"
        );
    }
}

#[test]
fn truncated_header_is_a_torn_tail_not_an_error() {
    let recs = sample_records();
    let clean = wal_bytes(&recs);
    let second_frame_end = wal_bytes(&recs[..2]).len();
    // Fewer than 4 header bytes of the third frame remain. (Zero extra
    // bytes is a clean end at a frame boundary, covered above.)
    for extra in 1..4 {
        let scan = write_and_scan("hdr", &clean[..second_frame_end + extra]);
        assert_eq!(scan.records, recs[..2]);
        assert!(matches!(
            scan.tail,
            WalTail::Torn {
                reason: TornReason::TruncatedFrame,
                ..
            }
        ));
    }
}

#[test]
fn crc_mismatch_drops_the_frame_and_everything_after() {
    let recs = sample_records();
    let mut bytes = wal_bytes(&recs);
    // Flip one payload byte inside the second frame.
    let first_end = wal_bytes(&recs[..1]).len();
    bytes[first_end + 6] ^= 0xff;
    let scan = write_and_scan("crc", &bytes);
    assert_eq!(scan.records, recs[..1]);
    assert_eq!(
        scan.tail,
        WalTail::Torn {
            offset: first_end as u64,
            reason: TornReason::CrcMismatch,
        }
    );
}

#[test]
fn oversized_length_header_is_rejected_as_garbage() {
    let recs = sample_records();
    let mut bytes = wal_bytes(&recs[..1]);
    // Append a frame whose header claims more than the 64 MiB cap.
    bytes.extend_from_slice(&u32::MAX.to_le_bytes());
    bytes.extend_from_slice(b"junk");
    let scan = write_and_scan("oversize", &bytes);
    assert_eq!(scan.records, recs[..1]);
    assert!(matches!(
        scan.tail,
        WalTail::Torn {
            reason: TornReason::Oversized,
            ..
        }
    ));
}

#[test]
fn checksummed_but_malformed_payload_is_rejected() {
    let recs = sample_records();
    let mut bytes = wal_bytes(&recs[..1]);
    // A frame with a valid CRC over a payload that is not a record
    // (unknown tag 0xEE).
    let payload = [0xEEu8, 1, 2, 3];
    bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&crc32(&payload).to_le_bytes());
    let scan = write_and_scan("malformed", &bytes);
    assert_eq!(scan.records, recs[..1]);
    assert!(matches!(
        scan.tail,
        WalTail::Torn {
            reason: TornReason::Malformed,
            ..
        }
    ));
}

#[test]
fn missing_wal_reads_as_empty_and_clean() {
    let dir = scratch("missing");
    let scan = read_wal(&dir.join("nope.log")).unwrap();
    assert!(scan.records.is_empty());
    assert_eq!(scan.tail, WalTail::Clean);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_checkpoint_reads_as_none_never_an_error() {
    let dir = scratch("badck");
    let path = dir.join("checkpoint.bin");
    let good = Checkpoint {
        last_seq: 9,
        entries: vec![(1, 2, b"v".to_vec())],
        ledger: vec![(0, 0, true)],
    };
    write_checkpoint(&path, &good).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    // Bad magic.
    let mut bad = bytes.clone();
    bad[0] ^= 0xff;
    std::fs::write(&path, &bad).unwrap();
    assert_eq!(read_checkpoint(&path).unwrap(), None);
    // Truncated body.
    std::fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();
    assert_eq!(read_checkpoint(&path).unwrap(), None);
    // Flipped body byte (CRC mismatch).
    let mut bad = bytes.clone();
    bad[14] ^= 0xff;
    std::fs::write(&path, &bad).unwrap();
    assert_eq!(read_checkpoint(&path).unwrap(), None);
    // The intact bytes still decode.
    std::fs::write(&path, &bytes).unwrap();
    assert_eq!(read_checkpoint(&path).unwrap(), Some(good));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn oversized_record_append_errors_instead_of_corrupting_the_log() {
    let rec = WalRecord::Upsert {
        seq: 1,
        key: 0,
        value: vec![0u8; (64 << 20) + 1],
    };
    let mut sink = Vec::new();
    let err = append_record(&mut sink, &rec).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
    assert!(sink.is_empty(), "nothing may reach the log on failure");
}
