//! Adapters exposing skip-webs through the baselines' shared
//! [`OrderedDictionary`] interface, so Table 1 sweeps all methods uniformly.

use skipweb_baselines::OrderedDictionary;
use skipweb_core::onedim::OneDimSkipWeb;
use skipweb_net::sim::{MessageMeter, SimNetwork};

/// A 1-D skip-web behind the Table 1 harness interface.
///
/// # Example
///
/// ```
/// use skipweb_baselines::OrderedDictionary;
/// use skipweb_bench::adapters::SkipWebDict;
/// use skipweb_net::MessageMeter;
///
/// let d = SkipWebDict::owner_hosted((0..100).map(|i| i * 2).collect(), 1);
/// let mut meter = MessageMeter::new();
/// assert_eq!(d.nearest(0, 33, &mut meter), 32);
/// ```
pub struct SkipWebDict {
    web: OneDimSkipWeb,
    name: &'static str,
}

impl SkipWebDict {
    /// Owner-hosted skip-web (`H = n`) — Table 1's "skip-webs" row.
    pub fn owner_hosted(keys: Vec<u64>, seed: u64) -> Self {
        SkipWebDict {
            web: OneDimSkipWeb::builder(keys).seed(seed).build(),
            name: "skip-web",
        }
    }

    /// Bucketed skip-web with per-host memory `memory` — Table 1's
    /// "bucket skip-webs" row.
    pub fn bucketed(keys: Vec<u64>, memory: usize, seed: u64) -> Self {
        SkipWebDict {
            web: OneDimSkipWeb::builder(keys)
                .seed(seed)
                .bucketed(memory)
                .build(),
            name: "bucket-skip-web",
        }
    }

    /// The wrapped web.
    pub fn web(&self) -> &OneDimSkipWeb {
        &self.web
    }
}

impl OrderedDictionary for SkipWebDict {
    fn name(&self) -> &'static str {
        self.name
    }

    fn len(&self) -> usize {
        self.web.len()
    }

    fn hosts(&self) -> usize {
        self.web.hosts()
    }

    fn nearest(&self, origin: usize, q: u64, meter: &mut MessageMeter) -> u64 {
        // Origins are host indices in the shared interface; map into the
        // item space (owner-hosted: identical; bucketed: any item whose
        // tower starts at that block).
        let origin_item = origin % self.web.len().max(1);
        let outcome = self.web.inner().query(origin_item, &q, meter);
        let locus = {
            use skipweb_structures::traits::RangeDetermined;
            self.web.inner().base().range(outcome.locus)
        };
        use skipweb_structures::linked_list::SortedLinkedList;
        let base: &SortedLinkedList = self.web.inner().base();
        crate::adapters::nearest_in(&locus, q)
            .unwrap_or_else(|| base.nearest_key(q).expect("nonempty dictionary"))
    }

    fn insert(&mut self, key: u64, meter: &mut MessageMeter) -> bool {
        self.web.inner_mut().insert(key, meter)
    }

    fn remove(&mut self, key: u64, meter: &mut MessageMeter) -> bool {
        self.web.inner_mut().remove(&key, meter)
    }

    fn account(&self, net: &mut SimNetwork) {
        self.web.account(net)
    }
}

/// Nearest key within a located level-0 interval (the local answer rule).
fn nearest_in(locus: &skipweb_structures::KeyInterval, q: u64) -> Option<u64> {
    use skipweb_structures::interval::Endpoint;
    match (locus.lo(), locus.hi()) {
        (Endpoint::Key(x), Endpoint::Key(y)) => Some(if q <= x {
            x
        } else if q >= y {
            y
        } else if q - x <= y - q {
            x
        } else {
            y
        }),
        (Endpoint::NegInf, Endpoint::Key(y)) => Some(y),
        (Endpoint::Key(x), Endpoint::PosInf) => Some(x),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipweb_baselines::common::oracle_nearest;

    #[test]
    fn adapter_answers_match_oracle() {
        let keys: Vec<u64> = (0..256).map(|i| i * 7).collect();
        let d = SkipWebDict::owner_hosted(keys.clone(), 3);
        for s in 0..100u64 {
            let q = (s * 131) % 2000;
            let mut meter = MessageMeter::new();
            assert_eq!(
                d.nearest(d.random_origin(s), q, &mut meter),
                oracle_nearest(&keys, q).unwrap()
            );
        }
    }

    #[test]
    fn adapter_updates_work() {
        let mut d = SkipWebDict::bucketed((0..128).map(|i| i * 10).collect(), 32, 4);
        let mut meter = MessageMeter::new();
        assert!(d.insert(55, &mut meter));
        assert!(!d.insert(55, &mut meter));
        let mut m2 = MessageMeter::new();
        assert_eq!(d.nearest(0, 54, &mut m2), 55);
        assert!(d.remove(55, &mut m2));
    }

    #[test]
    fn names_distinguish_variants() {
        let a = SkipWebDict::owner_hosted(vec![1, 2], 1);
        let b = SkipWebDict::bucketed(vec![1, 2], 8, 1);
        assert_ne!(a.name(), b.name());
        assert!(b.hosts() >= 1);
    }
}
