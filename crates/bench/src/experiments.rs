//! Experiment runners: one per table/figure/lemma/theorem of the paper.
//!
//! Each runner returns a [`Table`] (TSV-renderable); `EXPERIMENTS.md`
//! records the measured outputs next to the paper's claims.

use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;

use skipweb_baselines::{
    BucketSkipGraph, Chord, DeterministicSkipNet, FamilyTree, NonSkipGraph, OrderedDictionary,
    SkipGraph, SkipList,
};
use skipweb_core::multidim::{QuadtreeSkipWeb, TrapezoidSkipWeb, TrieSkipWeb};
use skipweb_core::onedim::OneDimSkipWeb;
use skipweb_net::sim::MessageMeter;
use skipweb_net::SeriesStats;
use skipweb_structures::properties::measure_halving;
use skipweb_structures::quadtree::CompressedQuadtree;
use skipweb_structures::trapezoid::TrapezoidalMap;
use skipweb_structures::trie::CompressedTrie;
use skipweb_structures::SortedLinkedList;

use crate::adapters::SkipWebDict;
use crate::workloads;

/// A rendered experiment result.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment title (paper artifact it reproduces).
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Row cells, stringified.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    fn push(&mut self, row: Vec<String>) {
        debug_assert_eq!(row.len(), self.header.len());
        self.rows.push(row);
    }

    /// Renders the table in the `BENCH_*.json` artifact schema committed at
    /// the repo root and uploaded by the bench-report CI job.
    pub fn to_json(&self, experiment: &str) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        fn arr(cells: &[String]) -> String {
            let quoted: Vec<String> = cells.iter().map(|c| format!("\"{}\"", esc(c))).collect();
            format!("[{}]", quoted.join(", "))
        }
        let rows: Vec<String> = self
            .rows
            .iter()
            .map(|r| format!("    {}", arr(r)))
            .collect();
        format!(
            "{{\n  \"experiment\": \"{}\",\n  \"title\": \"{}\",\n  \"header\": {},\n  \"rows\": [\n{}\n  ]\n}}\n",
            esc(experiment),
            esc(&self.title),
            arr(&self.header),
            rows.join(",\n")
        )
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# {}", self.title)?;
        writeln!(f, "{}", self.header.join("\t"))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join("\t"))?;
        }
        Ok(())
    }
}

fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// The per-method measurement batch shared by Table 1 and the sweeps:
/// `queries` nearest-neighbour queries plus `updates` insert/remove pairs.
fn measure_dict(
    dict: &mut dyn OrderedDictionary,
    queries: usize,
    updates: usize,
    seed: u64,
) -> (u64, f64, f64, SeriesStats, SeriesStats) {
    // Updates can add hosts (bucket splits, skip-web growth), so size the
    // network past the current host count before absorbing update meters.
    let mut net = skipweb_net::SimNetwork::new(dict.hosts() + 64 * updates + 64);
    dict.account(&mut net);
    let qs = workloads::query_keys(queries, seed);
    for (i, &q) in qs.iter().enumerate() {
        let mut meter = MessageMeter::new();
        let origin = dict.random_origin(seed ^ i as u64);
        let _ = dict.nearest(origin, q, &mut meter);
        net.absorb_query(&meter);
    }
    // Updates: insert odd keys (stored keys are even), then remove them.
    let fresh: Vec<u64> = workloads::query_keys(updates, seed ^ 0x5EED)
        .iter()
        .map(|k| k | 1)
        .collect();
    for &k in &fresh {
        let mut meter = MessageMeter::new();
        dict.insert(k, &mut meter);
        net.absorb_update(&meter);
    }
    for &k in &fresh {
        let mut meter = MessageMeter::new();
        dict.remove(k, &mut meter);
        net.absorb_update(&meter);
    }
    let report = net.metrics();
    (
        report.max_memory,
        report.mean_memory,
        report.max_congestion,
        report.query_messages,
        report.update_messages,
    )
}

/// **Table 1** — the seven-method cost comparison: `H`, `M`, `C(n)`,
/// `Q(n)`, `U(n)` for every row of the paper's table.
pub fn table1(sizes: &[usize], queries: usize, updates: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Table 1: 1-D nearest-neighbour structures (measured)",
        &[
            "method", "n", "H", "M_max", "M_mean", "C_max", "Q_mean", "Q_p95", "U_mean", "U_p95",
        ],
    );
    for &n in sizes {
        // Even keys so updates can use odd ones.
        let keys: Vec<u64> = workloads::uniform_keys(n, seed)
            .into_iter()
            .map(|k| k * 2)
            .collect();
        let log_n = (usize::BITS - n.leading_zeros()) as usize;
        let mut methods: Vec<Box<dyn OrderedDictionary>> = vec![
            Box::new(SkipGraph::new(keys.clone(), seed)),
            Box::new(NonSkipGraph::new(keys.clone(), seed)),
            Box::new(FamilyTree::new(keys.clone())),
            Box::new(DeterministicSkipNet::new(keys.clone())),
            Box::new(BucketSkipGraph::new(keys.clone(), (n / log_n).max(2), seed)),
            Box::new(SkipWebDict::owner_hosted(keys.clone(), seed)),
            Box::new(SkipWebDict::bucketed(keys.clone(), 4 * log_n, seed)),
        ];
        for dict in &mut methods {
            let (m_max, m_mean, c_max, q, u) = measure_dict(dict.as_mut(), queries, updates, seed);
            t.push(vec![
                dict.name().to_string(),
                n.to_string(),
                dict.hosts().to_string(),
                m_max.to_string(),
                f2(m_mean),
                f2(c_max),
                f2(q.mean),
                q.p95.to_string(),
                f2(u.mean),
                u.p95.to_string(),
            ]);
        }
    }
    t
}

/// **Figure 1** — the classic skip list: expected `O(log n)` search and
/// `O(n)` space, level populations halving.
pub fn fig1(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Figure 1: skip list search cost and space",
        &[
            "n",
            "levels",
            "total_nodes",
            "nodes_per_key",
            "steps_mean",
            "steps_p95",
        ],
    );
    for &n in sizes {
        let keys = workloads::uniform_keys(n, seed);
        let sl = SkipList::new(keys, seed);
        let qs = workloads::query_keys(400, seed);
        let steps: Vec<u64> = qs.iter().map(|&q| sl.nearest_counted(q).1).collect();
        let stats = SeriesStats::from_samples(&steps);
        t.push(vec![
            n.to_string(),
            sl.levels().to_string(),
            sl.total_nodes().to_string(),
            f2(sl.total_nodes() as f64 / n as f64),
            f2(stats.mean),
            stats.p95.to_string(),
        ]);
    }
    t
}

/// **Figure 2** — the 1-D skip-web hierarchy: halving levels, per-host
/// storage, and query messages for owner-hosted vs bucketed placement.
pub fn fig2(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Figure 2: one-dimensional skip-web structure",
        &[
            "n",
            "levels",
            "level1_split",
            "M_max_owner",
            "Q_owner_mean",
            "Q_bucket_mean",
            "per_level_touches",
            "H_bucket",
        ],
    );
    for &n in sizes {
        let keys = workloads::uniform_keys(n, seed);
        let log_n = (usize::BITS - n.leading_zeros()) as usize;
        let owner = OneDimSkipWeb::builder(keys.clone()).seed(seed).build();
        let bucket = OneDimSkipWeb::builder(keys)
            .seed(seed)
            .bucketed(4 * log_n)
            .build();
        let qs = workloads::query_keys(200, seed);
        let mut q_owner = Vec::new();
        let mut q_bucket = Vec::new();
        let mut touches = 0f64;
        let mut touch_count = 0f64;
        for (i, &q) in qs.iter().enumerate() {
            let o = owner.nearest(owner.random_origin(i as u64), q);
            touches += o.per_level_touches.iter().map(|&x| x as f64).sum::<f64>();
            touch_count += o.per_level_touches.len() as f64;
            q_owner.push(o.messages);
            q_bucket.push(bucket.nearest(bucket.random_origin(i as u64), q).messages);
        }
        let split = owner.level_set_sizes(1);
        let split_str = if split.len() == 2 {
            format!("{}/{}", split[0], split[1])
        } else {
            format!("{split:?}")
        };
        t.push(vec![
            n.to_string(),
            (owner.top_level() + 1).to_string(),
            split_str,
            owner.network().max_memory().to_string(),
            f2(SeriesStats::from_samples(&q_owner).mean),
            f2(SeriesStats::from_samples(&q_bucket).mean),
            f2(touches / touch_count),
            bucket.hosts().to_string(),
        ]);
    }
    t
}

/// **Figure 3 / Lemma 3** — quadtree set-halving: the conflict list of the
/// half-sample cell containing a random point stays `O(1)` as `n` grows,
/// and quadtree skip-web point location stays `O(log n)` messages.
pub fn fig3(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Figure 3: quadtree set-halving and point location",
        &[
            "n",
            "distribution",
            "conflicts_mean",
            "conflicts_max",
            "descent_walk_mean",
            "Q_messages_mean",
        ],
    );
    for &n in sizes {
        for (dist, pts) in [
            ("uniform", workloads::uniform_points(n, seed)),
            ("clustered", workloads::clustered_points(n, 16, seed)),
        ] {
            let queries = workloads::query_points(200, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let stats = measure_halving::<CompressedQuadtree<2>, _>(&pts, &queries, &mut rng);
            let web = QuadtreeSkipWeb::builder(pts).seed(seed).build();
            let msgs: Vec<u64> = queries
                .iter()
                .take(100)
                .enumerate()
                .map(|(i, q)| web.locate_point(web.random_origin(i as u64), *q).messages)
                .collect();
            t.push(vec![
                n.to_string(),
                dist.to_string(),
                f2(stats.mean_conflicts),
                stats.max_conflicts.to_string(),
                f2(stats.mean_descent_walk),
                f2(SeriesStats::from_samples(&msgs).mean),
            ]);
        }
    }
    t
}

/// **Figure 4 / Lemma 5** — trapezoidal maps: half-sample conflict lists
/// stay `O(1)` (the `1 + a + 2b + 3c` identity is property-tested), and
/// trapezoid skip-web point location stays `O(log n)` messages.
pub fn fig4(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Figure 4: trapezoidal-map set-halving and point location",
        &[
            "n",
            "trapezoids",
            "conflicts_mean",
            "conflicts_max",
            "Q_messages_mean",
            "Q_messages_p95",
        ],
    );
    for &n in sizes {
        let segments = workloads::disjoint_segments(n, seed);
        let queries = workloads::trapezoid_queries(n, 100, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = measure_halving::<TrapezoidalMap, _>(&segments, &queries, &mut rng);
        let web = TrapezoidSkipWeb::builder(segments.clone())
            .seed(seed)
            .build();
        let msgs: Vec<u64> = queries
            .iter()
            .take(60)
            .enumerate()
            .map(|(i, q)| web.locate_point(web.random_origin(i as u64), *q).messages)
            .collect();
        use skipweb_structures::traits::RangeDetermined;
        let map = TrapezoidalMap::build(segments);
        let s = SeriesStats::from_samples(&msgs);
        t.push(vec![
            n.to_string(),
            map.num_trapezoids().to_string(),
            f2(stats.mean_conflicts),
            stats.max_conflicts.to_string(),
            f2(s.mean),
            s.p95.to_string(),
        ]);
    }
    t
}

/// **Lemma 1** — sorted-list set-halving: `E[|C(Q,S)|]` flat in `n`
/// (≤ 9 with closed intervals; the paper's `2k−1` form gives ≤ 7).
pub fn lemma1(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Lemma 1: 1-D set-halving conflict lists",
        &["n", "conflicts_mean", "conflicts_max", "descent_walk_mean"],
    );
    for &n in sizes {
        let keys = workloads::uniform_keys(n, seed);
        let queries = workloads::query_keys(500, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        let stats = measure_halving::<SortedLinkedList, _>(&keys, &queries, &mut rng);
        t.push(vec![
            n.to_string(),
            f2(stats.mean_conflicts),
            stats.max_conflicts.to_string(),
            f2(stats.mean_descent_walk),
        ]);
    }
    t
}

/// **Lemma 4** — trie set-halving: conflict lists flat in `n` for fixed
/// alphabets.
pub fn lemma4(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Lemma 4: trie set-halving conflict lists",
        &[
            "n",
            "corpus",
            "conflicts_mean",
            "conflicts_max",
            "descent_walk_mean",
        ],
    );
    for &n in sizes {
        for (corpus, items) in [
            ("random", workloads::random_strings(n, seed)),
            ("isbn", workloads::isbn_strings(n, seed)),
        ] {
            let queries = workloads::query_strings(300, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let stats = measure_halving::<CompressedTrie, _>(&items, &queries, &mut rng);
            t.push(vec![
                n.to_string(),
                corpus.to_string(),
                f2(stats.mean_conflicts),
                stats.max_conflicts.to_string(),
                f2(stats.mean_descent_walk),
            ]);
        }
    }
    t
}

/// **Theorem 2** — skip-web query complexity across all four
/// instantiations: `O(log n)` generally, `O(log n / log log n)` for 1-D
/// bucketed, with `O(log n)` memory.
pub fn thm2(sizes: &[usize], trap_cap: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Theorem 2: skip-web query complexity by instantiation",
        &["structure", "n", "H", "Q_mean", "Q_p95", "M_max"],
    );
    for &n in sizes {
        // 1-D owner-hosted and bucketed.
        let keys = workloads::uniform_keys(n, seed);
        let log_n = (usize::BITS - n.leading_zeros()) as usize;
        let qs = workloads::query_keys(150, seed);
        let owner = OneDimSkipWeb::builder(keys.clone()).seed(seed).build();
        let bucket = OneDimSkipWeb::builder(keys)
            .seed(seed)
            .bucketed(4 * log_n)
            .build();
        for (name, web) in [("1d-owner", &owner), ("1d-bucket", &bucket)] {
            let msgs: Vec<u64> = qs
                .iter()
                .enumerate()
                .map(|(i, &q)| web.nearest(web.random_origin(i as u64), q).messages)
                .collect();
            let s = SeriesStats::from_samples(&msgs);
            t.push(vec![
                name.to_string(),
                n.to_string(),
                web.hosts().to_string(),
                f2(s.mean),
                s.p95.to_string(),
                web.network().max_memory().to_string(),
            ]);
        }
        // Quadtree.
        let pts = workloads::uniform_points(n, seed);
        let qweb = QuadtreeSkipWeb::builder(pts).seed(seed).build();
        let qpts = workloads::query_points(150, seed);
        let msgs: Vec<u64> = qpts
            .iter()
            .enumerate()
            .map(|(i, q)| qweb.locate_point(qweb.random_origin(i as u64), *q).messages)
            .collect();
        let s = SeriesStats::from_samples(&msgs);
        t.push(vec![
            "quadtree".into(),
            n.to_string(),
            qweb.hosts().to_string(),
            f2(s.mean),
            s.p95.to_string(),
            qweb.network().max_memory().to_string(),
        ]);
        // Trie.
        let strings = workloads::random_strings(n, seed);
        let tweb = TrieSkipWeb::builder(strings).seed(seed).build();
        let tqs = workloads::query_strings(150, seed);
        let msgs: Vec<u64> = tqs
            .iter()
            .enumerate()
            .map(|(i, q)| tweb.prefix_search(tweb.random_origin(i as u64), q).messages)
            .collect();
        let s = SeriesStats::from_samples(&msgs);
        t.push(vec![
            "trie".into(),
            n.to_string(),
            tweb.hosts().to_string(),
            f2(s.mean),
            s.p95.to_string(),
            tweb.network().max_memory().to_string(),
        ]);
        // Trapezoidal map (capped: conflict enumeration is quadratic).
        if n <= trap_cap {
            let segments = workloads::disjoint_segments(n, seed);
            let zweb = TrapezoidSkipWeb::builder(segments).seed(seed).build();
            let zqs = workloads::trapezoid_queries(n, 60, seed);
            let msgs: Vec<u64> = zqs
                .iter()
                .enumerate()
                .map(|(i, q)| zweb.locate_point(zweb.random_origin(i as u64), *q).messages)
                .collect();
            let s = SeriesStats::from_samples(&msgs);
            t.push(vec![
                "trapezoid".into(),
                n.to_string(),
                zweb.hosts().to_string(),
                f2(s.mean),
                s.p95.to_string(),
                zweb.network().max_memory().to_string(),
            ]);
        }
    }
    t
}

/// **§4** — update costs: `O(log n)` messages for skip-web inserts and
/// removals (`O(log n / log log n)` bucketed), across instantiations.
pub fn updates(sizes: &[usize], count: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Section 4: update message costs",
        &["structure", "n", "insert_mean", "insert_p95", "remove_mean"],
    );
    for &n in sizes {
        let keys: Vec<u64> = workloads::uniform_keys(n, seed)
            .into_iter()
            .map(|k| k * 2)
            .collect();
        let fresh: Vec<u64> = workloads::query_keys(count, seed ^ 1)
            .iter()
            .map(|k| k | 1)
            .collect();
        let log_n = (usize::BITS - n.leading_zeros()) as usize;
        // 1-D owner + bucket.
        for (name, mut web) in [
            (
                "1d-owner",
                OneDimSkipWeb::builder(keys.clone()).seed(seed).build(),
            ),
            (
                "1d-bucket",
                OneDimSkipWeb::builder(keys.clone())
                    .seed(seed)
                    .bucketed(4 * log_n)
                    .build(),
            ),
        ] {
            let ins: Vec<u64> = fresh
                .iter()
                .map(|&k| web.insert(k).expect("fresh"))
                .collect();
            let rem: Vec<u64> = fresh
                .iter()
                .map(|&k| web.remove(k).expect("present"))
                .collect();
            let si = SeriesStats::from_samples(&ins);
            let sr = SeriesStats::from_samples(&rem);
            t.push(vec![
                name.to_string(),
                n.to_string(),
                f2(si.mean),
                si.p95.to_string(),
                f2(sr.mean),
            ]);
        }
        // Quadtree skip-web updates.
        let pts = workloads::uniform_points(n, seed);
        let mut qweb = QuadtreeSkipWeb::builder(pts).seed(seed).build();
        let fresh_pts = workloads::query_points(count, seed ^ 2);
        let ins: Vec<u64> = fresh_pts.iter().filter_map(|p| qweb.insert(*p)).collect();
        let rem: Vec<u64> = fresh_pts.iter().filter_map(|p| qweb.remove(p)).collect();
        let si = SeriesStats::from_samples(&ins);
        let sr = SeriesStats::from_samples(&rem);
        t.push(vec![
            "quadtree".into(),
            n.to_string(),
            f2(si.mean),
            si.p95.to_string(),
            f2(sr.mean),
        ]);
        // Trie skip-web updates.
        let strings = workloads::random_strings(n, seed);
        let mut tweb = TrieSkipWeb::builder(strings).seed(seed).build();
        let fresh_strs: Vec<String> = (0..count).map(|i| format!("zz{i:04}x")).collect();
        let ins: Vec<u64> = fresh_strs
            .iter()
            .filter_map(|s| tweb.insert(s.clone()))
            .collect();
        let rem: Vec<u64> = fresh_strs.iter().filter_map(|s| tweb.remove(s)).collect();
        let si = SeriesStats::from_samples(&ins);
        let sr = SeriesStats::from_samples(&rem);
        t.push(vec![
            "trie".into(),
            n.to_string(),
            f2(si.mean),
            si.p95.to_string(),
            f2(sr.mean),
        ]);
    }
    t
}

/// **Bucket sweep** — Table 1's `M`-parameterized rows: query cost vs
/// per-host memory for bucket skip-webs and bucket skip graphs at fixed `n`.
/// The paper's claim: `Q = Õ(log_M H)`, constant once `M = n^ε`.
pub fn buckets(n: usize, memories: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Bucket sweep: query cost vs per-host memory (fixed n)",
        &[
            "method",
            "n",
            "M_budget",
            "H",
            "Q_mean",
            "Q_p95",
            "M_max_measured",
        ],
    );
    let keys = workloads::uniform_keys(n, seed);
    let qs = workloads::query_keys(150, seed);
    for &m in memories {
        let web = OneDimSkipWeb::builder(keys.clone())
            .seed(seed)
            .bucketed(m)
            .build();
        let msgs: Vec<u64> = qs
            .iter()
            .enumerate()
            .map(|(i, &q)| web.nearest(web.random_origin(i as u64), q).messages)
            .collect();
        let s = SeriesStats::from_samples(&msgs);
        t.push(vec![
            "bucket-skip-web".into(),
            n.to_string(),
            m.to_string(),
            web.hosts().to_string(),
            f2(s.mean),
            s.p95.to_string(),
            web.network().max_memory().to_string(),
        ]);
        let hosts = (n / m).max(2);
        let bg = BucketSkipGraph::new(keys.clone(), hosts, seed);
        let msgs: Vec<u64> = qs
            .iter()
            .enumerate()
            .map(|(i, &q)| {
                let mut meter = MessageMeter::new();
                let _ = bg.nearest(bg.random_origin(i as u64), q, &mut meter);
                meter.messages()
            })
            .collect();
        let s = SeriesStats::from_samples(&msgs);
        t.push(vec![
            "bucket-skip-graph".into(),
            n.to_string(),
            m.to_string(),
            bg.hosts().to_string(),
            f2(s.mean),
            s.p95.to_string(),
            bg.network().max_memory().to_string(),
        ]);
    }
    t
}

/// **Ablation** — the design trade-off the paper highlights: NoN skip
/// graphs buy `O(log n / log log n)` queries with `O(log² n)` memory;
/// skip-webs match the query bound at `O(log n)` memory.
pub fn ablation(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation: query cost vs memory across designs",
        &["method", "n", "Q_mean", "M_max"],
    );
    for &n in sizes {
        let keys = workloads::uniform_keys(n, seed);
        let qs = workloads::query_keys(120, seed);
        let log_n = (usize::BITS - n.leading_zeros()) as usize;
        let mut run = |name: &str, dict: &dyn OrderedDictionary| {
            let msgs: Vec<u64> = qs
                .iter()
                .enumerate()
                .map(|(i, &q)| {
                    let mut meter = MessageMeter::new();
                    let _ = dict.nearest(dict.random_origin(i as u64), q, &mut meter);
                    meter.messages()
                })
                .collect();
            let s = SeriesStats::from_samples(&msgs);
            t.push(vec![
                name.to_string(),
                n.to_string(),
                f2(s.mean),
                dict.network().max_memory().to_string(),
            ]);
        };
        run("skip-graph", &SkipGraph::new(keys.clone(), seed));
        run("non-skip-graph", &NonSkipGraph::new(keys.clone(), seed));
        run("skip-web", &SkipWebDict::owner_hosted(keys.clone(), seed));
        run(
            "bucket-skip-web",
            &SkipWebDict::bucketed(keys, 4 * log_n, seed),
        );
    }
    t
}

/// **§1.2 contrast** — DHTs support exact match only: Chord's exact lookups
/// are `O(log H)` hops, but its ordered nearest-neighbour degenerates to a
/// ring walk, while the skip-web stays logarithmic.
pub fn chord(sizes: &[usize], seed: u64) -> Table {
    let mut t = Table::new(
        "Section 1.2: Chord DHT vs skip-web on ordered queries",
        &[
            "n",
            "H",
            "chord_exact_mean",
            "chord_nn_mean",
            "skipweb_nn_mean",
        ],
    );
    for &n in sizes {
        let keys = workloads::uniform_keys(n, seed);
        let hosts = (n / 8).max(8);
        let c = Chord::new(keys.clone(), hosts);
        let web = OneDimSkipWeb::builder(keys.clone()).seed(seed).build();
        let mut exact = Vec::new();
        let mut nn = Vec::new();
        let mut webnn = Vec::new();
        for (i, &k) in keys.iter().take(40).enumerate() {
            let mut m = MessageMeter::new();
            let _ = c.lookup(c.random_origin(i as u64), k, &mut m);
            exact.push(m.messages());
            let mut m = MessageMeter::new();
            let _ = c.nearest(c.random_origin(i as u64), k + 1, &mut m);
            nn.push(m.messages());
            webnn.push(web.nearest(web.random_origin(i as u64), k + 1).messages);
        }
        t.push(vec![
            n.to_string(),
            c.ring_size().to_string(),
            f2(SeriesStats::from_samples(&exact).mean),
            f2(SeriesStats::from_samples(&nn).mean),
            f2(SeriesStats::from_samples(&webnn).mean),
        ]);
    }
    t
}

/// **Congestion** — the §1.1 motivation "query-processing load … spread as
/// uniformly as possible": run a query mix and compare the hottest host's
/// touch count against a perfectly even spread. A centralized design (e.g. a
/// search tree routed through its root) would score ~`H`; the skip-web and
/// skip graphs stay near `O(log n)`.
pub fn congestion(sizes: &[usize], queries: usize, seed: u64) -> Table {
    let mut t = Table::new(
        "Congestion: operational load balance under a query mix",
        &[
            "method",
            "n",
            "H",
            "hottest_touches",
            "mean_touches",
            "imbalance",
        ],
    );
    for &n in sizes {
        let keys = workloads::uniform_keys(n, seed);
        let qs = workloads::query_keys(queries, seed);
        let methods: Vec<Box<dyn OrderedDictionary>> = vec![
            Box::new(SkipGraph::new(keys.clone(), seed)),
            Box::new(NonSkipGraph::new(keys.clone(), seed)),
            Box::new(FamilyTree::new(keys.clone())),
            Box::new(DeterministicSkipNet::new(keys.clone())),
            Box::new(SkipWebDict::owner_hosted(keys.clone(), seed)),
        ];
        for dict in methods {
            let mut net = dict.network();
            for (i, &q) in qs.iter().enumerate() {
                let mut meter = MessageMeter::new();
                let _ = dict.nearest(dict.random_origin(seed ^ i as u64), q, &mut meter);
                net.absorb_query(&meter);
            }
            let hottest = net.max_touch_count();
            let total: u64 = (0..net.hosts())
                .map(|h| net.touch_count(skipweb_net::HostId(h as u32)))
                .sum();
            let mean = total as f64 / net.hosts() as f64;
            t.push(vec![
                dict.name().to_string(),
                n.to_string(),
                dict.hosts().to_string(),
                hottest.to_string(),
                f2(mean),
                f2(hottest as f64 / mean.max(f64::MIN_POSITIVE)),
            ]);
        }
    }
    t
}

/// Distributed throughput: the same structures served by the threaded actor
/// runtime, folded onto each of `host_counts` physical hosts; `clients`
/// client threads fire `queries` queries each and the wall clock gives
/// queries/sec. Also reports the measured messages per query, which shrink
/// as consolidation makes more forwarding hops host-local.
pub fn distributed(
    host_counts: &[usize],
    n: usize,
    clients: usize,
    queries: usize,
    seed: u64,
) -> Table {
    use skipweb_core::engine::DistributedSkipWeb;
    use skipweb_core::multidim::QuadtreeRequest;
    use std::time::Instant;

    let mut t = Table::new(
        "Distributed throughput: threaded runtime queries/sec by host count",
        &[
            "structure",
            "hosts",
            "clients",
            "queries",
            "msgs_per_query",
            "queries_per_sec",
        ],
    );

    // One generic measurement loop per structure, monomorphized by closure.
    fn run<D, F>(
        t: &mut Table,
        name: &str,
        web: &skipweb_core::SkipWeb<D>,
        host_counts: &[usize],
        clients: usize,
        queries: usize,
        make_req: F,
    ) where
        D: skipweb_core::engine::Routable + Send + Sync + 'static,
        skipweb_core::SkipWeb<D>: Sync,
        F: Fn(usize) -> D::Request + Sync,
    {
        for &hosts in host_counts {
            let dist = DistributedSkipWeb::builder(web).consolidated(hosts).spawn();
            let start = Instant::now();
            std::thread::scope(|scope| {
                for c in 0..clients {
                    let client = dist.client();
                    let dist = &dist;
                    let make_req = &make_req;
                    scope.spawn(move || {
                        for i in 0..queries {
                            let k = c * queries + i;
                            let origin = web.random_origin(k as u64);
                            dist.query(&client, origin, make_req(k))
                                .expect("runtime alive");
                        }
                    });
                }
            });
            let elapsed = start.elapsed().as_secs_f64();
            let total = (clients * queries) as f64;
            t.push(vec![
                name.to_string(),
                dist.hosts().to_string(),
                clients.to_string(),
                (clients * queries).to_string(),
                f2(dist.message_count() as f64 / total),
                f2(total / elapsed.max(f64::MIN_POSITIVE)),
            ]);
            dist.shutdown();
        }
    }

    let onedim = OneDimSkipWeb::builder(workloads::uniform_keys(n, seed))
        .seed(seed)
        .build();
    let qs = workloads::query_keys(queries.max(64), seed);
    run(
        &mut t,
        "onedim-nearest",
        onedim.inner(),
        host_counts,
        clients,
        queries,
        |k| qs[k % qs.len()],
    );

    let quadtree = QuadtreeSkipWeb::builder(workloads::uniform_points(n.min(2048), seed))
        .seed(seed)
        .build();
    let pts = workloads::query_points(queries.max(64), seed);
    run(
        &mut t,
        "quadtree-locate",
        quadtree.inner(),
        host_counts,
        clients,
        queries,
        |k| QuadtreeRequest::Locate(pts[k % pts.len()]),
    );

    let trie = TrieSkipWeb::builder(workloads::isbn_strings(n.min(2048), seed))
        .seed(seed)
        .build();
    let prefixes = workloads::query_strings(queries.max(64), seed);
    run(
        &mut t,
        "trie-prefix",
        trie.inner(),
        host_counts,
        clients,
        queries,
        |k| prefixes[k % prefixes.len()].clone(),
    );

    t
}

/// Mixed read/write churn over the live runtime: for each host count and
/// each read/write mix, one client drives `ops` operations (writes
/// alternate inserting a fresh key and removing it again) and the wall
/// clock gives ops/sec. Reports the measured messages per query and per
/// update separately — the live `Q(n)` / `U(n)` split the engine's tagged
/// traffic counters make observable.
pub fn churn(host_counts: &[usize], n: usize, ops: usize, seed: u64) -> Table {
    use skipweb_core::engine::DistributedSkipWeb;
    use std::time::Instant;

    let mut t = Table::new(
        "Distributed churn: mixed insert/remove/query throughput by host count",
        &[
            "structure",
            "hosts",
            "mix",
            "ops",
            "updates_applied",
            "msgs_per_query",
            "msgs_per_update",
            "ops_per_sec",
        ],
    );
    let keys: Vec<u64> = workloads::uniform_keys(n, seed)
        .iter()
        .map(|k| k * 2)
        .collect();
    let web = OneDimSkipWeb::builder(keys).seed(seed).build();
    for &hosts in host_counts {
        for (mix, write_pct) in [("90/10", 10usize), ("50/50", 50usize)] {
            let dist = DistributedSkipWeb::builder(web.inner())
                .consolidated(hosts)
                .spawn();
            let client = dist.client();
            let mut applied = 0usize;
            let mut queries = 0usize;
            let mut updates = 0usize;
            let start = Instant::now();
            for i in 0..ops {
                if i % 100 < write_pct {
                    updates += 1;
                    let key = ((i as u64 / 2) * 7919 + seed) | 1;
                    let reply = if i % 2 == 0 {
                        dist.insert(&client, key).expect("runtime alive")
                    } else {
                        dist.remove(&client, key).expect("runtime alive")
                    };
                    applied += usize::from(reply.applied);
                } else {
                    queries += 1;
                    let origin = (i * 31) % dist.len();
                    dist.query(
                        &client,
                        origin,
                        ((i as u64) * 997 + seed) % (2 * n as u64 * 2),
                    )
                    .expect("runtime alive");
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            let traffic = dist.traffic();
            t.push(vec![
                "onedim-nearest".to_string(),
                dist.hosts().to_string(),
                mix.to_string(),
                ops.to_string(),
                applied.to_string(),
                f2(traffic.total_query_sent() as f64 / (queries.max(1)) as f64),
                f2(traffic.total_update_sent() as f64 / (updates.max(1)) as f64),
                f2(ops as f64 / elapsed.max(f64::MIN_POSITIVE)),
            ]);
            dist.shutdown();
        }
    }
    t
}

/// Batched scatter-gather throughput: for each host count and batch size,
/// the same query workload runs once serially and once through
/// `query_batch`, reporting the metered host crossings of both, the saving,
/// and the coalescing the batch counters observed (envelopes and mean ops
/// per envelope). Answers are asserted identical along the way — the table
/// is also a parity check.
pub fn batch(
    host_counts: &[usize],
    n: usize,
    batch_sizes: &[usize],
    ops: usize,
    seed: u64,
) -> Table {
    use skipweb_core::engine::DistributedSkipWeb;
    use std::time::Instant;

    let mut t = Table::new(
        "Batched operations: metered host crossings, serial vs coalesced envelopes",
        &[
            "structure",
            "hosts",
            "batch",
            "ops",
            "serial_msgs",
            "batch_msgs",
            "saved_pct",
            "envelopes",
            "ops_per_envelope",
            "ops_per_sec",
        ],
    );
    let web = OneDimSkipWeb::builder(workloads::uniform_keys(n, seed))
        .seed(seed)
        .build();
    let qs = workloads::query_keys(ops.max(64), seed);
    for &hosts in host_counts {
        // Serial baseline, measured once per deployment size.
        let serial = DistributedSkipWeb::builder(web.inner())
            .consolidated(hosts)
            .spawn();
        let sc = serial.client();
        let origin = web.random_origin(seed);
        let want: Vec<Option<u64>> = qs
            .iter()
            .take(ops)
            .map(|&q| serial.query(&sc, origin, q).expect("runtime alive").answer)
            .collect();
        let serial_msgs = serial.message_count();
        serial.shutdown();
        for &batch in batch_sizes {
            let dist = DistributedSkipWeb::builder(web.inner())
                .consolidated(hosts)
                .spawn();
            let client = dist.client();
            let start = Instant::now();
            let mut got: Vec<Option<u64>> = Vec::with_capacity(ops);
            for chunk in qs[..ops.min(qs.len())].chunks(batch.max(1)) {
                got.extend(
                    dist.query_batch(&client, origin, chunk.to_vec())
                        .expect("runtime alive")
                        .into_iter()
                        .map(|r| r.answer),
                );
            }
            let elapsed = start.elapsed().as_secs_f64();
            assert_eq!(got, want, "batch answers must match serial");
            let traffic = dist.traffic();
            let batch_msgs = dist.message_count();
            t.push(vec![
                "onedim-nearest".to_string(),
                dist.hosts().to_string(),
                batch.to_string(),
                ops.to_string(),
                serial_msgs.to_string(),
                batch_msgs.to_string(),
                f2(if serial_msgs == 0 {
                    0.0
                } else {
                    100.0 * (1.0 - batch_msgs as f64 / serial_msgs as f64)
                }),
                traffic.total_batch_sent().to_string(),
                f2(traffic.mean_batch_size()),
                f2(ops as f64 / elapsed.max(f64::MIN_POSITIVE)),
            ]);
            dist.shutdown();
        }
    }
    t
}

/// Failover throughput: for each replication factor `k`, one client drives
/// `ops` queries per phase against a consolidated fabric — *before* a host
/// crash, *during* the crash window (one host killed, nothing healed), and
/// *after* `heal()` re-homes the dead host's blocks. Reports successes,
/// fast-failures (`Unavailable`, the `k = 1` signature), timeouts, and
/// queries/sec per phase. With `k ≥ 2` the during-crash throughput stays
/// nonzero and error-free: every query answers from a replica.
pub fn failover(hosts: usize, n: usize, ks: &[usize], ops: usize, seed: u64) -> Table {
    use skipweb_core::engine::{DistributedSkipWeb, Timeouts};
    use skipweb_net::runtime::RuntimeError;
    use skipweb_net::HostId;
    use std::time::Instant;

    let mut t = Table::new(
        "Failover: queries/sec before, during, and after a host crash, by replication factor",
        &[
            "structure",
            "hosts",
            "k",
            "phase",
            "ops",
            "ok",
            "unavailable",
            "timeout",
            "queries_per_sec",
        ],
    );
    let keys = workloads::uniform_keys(n, seed);
    let qs = workloads::query_keys(ops.max(64), seed);
    for &k in ks {
        let web = OneDimSkipWeb::builder(keys.clone())
            .seed(seed)
            .replicate(k)
            .build();
        let dist = DistributedSkipWeb::builder(web.inner())
            .consolidated(hosts)
            .spawn();
        let client = dist.client();
        // Short timeouts so lost requests surface as data, not stalls.
        client.set_timeouts(Timeouts::uniform(std::time::Duration::from_millis(2_000)));
        let phase = |t: &mut Table, name: &str| {
            let mut ok = 0usize;
            let mut unavailable = 0usize;
            let mut timeout = 0usize;
            let start = Instant::now();
            for (i, &q) in qs.iter().take(ops).enumerate() {
                let origin = web.random_origin(seed ^ i as u64);
                match dist.query(&client, origin, q) {
                    Ok(_) => ok += 1,
                    Err(RuntimeError::Unavailable) => unavailable += 1,
                    Err(RuntimeError::Timeout) => timeout += 1,
                    Err(e) => panic!("unexpected runtime error {e}"),
                }
            }
            let elapsed = start.elapsed().as_secs_f64();
            t.push(vec![
                "onedim-nearest".to_string(),
                dist.hosts().to_string(),
                k.to_string(),
                name.to_string(),
                ops.to_string(),
                ok.to_string(),
                unavailable.to_string(),
                timeout.to_string(),
                f2(ok as f64 / elapsed.max(f64::MIN_POSITIVE)),
            ]);
        };
        phase(&mut t, "before");
        dist.kill_host(HostId(1));
        phase(&mut t, "during-crash");
        dist.heal();
        phase(&mut t, "after-heal");
        dist.shutdown();
    }
    t
}

/// **WAN sweep** — query throughput over the simulated-WAN transport as
/// per-link latency grows, at a fixed 5% probabilistic loss with jitter
/// equal to the base latency. Loss applies to every row (the resubmit
/// path absorbs it end to end), so the sweep isolates latency's cost;
/// each row also reports the transport's own frame accounting — how many
/// crossings the schedule dropped and how many arrived out of order.
pub fn wan(
    latencies_us: &[u64],
    hosts: usize,
    n: usize,
    clients: usize,
    queries: usize,
    seed: u64,
) -> Table {
    use skipweb_core::engine::{DistributedSkipWeb, Timeouts};
    use skipweb_net::wan::SimWanConfig;
    use std::time::{Duration, Instant};

    let mut t = Table::new(
        "WAN sweep: queries/sec over SimWanTransport at 5% loss by link latency",
        &[
            "latency_us",
            "jitter_us",
            "loss",
            "hosts",
            "queries",
            "queries_per_sec",
            "carried",
            "lost",
            "reordered",
        ],
    );
    let web = OneDimSkipWeb::builder(workloads::uniform_keys(n, seed))
        .seed(seed)
        .build();
    let qs = workloads::query_keys(queries.max(64), seed);
    for &latency_us in latencies_us {
        let cfg = SimWanConfig {
            seed,
            latency: Duration::from_micros(latency_us),
            jitter: Duration::from_micros(latency_us),
            loss: 0.05,
        };
        let dist = DistributedSkipWeb::builder(web.inner())
            .consolidated(hosts)
            .wan(cfg)
            .spawn();
        // The resubmit timeout must dominate the worst jittered round trip
        // but stay short enough that a lost frame costs little.
        let timeout = Duration::from_millis(150) + Duration::from_micros(latency_us * 50);
        let start = Instant::now();
        std::thread::scope(|scope| {
            for c in 0..clients {
                let client = dist.client();
                let (dist, web, qs) = (&dist, &web, &qs);
                scope.spawn(move || {
                    client.set_timeouts(Timeouts::new(timeout, timeout * 2));
                    for i in 0..queries {
                        let k = c * queries + i;
                        dist.query(&client, web.random_origin(k as u64), qs[k % qs.len()])
                            .expect("resubmits must mask loss");
                    }
                });
            }
        });
        let elapsed = start.elapsed().as_secs_f64();
        let stats = dist.transport_stats();
        let total = (clients * queries) as f64;
        t.push(vec![
            latency_us.to_string(),
            latency_us.to_string(),
            "0.05".to_string(),
            dist.hosts().to_string(),
            (clients * queries).to_string(),
            f2(total / elapsed.max(f64::MIN_POSITIVE)),
            stats.carried.to_string(),
            stats.lost.to_string(),
            stats.reordered.to_string(),
        ]);
        dist.shutdown();
    }
    t
}

/// Builds the shared loopback-TCP deployment plan: `workers` worker
/// processes owning `hosts_per_worker` engine hosts each, plus one
/// driver endpoint (the last) that owns no hosts and receives every
/// reply. Every process derives the same plan from the same arguments —
/// the TCP analogue of the range-determined topology rebuild.
pub fn tcp_plan(ports: &[u16], me: usize, hosts_per_worker: usize) -> skipweb_net::tcp::TcpConfig {
    use std::net::{IpAddr, Ipv4Addr, SocketAddr};
    let endpoints: Vec<SocketAddr> = ports
        .iter()
        .map(|&p| SocketAddr::new(IpAddr::V4(Ipv4Addr::LOCALHOST), p))
        .collect();
    let workers = endpoints.len() - 1;
    let owners: Vec<usize> = (0..workers)
        .flat_map(|w| std::iter::repeat_n(w, hosts_per_worker))
        .collect();
    skipweb_net::tcp::TcpConfig {
        endpoints,
        me,
        owners,
        reply_endpoint: workers,
    }
}

/// The worker-process entry point behind `repro tcp-host`: rebuilds the
/// deterministic web from `(n, seed)`, joins the deployment at endpoint
/// `me`, and serves queries until the driver broadcasts shutdown.
/// Returns whether the shutdown arrived as an orderly goodbye (`true`)
/// rather than a timeout.
pub fn tcp_host(
    ports: &[u16],
    me: usize,
    hosts_per_worker: usize,
    n: usize,
    seed: u64,
) -> std::io::Result<bool> {
    use skipweb_core::engine::DistributedSkipWeb;
    let web = OneDimSkipWeb::builder(workloads::uniform_keys(n, seed))
        .seed(seed)
        .build();
    let dist = DistributedSkipWeb::builder(web.inner()).spawn_tcp(tcp_plan(
        ports,
        me,
        hosts_per_worker,
    ))?;
    Ok(dist.serve_until_peer_shutdown(std::time::Duration::from_secs(120)))
}

/// **TCP deployment** — hosts as separate OS processes over loopback
/// TCP: spawns `workers` copies of `exe` (re-entering through its
/// `tcp-host` argument), each owning `hosts_per_worker` engine hosts,
/// then drives `queries` nearest-neighbour queries per client thread
/// from this process and reports throughput plus the driver's wire-level
/// byte counts. Answers are checked against the locally rebuilt web's
/// serial fabric before anything is reported.
pub fn tcp(
    exe: &std::path::Path,
    workers: usize,
    hosts_per_worker: usize,
    n: usize,
    clients: usize,
    queries: usize,
    seed: u64,
) -> std::io::Result<Table> {
    use skipweb_core::engine::DistributedSkipWeb;
    use std::net::TcpListener;
    use std::time::Instant;

    let mut t = Table::new(
        "TCP deployment: queries/sec across separate worker processes on loopback",
        &[
            "workers",
            "hosts",
            "clients",
            "queries",
            "queries_per_sec",
            "driver_tx_bytes",
            "driver_rx_bytes",
        ],
    );

    // Reserve one loopback port per process by binding and releasing;
    // the spawned workers re-bind them by number.
    let ports: Vec<u16> = (0..workers + 1)
        .map(|_| {
            TcpListener::bind("127.0.0.1:0")
                .and_then(|l| l.local_addr())
                .map(|a| a.port())
        })
        .collect::<std::io::Result<_>>()?;
    let mut children: Vec<std::process::Child> = Vec::with_capacity(workers);
    let ports_csv = ports
        .iter()
        .map(|p| p.to_string())
        .collect::<Vec<_>>()
        .join(",");
    for w in 0..workers {
        children.push(
            std::process::Command::new(exe)
                .arg("tcp-host")
                .arg(w.to_string())
                .arg(hosts_per_worker.to_string())
                .arg(n.to_string())
                .arg(seed.to_string())
                .arg(&ports_csv)
                .spawn()?,
        );
    }
    let reap = |mut children: Vec<std::process::Child>| {
        for child in &mut children {
            let _ = child.kill();
            let _ = child.wait();
        }
    };

    let web = OneDimSkipWeb::builder(workloads::uniform_keys(n, seed))
        .seed(seed)
        .build();
    let dist = match DistributedSkipWeb::builder(web.inner()).spawn_tcp(tcp_plan(
        &ports,
        workers,
        hosts_per_worker,
    )) {
        Ok(dist) => dist,
        Err(e) => {
            reap(children);
            return Err(e);
        }
    };
    let serial = DistributedSkipWeb::builder(web.inner())
        .consolidated(workers * hosts_per_worker)
        .spawn();
    let qs = workloads::query_keys(queries.max(64), seed);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let client = dist.client();
            let check = serial.client();
            let (dist, serial, web, qs) = (&dist, &serial, &web, &qs);
            scope.spawn(move || {
                for i in 0..queries {
                    let k = c * queries + i;
                    let origin = web.random_origin(k as u64);
                    let got = dist
                        .query(&client, origin, qs[k % qs.len()])
                        .expect("tcp fabric alive")
                        .answer;
                    let want = serial
                        .query(&check, origin, qs[k % qs.len()])
                        .expect("runtime alive")
                        .answer;
                    assert_eq!(got, want, "tcp answer diverged from local fabric");
                }
            });
        }
    });
    let elapsed = start.elapsed().as_secs_f64();
    let stats = dist.transport_stats();
    let total = (clients * queries) as f64;
    t.push(vec![
        workers.to_string(),
        (workers * hosts_per_worker).to_string(),
        clients.to_string(),
        (clients * queries).to_string(),
        f2(total / elapsed.max(f64::MIN_POSITIVE)),
        stats.bytes_sent.to_string(),
        stats.bytes_received.to_string(),
    ]);
    serial.shutdown();
    dist.shutdown();
    for child in &mut children {
        let status = child.wait()?;
        if !status.success() {
            return Err(std::io::Error::other(format!(
                "tcp worker exited with {status}"
            )));
        }
    }
    Ok(t)
}

/// Durable-store throughput and crash recovery: for each store size `n`,
/// time `n` fresh puts and `gets` routed lookups through the WAL-backed
/// store, then kill **every** host and time
/// [`recover`](skipweb_store::Store::recover) — checkpoint read, WAL replay, web
/// rebuild, host rejoin, and heal — verifying the recovered store is
/// scan-identical before reporting the row.
pub fn store(ns: &[usize], hosts: usize, gets: usize, seed: u64) -> Table {
    use skipweb_store::StoreBuilder;
    use std::time::Instant;

    let mut t = Table::new(
        "Durable store: put/get throughput and total-crash WAL recovery by store size",
        &[
            "n",
            "hosts",
            "puts_per_sec",
            "gets_per_sec",
            "wal_records",
            "replayed",
            "rejoined",
            "recovery_ms",
        ],
    );
    for &n in ns {
        let dir =
            std::env::temp_dir().join(format!("skipweb-bench-store-{}-{n}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let store = StoreBuilder::new(&dir)
            .hosts(hosts)
            .seed(seed)
            .checkpoint_every(0)
            .open()
            .expect("open bench store");

        let put_start = Instant::now();
        for i in 0..n {
            let key = i as u64 * 10 + 1;
            store
                .put(key, key.to_le_bytes().to_vec())
                .expect("bench put");
        }
        let put_secs = put_start.elapsed().as_secs_f64();

        let get_start = Instant::now();
        for i in 0..gets {
            let key = ((i * 37) % n) as u64 * 10 + 1;
            let got = store.get(key).expect("bench get");
            assert_eq!(got, Some(key.to_le_bytes().to_vec()));
        }
        let get_secs = get_start.elapsed().as_secs_f64();

        let before = store.scan(..);
        for host in store.fabric().health().alive {
            store.fabric().kill_host(host);
        }
        let report = store.recover().expect("bench recovery");
        assert_eq!(store.scan(..), before, "recovery must be scan-identical");

        t.push(vec![
            n.to_string(),
            hosts.to_string(),
            f2(n as f64 / put_secs.max(f64::MIN_POSITIVE)),
            f2(gets as f64 / get_secs.max(f64::MIN_POSITIVE)),
            report.wal_records.to_string(),
            report.replayed.to_string(),
            report.rejoined.to_string(),
            f2(report.duration.as_secs_f64() * 1e3),
        ]);
        store.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }
    t
}

/// Full vs incremental apply latency: per structure × `n` × batch size ×
/// thread count, the one-host latency of landing an insert batch, a
/// remove batch, and a churn round (insert then remove) through the
/// original full-rebuild path (`apply_*_batch_full`) and the dirty-set
/// incremental path (`apply_*_batch_threads`), plus their ratio. The two
/// paths are timed back to back within each repetition and the medians
/// reported, so load spikes hit both columns alike instead of skewing the
/// ratio. Emitted as the committed `BENCH_rebuild.json` artifact.
pub fn rebuild(
    ns: &[usize],
    trap_n: usize,
    batch_sizes: &[usize],
    threads: &[usize],
    reps: usize,
    seed: u64,
) -> Table {
    use skipweb_structures::geometry::GridPoint;
    use skipweb_structures::Segment;

    let mut t = Table::new(
        "Incremental vs full rebuild: one-host batch apply latency",
        &[
            "structure",
            "n",
            "batch",
            "op",
            "full_us",
            "incr_us",
            "speedup",
            "threads",
        ],
    );
    let max_batch = batch_sizes.iter().copied().max().unwrap_or(0);
    for &n in ns {
        let pool: Vec<u64> = (0..(n + max_batch) as u64).map(|i| i * 37 + 5).collect();
        rebuild_rows::<SortedLinkedList>(
            &mut t,
            "onedim-list",
            &pool,
            n,
            batch_sizes,
            threads,
            reps,
            seed,
        );
    }
    if let Some(&n) = ns.last() {
        let pool: Vec<GridPoint<2>> = (0..(n + max_batch) as u32)
            .map(|i| GridPoint::new([i.wrapping_mul(0x9E37_79B9), i.wrapping_mul(0x85EB_CA6B)]))
            .collect();
        rebuild_rows::<CompressedQuadtree<2>>(
            &mut t,
            "quadtree-2d",
            &pool,
            n,
            batch_sizes,
            threads,
            reps,
            seed,
        );
        // Fixed-width keys from an odd-multiplier scramble: injective over
        // the pool and prefix-free, with a two-symbol alphabet that keeps
        // the trie deep.
        let pool: Vec<String> = (0..(n + max_batch) as u32)
            .map(|i| format!("{:032b}", i.wrapping_mul(2_654_435_761)))
            .collect();
        rebuild_rows::<CompressedTrie>(&mut t, "trie", &pool, n, batch_sizes, threads, reps, seed);
    }
    // The trapezoidal map's superlinear build keeps its sizes small
    // elsewhere in the harness too; disjoint x-ranges per slot keep every
    // subset in general position.
    let pool: Vec<Segment> = (0..(trap_n + max_batch) as i64)
        .map(|slot| {
            let x = slot * 1_000;
            let y = (slot % 13) * 40;
            Segment::new((x, y), (x + 600, y + 3))
        })
        .collect();
    rebuild_rows::<TrapezoidalMap>(
        &mut t,
        "trapezoid",
        &pool,
        trap_n,
        batch_sizes,
        threads,
        reps,
        seed,
    );
    t
}

/// One structure's sweep for [`rebuild`]: batch sizes large enough to hit
/// the incremental path's dirty-fraction fallback are skipped (there is
/// nothing incremental to measure).
#[allow(clippy::too_many_arguments)]
fn rebuild_rows<D>(
    t: &mut Table,
    name: &str,
    pool: &[D::Item],
    n: usize,
    batch_sizes: &[usize],
    threads: &[usize],
    reps: usize,
    seed: u64,
) where
    D: skipweb_structures::RangeDetermined + PartialEq + Send + Sync,
    D::Item: Send + Sync,
{
    use skipweb_core::SkipWeb;
    use std::time::Instant;

    let base = SkipWeb::<D>::builder(pool[..n].to_vec()).seed(seed).build();
    for &batch in batch_sizes {
        if batch == 0 || batch * 4 >= n || n + batch > pool.len() {
            continue;
        }
        let inserts: Vec<(D::Item, u64)> = pool[n..n + batch]
            .iter()
            .enumerate()
            .map(|(i, it)| {
                (
                    it.clone(),
                    (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ seed,
                )
            })
            .collect();
        let removes: Vec<D::Item> = inserts.iter().map(|(it, _)| it.clone()).collect();

        for &workers in threads {
            let mut full_ins = Vec::with_capacity(reps);
            let mut full_rem = Vec::with_capacity(reps);
            let mut incr_ins = Vec::with_capacity(reps);
            let mut incr_rem = Vec::with_capacity(reps);
            for rep in 0..reps {
                let mut oracle = base.clone();
                let start = Instant::now();
                oracle.apply_insert_batch_full(inserts.clone());
                full_ins.push(start.elapsed().as_secs_f64());
                let mut w = base.clone();
                let start = Instant::now();
                w.apply_insert_batch_threads(inserts.clone(), workers);
                incr_ins.push(start.elapsed().as_secs_f64());
                if rep == 0 {
                    // Parity insurance on the numbers being reported.
                    assert!(w == oracle, "incremental insert diverged from full rebuild");
                }
                let start = Instant::now();
                oracle.apply_remove_batch_full(&removes);
                full_rem.push(start.elapsed().as_secs_f64());
                let start = Instant::now();
                w.apply_remove_batch_threads(&removes, workers);
                incr_rem.push(start.elapsed().as_secs_f64());
                if rep == 0 {
                    assert!(w == oracle, "incremental remove diverged from full rebuild");
                }
            }
            let full_churn: Vec<f64> = full_ins.iter().zip(&full_rem).map(|(a, b)| a + b).collect();
            let incr_churn: Vec<f64> = incr_ins.iter().zip(&incr_rem).map(|(a, b)| a + b).collect();
            for (op, full, incr) in [
                ("insert", &full_ins, &incr_ins),
                ("remove", &full_rem, &incr_rem),
                ("churn", &full_churn, &incr_churn),
            ] {
                let (full_us, incr_us) = (median_us(full), median_us(incr));
                t.push(vec![
                    name.to_string(),
                    n.to_string(),
                    batch.to_string(),
                    op.to_string(),
                    f2(full_us),
                    f2(incr_us),
                    f2(full_us / incr_us.max(f64::MIN_POSITIVE)),
                    workers.to_string(),
                ]);
            }
        }
    }
}

/// Median of a sample of second-counts, in microseconds.
fn median_us(samples: &[f64]) -> f64 {
    let mut v = samples.to_vec();
    v.sort_by(f64::total_cmp);
    let mid = v.len() / 2;
    let m = if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    };
    m * 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_produces_a_row_per_method_per_size() {
        let t = table1(&[64, 128], 10, 4, 1);
        assert_eq!(t.rows.len(), 7 * 2);
        assert!(t.to_string().contains("skip-web"));
    }

    #[test]
    fn fig1_rows_show_linear_space() {
        let t = fig1(&[256], 1);
        assert_eq!(t.rows.len(), 1);
        let nodes_per_key: f64 = t.rows[0][3].parse().unwrap();
        assert!(nodes_per_key > 1.0 && nodes_per_key < 3.0);
    }

    #[test]
    fn fig3_covers_both_distributions() {
        let t = fig3(&[128], 2);
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn thm2_caps_trapezoid_sizes() {
        let t = thm2(&[64, 256], 128, 3);
        let traps: Vec<_> = t.rows.iter().filter(|r| r[0] == "trapezoid").collect();
        assert_eq!(traps.len(), 1); // only n=64 fits under the cap
    }

    #[test]
    fn buckets_sweep_reports_both_methods() {
        let t = buckets(512, &[16, 64], 4);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn failover_reports_nonzero_throughput_during_the_crash_window() {
        let t = failover(8, 256, &[1, 2], 30, 5);
        assert_eq!(t.rows.len(), 6, "three phases per replication factor");
        // The acceptance gate: with k = 2, the during-crash phase keeps
        // answering every query from replicas at nonzero throughput.
        for row in t.rows.iter().filter(|r| r[2] == "2") {
            let ok: usize = row[5].parse().unwrap();
            let qps: f64 = row[8].parse().unwrap();
            assert_eq!(ok, 30, "k=2 phase {} must answer everything", row[3]);
            assert!(qps > 0.0, "k=2 phase {} throughput", row[3]);
            assert_eq!(row[6], "0", "k=2 never reports Unavailable");
        }
        // After heal even k = 1 recovers fully.
        let after_k1 = t
            .rows
            .iter()
            .find(|r| r[2] == "1" && r[3] == "after-heal")
            .unwrap();
        assert_eq!(after_k1[5], "30");
    }

    #[test]
    fn fig2_reports_placement_comparison() {
        let t = fig2(&[128], 6);
        assert_eq!(t.rows.len(), 1);
        let q_owner: f64 = t.rows[0][4].parse().unwrap();
        let q_bucket: f64 = t.rows[0][5].parse().unwrap();
        assert!(q_bucket <= q_owner + 0.5, "bucketing must not cost more");
    }

    #[test]
    fn fig4_counts_trapezoids_exactly() {
        let t = fig4(&[16], 7);
        let traps: usize = t.rows[0][1].parse().unwrap();
        assert_eq!(traps, 3 * 16 + 1);
    }

    #[test]
    fn updates_experiment_covers_all_structures() {
        let t = updates(&[64], 4, 8);
        let names: Vec<&str> = t.rows.iter().map(|r| r[0].as_str()).collect();
        assert_eq!(names, ["1d-owner", "1d-bucket", "quadtree", "trie"]);
    }

    #[test]
    fn ablation_orders_methods_as_the_paper_claims() {
        let t = ablation(&[1024], 9);
        let q = |name: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0] == name)
                .expect("method present")[2]
                .parse()
                .unwrap()
        };
        assert!(q("non-skip-graph") < q("skip-graph"));
        assert!(q("skip-web") < q("skip-graph"));
    }

    #[test]
    fn chord_experiment_shows_the_ring_walk() {
        let t = chord(&[128], 10);
        let h: f64 = t.rows[0][1].parse().unwrap();
        let nn: f64 = t.rows[0][3].parse().unwrap();
        assert!((nn - h).abs() < 1.5, "Chord NN must walk the whole ring");
    }

    #[test]
    fn congestion_experiment_shows_balanced_methods() {
        let t = congestion(&[256], 60, 11);
        assert_eq!(t.rows.len(), 5);
        // Every method's hottest host stays far below the total touch mass.
        for row in &t.rows {
            let hottest: f64 = row[3].parse().unwrap();
            let mean: f64 = row[4].parse().unwrap();
            assert!(
                hottest < mean * 256.0,
                "{} routes everything via one host",
                row[0]
            );
        }
    }

    #[test]
    fn distributed_experiment_reports_all_structures_and_host_counts() {
        let t = distributed(&[1, 4], 128, 2, 8, 12);
        assert_eq!(t.rows.len(), 6); // 3 structures x 2 host counts
        for row in &t.rows {
            let qps: f64 = row[5].parse().unwrap();
            assert!(qps > 0.0, "{} must make progress", row[0]);
        }
        // A single host never pays a network message.
        for row in t.rows.iter().filter(|r| r[1] == "1") {
            assert_eq!(row[4], "0.00", "{} on one host sent messages", row[0]);
        }
    }

    #[test]
    fn churn_experiment_reports_every_host_count_and_mix() {
        let t = churn(&[1, 4], 96, 60, 9);
        assert_eq!(t.rows.len(), 4); // 2 host counts x 2 mixes
        for row in &t.rows {
            let applied: usize = row[4].parse().unwrap();
            assert!(applied > 0, "churn must apply updates ({row:?})");
            let ops_per_sec: f64 = row[7].parse().unwrap();
            assert!(ops_per_sec > 0.0, "churn must make progress ({row:?})");
        }
        // A single host never pays a network message, per query or update.
        for row in t.rows.iter().filter(|r| r[1] == "1") {
            assert_eq!(row[5], "0.00", "one-host queries sent messages");
            assert_eq!(row[6], "0.00", "one-host updates sent messages");
        }
    }

    #[test]
    fn tables_render_as_tsv() {
        let t = lemma1(&[128], 5);
        let s = t.to_string();
        assert!(s.starts_with("# Lemma 1"));
        assert!(s.lines().count() >= 3);
    }

    #[test]
    fn tables_render_as_bench_json() {
        let t = lemma1(&[128], 5);
        let json = t.to_json("lemma1");
        assert!(json.starts_with("{\n  \"experiment\": \"lemma1\""));
        assert!(json.contains("\"header\": ["));
        assert!(json.trim_end().ends_with('}'));
    }

    #[test]
    fn store_experiment_reports_throughput_and_recovery() {
        let t = store(&[64], 3, 20, 11);
        assert_eq!(t.rows.len(), 1);
        let row = &t.rows[0];
        assert_eq!(row[0], "64");
        assert!(row[2].parse::<f64>().unwrap() > 0.0, "puts/sec ({row:?})");
        assert!(row[3].parse::<f64>().unwrap() > 0.0, "gets/sec ({row:?})");
        assert!(
            row[4].parse::<usize>().unwrap() >= 64,
            "wal records ({row:?})"
        );
        assert_eq!(row[6], "3", "every killed host must rejoin ({row:?})");
        assert!(
            row[7].parse::<f64>().unwrap() > 0.0,
            "recovery ms ({row:?})"
        );
    }

    #[test]
    fn rebuild_experiment_covers_structures_ops_and_threads() {
        let t = rebuild(&[256], 96, &[1, 8], &[1, 2], 1, 7);
        assert!(!t.rows.is_empty());
        for structure in ["onedim-list", "quadtree-2d", "trie", "trapezoid"] {
            assert!(
                t.rows.iter().any(|r| r[0] == structure),
                "missing {structure}"
            );
        }
        for op in ["insert", "remove", "churn"] {
            assert!(t.rows.iter().any(|r| r[3] == op), "missing op {op}");
        }
        for threads in ["1", "2"] {
            assert!(
                t.rows.iter().any(|r| r[7] == threads),
                "missing threads={threads}"
            );
        }
        for row in &t.rows {
            assert!(
                row[4].parse::<f64>().unwrap() > 0.0 && row[5].parse::<f64>().unwrap() > 0.0,
                "latencies must be positive ({row:?})"
            );
        }
    }
}
