//! Reproduction harness: prints the measured version of every table and
//! figure in the skip-webs paper as TSV.
//!
//! ```text
//! repro [experiment] [--full]
//!
//! experiments: table1 fig1 fig2 fig3 fig4 lemma1 lemma4 thm2 updates
//!              buckets ablation chord congestion distributed churn
//!              failover batch wan store rebuild tcp all (default: all)
//! --full: larger size sweeps (slower; used to fill EXPERIMENTS.md)
//! ```

use skipweb_bench::experiments;

struct Config {
    sizes: Vec<usize>,
    trap_sizes: Vec<usize>,
    queries: usize,
    updates: usize,
    bucket_n: usize,
    memories: Vec<usize>,
    dist_hosts: Vec<usize>,
    dist_n: usize,
    dist_clients: usize,
    dist_queries: usize,
    churn_ops: usize,
    failover_hosts: usize,
    failover_ks: Vec<usize>,
    failover_ops: usize,
    batch_sizes: Vec<usize>,
    batch_ops: usize,
    wan_latencies_us: Vec<u64>,
    wan_clients: usize,
    wan_queries: usize,
    store_ns: Vec<usize>,
    store_hosts: usize,
    store_gets: usize,
    rebuild_ns: Vec<usize>,
    rebuild_trap_n: usize,
    rebuild_threads: Vec<usize>,
    rebuild_reps: usize,
    tcp_workers: usize,
    tcp_hosts_per_worker: usize,
    tcp_queries: usize,
    seed: u64,
}

impl Config {
    fn quick() -> Self {
        Config {
            sizes: vec![256, 1024, 4096],
            trap_sizes: vec![32, 64, 128],
            queries: 100,
            updates: 20,
            bucket_n: 4096,
            memories: vec![8, 16, 32, 64, 128, 256],
            dist_hosts: vec![1, 4, 16],
            dist_n: 1024,
            dist_clients: 4,
            dist_queries: 50,
            churn_ops: 300,
            failover_hosts: 8,
            failover_ks: vec![1, 2, 3],
            failover_ops: 200,
            batch_sizes: vec![1, 16, 256],
            batch_ops: 256,
            wan_latencies_us: vec![0, 200, 1000, 3000],
            wan_clients: 4,
            wan_queries: 50,
            store_ns: vec![256, 1024],
            store_hosts: 4,
            store_gets: 100,
            // 1024 and 4096 sit exactly on level-count boundaries (inserts
            // there pay for a whole new top level); 3072 shows the
            // boundary-free cost.
            rebuild_ns: vec![1024, 3072, 4096],
            rebuild_trap_n: 128,
            rebuild_threads: vec![1, 4],
            rebuild_reps: 5,
            tcp_workers: 4,
            tcp_hosts_per_worker: 2,
            tcp_queries: 50,
            seed: 42,
        }
    }

    fn full() -> Self {
        Config {
            sizes: vec![256, 1024, 4096, 16_384, 65_536],
            trap_sizes: vec![32, 64, 128, 256],
            queries: 200,
            updates: 40,
            bucket_n: 16_384,
            memories: vec![8, 16, 32, 64, 128, 256, 1024, 4096],
            dist_hosts: vec![1, 4, 16, 64],
            dist_n: 4096,
            dist_clients: 8,
            dist_queries: 200,
            churn_ops: 2000,
            failover_hosts: 16,
            failover_ks: vec![1, 2, 3],
            failover_ops: 1000,
            batch_sizes: vec![1, 16, 256],
            batch_ops: 1024,
            wan_latencies_us: vec![0, 200, 1000, 3000, 10_000],
            wan_clients: 8,
            wan_queries: 100,
            store_ns: vec![1024, 4096],
            store_hosts: 8,
            store_gets: 400,
            rebuild_ns: vec![3072, 4096, 16_384],
            rebuild_trap_n: 128,
            rebuild_threads: vec![1, 4],
            rebuild_reps: 5,
            tcp_workers: 4,
            tcp_hosts_per_worker: 4,
            tcp_queries: 200,
            seed: 42,
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();

    // Worker-process re-entry for the TCP deployment experiment: the
    // driver spawns copies of this binary as
    // `repro tcp-host <me> <hosts_per_worker> <n> <seed> <ports_csv>`.
    if args.first().map(String::as_str) == Some("tcp-host") {
        let parse = |i: usize| -> u64 { args[i].parse().expect("tcp-host: numeric argument") };
        let (me, hosts_per_worker, n, seed) = (
            parse(1) as usize,
            parse(2) as usize,
            parse(3) as usize,
            parse(4),
        );
        let ports: Vec<u16> = args[5]
            .split(',')
            .map(|p| p.parse().expect("tcp-host: port list"))
            .collect();
        let bye = experiments::tcp_host(&ports, me, hosts_per_worker, n, seed)
            .expect("tcp-host: joining the deployment");
        std::process::exit(if bye { 0 } else { 1 });
    }

    let full = args.iter().any(|a| a == "--full");
    let which = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_string());
    let cfg = if full {
        Config::full()
    } else {
        Config::quick()
    };

    const KNOWN: [&str; 22] = [
        "all",
        "table1",
        "fig1",
        "fig2",
        "fig3",
        "fig4",
        "lemma1",
        "lemma4",
        "thm2",
        "updates",
        "buckets",
        "ablation",
        "chord",
        "congestion",
        "distributed",
        "churn",
        "failover",
        "batch",
        "wan",
        "store",
        "rebuild",
        "tcp",
    ];
    if !KNOWN.contains(&which.as_str()) {
        eprintln!("unknown experiment {which:?}");
        eprintln!("usage: repro [{}] [--full]", KNOWN.join("|"));
        std::process::exit(2);
    }

    let run = |name: &str| -> bool { which == "all" || which == name };

    if run("table1") {
        println!(
            "{}",
            experiments::table1(&cfg.sizes, cfg.queries, cfg.updates, cfg.seed)
        );
    }
    if run("fig1") {
        println!("{}", experiments::fig1(&cfg.sizes, cfg.seed));
    }
    if run("fig2") {
        println!("{}", experiments::fig2(&cfg.sizes, cfg.seed));
    }
    if run("fig3") {
        println!("{}", experiments::fig3(&cfg.sizes, cfg.seed));
    }
    if run("fig4") {
        println!("{}", experiments::fig4(&cfg.trap_sizes, cfg.seed));
    }
    if run("lemma1") {
        println!("{}", experiments::lemma1(&cfg.sizes, cfg.seed));
    }
    if run("lemma4") {
        println!("{}", experiments::lemma4(&cfg.sizes, cfg.seed));
    }
    if run("thm2") {
        println!(
            "{}",
            experiments::thm2(&cfg.sizes, *cfg.trap_sizes.last().unwrap_or(&128), cfg.seed)
        );
    }
    if run("updates") {
        println!(
            "{}",
            experiments::updates(&cfg.sizes, cfg.updates, cfg.seed)
        );
    }
    if run("buckets") {
        println!(
            "{}",
            experiments::buckets(cfg.bucket_n, &cfg.memories, cfg.seed)
        );
    }
    if run("ablation") {
        println!("{}", experiments::ablation(&cfg.sizes, cfg.seed));
    }
    if run("chord") {
        println!("{}", experiments::chord(&cfg.sizes, cfg.seed));
    }
    if run("congestion") {
        println!(
            "{}",
            experiments::congestion(&cfg.sizes, cfg.queries, cfg.seed)
        );
    }
    if run("distributed") {
        println!(
            "{}",
            experiments::distributed(
                &cfg.dist_hosts,
                cfg.dist_n,
                cfg.dist_clients,
                cfg.dist_queries,
                cfg.seed,
            )
        );
    }
    if run("churn") {
        println!(
            "{}",
            experiments::churn(&cfg.dist_hosts, cfg.dist_n, cfg.churn_ops, cfg.seed)
        );
    }
    if run("failover") {
        println!(
            "{}",
            experiments::failover(
                cfg.failover_hosts,
                cfg.dist_n,
                &cfg.failover_ks,
                cfg.failover_ops,
                cfg.seed,
            )
        );
    }
    if run("batch") {
        println!(
            "{}",
            experiments::batch(
                &cfg.dist_hosts,
                cfg.dist_n,
                &cfg.batch_sizes,
                cfg.batch_ops,
                cfg.seed,
            )
        );
    }
    if run("wan") {
        println!(
            "{}",
            experiments::wan(
                &cfg.wan_latencies_us,
                4,
                cfg.dist_n,
                cfg.wan_clients,
                cfg.wan_queries,
                cfg.seed,
            )
        );
    }
    if run("store") {
        let table = experiments::store(&cfg.store_ns, cfg.store_hosts, cfg.store_gets, cfg.seed);
        // Emitted next to the TSV so the bench-report job (and the
        // committed BENCH_store.json artifact) can pick it up.
        if let Err(e) = std::fs::write("BENCH_store.json", table.to_json("store")) {
            eprintln!("warning: could not write BENCH_store.json: {e}");
        }
        println!("{table}");
    }
    if run("rebuild") {
        let table = experiments::rebuild(
            &cfg.rebuild_ns,
            cfg.rebuild_trap_n,
            &cfg.batch_sizes,
            &cfg.rebuild_threads,
            cfg.rebuild_reps,
            cfg.seed,
        );
        // Emitted next to the TSV so the bench-report job (and the
        // committed BENCH_rebuild.json artifact) can pick it up.
        if let Err(e) = std::fs::write("BENCH_rebuild.json", table.to_json("rebuild")) {
            eprintln!("warning: could not write BENCH_rebuild.json: {e}");
        }
        println!("{table}");
    }
    // Spawns worker OS processes, so it only runs when named explicitly —
    // never as part of `all`.
    if which == "tcp" {
        let exe = std::env::current_exe().expect("tcp: resolving own binary");
        let table = experiments::tcp(
            &exe,
            cfg.tcp_workers,
            cfg.tcp_hosts_per_worker,
            cfg.dist_n,
            cfg.dist_clients,
            cfg.tcp_queries,
            cfg.seed,
        )
        .expect("tcp: deployment must come up on loopback");
        println!("{table}");
    }
}
