//! Synthetic workload generators for the experiments.
//!
//! The paper proves distribution-free expected bounds (the randomness is in
//! the structure's own coins), so any input of size `n` is a valid test
//! vector; these generators supply the motivating shapes from the paper's
//! introduction — numeric keys, planar points (kiosks/parking), ISBN-like
//! strings, and campus-map segments — plus adversarial variants (clustered
//! points that make uncompressed quadtrees deep).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use skipweb_structures::quadtree::PointKey;
use skipweb_structures::trapezoid::Segment;

/// `n` distinct pseudo-random keys below `2^40`.
pub fn uniform_keys(n: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut keys: Vec<u64> = (0..n).map(|_| rng.gen_range(0..1u64 << 40)).collect();
    keys.sort_unstable();
    keys.dedup();
    let mut next = keys.last().copied().unwrap_or(0);
    while keys.len() < n {
        next += 1 + rng.gen_range(0..1000);
        keys.push(next);
    }
    keys
}

/// Query keys spread over (and beyond) the stored key range.
pub fn query_keys(count: usize, seed: u64) -> Vec<u64> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xBEEF);
    (0..count).map(|_| rng.gen_range(0..1u64 << 40)).collect()
}

/// `n` distinct uniform points in the full 2-D grid.
pub fn uniform_points(n: usize, seed: u64) -> Vec<PointKey<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pts: Vec<PointKey<2>> = (0..n * 2)
        .map(|_| PointKey::new([rng.gen(), rng.gen()]))
        .collect();
    pts.sort_by_key(PointKey::morton);
    pts.dedup();
    pts.truncate(n);
    pts
}

/// `n` points in tight clusters — the adversarial case where the
/// *uncompressed* quadtree is deep; the compressed one stays `O(n)`.
pub fn clustered_points(n: usize, clusters: usize, seed: u64) -> Vec<PointKey<2>> {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<[u32; 2]> = (0..clusters.max(1))
        .map(|_| [rng.gen(), rng.gen()])
        .collect();
    let mut pts: Vec<PointKey<2>> = (0..n * 2)
        .map(|i| {
            let c = centers[i % centers.len()];
            PointKey::new([
                c[0].wrapping_add(rng.gen_range(0..64)),
                c[1].wrapping_add(rng.gen_range(0..64)),
            ])
        })
        .collect();
    pts.sort_by_key(PointKey::morton);
    pts.dedup();
    pts.truncate(n);
    pts
}

/// Query points for the planar experiments.
pub fn query_points(count: usize, seed: u64) -> Vec<PointKey<2>> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xCAFE);
    (0..count)
        .map(|_| PointKey::new([rng.gen(), rng.gen()]))
        .collect()
}

/// `n` ISBN-like strings: a realistic prefix-heavy distribution
/// (`978` + publisher block + title digits), as in the paper's motivating
/// book-database example.
pub fn isbn_strings(n: usize, seed: u64) -> Vec<String> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<String> = (0..n * 2)
        .map(|_| {
            let publisher = rng.gen_range(0..50u32);
            let title = rng.gen_range(0..100_000u32);
            format!("978{publisher:03}{title:06}")
        })
        .collect();
    out.sort();
    out.dedup();
    out.truncate(n);
    out
}

/// `n` random strings over a small fixed alphabet with varied lengths —
/// exercises deep compressed-trie paths.
pub fn random_strings(n: usize, seed: u64) -> Vec<String> {
    let alphabet = b"abcd";
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out: Vec<String> = (0..n * 2)
        .map(|_| {
            let len = rng.gen_range(2..16);
            (0..len)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char)
                .collect()
        })
        .collect();
    out.sort();
    out.dedup();
    out.truncate(n);
    out
}

/// Query strings over the same alphabet as [`random_strings`].
pub fn query_strings(count: usize, seed: u64) -> Vec<String> {
    let alphabet = b"abcd";
    let mut rng = StdRng::seed_from_u64(seed ^ 0xD00D);
    (0..count)
        .map(|_| {
            let len = rng.gen_range(1..16);
            (0..len)
                .map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char)
                .collect()
        })
        .collect()
}

/// `n` pairwise-disjoint segments in general position: one nearly-horizontal
/// segment per vertical band, globally distinct endpoint x-coordinates —
/// the "campus map" shape of the introduction.
pub fn disjoint_segments(n: usize, seed: u64) -> Vec<Segment> {
    let mut rng = StdRng::seed_from_u64(seed);
    // Globally unique x values: a shuffled pool of even integers.
    let mut xs: Vec<i64> = (0..(2 * n) as i64).map(|i| i * 4 + 1).collect();
    for i in (1..xs.len()).rev() {
        let j = rng.gen_range(0..=i);
        xs.swap(i, j);
    }
    (0..n)
        .map(|i| {
            let band = (i as i64) * 100;
            let (mut x1, mut x2) = (xs[2 * i], xs[2 * i + 1]);
            if x1 > x2 {
                std::mem::swap(&mut x1, &mut x2);
            }
            // Stay within ±20 of the band: bands are 100 apart, so segments
            // in different bands can never touch.
            let y1 = band + rng.gen_range(-20..=20);
            let y2 = band + rng.gen_range(-20..=20);
            Segment::new((x1, y1), (x2, y2))
        })
        .collect()
}

/// Query points for the trapezoid experiments (off the segment bands).
pub fn trapezoid_queries(n_segments: usize, count: usize, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xFEED);
    let x_max = (2 * n_segments as i64) * 4 + 10;
    let y_max = n_segments as i64 * 100 + 100;
    (0..count)
        .map(|_| {
            // Odd y-offsets avoid landing exactly on a (nearly flat) segment.
            (
                rng.gen_range(-10..x_max),
                rng.gen_range(-100..y_max) * 2 + 49,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use skipweb_structures::traits::RangeDetermined;
    use skipweb_structures::TrapezoidalMap;

    #[test]
    fn uniform_keys_are_distinct_and_sized() {
        let keys = uniform_keys(1000, 1);
        assert_eq!(keys.len(), 1000);
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 1000);
    }

    #[test]
    fn point_generators_hit_requested_sizes() {
        assert_eq!(uniform_points(500, 2).len(), 500);
        assert_eq!(clustered_points(500, 8, 3).len(), 500);
    }

    #[test]
    fn isbn_strings_share_prefixes() {
        let strings = isbn_strings(200, 4);
        assert_eq!(strings.len(), 200);
        assert!(strings.iter().all(|s| s.starts_with("978")));
    }

    #[test]
    fn disjoint_segments_build_a_valid_trapezoid_map() {
        // TrapezoidalMap::build panics on invalid input, so building is the test.
        let segments = disjoint_segments(64, 5);
        let map = TrapezoidalMap::build(segments);
        assert_eq!(map.len(), 64);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(uniform_keys(100, 7), uniform_keys(100, 7));
        assert_ne!(uniform_keys(100, 7), uniform_keys(100, 8));
    }
}
