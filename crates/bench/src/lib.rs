#![warn(missing_docs)]

//! Benchmark harness for the skip-webs reproduction.
//!
//! Every table and figure of the paper has an experiment here (see
//! `DESIGN.md` §3 for the full index):
//!
//! * [`experiments::table1`] — the seven-method cost comparison (Table 1),
//! * [`experiments::fig1`] — skip-list search/space behaviour (Figure 1),
//! * [`experiments::fig2`] — the 1-D skip-web hierarchy (Figure 2),
//! * [`experiments::fig3`] — quadtree set-halving (Figure 3 / Lemma 3),
//! * [`experiments::fig4`] — trapezoidal maps (Figure 4 / Lemma 5),
//! * [`experiments::lemma1`] / [`experiments::lemma4`] — the 1-D and trie
//!   halving lemmas,
//! * [`experiments::thm2`] — Theorem 2's query bounds on all four
//!   instantiations,
//! * [`experiments::updates`] — §4's update costs,
//! * [`experiments::buckets`] — the bucket sweep (Table 1's `M`-parameterized
//!   rows),
//! * [`experiments::ablation`] — NoN-vs-skip-web trade-off,
//! * [`experiments::chord`] — the §1.2 DHT contrast.
//!
//! The `repro` binary prints any of them as TSV; the Criterion benches time
//! the same code paths.

pub mod adapters;
pub mod experiments;
pub mod workloads;
