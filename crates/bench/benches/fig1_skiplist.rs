//! Criterion bench for Figure 1: skip list construction and search across
//! sizes (the O(log n) search / O(n) space series).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_baselines::SkipList;
use skipweb_bench::workloads;

fn bench_fig1(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig1_skiplist");
    group.sample_size(20);
    for n in [1024usize, 4096, 16_384] {
        let keys = workloads::uniform_keys(n, 7);
        group.bench_function(BenchmarkId::new("build", n), |b| {
            b.iter(|| std::hint::black_box(SkipList::new(keys.clone(), 7)));
        });
        let sl = SkipList::new(keys, 7);
        let qs = workloads::query_keys(64, 7);
        group.bench_function(BenchmarkId::new("search", n), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(sl.nearest_counted(qs[i % qs.len()]))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig1);
criterion_main!(benches);
