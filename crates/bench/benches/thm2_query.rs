//! Criterion bench for Theorem 2: query latency of each skip-web
//! instantiation (1-D, quadtree, trie; trapezoid under `fig4`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_bench::workloads;
use skipweb_core::multidim::{QuadtreeSkipWeb, TrieSkipWeb};
use skipweb_core::onedim::OneDimSkipWeb;

fn bench_thm2(c: &mut Criterion) {
    let mut group = c.benchmark_group("thm2_query");
    group.sample_size(20);
    let n = 4096;

    let keys = workloads::uniform_keys(n, 17);
    let web1 = OneDimSkipWeb::builder(keys).seed(17).build();
    let qs = workloads::query_keys(64, 17);
    group.bench_function(BenchmarkId::from_parameter("1d"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            std::hint::black_box(web1.nearest(web1.random_origin(i as u64), qs[i % qs.len()]))
        });
    });

    let pts = workloads::uniform_points(n, 17);
    let web2 = QuadtreeSkipWeb::builder(pts).seed(17).build();
    let qpts = workloads::query_points(64, 17);
    group.bench_function(BenchmarkId::from_parameter("quadtree"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            std::hint::black_box(
                web2.locate_point(web2.random_origin(i as u64), qpts[i % qpts.len()]),
            )
        });
    });

    let strings = workloads::random_strings(n, 17);
    let web3 = TrieSkipWeb::builder(strings).seed(17).build();
    let qstr = workloads::query_strings(64, 17);
    group.bench_function(BenchmarkId::from_parameter("trie"), |b| {
        let mut i = 0usize;
        b.iter(|| {
            i += 1;
            std::hint::black_box(
                web3.prefix_search(web3.random_origin(i as u64), &qstr[i % qstr.len()]),
            )
        });
    });

    group.finish();
}

criterion_group!(benches, bench_thm2);
criterion_main!(benches);
