//! Criterion bench for the batched operation layer: end-to-end latency of
//! `query_batch` across batch sizes {1, 16, 256} and deployment sizes
//! {1, 4, 16} hosts. Larger batches amortize the per-hop envelope cost —
//! same answers, fewer metered host crossings — so batch size × host count
//! maps the congestion lever of §2.5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_bench::workloads;
use skipweb_core::engine::DistributedSkipWeb;
use skipweb_core::onedim::OneDimSkipWeb;

const HOST_COUNTS: [usize; 3] = [1, 4, 16];
const BATCH_SIZES: [usize; 3] = [1, 16, 256];

fn bench_distributed_batch(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_batch");
    group.sample_size(10);

    let n = 1024usize;
    let web = OneDimSkipWeb::builder(workloads::uniform_keys(n, 61))
        .seed(61)
        .build();
    let qs = workloads::query_keys(256, 61);

    for hosts in HOST_COUNTS {
        let dist = DistributedSkipWeb::builder(web.inner())
            .consolidated(hosts)
            .spawn();
        let client = dist.client();
        let origin = web.random_origin(1);
        for batch in BATCH_SIZES {
            group.bench_function(
                BenchmarkId::new(format!("onedim_qbatch_h{hosts}"), batch),
                |b| {
                    let mut i = 0usize;
                    b.iter(|| {
                        i += 1;
                        let reqs: Vec<u64> =
                            (0..batch).map(|j| qs[(i * batch + j) % qs.len()]).collect();
                        dist.query_batch(&client, origin, reqs)
                            .expect("runtime alive")
                    });
                },
            );
        }
        dist.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_distributed_batch);
criterion_main!(benches);
