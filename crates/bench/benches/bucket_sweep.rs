//! Criterion bench for the bucket sweep: bucketed skip-web query latency as
//! the per-host memory budget M varies (message counts: `repro buckets`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_bench::workloads;
use skipweb_core::onedim::OneDimSkipWeb;

fn bench_buckets(c: &mut Criterion) {
    let mut group = c.benchmark_group("bucket_sweep");
    group.sample_size(20);
    let n = 4096;
    let keys = workloads::uniform_keys(n, 23);
    let qs = workloads::query_keys(64, 23);
    for m in [16usize, 64, 256] {
        let web = OneDimSkipWeb::builder(keys.clone())
            .seed(23)
            .bucketed(m)
            .build();
        group.bench_function(BenchmarkId::from_parameter(m), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(web.nearest(web.random_origin(i as u64), qs[i % qs.len()]))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_buckets);
criterion_main!(benches);
