//! Criterion bench for Table 1: wall time of one nearest-neighbour query on
//! every method at a fixed size (message counts come from `repro table1`).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_baselines::{
    BucketSkipGraph, DeterministicSkipNet, FamilyTree, NonSkipGraph, OrderedDictionary, SkipGraph,
};
use skipweb_bench::adapters::SkipWebDict;
use skipweb_bench::workloads;
use skipweb_net::MessageMeter;

fn bench_table1(c: &mut Criterion) {
    let n = 4096;
    let keys = workloads::uniform_keys(n, 42);
    let qs = workloads::query_keys(64, 42);
    let methods: Vec<Box<dyn OrderedDictionary>> = vec![
        Box::new(SkipGraph::new(keys.clone(), 42)),
        Box::new(NonSkipGraph::new(keys.clone(), 42)),
        Box::new(FamilyTree::new(keys.clone())),
        Box::new(DeterministicSkipNet::new(keys.clone())),
        Box::new(BucketSkipGraph::new(keys.clone(), 256, 42)),
        Box::new(SkipWebDict::owner_hosted(keys.clone(), 42)),
        Box::new(SkipWebDict::bucketed(keys, 64, 42)),
    ];
    let mut group = c.benchmark_group("table1_query");
    group.sample_size(20);
    for dict in &methods {
        group.bench_function(BenchmarkId::from_parameter(dict.name()), |b| {
            let mut i = 0usize;
            b.iter(|| {
                let q = qs[i % qs.len()];
                i += 1;
                let mut meter = MessageMeter::new();
                std::hint::black_box(dict.nearest(dict.random_origin(i as u64), q, &mut meter))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_table1);
criterion_main!(benches);
