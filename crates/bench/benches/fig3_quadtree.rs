//! Criterion bench for Figure 3: compressed quadtree build, set-halving
//! conflict measurement, and quadtree skip-web point location.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use skipweb_bench::workloads;
use skipweb_core::multidim::QuadtreeSkipWeb;
use skipweb_structures::properties::measure_halving;
use skipweb_structures::quadtree::CompressedQuadtree;
use skipweb_structures::traits::RangeDetermined;

fn bench_fig3(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_quadtree");
    group.sample_size(10);
    for n in [1024usize, 4096] {
        let pts = workloads::uniform_points(n, 11);
        group.bench_function(BenchmarkId::new("build_tree", n), |b| {
            b.iter(|| std::hint::black_box(CompressedQuadtree::<2>::build(pts.clone())));
        });
        let queries = workloads::query_points(32, 11);
        group.bench_function(BenchmarkId::new("halving", n), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(11);
                std::hint::black_box(measure_halving::<CompressedQuadtree<2>, _>(
                    &pts, &queries, &mut rng,
                ))
            });
        });
        let web = QuadtreeSkipWeb::builder(pts.clone()).seed(11).build();
        group.bench_function(BenchmarkId::new("locate_point", n), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(
                    web.locate_point(web.random_origin(i as u64), queries[i % queries.len()]),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig3);
criterion_main!(benches);
