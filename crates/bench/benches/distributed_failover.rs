//! Criterion bench for failover: end-to-end query latency of the threaded
//! actor runtime with a crashed host in the fabric, across replication
//! factors k ∈ {1, 2, 3}. Three phases per k: a healthy fabric
//! (`before_crash`), one host killed with nothing healed (`during_crash` —
//! every hop steers around the tombstone via replicas), and after `heal()`
//! re-homed the dead host's blocks (`after_heal`). With k = 1 the
//! during-crash phase measures the surviving fraction only (unreachable
//! towers fail fast with `Unavailable` and are skipped).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_bench::workloads;
use skipweb_core::engine::{DistributedSkipWeb, Timeouts};
use skipweb_core::onedim::OneDimSkipWeb;
use skipweb_net::HostId;

const HOSTS: usize = 8;
const N: usize = 1024;

fn bench_failover(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_failover");
    group.sample_size(10);

    let qs = workloads::query_keys(64, 61);
    for k in [1usize, 2, 3] {
        let web = OneDimSkipWeb::builder(workloads::uniform_keys(N, 61))
            .seed(61)
            .replicate(k)
            .build();

        let dist = DistributedSkipWeb::builder(web.inner())
            .consolidated(HOSTS)
            .spawn();
        let client = dist.client();
        client.set_timeouts(Timeouts::uniform(std::time::Duration::from_secs(2)));
        group.bench_function(BenchmarkId::new("before_crash", k), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                dist.query(&client, web.random_origin(i as u64), qs[i % qs.len()])
                    .expect("healthy fabric")
            });
        });

        dist.kill_host(HostId(1));
        group.bench_function(BenchmarkId::new("during_crash", k), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                // k = 1 cannot reach the dead host's towers: those queries
                // fail fast and are excluded; k >= 2 answers everything.
                let _ = dist.query(&client, web.random_origin(i as u64), qs[i % qs.len()]);
            });
        });

        dist.heal();
        group.bench_function(BenchmarkId::new("after_heal", k), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                dist.query(&client, web.random_origin(i as u64), qs[i % qs.len()])
                    .expect("healed fabric")
            });
        });
        dist.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_failover);
criterion_main!(benches);
