//! Criterion bench for the ablation: skip graph vs NoN skip graph vs
//! skip-web query latency (the memory/query trade-off of Table 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_baselines::{NonSkipGraph, OrderedDictionary, SkipGraph};
use skipweb_bench::adapters::SkipWebDict;
use skipweb_bench::workloads;
use skipweb_net::MessageMeter;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation");
    group.sample_size(20);
    let n = 4096;
    let keys = workloads::uniform_keys(n, 29);
    let qs = workloads::query_keys(64, 29);
    let dicts: Vec<Box<dyn OrderedDictionary>> = vec![
        Box::new(SkipGraph::new(keys.clone(), 29)),
        Box::new(NonSkipGraph::new(keys.clone(), 29)),
        Box::new(SkipWebDict::owner_hosted(keys, 29)),
    ];
    for dict in &dicts {
        group.bench_function(BenchmarkId::from_parameter(dict.name()), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                let mut meter = MessageMeter::new();
                std::hint::black_box(dict.nearest(
                    dict.random_origin(i as u64),
                    qs[i % qs.len()],
                    &mut meter,
                ))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
