//! Criterion bench for Figure 2: 1-D skip-web build and query, owner-hosted
//! vs bucketed placement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_bench::workloads;
use skipweb_core::onedim::OneDimSkipWeb;

fn bench_fig2(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig2_onedim");
    group.sample_size(10);
    for n in [1024usize, 4096] {
        let keys = workloads::uniform_keys(n, 9);
        group.bench_function(BenchmarkId::new("build_owner", n), |b| {
            b.iter(|| std::hint::black_box(OneDimSkipWeb::builder(keys.clone()).seed(9).build()));
        });
        group.bench_function(BenchmarkId::new("build_bucket", n), |b| {
            b.iter(|| {
                std::hint::black_box(
                    OneDimSkipWeb::builder(keys.clone())
                        .seed(9)
                        .bucketed(64)
                        .build(),
                )
            });
        });
        let owner = OneDimSkipWeb::builder(keys.clone()).seed(9).build();
        let bucket = OneDimSkipWeb::builder(keys).seed(9).bucketed(64).build();
        let qs = workloads::query_keys(64, 9);
        group.bench_function(BenchmarkId::new("query_owner", n), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(owner.nearest(owner.random_origin(i as u64), qs[i % qs.len()]))
            });
        });
        group.bench_function(BenchmarkId::new("query_bucket", n), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(
                    bucket.nearest(bucket.random_origin(i as u64), qs[i % qs.len()]),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig2);
criterion_main!(benches);
