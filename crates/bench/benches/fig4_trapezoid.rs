//! Criterion bench for Figure 4: trapezoidal-map construction, set-halving,
//! and trapezoid skip-web point location.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;
use skipweb_bench::workloads;
use skipweb_core::multidim::TrapezoidSkipWeb;
use skipweb_structures::properties::measure_halving;
use skipweb_structures::traits::RangeDetermined;
use skipweb_structures::TrapezoidalMap;

fn bench_fig4(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig4_trapezoid");
    group.sample_size(10);
    for n in [32usize, 128] {
        let segments = workloads::disjoint_segments(n, 13);
        group.bench_function(BenchmarkId::new("build_map", n), |b| {
            b.iter(|| std::hint::black_box(TrapezoidalMap::build(segments.clone())));
        });
        let queries = workloads::trapezoid_queries(n, 32, 13);
        group.bench_function(BenchmarkId::new("halving", n), |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(13);
                std::hint::black_box(measure_halving::<TrapezoidalMap, _>(
                    &segments, &queries, &mut rng,
                ))
            });
        });
        let web = TrapezoidSkipWeb::builder(segments.clone()).seed(13).build();
        group.bench_function(BenchmarkId::new("locate_point", n), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                std::hint::black_box(
                    web.locate_point(web.random_origin(i as u64), queries[i % queries.len()]),
                )
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
