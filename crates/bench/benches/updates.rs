//! Criterion bench for §4: insert/remove wall time on the 1-D skip-web and
//! the skip graph baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_baselines::{OrderedDictionary, SkipGraph};
use skipweb_bench::workloads;
use skipweb_core::onedim::OneDimSkipWeb;
use skipweb_net::MessageMeter;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec4_updates");
    group.sample_size(10);
    let n = 1024;
    let keys: Vec<u64> = workloads::uniform_keys(n, 19)
        .iter()
        .map(|k| k * 2)
        .collect();

    group.bench_function(BenchmarkId::new("skipweb_insert_remove", n), |b| {
        let mut web = OneDimSkipWeb::builder(keys.clone()).seed(19).build();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = (i * 7919) | 1;
            web.insert(key);
            web.remove(key);
        });
    });

    group.bench_function(BenchmarkId::new("skipgraph_insert_remove", n), |b| {
        let mut g = SkipGraph::new(keys.clone(), 19);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = (i * 7919) | 1;
            let mut meter = MessageMeter::new();
            g.insert(key, &mut meter);
            g.remove(key, &mut meter);
        });
    });

    group.finish();
}

criterion_group!(benches, bench_updates);
criterion_main!(benches);
