//! Criterion bench for §4: insert/remove wall time on the 1-D skip-web and
//! the skip graph baseline, plus the distributed engine under mixed
//! read/write workloads at {1, 4, 16} hosts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_baselines::{OrderedDictionary, SkipGraph};
use skipweb_bench::workloads;
use skipweb_core::engine::DistributedSkipWeb;
use skipweb_core::onedim::OneDimSkipWeb;
use skipweb_net::MessageMeter;

fn bench_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sec4_updates");
    group.sample_size(10);
    let n = 1024;
    let keys: Vec<u64> = workloads::uniform_keys(n, 19)
        .iter()
        .map(|k| k * 2)
        .collect();

    group.bench_function(BenchmarkId::new("skipweb_insert_remove", n), |b| {
        let mut web = OneDimSkipWeb::builder(keys.clone()).seed(19).build();
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = (i * 7919) | 1;
            web.insert(key);
            web.remove(key);
        });
    });

    group.bench_function(BenchmarkId::new("skipgraph_insert_remove", n), |b| {
        let mut g = SkipGraph::new(keys.clone(), 19);
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let key = (i * 7919) | 1;
            let mut meter = MessageMeter::new();
            g.insert(key, &mut meter);
            g.remove(key, &mut meter);
        });
    });

    group.finish();
}

/// Live updates over the actor runtime: one op per iteration drawn from a
/// mixed read/write stream (90/10 and 50/50), across deployment sizes. The
/// write half alternates inserting a fresh key and removing it again, so
/// the structure size stays bounded while every write pays a real §4
/// route-and-repair.
fn bench_distributed_updates(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_updates");
    group.sample_size(10);
    let n = 256usize;
    let keys: Vec<u64> = workloads::uniform_keys(n, 23)
        .iter()
        .map(|k| k * 2)
        .collect();
    let web = OneDimSkipWeb::builder(keys).seed(23).build();
    for hosts in [1usize, 4, 16] {
        for (mix, write_pct) in [("mix90_10", 10u64), ("mix50_50", 50u64)] {
            let dist = DistributedSkipWeb::builder(web.inner())
                .consolidated(hosts)
                .spawn();
            let client = dist.client();
            group.bench_function(BenchmarkId::new(format!("onedim_{mix}"), hosts), |b| {
                let mut i = 0u64;
                b.iter(|| {
                    i += 1;
                    if i % 100 < write_pct {
                        let key = ((i / 2) * 7919) | 1;
                        if i.is_multiple_of(2) {
                            dist.insert(&client, key).expect("runtime alive").applied
                        } else {
                            dist.remove(&client, key).expect("runtime alive").applied
                        }
                    } else {
                        let origin = (i as usize * 31) % dist.len();
                        dist.query(&client, origin, (i * 997) % 6000)
                            .expect("runtime alive")
                            .answer
                            .is_some()
                    }
                });
            });
            dist.shutdown();
        }
    }
    group.finish();
}

criterion_group!(benches, bench_updates, bench_distributed_updates);
criterion_main!(benches);
