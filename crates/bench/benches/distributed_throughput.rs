//! Criterion bench for the distributed engine: end-to-end query latency of
//! the threaded actor runtime across host counts, for the 1-D, quadtree,
//! and trie skip-webs. Consolidation folds the web's logical hosts onto
//! {1, 4, 16} physical actor threads, so the numbers show how much of the
//! cost is real message passing versus local processing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use skipweb_bench::workloads;
use skipweb_core::engine::DistributedSkipWeb;
use skipweb_core::multidim::{QuadtreeRequest, QuadtreeSkipWeb, TrieSkipWeb};
use skipweb_core::onedim::OneDimSkipWeb;
use skipweb_structures::PointKey;

const HOST_COUNTS: [usize; 3] = [1, 4, 16];

fn bench_distributed(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributed_throughput");
    group.sample_size(10);

    let n = 1024usize;
    let onedim = OneDimSkipWeb::builder(workloads::uniform_keys(n, 51))
        .seed(51)
        .build();
    let qs = workloads::query_keys(64, 51);
    for hosts in HOST_COUNTS {
        let dist = DistributedSkipWeb::builder(onedim.inner())
            .consolidated(hosts)
            .spawn();
        let client = dist.client();
        group.bench_function(BenchmarkId::new("onedim_nearest", hosts), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                dist.query(&client, onedim.random_origin(i as u64), qs[i % qs.len()])
                    .expect("runtime alive")
            });
        });
        dist.shutdown();
    }

    let points: Vec<PointKey<2>> = (0..512u32)
        .map(|i| PointKey::new([i.wrapping_mul(2_654_435_761), i.wrapping_mul(97_657) + 3]))
        .collect();
    let quadtree = QuadtreeSkipWeb::builder(points).seed(52).build();
    for hosts in HOST_COUNTS {
        let dist = DistributedSkipWeb::builder(quadtree.inner())
            .consolidated(hosts)
            .spawn();
        let client = dist.client();
        group.bench_function(BenchmarkId::new("quadtree_locate", hosts), |b| {
            let mut i = 0u64;
            b.iter(|| {
                i += 1;
                let q = PointKey::new([
                    (i.wrapping_mul(0x9E37_79B9)) as u32,
                    (i.wrapping_mul(0x85EB_CA6B)) as u32,
                ]);
                dist.query(
                    &client,
                    quadtree.random_origin(i),
                    QuadtreeRequest::Locate(q),
                )
                .expect("runtime alive")
            });
        });
        dist.shutdown();
    }

    let strings: Vec<String> = (0..512usize).map(|i| format!("isbn-{i:05}")).collect();
    let trie = TrieSkipWeb::builder(strings).seed(53).build();
    for hosts in HOST_COUNTS {
        let dist = DistributedSkipWeb::builder(trie.inner())
            .consolidated(hosts)
            .spawn();
        let client = dist.client();
        group.bench_function(BenchmarkId::new("trie_prefix", hosts), |b| {
            let mut i = 0usize;
            b.iter(|| {
                i += 1;
                let prefix = format!("isbn-{:03}", (i * 7) % 512);
                dist.query(&client, trie.random_origin(i as u64), prefix)
                    .expect("runtime alive")
            });
        });
        dist.shutdown();
    }

    group.finish();
}

criterion_group!(benches, bench_distributed);
criterion_main!(benches);
