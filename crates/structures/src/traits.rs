//! The range-determined link structure abstraction (§2.1–§2.2).
//!
//! The skip-web framework is generic over any structure implementing
//! [`RangeDetermined`]. The contract mirrors the paper's definitions:
//!
//! * the structure is built **deterministically** from its ground set
//!   ([`RangeDetermined::build`]),
//! * nodes and links are exposed uniformly as **ranges** with dense
//!   [`RangeId`]s,
//! * [`RangeDetermined::conflicts`] enumerates the ranges of `D(S)` that
//!   intersect a given range of `D(T)` for `T ⊆ S` — the conflict list
//!   `C(Q, S)` of §2.2,
//! * [`RangeDetermined::search_path`] performs the *local* search a host runs
//!   "as far as it can internally" (§2.5), reporting every range it touches so
//!   the network meter can charge host crossings.

use std::fmt;

/// Dense identifier of a range (a node or a link) within one structure
/// instance. IDs are only meaningful relative to the instance that issued
/// them and are invalidated by rebuilds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RangeId(pub u32);

impl RangeId {
    /// Returns the id as an index into dense per-range tables.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for RangeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "range#{}", self.0)
    }
}

/// A link structure whose nodes and links are determined by ranges over a
/// universe `U` (§2.1).
///
/// Implementations must be **canonical**: `build` applied to the same item
/// set (in any order) yields the same logical structure, because the paper's
/// framework requires `S` and `U` to determine `D(S)` uniquely.
pub trait RangeDetermined: Clone + fmt::Debug {
    /// Ground-set element type.
    type Item: Clone + Ord + fmt::Debug;
    /// Query-point type (an element of the universe `U`, not necessarily of `S`).
    type Query: Clone + fmt::Debug;
    /// Materialized range of a node or link — a describable subset of `U`.
    type Range: Clone + fmt::Debug;

    /// Builds the unique structure for `items`. Duplicates are removed and
    /// items are put in canonical order.
    fn build(items: Vec<Self::Item>) -> Self;

    /// The total order [`build`](Self::build) sorts items into — the
    /// canonical order of §2.1 made comparable one pair at a time, so that
    /// callers maintaining an already-canonical ground set can splice new
    /// items in (and binary-search for membership) without re-running
    /// `build` over the whole set.
    ///
    /// Contract: `canonical_cmp(a, b) == Ordering::Equal` iff `a == b`, and
    /// for any item set, `build`'s item order is sorted under this
    /// comparator. The default is the `Ord` order; structures whose builder
    /// sorts by a derived key (e.g. a space-filling curve) must override it
    /// to match.
    fn canonical_cmp(a: &Self::Item, b: &Self::Item) -> std::cmp::Ordering {
        a.cmp(b)
    }

    /// The ground set in canonical order.
    fn items(&self) -> &[Self::Item];

    /// Number of stored items.
    fn len(&self) -> usize {
        self.items().len()
    }

    /// Whether the ground set is empty.
    fn is_empty(&self) -> bool {
        self.items().is_empty()
    }

    /// Number of ranges (nodes + links); valid ids are `0..num_ranges`.
    fn num_ranges(&self) -> usize;

    /// Materializes the range for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    fn range(&self, id: RangeId) -> Self::Range;

    /// The index (into [`items`](Self::items)) of the item that *owns* this
    /// range for host-placement purposes. Node ranges are owned by their
    /// item; links are owned by one canonical endpoint (so that "towers" of
    /// an item land on its host, as in Figure 2).
    fn owner(&self, id: RangeId) -> usize;

    /// The node range of item `item` — where a search starting from that
    /// item's host enters the structure.
    ///
    /// # Panics
    ///
    /// Panics if `item >= self.len()`.
    fn entry_of_item(&self, item: usize) -> RangeId;

    /// Ranges incident to `id` through structure links (used for the local
    /// walk and for the congestion/reference accounting of §1.1).
    fn neighbors(&self, id: RangeId) -> Vec<RangeId>;

    /// The maximal (most specific) range containing the query point — where a
    /// search for `q` terminates in this structure.
    fn locate(&self, q: &Self::Query) -> RangeId;

    /// Walks from `from` to `locate(q)` along structure links, returning
    /// every range touched, **including both endpoints**. The walk is what a
    /// host executes internally; the engine meters each touched range's host.
    fn search_path(&self, from: RangeId, q: &Self::Query) -> Vec<RangeId>;

    /// One navigation step of the walk toward `locate(q)` (§2.5): the next
    /// range after `from` on [`search_path`](Self::search_path), or `None`
    /// when `from` already is the locus.
    ///
    /// This is the hook the *distributed* engine routes with: a host holding
    /// `from` advances one range at a time, continuing for free while the
    /// next range lives on the same host and forwarding the query otherwise
    /// ("process as far as you can internally"). Implementations must be
    /// memoryless — stepping repeatedly from any intermediate range must
    /// converge on the same locus as a full `search_path` walk, which holds
    /// for any walk that only depends on the current range and `q`.
    ///
    /// The default derives the step from `search_path`; structures with a
    /// cheap positional comparison should override it.
    fn search_step(&self, from: RangeId, q: &Self::Query) -> Option<RangeId> {
        self.search_path(from, q).get(1).copied()
    }

    /// Given the conflict list of the maximal range at a finer level, picks
    /// the best range to continue the search for `q` from. Defaults to the
    /// first candidate; structures override this to pick the conflicting
    /// range nearest the query's locus.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty.
    fn best_entry(&self, candidates: &[RangeId], q: &Self::Query) -> RangeId {
        let _ = q;
        *candidates
            .first()
            .expect("conflict lists are nonempty for nonempty structures")
    }

    /// The conflict list `C(external, S)` (§2.2): all ranges of this
    /// structure whose range intersects `external`, where `external` comes
    /// from the structure of a subset (or superset) of this ground set.
    fn conflicts(&self, external: &Self::Range) -> Vec<RangeId>;

    /// A query point probing the location of `item` — used by updates (§4)
    /// to route to the neighbourhood an insertion or deletion will modify.
    fn item_query(item: &Self::Item) -> Self::Query;

    /// The node range `item` occupies in its own singleton structure — the
    /// probe that updates (§4) intersect against every level to enumerate
    /// the conflict neighbourhoods an insertion or deletion rewires. Both
    /// the cost-model simulator and the distributed engine repair through
    /// this hook, so overriding it changes which ranges an update touches
    /// everywhere at once.
    ///
    /// The default materializes a one-item structure; implementations with
    /// a cheap direct construction should override it.
    fn probe_range(item: &Self::Item) -> Self::Range {
        let probe = Self::build(vec![item.clone()]);
        probe.range(probe.entry_of_item(0))
    }

    /// Convenience iterator over all valid range ids.
    fn range_ids(&self) -> RangeIds {
        RangeIds {
            next: 0,
            end: self.num_ranges() as u32,
        }
    }
}

/// Iterator over the dense range ids of a structure; created by
/// [`RangeDetermined::range_ids`].
#[derive(Debug, Clone)]
pub struct RangeIds {
    next: u32,
    end: u32,
}

impl Iterator for RangeIds {
    type Item = RangeId;

    fn next(&mut self) -> Option<RangeId> {
        if self.next < self.end {
            let id = RangeId(self.next);
            self.next += 1;
            Some(id)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.end - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for RangeIds {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_id_index_and_display() {
        assert_eq!(RangeId(4).index(), 4);
        assert_eq!(RangeId(4).to_string(), "range#4");
    }

    #[test]
    fn range_ids_iterates_densely() {
        let ids: Vec<RangeId> = RangeIds { next: 0, end: 3 }.collect();
        assert_eq!(ids, vec![RangeId(0), RangeId(1), RangeId(2)]);
    }

    #[test]
    fn range_ids_reports_exact_size() {
        let it = RangeIds { next: 1, end: 5 };
        assert_eq!(it.len(), 4);
    }
}
