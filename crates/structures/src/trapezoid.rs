//! Trapezoidal maps of non-crossing line segments (§3.3).
//!
//! The map subdivides the plane by the input segments plus vertical
//! extensions shot up and down from every segment endpoint until they hit
//! another segment (Figure 4). Construction here is *canonical* (slab
//! decomposition + merge), so `D(S)` depends only on the set `S` as the
//! range-determined framework requires — no insertion-order artifacts.
//!
//! Ranges are the (open) trapezoid regions; two ranges conflict when the
//! regions overlap with positive area. Lemma 5 proves the conflict count of
//! a half-sample trapezoid is exactly `1 + a + 2b + 3c` (`a` segments
//! crossing clean through, `b` with one endpoint inside, `c` with both) and
//! `O(1)` in expectation; both are verified in tests and the `fig4` bench.
//!
//! Inputs must be in *general position*: pairwise disjoint segments, no
//! vertical segments, all endpoint x-coordinates distinct, coordinates
//! within `i32` range (so the exact `i128` rational predicates cannot
//! overflow).

use std::collections::{HashMap, VecDeque};
use std::fmt;

use crate::geometry::{orient, Rational};
use crate::traits::{RangeDetermined, RangeId};

/// A non-vertical line segment with integer endpoints, stored left-to-right.
///
/// # Example
///
/// ```
/// use skipweb_structures::Segment;
/// let s = Segment::new((10, 0), (0, 5)); // endpoints reorder automatically
/// assert_eq!(s.left(), (0, 5));
/// assert_eq!(s.right(), (10, 0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Segment {
    x1: i64,
    y1: i64,
    x2: i64,
    y2: i64,
}

impl Segment {
    /// Creates a segment; endpoints are normalized left-to-right.
    ///
    /// # Panics
    ///
    /// Panics if the segment is vertical or a coordinate exceeds `i32`
    /// range (required for exact predicates).
    pub fn new(p: (i64, i64), q: (i64, i64)) -> Self {
        assert!(p.0 != q.0, "vertical segments violate general position");
        for v in [p.0, p.1, q.0, q.1] {
            assert!(
                i32::try_from(v).is_ok(),
                "coordinates must fit in i32 for exact arithmetic"
            );
        }
        if p.0 < q.0 {
            Segment {
                x1: p.0,
                y1: p.1,
                x2: q.0,
                y2: q.1,
            }
        } else {
            Segment {
                x1: q.0,
                y1: q.1,
                x2: p.0,
                y2: p.1,
            }
        }
    }

    /// The left endpoint.
    pub fn left(&self) -> (i64, i64) {
        (self.x1, self.y1)
    }

    /// The right endpoint.
    pub fn right(&self) -> (i64, i64) {
        (self.x2, self.y2)
    }

    /// Exact `y` value of the supporting line at rational `x = num/den`.
    fn y_at(&self, num: i128, den: i128) -> Rational {
        // y = y1 + (y2-y1) * (x - x1) / (x2 - x1)
        let dx = (self.x2 - self.x1) as i128;
        let dy = (self.y2 - self.y1) as i128;
        Rational::new(
            self.y1 as i128 * dx * den + dy * (num - self.x1 as i128 * den),
            dx * den,
        )
    }

    /// Exact `y` at integer `x` (which must lie within the segment's span
    /// for the value to be meaningful as a segment height).
    pub fn y_at_int(&self, x: i64) -> Rational {
        self.y_at(x as i128, 1)
    }

    /// Whether two segments share any point (endpoint contact counts).
    pub fn touches(&self, other: &Segment) -> bool {
        let (a, b) = (self.left(), self.right());
        let (c, d) = (other.left(), other.right());
        let d1 = orient(a, b, c);
        let d2 = orient(a, b, d);
        let d3 = orient(c, d, a);
        let d4 = orient(c, d, b);
        if d1 * d2 < 0 && d3 * d4 < 0 {
            return true;
        }
        let on = |p: (i64, i64), q: (i64, i64), r: (i64, i64)| {
            orient(p, q, r) == 0
                && r.0 >= p.0.min(q.0)
                && r.0 <= p.0.max(q.0)
                && r.1 >= p.1.min(q.1)
                && r.1 <= p.1.max(q.1)
        };
        on(a, b, c) || on(a, b, d) || on(c, d, a) || on(c, d, b)
    }
}

impl fmt::Display for Segment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({},{})-({},{})", self.x1, self.y1, self.x2, self.y2)
    }
}

/// Extended y-bound: a segment or an infinity.
fn bound_y(seg: Option<&Segment>, x_num: i128, x_den: i128, positive: bool) -> Option<Rational> {
    match seg {
        Some(s) => Some(s.y_at(x_num, x_den)),
        None => {
            let _ = positive;
            None // caller interprets None as the matching infinity
        }
    }
}

/// A trapezoid of the map: the open region bounded above by `top` (or `+∞`),
/// below by `bottom` (or `-∞`), left by the vertical wall at `left_x` (or
/// `-∞`) and right by the wall at `right_x` (or `+∞`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Trapezoid {
    /// Upper bounding segment, `None` for `+∞`.
    pub top: Option<Segment>,
    /// Lower bounding segment, `None` for `-∞`.
    pub bottom: Option<Segment>,
    /// Left wall x-coordinate, `None` for `-∞`.
    pub left_x: Option<i64>,
    /// Right wall x-coordinate, `None` for `+∞`.
    pub right_x: Option<i64>,
}

impl Trapezoid {
    /// Whether the point lies in the trapezoid under the canonical tiling
    /// rule: `left_x ≤ x < right_x` and strictly between bottom and top.
    pub fn contains(&self, q: (i64, i64)) -> bool {
        if let Some(l) = self.left_x {
            if q.0 < l {
                return false;
            }
        }
        if let Some(r) = self.right_x {
            if q.0 >= r {
                return false;
            }
        }
        let y = Rational::integer(q.1);
        if let Some(b) = &self.bottom {
            if y <= b.y_at_int(q.0) {
                return false;
            }
        }
        if let Some(t) = &self.top {
            if y >= t.y_at_int(q.0) {
                return false;
            }
        }
        true
    }

    /// An interior x strictly inside the overlap of the two x-intervals,
    /// as a rational, or `None` if the open overlap is empty.
    fn overlap_x(&self, other: &Trapezoid) -> Option<(i128, i128)> {
        let lo = match (self.left_x, other.left_x) {
            (Some(a), Some(b)) => Some(a.max(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        let hi = match (self.right_x, other.right_x) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) | (None, Some(a)) => Some(a),
            (None, None) => None,
        };
        match (lo, hi) {
            (Some(l), Some(h)) if l >= h => None,
            (Some(l), Some(h)) => Some((l as i128 + h as i128, 2)),
            (Some(l), None) => Some((l as i128 + 1, 1)),
            (None, Some(h)) => Some((h as i128 - 1, 1)),
            (None, None) => Some((0, 1)),
        }
    }

    /// Whether the two open trapezoid regions overlap with positive area —
    /// the conflict relation of Lemma 5.
    pub fn overlaps(&self, other: &Trapezoid) -> bool {
        let Some((num, den)) = self.overlap_x(other) else {
            return false;
        };
        // Bounding segments never cross, so their vertical order is constant
        // across the open x-overlap: test at one interior x.
        let bottoms = [
            bound_y(self.bottom.as_ref(), num, den, false),
            bound_y(other.bottom.as_ref(), num, den, false),
        ];
        let tops = [
            bound_y(self.top.as_ref(), num, den, true),
            bound_y(other.top.as_ref(), num, den, true),
        ];
        let max_bottom = bottoms.iter().flatten().max().copied();
        let min_top = tops.iter().flatten().min().copied();
        match (max_bottom, min_top) {
            (Some(b), Some(t)) => b < t,
            _ => true, // one side unbounded: the gap is nonempty
        }
    }
}

impl fmt::Display for Trapezoid {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let x = |v: Option<i64>, inf: &str| v.map(|x| x.to_string()).unwrap_or_else(|| inf.into());
        write!(
            f,
            "trap[x:{}..{}, bottom:{}, top:{}]",
            x(self.left_x, "-inf"),
            x(self.right_x, "+inf"),
            self.bottom
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-inf".into()),
            self.top
                .map(|s| s.to_string())
                .unwrap_or_else(|| "+inf".into()),
        )
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct TrapRecord {
    trap: Trapezoid,
    /// Segment index of the bottom (preferred) or top bounding segment,
    /// used for ownership; 0 for the empty map's universe trapezoid.
    owner: u32,
}

/// A trapezoidal map over pairwise-disjoint segments, exposed as a
/// range-determined link structure. Nodes are trapezoids; links join
/// trapezoids sharing a wall or a bounding-segment stretch.
///
/// # Example
///
/// ```
/// use skipweb_structures::{RangeDetermined, Segment, TrapezoidalMap};
///
/// let map = TrapezoidalMap::build(vec![
///     Segment::new((0, 0), (10, 0)),
///     Segment::new((2, 5), (11, 6)),
/// ]);
/// assert!(map.num_trapezoids() <= 3 * 2 + 1); // ≤ 3n + 1 trapezoids
/// let hit = map.locate(&(5, 2));
/// assert!(map.trapezoid(hit).contains((5, 2)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TrapezoidalMap {
    segments: Vec<Segment>,
    traps: Vec<TrapRecord>,
    /// Link `l` joins `link_ends[l].0` and `link_ends[l].1` (trap indices).
    link_ends: Vec<(u32, u32)>,
    /// Adjacency: per-trapezoid list of `(neighbor trap, link id)`.
    adjacency: Vec<Vec<(u32, u32)>>,
    /// A trapezoid bounded below by each segment (its entry).
    item_trap: Vec<u32>,
}

impl TrapezoidalMap {
    /// Number of trapezoids in the map.
    pub fn num_trapezoids(&self) -> usize {
        self.traps.len()
    }

    /// Number of adjacency links.
    pub fn num_links(&self) -> usize {
        self.link_ends.len()
    }

    /// The trapezoid region of node id `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node id.
    pub fn trapezoid(&self, id: RangeId) -> Trapezoid {
        self.traps[id.index()].trap
    }

    /// Whether `candidate` keeps the stored set in general position — the
    /// admission check a live update must pass before it may rebuild the
    /// map (building with a violating segment panics, which an actor
    /// serving wire input must never do). The stored set is already valid,
    /// so only the candidate is checked, in O(n): endpoint x-coordinates
    /// distinct from every stored endpoint, and no contact with any stored
    /// segment.
    pub fn admits(&self, candidate: &Segment) -> bool {
        if self.items().contains(candidate) {
            return true; // duplicate: rejected later as a no-op, not a panic
        }
        self.items().iter().all(|s| {
            candidate.x1 != s.x1
                && candidate.x1 != s.x2
                && candidate.x2 != s.x1
                && candidate.x2 != s.x2
                && !candidate.touches(s)
        })
    }

    /// Validates general position: pairwise disjoint, non-vertical, all
    /// endpoint x distinct, returning an error message on violation.
    fn validate(segments: &[Segment]) -> Result<(), String> {
        let mut xs: Vec<i64> = segments.iter().flat_map(|s| [s.x1, s.x2]).collect();
        xs.sort_unstable();
        if xs.windows(2).any(|w| w[0] == w[1]) {
            return Err("endpoint x-coordinates must be pairwise distinct".into());
        }
        for (i, a) in segments.iter().enumerate() {
            for b in &segments[i + 1..] {
                if a.touches(b) {
                    return Err(format!("segments must be disjoint: {a} touches {b}"));
                }
            }
        }
        Ok(())
    }

    fn node_count(&self) -> usize {
        self.traps.len()
    }

    fn resolve_node(&self, id: RangeId) -> usize {
        let n = self.node_count();
        if id.index() < n {
            id.index()
        } else {
            self.link_ends[id.index() - n].1 as usize
        }
    }

    /// One BFS from `from` returning the link-hop distances to `to_a` and
    /// `to_b`, stopping as soon as both are settled (used to resolve the
    /// direction of a link during stepping).
    fn bfs_dists(&self, from: usize, to_a: usize, to_b: usize) -> (usize, usize) {
        let n = self.node_count();
        let mut dist: Vec<Option<usize>> = vec![None; n];
        dist[from] = Some(0);
        let mut queue = VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            if dist[to_a].is_some() && dist[to_b].is_some() {
                break;
            }
            let d = dist[cur].expect("queued nodes have distances");
            for &(nb, _) in &self.adjacency[cur] {
                if dist[nb as usize].is_none() {
                    dist[nb as usize] = Some(d + 1);
                    queue.push_back(nb as usize);
                }
            }
        }
        (
            dist[to_a].expect("trapezoid adjacency graph is connected"),
            dist[to_b].expect("trapezoid adjacency graph is connected"),
        )
    }

    /// Breadth-first link path between two trapezoids (the local walk a
    /// host executes; entry and target are O(1) apart in expectation by
    /// Lemma 5, so the walk is short even though we compute it exactly).
    fn bfs_path(&self, from: usize, to: usize) -> Vec<RangeId> {
        if from == to {
            return vec![RangeId(from as u32)];
        }
        let n = self.node_count();
        let mut prev: Vec<Option<(u32, u32)>> = vec![None; n];
        let mut seen = vec![false; n];
        seen[from] = true;
        let mut queue = VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            if cur == to {
                break;
            }
            for &(nb, link) in &self.adjacency[cur] {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    prev[nb as usize] = Some((cur as u32, link));
                    queue.push_back(nb as usize);
                }
            }
        }
        let mut path = Vec::new();
        let mut cur = to;
        path.push(RangeId(cur as u32));
        while cur != from {
            let (p, link) = prev[cur].expect("trapezoid adjacency graph is connected");
            path.push(RangeId((n + link as usize) as u32));
            path.push(RangeId(p));
            cur = p as usize;
        }
        path.reverse();
        path
    }
}

impl RangeDetermined for TrapezoidalMap {
    type Item = Segment;
    type Query = (i64, i64);
    type Range = Trapezoid;

    fn build(mut items: Vec<Segment>) -> Self {
        items.sort();
        items.dedup();
        if let Err(msg) = Self::validate(&items) {
            panic!("invalid trapezoidal map input: {msg}");
        }
        let n = items.len();
        let mut map = TrapezoidalMap {
            segments: items,
            traps: Vec::new(),
            link_ends: Vec::new(),
            adjacency: Vec::new(),
            item_trap: vec![0; n],
        };
        if n == 0 {
            map.traps.push(TrapRecord {
                trap: Trapezoid {
                    top: None,
                    bottom: None,
                    left_x: None,
                    right_x: None,
                },
                owner: 0,
            });
            map.adjacency.push(Vec::new());
            return map;
        }
        // --- Slab decomposition -------------------------------------------------
        let mut xs: Vec<i64> = map.segments.iter().flat_map(|s| [s.x1, s.x2]).collect();
        xs.sort_unstable();
        // Cells of the previous slab keyed by (bottom, top) segment indices
        // (usize::MAX encodes the infinity sides) -> open trapezoid index.
        let mut open: HashMap<(usize, usize), usize> = HashMap::new();
        // The leftmost slab (-inf, xs[0]) is a single unbounded cell.
        map.traps.push(TrapRecord {
            trap: Trapezoid {
                top: None,
                bottom: None,
                left_x: None,
                right_x: None,
            },
            owner: 0,
        });
        open.insert((usize::MAX, usize::MAX), 0);
        for (i, &x) in xs.iter().enumerate() {
            // Slab (xs[i], xs[i+1]) — or (xs[last], +inf).
            let lo = x;
            let hi = xs.get(i + 1).copied();
            // Segments spanning the slab.
            let mut spanning: Vec<usize> = (0..n)
                .filter(|&s| {
                    let seg = &map.segments[s];
                    seg.x1 <= lo && hi.is_none_or(|h| seg.x2 >= h) && seg.x2 > lo
                })
                .collect();
            // Vertical order at an interior x of the slab.
            let (mx_num, mx_den) = match hi {
                Some(h) => (lo as i128 + h as i128, 2i128),
                None => (lo as i128 + 1, 1),
            };
            spanning.sort_by_key(|&s| map.segments[s].y_at(mx_num, mx_den));
            // Gaps bottom-to-top: (-inf, s0), (s0, s1), ..., (sk-1, +inf).
            let mut next_open: HashMap<(usize, usize), usize> = HashMap::new();
            let mut bounds: Vec<usize> = Vec::with_capacity(spanning.len() + 2);
            bounds.push(usize::MAX);
            bounds.extend(&spanning);
            bounds.push(usize::MAX);
            for w in 0..bounds.len() - 1 {
                let bottom = bounds[w];
                let top = bounds[w + 1];
                let key = (bottom, top);
                // Same bounding pair on both sides of the wall => merge
                // (the vertical extension at x only cuts the gap holding
                // the endpoint, which never has a matching pair).
                if let Some(&t) = open.get(&key) {
                    next_open.insert(key, t);
                } else {
                    let idx = map.traps.len();
                    let trap = Trapezoid {
                        bottom: (bottom != usize::MAX).then(|| map.segments[bottom]),
                        top: (top != usize::MAX).then(|| map.segments[top]),
                        left_x: Some(lo),
                        right_x: None, // patched when the run closes
                    };
                    let owner = if bottom != usize::MAX {
                        bottom as u32
                    } else if top != usize::MAX {
                        top as u32
                    } else {
                        0
                    };
                    map.traps.push(TrapRecord { trap, owner });
                    next_open.insert(key, idx);
                }
            }
            // Close every cell of the previous slab that did not carry over.
            for (key, &t) in &open {
                if next_open.get(key) != Some(&t) {
                    map.traps[t].trap.right_x = Some(lo);
                }
            }
            open = next_open;
        }
        // Cells still open extend to +inf (right_x stays None).
        // --- Ownership entries ---------------------------------------------------
        for (t, rec) in map.traps.iter().enumerate() {
            if let Some(b) = &rec.trap.bottom {
                let s = map
                    .segments
                    .binary_search(b)
                    .expect("bottom segments come from the input set");
                if map.item_trap[s] == 0 {
                    map.item_trap[s] = t as u32;
                }
            }
        }
        // Every segment bounds at least one trapezoid from below; fix any
        // entry that defaulted to 0 incorrectly.
        for s in 0..n {
            if map.traps[map.item_trap[s] as usize].trap.bottom != Some(map.segments[s]) {
                let t = map
                    .traps
                    .iter()
                    .position(|r| r.trap.bottom == Some(map.segments[s]))
                    .expect("every segment bounds a trapezoid from below");
                map.item_trap[s] = t as u32;
            }
        }
        // --- Adjacency ------------------------------------------------------------
        let t_count = map.traps.len();
        map.adjacency = vec![Vec::new(); t_count];
        let add_link = |map: &mut TrapezoidalMap, a: usize, b: usize| {
            let link = map.link_ends.len() as u32;
            map.link_ends.push((a as u32, b as u32));
            map.adjacency[a].push((b as u32, link));
            map.adjacency[b].push((a as u32, link));
        };
        for a in 0..t_count {
            for b in (a + 1)..t_count {
                let (ta, tb) = (map.traps[a].trap, map.traps[b].trap);
                // Wall adjacency: shared vertical wall with overlapping gap.
                let wall = |l: &Trapezoid, r: &Trapezoid| -> bool {
                    match (l.right_x, r.left_x) {
                        (Some(x), Some(y)) if x == y => {
                            let bottoms = [
                                l.bottom.map(|s| s.y_at_int(x)),
                                r.bottom.map(|s| s.y_at_int(x)),
                            ];
                            let tops = [l.top.map(|s| s.y_at_int(x)), r.top.map(|s| s.y_at_int(x))];
                            let max_b = bottoms.iter().flatten().max().copied();
                            let min_t = tops.iter().flatten().min().copied();
                            match (max_b, min_t) {
                                (Some(bb), Some(tt)) => bb < tt,
                                _ => true,
                            }
                        }
                        _ => false,
                    }
                };
                // Segment adjacency: one's top is the other's bottom with
                // x-overlap.
                let stacked = |lower: &Trapezoid, upper: &Trapezoid| -> bool {
                    match (&lower.top, &upper.bottom) {
                        (Some(s1), Some(s2)) if s1 == s2 => {
                            let lo = match (lower.left_x, upper.left_x) {
                                (Some(p), Some(q)) => Some(p.max(q)),
                                (Some(p), None) | (None, Some(p)) => Some(p),
                                (None, None) => None,
                            };
                            let hi = match (lower.right_x, upper.right_x) {
                                (Some(p), Some(q)) => Some(p.min(q)),
                                (Some(p), None) | (None, Some(p)) => Some(p),
                                (None, None) => None,
                            };
                            match (lo, hi) {
                                (Some(l), Some(h)) => l < h,
                                _ => true,
                            }
                        }
                        _ => false,
                    }
                };
                if wall(&ta, &tb) || wall(&tb, &ta) || stacked(&ta, &tb) || stacked(&tb, &ta) {
                    add_link(&mut map, a, b);
                }
            }
        }
        map
    }

    fn items(&self) -> &[Segment] {
        &self.segments
    }

    fn num_ranges(&self) -> usize {
        self.traps.len() + self.link_ends.len()
    }

    fn range(&self, id: RangeId) -> Trapezoid {
        let n = self.node_count();
        let idx = id.index();
        assert!(idx < self.num_ranges(), "range id out of bounds: {id}");
        if idx < n {
            self.traps[idx].trap
        } else {
            self.traps[self.link_ends[idx - n].1 as usize].trap
        }
    }

    fn owner(&self, id: RangeId) -> usize {
        let n = self.node_count();
        let idx = id.index();
        let t = if idx < n {
            idx
        } else {
            self.link_ends[idx - n].1 as usize
        };
        self.traps[t].owner as usize
    }

    fn entry_of_item(&self, item: usize) -> RangeId {
        assert!(item < self.segments.len(), "item index out of bounds");
        RangeId(self.item_trap[item])
    }

    fn neighbors(&self, id: RangeId) -> Vec<RangeId> {
        let n = self.node_count();
        let idx = id.index();
        if idx < n {
            self.adjacency[idx]
                .iter()
                .map(|&(_, link)| RangeId((n + link as usize) as u32))
                .collect()
        } else {
            let (a, b) = self.link_ends[idx - n];
            vec![RangeId(a), RangeId(b)]
        }
    }

    fn locate(&self, q: &(i64, i64)) -> RangeId {
        for (i, rec) in self.traps.iter().enumerate() {
            if rec.trap.contains(*q) {
                return RangeId(i as u32);
            }
        }
        // Boundary fallback (queries on segments/walls): nearest by closure.
        for (i, rec) in self.traps.iter().enumerate() {
            let t = &rec.trap;
            let x_ok = t.left_x.is_none_or(|l| q.0 >= l) && t.right_x.is_none_or(|r| q.0 <= r);
            if !x_ok {
                continue;
            }
            let y = Rational::integer(q.1);
            let below_top = t.top.as_ref().is_none_or(|s| y <= s.y_at_int(q.0));
            let above_bottom = t.bottom.as_ref().is_none_or(|s| y >= s.y_at_int(q.0));
            if below_top && above_bottom {
                return RangeId(i as u32);
            }
        }
        unreachable!("trapezoids tile the plane")
    }

    fn search_path(&self, from: RangeId, q: &(i64, i64)) -> Vec<RangeId> {
        let start = self.resolve_node(from);
        let target = self.resolve_node(self.locate(q));
        let mut path = self.bfs_path(start, target);
        if from.index() >= self.node_count() {
            path.insert(0, from);
        }
        path
    }

    fn search_step(&self, from: RangeId, q: &(i64, i64)) -> Option<RangeId> {
        let n = self.node_count();
        // O(1) termination probe: the unique trapezoid strictly containing
        // q is its locate answer, so the locus needs no scan or BFS. (The
        // remaining steps do pay a locate + BFS each — acceptable because
        // Lemma 5 keeps walks at O(1) expected ranges, but callers stepping
        // through long walks on big maps should prefer `search_path`.)
        if from.index() < n && self.traps[from.index()].trap.contains(*q) {
            return None;
        }
        let target = self.resolve_node(self.locate(q));
        if from.index() < n {
            if from.index() == target {
                return None;
            }
            // The link toward the target on a shortest path.
            return self.bfs_path(from.index(), target).get(1).copied();
        }
        // A link is direction-aware: continue to whichever endpoint is
        // nearer the target (the default's fixed-endpoint normalization
        // would oscillate when the walk entered from that endpoint). One
        // BFS from the target resolves both endpoint distances; the walks
        // themselves are expected O(1) ranges by Lemma 5, so stepping stays
        // close to the one-shot `search_path` cost.
        let (a, b) = self.link_ends[from.index() - n];
        let (a, b) = (a as usize, b as usize);
        if a == target {
            return Some(RangeId(a as u32));
        }
        if b == target {
            return Some(RangeId(b as u32));
        }
        let (da, db) = self.bfs_dists(target, a, b);
        Some(RangeId(if da <= db { a } else { b } as u32))
    }

    fn best_entry(&self, candidates: &[RangeId], q: &(i64, i64)) -> RangeId {
        assert!(!candidates.is_empty(), "conflict list may not be empty");
        candidates
            .iter()
            .copied()
            .find(|id| self.range(*id).contains(*q))
            .unwrap_or(candidates[0])
    }

    fn item_query(item: &Segment) -> (i64, i64) {
        // A point just above the segment near its midpoint: updates route to
        // the trapezoid(s) the segment's insertion or removal reshapes.
        let xm = (item.x1 + item.x2).div_euclid(2);
        let y = item.y_at_int(xm);
        (xm, y.ceil_i64().saturating_add(1))
    }

    fn conflicts(&self, external: &Trapezoid) -> Vec<RangeId> {
        let n = self.node_count();
        let mut out: Vec<RangeId> = (0..n)
            .filter(|&i| self.traps[i].trap.overlaps(external))
            .map(|i| RangeId(i as u32))
            .collect();
        let node_hits: Vec<bool> = (0..n)
            .map(|i| self.traps[i].trap.overlaps(external))
            .collect();
        for (l, &(_, b)) in self.link_ends.iter().enumerate() {
            if node_hits[b as usize] {
                out.push(RangeId((n + l) as u32));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seg(p: (i64, i64), q: (i64, i64)) -> Segment {
        Segment::new(p, q)
    }

    #[test]
    fn empty_map_is_the_whole_plane() {
        let m = TrapezoidalMap::build(vec![]);
        assert_eq!(m.num_trapezoids(), 1);
        assert_eq!(m.num_links(), 0);
        assert!(m.trapezoid(RangeId(0)).contains((123, -456)));
    }

    #[test]
    fn single_segment_yields_four_trapezoids() {
        let m = TrapezoidalMap::build(vec![seg((0, 0), (10, 0))]);
        // left unbounded, above, below, right unbounded
        assert_eq!(m.num_trapezoids(), 4);
        let above = m.locate(&(5, 3));
        let below = m.locate(&(5, -3));
        assert_ne!(above, below);
        assert_eq!(m.trapezoid(above).bottom, Some(seg((0, 0), (10, 0))));
        assert_eq!(m.trapezoid(below).top, Some(seg((0, 0), (10, 0))));
    }

    #[test]
    fn trapezoid_count_respects_3n_plus_1() {
        let segments = vec![
            seg((0, 0), (9, 1)),
            seg((2, 5), (11, 6)),
            seg((-8, -5), (-1, -4)),
            seg((13, 2), (20, -2)),
        ];
        let n = segments.len();
        let m = TrapezoidalMap::build(segments);
        assert!(
            m.num_trapezoids() <= 3 * n + 1,
            "{} > 3n+1",
            m.num_trapezoids()
        );
    }

    #[test]
    fn locate_agrees_with_containment_everywhere() {
        let m = TrapezoidalMap::build(vec![seg((0, 0), (9, 1)), seg((2, 5), (11, 6))]);
        for q in [
            (1, 2),
            (5, 3),
            (5, -7),
            (10, 8),
            (-100, 0),
            (100, 0),
            (5, 100),
        ] {
            let hit = m.locate(&q);
            assert!(
                m.trapezoid(hit).contains(q),
                "locate({q:?}) returned a non-containing trapezoid"
            );
            // Exactly one trapezoid strictly contains an off-boundary point.
            let count = (0..m.num_trapezoids())
                .filter(|&i| m.trapezoid(RangeId(i as u32)).contains(q))
                .count();
            assert_eq!(count, 1, "point {q:?} must lie in exactly one trapezoid");
        }
    }

    #[test]
    fn walls_only_cut_the_gap_with_the_endpoint() {
        // A long low segment and a short high one: the region above the low
        // segment to the right of the high one's right endpoint must merge
        // across that endpoint's wall only where the wall does not cut.
        let low = seg((0, 0), (21, 0));
        let high = seg((3, 10), (8, 10));
        let m = TrapezoidalMap::build(vec![low, high]);
        // Under `low`, x walls at 0 and 21 only: one trapezoid spans 0..21.
        let under = m.locate(&(10, -1));
        let t = m.trapezoid(under);
        assert_eq!(t.left_x, Some(0));
        assert_eq!(t.right_x, Some(21));
        // Between low and high, walls at 3 and 8 cut: three trapezoids.
        let mid_left = m.locate(&(1, 5));
        let mid_center = m.locate(&(5, 5));
        let mid_right = m.locate(&(15, 5));
        assert_ne!(mid_left, mid_center);
        assert_ne!(mid_center, mid_right);
        assert_ne!(mid_left, mid_right);
    }

    #[test]
    fn adjacency_graph_is_connected() {
        let m = TrapezoidalMap::build(vec![seg((0, 0), (9, 1)), seg((2, 5), (11, 6))]);
        let n = m.num_trapezoids();
        let mut seen = vec![false; n];
        let mut queue = VecDeque::from([0usize]);
        seen[0] = true;
        let mut visited = 1;
        while let Some(cur) = queue.pop_front() {
            for &(nb, _) in &m.adjacency[cur] {
                if !seen[nb as usize] {
                    seen[nb as usize] = true;
                    visited += 1;
                    queue.push_back(nb as usize);
                }
            }
        }
        assert_eq!(visited, n, "trapezoid adjacency must be connected");
    }

    #[test]
    fn search_path_reaches_the_target_through_links() {
        let m = TrapezoidalMap::build(vec![seg((0, 0), (9, 1)), seg((2, 5), (11, 6))]);
        let from = m.entry_of_item(0);
        let q = (10, 8);
        let path = m.search_path(from, &q);
        assert_eq!(*path.last().unwrap(), m.locate(&q));
        for pair in path.windows(2) {
            assert!(
                m.neighbors(pair[0]).contains(&pair[1]) || m.neighbors(pair[1]).contains(&pair[0]),
                "path must follow links"
            );
        }
    }

    #[test]
    fn search_step_converges_even_though_bfs_ties_may_reroute() {
        // Stepping recomputes a shortest path from each intermediate range,
        // so the walked route may differ from one `search_path` call on BFS
        // ties — but every step shortens the distance, and the walk must
        // land on the same locus within the path-length budget.
        let m = TrapezoidalMap::build(vec![
            seg((0, 0), (9, 1)),
            seg((2, 5), (11, 6)),
            seg((13, 2), (20, -2)),
        ]);
        for q in [(10, 8), (-50, 0), (15, 0), (5, 3)] {
            for item in 0..m.len() {
                let from = m.entry_of_item(item);
                let mut cur = from;
                let mut steps = 0;
                while let Some(next) = m.search_step(cur, &q) {
                    cur = next;
                    steps += 1;
                    assert!(steps <= m.num_ranges(), "step walk diverged for {q:?}");
                }
                assert_eq!(cur, m.locate(&q), "locus for {q:?}");
                // Every step shortens the BFS distance by one, so the walk
                // length matches the one-shot path length even on reroutes.
                assert_eq!(steps, m.search_path(from, &q).len() - 1, "steps for {q:?}");
            }
        }
    }

    #[test]
    fn conflicts_count_matches_lemma5_identity() {
        // D(T) with T ⊂ S; check conflicts = 1 + a + 2b + 3c for the
        // trapezoid of D(T) containing a probe point.
        let s_all = vec![
            seg((0, 0), (9, 1)),
            seg((2, 5), (11, 6)),
            seg((-8, -5), (-1, -4)),
            seg((13, 2), (20, -2)),
            seg((4, -9), (7, -8)),
        ];
        let t_sub = vec![s_all[0], s_all[1]];
        let coarse = TrapezoidalMap::build(t_sub.clone());
        let fine = TrapezoidalMap::build(s_all.clone());
        for probe in [(5, 3), (-20, 0), (15, 10), (5, -20)] {
            let t = coarse.trapezoid(coarse.locate(&probe));
            let node_conflicts = (0..fine.num_trapezoids())
                .filter(|&i| fine.trapezoid(RangeId(i as u32)).overlaps(&t))
                .count();
            let mut a = 0usize;
            let mut b = 0usize;
            let mut c = 0usize;
            for s in &s_all {
                if t_sub.contains(s) {
                    continue;
                }
                let inside = |p: (i64, i64)| t.contains(p);
                let ends = [inside(s.left()), inside(s.right())]
                    .iter()
                    .filter(|&&v| v)
                    .count();
                match ends {
                    2 => c += 1,
                    1 => b += 1,
                    0 => {
                        // crosses clean through iff it overlaps the region
                        let seg_strip = Trapezoid {
                            top: Some(*s),
                            bottom: Some(*s),
                            left_x: Some(s.x1),
                            right_x: Some(s.x2),
                        };
                        // a segment "cuts" t if its span overlaps t's x-range
                        // and it lies strictly between t's bounds somewhere;
                        // approximate via midpoint sampling of the x-overlap.
                        let _ = seg_strip;
                        let lo = t.left_x.map_or(s.x1, |l| l.max(s.x1));
                        let hi = t.right_x.map_or(s.x2, |r| r.min(s.x2));
                        if lo < hi {
                            let y = s.y_at(lo as i128 + hi as i128, 2);
                            let below_top = t
                                .top
                                .as_ref()
                                .is_none_or(|ts| y < ts.y_at(lo as i128 + hi as i128, 2));
                            let above_bottom = t
                                .bottom
                                .as_ref()
                                .is_none_or(|bs| y > bs.y_at(lo as i128 + hi as i128, 2));
                            if below_top && above_bottom {
                                a += 1;
                            }
                        }
                    }
                    _ => unreachable!(),
                }
            }
            assert_eq!(
                node_conflicts,
                1 + a + 2 * b + 3 * c,
                "Lemma 5 identity for probe {probe:?}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "disjoint")]
    fn crossing_segments_are_rejected() {
        let _ = TrapezoidalMap::build(vec![seg((0, 0), (10, 10)), seg((1, 9), (9, 1))]);
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn duplicate_endpoint_x_rejected() {
        let _ = TrapezoidalMap::build(vec![seg((0, 0), (10, 0)), seg((0, 5), (11, 5))]);
    }

    #[test]
    #[should_panic(expected = "vertical")]
    fn vertical_segment_rejected() {
        let _ = Segment::new((0, 0), (0, 5));
    }

    #[test]
    fn segment_normalizes_left_right() {
        let s = seg((10, 1), (2, 3));
        assert_eq!(s.left(), (2, 3));
        assert_eq!(s.right(), (10, 1));
    }

    #[test]
    fn build_is_canonical_under_input_order() {
        let s1 = seg((0, 0), (9, 1));
        let s2 = seg((2, 5), (11, 6));
        let a = TrapezoidalMap::build(vec![s1, s2]);
        let b = TrapezoidalMap::build(vec![s2, s1]);
        assert_eq!(a, b, "same segment set must yield the same map");
    }

    #[test]
    fn owner_entry_trapezoid_sits_on_its_segment() {
        let segs = vec![seg((0, 0), (9, 1)), seg((2, 5), (11, 6))];
        let m = TrapezoidalMap::build(segs.clone());
        for (i, s) in m.items().iter().enumerate() {
            let t = m.trapezoid(m.entry_of_item(i));
            assert_eq!(t.bottom, Some(*s), "entry trapezoid lies above its segment");
        }
    }
}
