//! Compressed digital tries over a fixed alphabet (§3.2).
//!
//! The range of a node `v` is the singleton `{str(v)}` — the string spelled
//! by the path to `v` — and the range of an edge `(v, w)` is the set of
//! strings `str(v)·y` for `y` a (possibly empty) prefix of the edge label,
//! i.e. the *path* from `str(v)` to `str(w)` in the infinite prefix tree.
//! Two ranges conflict when those paths share a vertex. Lemma 4 bounds the
//! expected conflicts of a half-sample trie range by `O(1)` for fixed
//! alphabets; [`crate::properties`] validates it statistically.

use std::fmt;

use crate::traits::{RangeDetermined, RangeId};

fn is_prefix(a: &[u8], b: &[u8]) -> bool {
    a.len() <= b.len() && &b[..a.len()] == a
}

fn lcp_len(a: &[u8], b: &[u8]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

/// A trie range: the path of prefix-tree vertices from `start` to `end`,
/// where `start` is a prefix of `end`. Node ranges have `start == end`.
///
/// # Example
///
/// ```
/// use skipweb_structures::trie::TrieRange;
///
/// let edge = TrieRange::path(b"ca".to_vec(), b"cart".to_vec());
/// assert!(edge.covers(b"car"));
/// assert!(!edge.covers(b"cat"));
/// let node = TrieRange::point(b"carp".to_vec());
/// assert!(!edge.intersects(&node));
/// assert!(edge.intersects(&TrieRange::path(b"cart".to_vec(), b"cartoon".to_vec())));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct TrieRange {
    start: Vec<u8>,
    end: Vec<u8>,
}

impl TrieRange {
    /// The singleton range of a node spelling `s`.
    pub fn point(s: Vec<u8>) -> Self {
        TrieRange {
            start: s.clone(),
            end: s,
        }
    }

    /// The path range from `start` to `end`.
    ///
    /// # Panics
    ///
    /// Panics if `start` is not a prefix of `end`.
    pub fn path(start: Vec<u8>, end: Vec<u8>) -> Self {
        assert!(
            is_prefix(&start, &end),
            "trie range start must be a prefix of its end"
        );
        TrieRange { start, end }
    }

    /// First vertex of the path.
    pub fn start(&self) -> &[u8] {
        &self.start
    }

    /// Last vertex of the path.
    pub fn end(&self) -> &[u8] {
        &self.end
    }

    /// Whether the path passes through the prefix-tree vertex `s`.
    pub fn covers(&self, s: &[u8]) -> bool {
        is_prefix(&self.start, s) && is_prefix(s, &self.end)
    }

    /// Whether two paths share a prefix-tree vertex — the conflict relation.
    pub fn intersects(&self, other: &TrieRange) -> bool {
        let meet: &[u8] = if self.start.len() >= other.start.len() {
            &self.start
        } else {
            &other.start
        };
        is_prefix(&self.start, meet)
            && is_prefix(&other.start, meet)
            && is_prefix(meet, &self.end)
            && is_prefix(meet, &other.end)
            // starts must be comparable for `meet` to lie on both paths
            && (is_prefix(&self.start, &other.start) || is_prefix(&other.start, &self.start))
    }
}

impl fmt::Display for TrieRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:?} -> {:?}]",
            String::from_utf8_lossy(&self.start),
            String::from_utf8_lossy(&self.end)
        )
    }
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct TrieNode {
    /// `str(v)` is `items[repr][..prefix_len]`.
    prefix_len: u32,
    repr: u32,
    parent: Option<u32>,
    parent_edge: Option<u32>,
    children: Vec<u32>,
    child_edges: Vec<u32>,
    /// Item index when `str(v)` is itself a stored string.
    terminal: Option<u32>,
}

/// A compressed (Patricia) trie over byte strings, exposed as a
/// range-determined link structure.
///
/// Range ids `0..num_nodes` are nodes (root first); the rest are edges.
///
/// # Example
///
/// ```
/// use skipweb_structures::{CompressedTrie, RangeDetermined};
///
/// let trie = CompressedTrie::build(vec![
///     "car".to_string(),
///     "cart".to_string(),
///     "dog".to_string(),
/// ]);
/// assert_eq!(trie.strings_with_prefix(b"ca"), vec!["car", "cart"]);
/// let locus = trie.locate(&"care".to_string());
/// assert!(trie.range(locus).covers(b"car"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedTrie {
    items: Vec<String>,
    nodes: Vec<TrieNode>,
    /// Edge `e` joins `edge_ends[e].0` (parent) to `edge_ends[e].1` (child).
    edge_ends: Vec<(u32, u32)>,
    /// Terminal node of each item.
    item_node: Vec<u32>,
}

impl CompressedTrie {
    /// Number of trie nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of trie edges.
    pub fn num_edges(&self) -> usize {
        self.edge_ends.len()
    }

    fn str_of(&self, node: usize) -> &[u8] {
        let n = &self.nodes[node];
        &self.items[n.repr as usize].as_bytes()[..n.prefix_len as usize]
    }

    /// The string spelled by the path to node `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node.
    pub fn node_string(&self, id: RangeId) -> &str {
        let n = &self.nodes[id.index()];
        &self.items[n.repr as usize][..n.prefix_len as usize]
    }

    /// Whether `id` denotes a terminal node (a stored string).
    pub fn is_terminal(&self, id: RangeId) -> bool {
        id.index() < self.nodes.len() && self.nodes[id.index()].terminal.is_some()
    }

    /// All stored strings having `prefix` as a prefix, in sorted order —
    /// the paper's motivating "ISBN prefix" query.
    pub fn strings_with_prefix(&self, prefix: &[u8]) -> Vec<&str> {
        let lo = self.items.partition_point(|s| s.as_bytes() < prefix);
        self.items[lo..]
            .iter()
            .take_while(|s| is_prefix(prefix, s.as_bytes()))
            .map(String::as_str)
            .collect()
    }

    /// The longest prefix of `q` that lies on the trie (is a prefix of some
    /// stored string), as its byte length.
    pub fn matched_len(&self, q: &[u8]) -> usize {
        let (_, matched) = self.walk(q);
        matched
    }

    /// Walks from the root matching `q`; returns the deepest fully-matched
    /// node and the number of bytes of `q` that lie on the trie.
    fn walk(&self, q: &[u8]) -> (usize, usize) {
        let mut cur = 0usize;
        loop {
            let cur_len = self.nodes[cur].prefix_len as usize;
            if cur_len == q.len() {
                return (cur, cur_len);
            }
            let next_byte = q[cur_len];
            let mut advanced = false;
            for &c in &self.nodes[cur].children {
                let cs = self.str_of(c as usize);
                if cs[cur_len] == next_byte {
                    // Match as much of the edge label as possible.
                    let l = lcp_len(&cs[cur_len..], &q[cur_len..]);
                    if cur_len + l == cs.len() {
                        cur = c as usize;
                        advanced = true;
                    } else {
                        return (cur, cur_len + l);
                    }
                    break;
                }
            }
            if !advanced {
                return (cur, cur_len);
            }
        }
    }

    /// Node or edge range covering the prefix-tree vertex `p` (which must
    /// lie on the trie). Returns the node when `p` spells a node exactly.
    fn position_of(&self, p: &[u8]) -> Option<RangeId> {
        let (node, matched) = self.walk(p);
        if matched < p.len() {
            return None; // p leaves the trie
        }
        let node_len = self.nodes[node].prefix_len as usize;
        if node_len == p.len() {
            return Some(RangeId(node as u32));
        }
        // p sits strictly inside the child edge continuing with p[node_len].
        for (&c, &e) in self.nodes[node]
            .children
            .iter()
            .zip(&self.nodes[node].child_edges)
        {
            let cs = self.str_of(c as usize);
            if cs.len() > node_len && cs[node_len] == p[node_len] {
                debug_assert!(is_prefix(p, cs));
                return Some(RangeId((self.nodes.len() + e as usize) as u32));
            }
        }
        None
    }

    fn build_rec(&mut self, lo: usize, hi: usize, parent: Option<u32>) -> u32 {
        debug_assert!(lo < hi);
        let node_idx = self.nodes.len() as u32;
        let first = self.items[lo].as_bytes();
        let last = self.items[hi - 1].as_bytes();
        let l = lcp_len(first, last);
        let mut terminal = None;
        let mut child_start = lo;
        if first.len() == l {
            terminal = Some(lo as u32);
            child_start = lo + 1;
        }
        self.nodes.push(TrieNode {
            prefix_len: l as u32,
            repr: lo as u32,
            parent,
            parent_edge: None,
            children: Vec::new(),
            child_edges: Vec::new(),
            terminal,
        });
        if terminal.is_some() {
            self.item_node[lo] = node_idx;
        }
        let mut start = child_start;
        while start < hi {
            let digit = self.items[start].as_bytes()[l];
            let mut end = start + 1;
            while end < hi && self.items[end].as_bytes()[l] == digit {
                end += 1;
            }
            let child = self.build_rec(start, end, Some(node_idx));
            let edge_idx = self.edge_ends.len() as u32;
            self.edge_ends.push((node_idx, child));
            self.nodes[child as usize].parent_edge = Some(edge_idx);
            self.nodes[node_idx as usize].children.push(child);
            self.nodes[node_idx as usize].child_edges.push(edge_idx);
            start = end;
        }
        node_idx
    }
}

impl RangeDetermined for CompressedTrie {
    type Item = String;
    type Query = String;
    type Range = TrieRange;

    fn build(mut items: Vec<String>) -> Self {
        items.sort();
        items.dedup();
        let n = items.len();
        let mut trie = CompressedTrie {
            items,
            nodes: Vec::with_capacity(2 * n + 1),
            edge_ends: Vec::new(),
            item_node: vec![0; n],
        };
        if n == 0 {
            trie.nodes.push(TrieNode {
                prefix_len: 0,
                repr: 0,
                parent: None,
                parent_edge: None,
                children: Vec::new(),
                child_edges: Vec::new(),
                terminal: None,
            });
            return trie;
        }
        // Force the root to spell the empty string so every query has a
        // location, hanging the compressed top below it when necessary.
        let first_nonempty_lcp = {
            let first = trie.items[0].as_bytes();
            let last = trie.items[n - 1].as_bytes();
            lcp_len(first, last)
        };
        if first_nonempty_lcp == 0 {
            trie.build_rec(0, n, None);
        } else {
            trie.nodes.push(TrieNode {
                prefix_len: 0,
                repr: 0,
                parent: None,
                parent_edge: None,
                children: Vec::new(),
                child_edges: Vec::new(),
                terminal: None,
            });
            let top = trie.build_rec(0, n, Some(0));
            let edge_idx = trie.edge_ends.len() as u32;
            trie.edge_ends.push((0, top));
            trie.nodes[top as usize].parent_edge = Some(edge_idx);
            trie.nodes[0].children.push(top);
            trie.nodes[0].child_edges.push(edge_idx);
        }
        trie
    }

    fn items(&self) -> &[String] {
        &self.items
    }

    fn num_ranges(&self) -> usize {
        self.nodes.len() + self.edge_ends.len()
    }

    fn range(&self, id: RangeId) -> TrieRange {
        let n = self.nodes.len();
        let idx = id.index();
        assert!(idx < self.num_ranges(), "range id out of bounds: {id}");
        if idx < n {
            TrieRange::point(self.str_of(idx).to_vec())
        } else {
            let (p, c) = self.edge_ends[idx - n];
            TrieRange::path(
                self.str_of(p as usize).to_vec(),
                self.str_of(c as usize).to_vec(),
            )
        }
    }

    fn owner(&self, id: RangeId) -> usize {
        let n = self.nodes.len();
        let idx = id.index();
        if idx < n {
            self.nodes[idx].repr as usize
        } else {
            let (_, c) = self.edge_ends[idx - n];
            self.nodes[c as usize].repr as usize
        }
    }

    fn entry_of_item(&self, item: usize) -> RangeId {
        assert!(item < self.items.len(), "item index out of bounds");
        RangeId(self.item_node[item])
    }

    fn neighbors(&self, id: RangeId) -> Vec<RangeId> {
        let n = self.nodes.len();
        let idx = id.index();
        if idx < n {
            let node = &self.nodes[idx];
            let mut out = Vec::with_capacity(node.children.len() + 1);
            if let Some(pe) = node.parent_edge {
                out.push(RangeId((n + pe as usize) as u32));
            }
            out.extend(
                node.child_edges
                    .iter()
                    .map(|&e| RangeId((n + e as usize) as u32)),
            );
            out
        } else {
            let (p, c) = self.edge_ends[idx - n];
            vec![RangeId(p), RangeId(c)]
        }
    }

    fn locate(&self, q: &String) -> RangeId {
        let qb = q.as_bytes();
        let (node, matched) = self.walk(qb);
        let node_len = self.nodes[node].prefix_len as usize;
        if matched == node_len {
            return RangeId(node as u32);
        }
        // The locus sits inside the child edge continuing with q[node_len].
        for (&c, &e) in self.nodes[node]
            .children
            .iter()
            .zip(&self.nodes[node].child_edges)
        {
            let cs = self.str_of(c as usize);
            if cs.len() > node_len && cs[node_len] == qb[node_len] {
                return RangeId((self.nodes.len() + e as usize) as u32);
            }
        }
        RangeId(node as u32)
    }

    fn search_path(&self, from: RangeId, q: &String) -> Vec<RangeId> {
        let n = self.nodes.len();
        let qb = q.as_bytes();
        let matched = self.matched_len(qb);
        let target = self.locate(q);
        let mut path = vec![from];
        // Normalize the cursor to a node; an edge start walks to its deeper
        // endpoint unless it already covers the locus.
        let mut cur = if from.index() < n {
            from.index()
        } else {
            if from == target {
                return path;
            }
            let (p, c) = self.edge_ends[from.index() - n];
            // Move toward the locus: up if this edge is not on q's line.
            let next = if is_prefix(self.str_of(c as usize), &qb[..matched]) {
                c
            } else {
                p
            };
            path.push(RangeId(next));
            next as usize
        };
        // Ascend until str(cur) lies on the matched line. The locus itself
        // can be an edge on this ascent (the query diverges inside the edge
        // the start node hangs from); the walk ends on first touch instead
        // of overshooting to the parent and returning.
        while !is_prefix(self.str_of(cur), &qb[..matched]) {
            let node = &self.nodes[cur];
            let parent = node.parent.expect("the root lies on every line");
            if let Some(pe) = node.parent_edge {
                let eid = RangeId((n + pe as usize) as u32);
                path.push(eid);
                if eid == target {
                    return path;
                }
            }
            path.push(RangeId(parent));
            cur = parent as usize;
        }
        // Descend along the matched line to the locus.
        loop {
            if RangeId(cur as u32) == target {
                return path;
            }
            let cur_len = self.nodes[cur].prefix_len as usize;
            let mut moved = false;
            for (&c, &e) in self.nodes[cur]
                .children
                .iter()
                .zip(&self.nodes[cur].child_edges)
            {
                let cs = self.str_of(c as usize);
                if cur_len < matched && cs[cur_len] == qb[cur_len] {
                    let eid = RangeId((n + e as usize) as u32);
                    path.push(eid);
                    if eid == target {
                        return path;
                    }
                    path.push(RangeId(c));
                    cur = c as usize;
                    moved = true;
                    break;
                }
            }
            if !moved {
                return path;
            }
        }
    }

    fn best_entry(&self, candidates: &[RangeId], q: &String) -> RangeId {
        assert!(!candidates.is_empty(), "conflict list may not be empty");
        let qb = q.as_bytes();
        candidates
            .iter()
            .copied()
            .filter(|id| is_prefix(self.range(*id).start(), qb))
            .max_by_key(|id| {
                let r = self.range(*id);
                (r.start().len(), lcp_len(r.end(), qb))
            })
            .unwrap_or(candidates[0])
    }

    fn item_query(item: &String) -> String {
        item.clone()
    }

    fn conflicts(&self, external: &TrieRange) -> Vec<RangeId> {
        let n = self.nodes.len();
        let a = external.start();
        let b = external.end();
        let Some(pos_a) = self.position_of(a) else {
            return Vec::new();
        };
        let mut out: Vec<RangeId> = Vec::new();
        let push = |id: RangeId, out: &mut Vec<RangeId>| {
            if !out.contains(&id) {
                out.push(id);
            }
        };
        // Walk the b-line from the position of `a`, collecting every node on
        // the line and every edge touching it.
        let mut cur: usize = if pos_a.index() < n {
            pos_a.index()
        } else {
            // `a` sits strictly inside an edge: that edge conflicts; continue
            // from its child endpoint if still on the line toward b.
            push(pos_a, &mut out);
            let (_, c) = self.edge_ends[pos_a.index() - n];
            let cs = self.str_of(c as usize);
            if !is_prefix(cs, b) {
                // The edge dives past b or off the line; if its child string
                // extends b within the edge, the edge is the sole conflict.
                return out;
            }
            c as usize
        };
        loop {
            let cur_s = self.str_of(cur);
            debug_assert!(is_prefix(a, cur_s) || is_prefix(cur_s, a));
            if is_prefix(a, cur_s) {
                // Node on the path [a, b].
                push(RangeId(cur as u32), &mut out);
                if let Some(pe) = self.nodes[cur].parent_edge {
                    push(RangeId((n + pe as usize) as u32), &mut out);
                }
            }
            // Every child edge touches str(cur) ∈ [a, b], hence conflicts.
            let cur_len = cur_s.len();
            let mut next: Option<usize> = None;
            for (&c, &e) in self.nodes[cur]
                .children
                .iter()
                .zip(&self.nodes[cur].child_edges)
            {
                if is_prefix(a, cur_s) {
                    push(RangeId((n + e as usize) as u32), &mut out);
                }
                let cs = self.str_of(c as usize);
                if cur_len < b.len() && cs[cur_len] == b[cur_len] && is_prefix(cs, b) {
                    next = Some(c as usize);
                }
            }
            match next {
                Some(c) => cur = c,
                None => break,
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trie(words: &[&str]) -> CompressedTrie {
        CompressedTrie::build(words.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn build_sorts_and_dedups() {
        let t = trie(&["dog", "cat", "dog", "car"]);
        assert_eq!(t.items(), &["car", "cat", "dog"]);
    }

    #[test]
    fn empty_trie_is_a_bare_root() {
        let t = trie(&[]);
        assert_eq!(t.num_nodes(), 1);
        assert_eq!(t.num_edges(), 0);
        assert_eq!(t.locate(&"x".to_string()), RangeId(0));
    }

    #[test]
    fn root_spells_empty_string_even_with_common_prefix() {
        let t = trie(&["car", "cart"]);
        assert_eq!(t.node_string(RangeId(0)), "");
        // root -> "car" -> "cart"
        assert_eq!(t.num_nodes(), 3);
        assert_eq!(t.num_edges(), 2);
    }

    #[test]
    fn terminal_nodes_mark_stored_strings() {
        let t = trie(&["car", "cart", "dog"]);
        for (i, s) in t.items().iter().enumerate() {
            let node = t.entry_of_item(i);
            assert!(t.is_terminal(node));
            assert_eq!(t.node_string(node), s);
        }
    }

    #[test]
    fn compression_branches_below_root() {
        let t = trie(&["abcde", "abcdf", "xyz"]);
        // nodes: root, "abcd", "abcde", "abcdf", "xyz"
        assert_eq!(t.num_nodes(), 5);
        let inner = (0..t.num_nodes())
            .map(|v| RangeId(v as u32))
            .find(|id| t.node_string(*id) == "abcd")
            .expect("lcp node exists");
        assert!(!t.is_terminal(inner));
    }

    #[test]
    fn search_step_converges_on_the_locate_answer() {
        let t = trie(&["car", "carpet", "cart", "dog", "dot", "x"]);
        for q in ["car", "care", "carpets", "do", "zebra", ""] {
            let q = q.to_string();
            for item in 0..t.len() {
                let from = t.entry_of_item(item);
                let mut walked = vec![from];
                let mut cur = from;
                while let Some(next) = t.search_step(cur, &q) {
                    walked.push(next);
                    cur = next;
                    assert!(walked.len() <= 4 * t.num_ranges(), "step walk diverged");
                }
                assert_eq!(cur, t.locate(&q), "locus for {q:?}");
                assert_eq!(walked, t.search_path(from, &q), "path for {q:?}");
            }
        }
    }

    #[test]
    fn locate_exact_match_hits_terminal_node() {
        let t = trie(&["car", "cart", "dog"]);
        let id = t.locate(&"cart".to_string());
        assert!(t.is_terminal(id));
        assert_eq!(t.node_string(id), "cart");
    }

    #[test]
    fn locate_divergence_inside_edge_returns_edge() {
        let t = trie(&["cart", "dog"]);
        // "care" diverges inside the root->"cart" edge after "car".
        let id = t.locate(&"care".to_string());
        let r = t.range(id);
        assert!(r.covers(b"car"));
        assert!(r.start().len() < 3 || r.start() == b"car");
    }

    #[test]
    fn locate_query_extending_leaf_hits_leaf() {
        let t = trie(&["car", "dog"]);
        let id = t.locate(&"carpet".to_string());
        // matched stops at "car" (a node); locus is that node.
        assert_eq!(t.node_string(id), "car");
    }

    #[test]
    fn matched_len_is_longest_on_trie_prefix() {
        let t = trie(&["cart", "dog"]);
        assert_eq!(t.matched_len(b"care"), 3);
        assert_eq!(t.matched_len(b"dig"), 1);
        assert_eq!(t.matched_len(b"zebra"), 0);
        assert_eq!(t.matched_len(b"cart"), 4);
        assert_eq!(t.matched_len(b"carts"), 4);
    }

    #[test]
    fn strings_with_prefix_returns_sorted_matches() {
        let t = trie(&["car", "cart", "carbon", "dog"]);
        assert_eq!(t.strings_with_prefix(b"car"), vec!["car", "carbon", "cart"]);
        assert_eq!(t.strings_with_prefix(b"ca"), vec!["car", "carbon", "cart"]);
        assert!(t.strings_with_prefix(b"z").is_empty());
        assert_eq!(t.strings_with_prefix(b"").len(), 4);
    }

    #[test]
    fn ranges_of_nodes_are_points_and_edges_are_paths() {
        let t = trie(&["car", "cart"]);
        for id in t.range_ids() {
            let r = t.range(id);
            if id.index() < t.num_nodes() {
                assert_eq!(r.start(), r.end());
            } else {
                assert!(r.start().len() < r.end().len());
            }
        }
    }

    #[test]
    fn trie_range_intersection_rules() {
        let e1 = TrieRange::path(b"".to_vec(), b"car".to_vec());
        let e2 = TrieRange::path(b"car".to_vec(), b"cart".to_vec());
        let e3 = TrieRange::path(b"cat".to_vec(), b"cats".to_vec());
        assert!(e1.intersects(&e2)); // share vertex "car"
        assert!(!e2.intersects(&e3)); // diverge at "ca"
        assert!(!e1.intersects(&e3)); // "cat" not on [.."car"]
        let n = TrieRange::point(b"ca".to_vec());
        assert!(e1.intersects(&n));
        assert!(!e2.intersects(&n));
    }

    #[test]
    fn conflicts_match_brute_force_intersection() {
        let coarse = trie(&["car", "dote"]);
        let fine = trie(&["car", "cart", "carbon", "dog", "dote", "dove"]);
        for id in coarse.range_ids() {
            let ext = coarse.range(id);
            let got = {
                let mut v = fine.conflicts(&ext);
                v.sort();
                v
            };
            let want: Vec<RangeId> = fine
                .range_ids()
                .filter(|rid| fine.range(*rid).intersects(&ext))
                .collect();
            assert_eq!(got, want, "conflicts for {ext}");
        }
    }

    #[test]
    fn conflicts_off_trie_are_empty() {
        let fine = trie(&["car"]);
        let ext = TrieRange::point(b"zebra".to_vec());
        assert!(fine.conflicts(&ext).is_empty());
    }

    #[test]
    fn search_path_walks_to_locus() {
        let t = trie(&["car", "cart", "dog", "dove"]);
        let from = t.entry_of_item(0); // "car"
        let q = "dove".to_string();
        let path = t.search_path(from, &q);
        assert_eq!(path[0], from);
        assert_eq!(*path.last().unwrap(), t.locate(&q));
        for pair in path.windows(2) {
            assert!(
                t.neighbors(pair[0]).contains(&pair[1]) || t.neighbors(pair[1]).contains(&pair[0]),
                "path must follow trie edges"
            );
        }
    }

    #[test]
    fn search_path_from_target_is_trivial() {
        let t = trie(&["car", "dog"]);
        let q = "car".to_string();
        let at = t.locate(&q);
        assert_eq!(t.search_path(at, &q), vec![at]);
    }

    #[test]
    fn best_entry_prefers_deepest_on_line() {
        let t = trie(&["car", "cart", "carton", "dog"]);
        let all: Vec<RangeId> = t.range_ids().collect();
        let q = "carton".to_string();
        let best = t.best_entry(&all, &q);
        assert_eq!(best, t.locate(&q));
    }

    #[test]
    fn build_is_canonical_under_input_order() {
        let a = trie(&["cart", "car", "dog"]);
        let b = trie(&["dog", "cart", "car"]);
        assert_eq!(a, b, "same string set must yield the same structure");
    }

    #[test]
    fn owner_points_to_subtree_representative() {
        let t = trie(&["car", "cart", "dog"]);
        for id in t.range_ids() {
            assert!(t.owner(id) < t.len());
        }
        // The terminal node of "dog" is owned by "dog" itself.
        let dog = t.entry_of_item(2);
        assert_eq!(t.owner(dog), 2);
    }
}
