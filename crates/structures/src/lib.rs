#![warn(missing_docs)]

//! Range-determined link structures (§2.1 of the skip-webs paper).
//!
//! A *range-determined link structure* `D(S)` is a data structure built
//! deterministically from a ground set `S ⊆ U`, made of nodes and links, where
//! every node and link carries a **range** (a subset of the universe `U`) and
//! incidence between a node and a link holds exactly when their ranges
//! intersect. Two ranges *conflict* when they intersect (§2.2).
//!
//! The paper instantiates the framework with four such structures, all
//! implemented here:
//!
//! * [`linked_list`] — sorted doubly-linked lists over a total order
//!   (Lemma 1: set-halving with `E[|C(Q,S)|] ≤ 7`),
//! * [`quadtree`] — compressed quadtrees/octrees for points in `R^d`
//!   (Lemma 3),
//! * [`trie`] — compressed digital tries over a fixed alphabet (Lemma 4),
//! * [`trapezoid`] — trapezoidal maps of non-crossing segments (Lemma 5).
//!
//! The common abstraction is [`traits::RangeDetermined`]; the skip-web core
//! is generic over it. [`properties`] hosts the statistical set-halving
//! validators shared by tests and the figure-reproduction benches.

pub mod geometry;
pub mod interval;
pub mod linked_list;
pub mod properties;
pub mod quadtree;
pub mod traits;
pub mod trapezoid;
pub mod trie;

pub use interval::KeyInterval;
pub use linked_list::SortedLinkedList;
pub use quadtree::{CompressedQuadtree, PointKey};
pub use traits::{RangeDetermined, RangeId};
pub use trapezoid::{Segment, TrapezoidalMap};
pub use trie::CompressedTrie;
