//! The sorted doubly-linked list — the paper's running example (§2.1) and the
//! base structure of one-dimensional skip-webs.
//!
//! Nodes carry singleton ranges `[x, x]`; links carry the closed interval
//! `[x, y]` of their endpoints, with sentinel links to `±∞` at both ends.
//! Lemma 1 (the set-halving lemma for sorted lists) is validated
//! statistically in [`crate::properties`] and property tests.

use crate::interval::{Endpoint, KeyInterval};
use crate::traits::{RangeDetermined, RangeId};

/// A sorted doubly-linked list over `u64` keys, exposed as a
/// range-determined link structure.
///
/// Range ids are laid out densely: ids `0..m` are the `m` key nodes in
/// sorted order; ids `m..2m+1` are the `m + 1` links (`link j` sits left of
/// `node j`). An empty list has the single link `[-∞, +∞]`.
///
/// # Example
///
/// ```
/// use skipweb_structures::{RangeDetermined, SortedLinkedList};
///
/// let list = SortedLinkedList::build(vec![30, 10, 20, 10]);
/// assert_eq!(list.items(), &[10, 20, 30]);        // deduped + sorted
/// assert_eq!(list.num_ranges(), 7);               // 3 nodes + 4 links
/// let locus = list.locate(&25);
/// assert!(list.range(locus).contains(25));
/// assert_eq!(list.nearest_key(25), Some(20));     // 25 is closer to 20
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedLinkedList {
    keys: Vec<u64>,
}

impl SortedLinkedList {
    /// Number of keys stored.
    fn m(&self) -> usize {
        self.keys.len()
    }

    /// Maps a range id to its position on the line:
    /// `link j → 2j`, `node i → 2i + 1`. Positions increase left to right.
    fn position(&self, id: RangeId) -> usize {
        let m = self.m();
        let idx = id.index();
        if idx < m {
            2 * idx + 1
        } else {
            2 * (idx - m)
        }
    }

    /// Inverse of [`position`](Self::position).
    fn id_at(&self, pos: usize) -> RangeId {
        let m = self.m();
        if pos % 2 == 1 {
            RangeId((pos / 2) as u32)
        } else {
            RangeId((m + pos / 2) as u32)
        }
    }

    /// The nearest stored key to `q` (ties to the smaller key), or `None`
    /// for an empty list. This is the answer to the paper's 1-D
    /// nearest-neighbour query once the search has reached level 0.
    pub fn nearest_key(&self, q: u64) -> Option<u64> {
        if self.keys.is_empty() {
            return None;
        }
        match self.keys.binary_search(&q) {
            Ok(i) => Some(self.keys[i]),
            Err(0) => Some(self.keys[0]),
            Err(j) if j == self.keys.len() => Some(self.keys[j - 1]),
            Err(j) => {
                let left = self.keys[j - 1];
                let right = self.keys[j];
                if q - left <= right - q {
                    Some(left)
                } else {
                    Some(right)
                }
            }
        }
    }

    /// Whether `id` denotes a key node (as opposed to a link).
    pub fn is_node(&self, id: RangeId) -> bool {
        id.index() < self.m()
    }

    /// The ranges immediately left and right of `id` on the line
    /// (`None` at the sentinels' outer ends). Used by distributed shards
    /// that materialize the doubly-linked list per host.
    pub fn adjacent(&self, id: RangeId) -> (Option<RangeId>, Option<RangeId>) {
        if self.m() == 0 {
            return (None, None);
        }
        let pos = self.position(id);
        let last = 2 * self.m();
        let left = (pos > 0).then(|| self.id_at(pos - 1));
        let right = (pos < last).then(|| self.id_at(pos + 1));
        (left, right)
    }
}

impl RangeDetermined for SortedLinkedList {
    type Item = u64;
    type Query = u64;
    type Range = KeyInterval;

    fn build(mut items: Vec<u64>) -> Self {
        items.sort_unstable();
        items.dedup();
        SortedLinkedList { keys: items }
    }

    fn items(&self) -> &[u64] {
        &self.keys
    }

    fn num_ranges(&self) -> usize {
        if self.keys.is_empty() {
            1
        } else {
            2 * self.m() + 1
        }
    }

    fn range(&self, id: RangeId) -> KeyInterval {
        let m = self.m();
        if m == 0 {
            assert_eq!(id.index(), 0, "empty list has a single range");
            return KeyInterval::everything();
        }
        let idx = id.index();
        assert!(idx < self.num_ranges(), "range id out of bounds: {id}");
        if idx < m {
            KeyInterval::singleton(self.keys[idx])
        } else {
            let j = idx - m;
            if j == 0 {
                KeyInterval::below(self.keys[0])
            } else if j == m {
                KeyInterval::above(self.keys[m - 1])
            } else {
                KeyInterval::between(self.keys[j - 1], self.keys[j])
            }
        }
    }

    fn owner(&self, id: RangeId) -> usize {
        let m = self.m();
        if m == 0 {
            return 0;
        }
        let idx = id.index();
        if idx < m {
            idx
        } else {
            // Link j is owned by its left key (item j-1); the left sentinel
            // belongs to the minimum key's item.
            (idx - m).saturating_sub(1)
        }
    }

    fn entry_of_item(&self, item: usize) -> RangeId {
        assert!(item < self.m(), "item index out of bounds");
        RangeId(item as u32)
    }

    fn neighbors(&self, id: RangeId) -> Vec<RangeId> {
        let m = self.m();
        if m == 0 {
            return Vec::new();
        }
        let pos = self.position(id);
        let last = 2 * m;
        let mut out = Vec::with_capacity(2);
        if pos > 0 {
            out.push(self.id_at(pos - 1));
        }
        if pos < last {
            out.push(self.id_at(pos + 1));
        }
        out
    }

    fn locate(&self, q: &u64) -> RangeId {
        let m = self.m();
        if m == 0 {
            return RangeId(0);
        }
        match self.keys.binary_search(q) {
            Ok(i) => RangeId(i as u32),
            Err(j) => RangeId((m + j) as u32),
        }
    }

    fn search_path(&self, from: RangeId, q: &u64) -> Vec<RangeId> {
        let target = self.locate(q);
        let (a, b) = (self.position(from), self.position(target));
        if a <= b {
            (a..=b).map(|p| self.id_at(p)).collect()
        } else {
            (b..=a).rev().map(|p| self.id_at(p)).collect()
        }
    }

    fn search_step(&self, from: RangeId, q: &u64) -> Option<RangeId> {
        // O(1) positional comparison instead of materializing the path.
        let target = self.position(self.locate(q));
        let at = self.position(from);
        match at.cmp(&target) {
            std::cmp::Ordering::Equal => None,
            std::cmp::Ordering::Less => Some(self.id_at(at + 1)),
            std::cmp::Ordering::Greater => Some(self.id_at(at - 1)),
        }
    }

    fn best_entry(&self, candidates: &[RangeId], q: &u64) -> RangeId {
        assert!(!candidates.is_empty(), "conflict list may not be empty");
        let target = self.position(self.locate(q));
        *candidates
            .iter()
            .min_by_key(|id| {
                let p = self.position(**id);
                p.abs_diff(target)
            })
            .expect("nonempty")
    }

    fn item_query(item: &u64) -> u64 {
        *item
    }

    fn probe_range(item: &u64) -> KeyInterval {
        // A singleton list's node range is just `[item, item]`; skip the
        // structure build the default would pay per update.
        KeyInterval::singleton(*item)
    }

    fn conflicts(&self, external: &KeyInterval) -> Vec<RangeId> {
        let m = self.m();
        if m == 0 {
            return vec![RangeId(0)];
        }
        // Ranges are contiguous on the line, so the conflict list is the run
        // of positions between the leftmost and rightmost intersecting range.
        let lo_pos = match external.lo() {
            Endpoint::NegInf => 0,
            Endpoint::PosInf => 2 * m,
            Endpoint::Key(k) => {
                // Leftmost range whose closed interval reaches k: when k is a
                // stored key, the link ending at k touches it.
                match self.keys.binary_search(&k) {
                    Ok(i) => 2 * i,
                    Err(j) => 2 * j,
                }
            }
        };
        let hi_pos = match external.hi() {
            Endpoint::NegInf => 0,
            Endpoint::PosInf => 2 * m,
            Endpoint::Key(k) => match self.keys.binary_search(&k) {
                // The link starting at a stored key k touches it too.
                Ok(i) => 2 * i + 2,
                Err(j) => 2 * j,
            },
        };
        (lo_pos..=hi_pos).map(|p| self.id_at(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(keys: &[u64]) -> SortedLinkedList {
        SortedLinkedList::build(keys.to_vec())
    }

    #[test]
    fn build_sorts_and_dedups() {
        let l = list(&[5, 1, 5, 3]);
        assert_eq!(l.items(), &[1, 3, 5]);
        assert_eq!(l.len(), 3);
        assert!(!l.is_empty());
    }

    #[test]
    fn empty_list_has_universe_link() {
        let l = list(&[]);
        assert_eq!(l.num_ranges(), 1);
        assert_eq!(l.range(RangeId(0)), KeyInterval::everything());
        assert_eq!(l.locate(&99), RangeId(0));
        assert!(l.neighbors(RangeId(0)).is_empty());
        assert_eq!(l.nearest_key(7), None);
    }

    #[test]
    fn ranges_tile_the_line() {
        let l = list(&[10, 20]);
        // nodes: 0:{10} 1:{20}; links: 2:[-inf,10] 3:[10,20] 4:[20,+inf]
        assert_eq!(l.num_ranges(), 5);
        assert_eq!(l.range(RangeId(0)), KeyInterval::singleton(10));
        assert_eq!(l.range(RangeId(2)), KeyInterval::below(10));
        assert_eq!(l.range(RangeId(3)), KeyInterval::between(10, 20));
        assert_eq!(l.range(RangeId(4)), KeyInterval::above(20));
    }

    #[test]
    fn incidence_matches_range_intersection() {
        // §2.1: a node and link are incident iff their ranges intersect.
        let l = list(&[10, 20, 30]);
        for id in l.range_ids() {
            let r = l.range(id);
            for other in l.range_ids() {
                if id == other {
                    continue;
                }
                let inc = l.neighbors(id).contains(&other);
                let isect = r.intersects(&l.range(other));
                // Incident ranges always intersect.
                if inc {
                    assert!(isect, "incident but disjoint: {id} {other}");
                }
                // Non-adjacent intersecting pairs can only be node/link pairs
                // sharing an endpoint — for a list, intersection implies
                // adjacency except for identical-endpoint cases.
                if isect && !inc {
                    // the only such pairs share exactly one key endpoint and
                    // are two links around the same node or a node inside
                    // the other's closed interval; for a list of distinct
                    // keys, intersecting non-neighbours must share a key.
                    let a = l.range(id);
                    let b = l.range(other);
                    assert!(
                        a.lo() == b.hi() || b.lo() == a.hi(),
                        "unexpected intersection {a:?} {b:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn locate_finds_node_for_member_and_link_for_gap() {
        let l = list(&[10, 20, 30]);
        assert_eq!(l.locate(&20), RangeId(1)); // node {20}
        assert_eq!(l.range(l.locate(&25)), KeyInterval::between(20, 30));
        assert_eq!(l.range(l.locate(&5)), KeyInterval::below(10));
        assert_eq!(l.range(l.locate(&35)), KeyInterval::above(30));
    }

    #[test]
    fn search_path_walks_contiguously_and_inclusively() {
        let l = list(&[10, 20, 30]);
        let from = l.entry_of_item(0); // node {10}
        let path = l.search_path(from, &30);
        // {10} -> [10,20] -> {20} -> [20,30] -> {30}
        assert_eq!(path.len(), 5);
        assert_eq!(path[0], from);
        assert_eq!(*path.last().unwrap(), l.locate(&30));
        // Walking right to left works too.
        let back = l.search_path(l.locate(&30), &10);
        assert_eq!(back.len(), 5);
        assert_eq!(*back.last().unwrap(), l.entry_of_item(0));
    }

    #[test]
    fn search_step_reproduces_search_path_range_by_range() {
        let l = list(&[10, 20, 30, 40]);
        for q in [0u64, 10, 15, 33, 40, 99] {
            for item in 0..4 {
                let from = l.entry_of_item(item);
                let mut walked = vec![from];
                let mut cur = from;
                while let Some(next) = l.search_step(cur, &q) {
                    walked.push(next);
                    cur = next;
                }
                assert_eq!(walked, l.search_path(from, &q), "q={q} from={from}");
                assert_eq!(cur, l.locate(&q));
            }
        }
    }

    #[test]
    fn search_path_from_target_is_single_range() {
        let l = list(&[10, 20, 30]);
        let at = l.locate(&25);
        assert_eq!(l.search_path(at, &25), vec![at]);
    }

    #[test]
    fn conflicts_match_brute_force_intersection() {
        let l = list(&[10, 20, 30, 40]);
        let cases = [
            KeyInterval::between(15, 35),
            KeyInterval::singleton(20),
            KeyInterval::below(10),
            KeyInterval::above(40),
            KeyInterval::everything(),
            KeyInterval::between(20, 20),
            KeyInterval::between(11, 19),
        ];
        for q in cases {
            let mut got = l.conflicts(&q);
            got.sort();
            let want: Vec<RangeId> = l
                .range_ids()
                .filter(|id| l.range(*id).intersects(&q))
                .collect();
            assert_eq!(got, want, "conflicts for {q}");
        }
    }

    #[test]
    fn conflicts_against_empty_list_hit_the_universe_link() {
        let l = list(&[]);
        assert_eq!(l.conflicts(&KeyInterval::singleton(5)), vec![RangeId(0)]);
    }

    #[test]
    fn best_entry_picks_range_nearest_query() {
        let l = list(&[10, 20, 30]);
        let candidates: Vec<RangeId> = l.range_ids().collect();
        let chosen = l.best_entry(&candidates, &29);
        assert_eq!(chosen, l.locate(&29));
    }

    #[test]
    fn owner_assigns_links_to_left_keys() {
        let l = list(&[10, 20]);
        assert_eq!(l.owner(RangeId(0)), 0); // node {10}
        assert_eq!(l.owner(RangeId(1)), 1); // node {20}
        assert_eq!(l.owner(RangeId(2)), 0); // [-inf,10] -> min key's item
        assert_eq!(l.owner(RangeId(3)), 0); // [10,20] -> left key
        assert_eq!(l.owner(RangeId(4)), 1); // [20,inf] -> left key
    }

    #[test]
    fn nearest_key_prefers_closer_and_breaks_ties_low() {
        let l = list(&[10, 20]);
        assert_eq!(l.nearest_key(14), Some(10));
        assert_eq!(l.nearest_key(16), Some(20));
        assert_eq!(l.nearest_key(15), Some(10)); // tie -> smaller
        assert_eq!(l.nearest_key(10), Some(10));
        assert_eq!(l.nearest_key(0), Some(10));
        assert_eq!(l.nearest_key(u64::MAX), Some(20));
    }

    #[test]
    fn neighbors_connect_the_line() {
        let l = list(&[10, 20]);
        // node {10} (id 0) sits between links [-inf,10] (id 2) and [10,20] (id 3)
        assert_eq!(l.neighbors(RangeId(0)), vec![RangeId(2), RangeId(3)]);
        // left sentinel link has a single right neighbor
        assert_eq!(l.neighbors(RangeId(2)), vec![RangeId(0)]);
        // right sentinel link has a single left neighbor
        assert_eq!(l.neighbors(RangeId(4)), vec![RangeId(1)]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn range_rejects_bad_id() {
        let _ = list(&[1]).range(RangeId(9));
    }
}
