//! Compressed quadtrees/octrees for `D`-dimensional point sets (§3.1).
//!
//! The tree subdivides the bounding hypercube into `2^D` subcubes and
//! compresses single-child chains into edges, giving `O(n)` nodes and links
//! regardless of point distribution (the uncompressed tree can be `O(n)`
//! deep). The range of a node is its hypercube; the range of a link is the
//! hypercube of its child node, exactly as §3.1 defines.
//!
//! # Conflict lists
//!
//! Quadtree cells **nest**, so the literal "every intersecting range" reading
//! of §2.2 would include the whole ancestor chain of a cell (the root cube
//! intersects everything) — under which no `O(1)` bound can hold. The
//! operative conflict list — the one the skip-web descent and Lemma 3's
//! `O(1)` bound (via the skip-quadtree results of Eppstein, Goodrich, Sun)
//! actually use — is the *minimal relevant set* of `D(S)` for a cell `C` of
//! `D(T)`:
//!
//! * the deepest node of `D(S)` whose cell contains `C` (the location of `C`
//!   in the finer tree), and
//! * the maximal nodes of `D(S)` strictly inside `C` (at most `2^D` of them,
//!   all children of that deepest node), with the links joining them.
//!
//! [`CompressedQuadtree::conflicts`] implements that set; `EXPERIMENTS.md`
//! records the distinction.

use crate::geometry::{Cell, GridPoint, MAX_DEPTH};
use crate::traits::{RangeDetermined, RangeId};

/// Point type stored in quadtrees — re-exported grid points.
pub type PointKey<const D: usize> = GridPoint<D>;

#[derive(Debug, Clone, PartialEq, Eq)]
struct Node<const D: usize> {
    cell: Cell<D>,
    parent: Option<u32>,
    parent_link: Option<u32>,
    children: Vec<u32>,
    child_links: Vec<u32>,
    /// Index of the stored point for leaves.
    point: Option<u32>,
    /// Representative item (minimum Morton code in the subtree); owns the
    /// node for host placement.
    owner: u32,
}

/// A compressed quadtree (`D = 2`) / octree (`D = 3`) over grid points,
/// exposed as a range-determined link structure.
///
/// Range ids `0..num_nodes` are nodes (root first); the rest are links in
/// parent-before-child discovery order.
///
/// # Example
///
/// ```
/// use skipweb_structures::{CompressedQuadtree, PointKey, RangeDetermined};
///
/// let pts = vec![
///     PointKey::new([1, 1]),
///     PointKey::new([2, 3]),
///     PointKey::new([1_000_000, 2_000_000]),
/// ];
/// let qt = CompressedQuadtree::<2>::build(pts);
/// assert_eq!(qt.len(), 3);
/// let hit = qt.locate(&PointKey::new([1, 1]));
/// assert!(qt.is_leaf(hit));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompressedQuadtree<const D: usize> {
    points: Vec<GridPoint<D>>,
    codes: Vec<u128>,
    nodes: Vec<Node<D>>,
    /// Link `l` joins `link_ends[l].0` (parent) to `link_ends[l].1` (child).
    link_ends: Vec<(u32, u32)>,
    /// Leaf node of each item.
    item_leaf: Vec<u32>,
}

impl<const D: usize> CompressedQuadtree<D> {
    /// Number of tree nodes (internal + leaves + the universe root).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of tree links.
    pub fn num_links(&self) -> usize {
        self.link_ends.len()
    }

    /// Whether `id` denotes a leaf node holding a point.
    pub fn is_leaf(&self, id: RangeId) -> bool {
        id.index() < self.nodes.len() && self.nodes[id.index()].point.is_some()
    }

    /// The point stored at a leaf node, if `id` is a leaf.
    pub fn leaf_point(&self, id: RangeId) -> Option<GridPoint<D>> {
        if id.index() < self.nodes.len() {
            self.nodes[id.index()]
                .point
                .map(|p| self.points[p as usize])
        } else {
            None
        }
    }

    /// The cell of a node id (not a link id).
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a node.
    pub fn node_cell(&self, id: RangeId) -> Cell<D> {
        self.nodes[id.index()].cell
    }

    /// Depth of a range's cell — deeper is more specific.
    pub fn depth_of(&self, id: RangeId) -> u32 {
        self.range_cell(id).depth()
    }

    fn range_cell(&self, id: RangeId) -> Cell<D> {
        let n = self.nodes.len();
        let idx = id.index();
        if idx < n {
            self.nodes[idx].cell
        } else {
            let (_, child) = self.link_ends[idx - n];
            self.nodes[child as usize].cell
        }
    }

    /// Item indices of all points in the subtree rooted at node `id`,
    /// capped at `cap` results (breadth-first).
    pub fn subtree_points(&self, id: RangeId, cap: usize) -> Vec<usize> {
        let mut out = Vec::new();
        let mut queue = std::collections::VecDeque::from([id.index()]);
        while let Some(i) = queue.pop_front() {
            if out.len() >= cap {
                break;
            }
            let node = &self.nodes[i];
            if let Some(p) = node.point {
                out.push(p as usize);
            }
            queue.extend(node.children.iter().map(|&c| c as usize));
        }
        out
    }

    /// The stored point nearest to `q` among the subtree of `node`, used by
    /// the approximate-nearest-neighbour example flows of §3.1.
    pub fn nearest_in_subtree(&self, node: RangeId, q: &GridPoint<D>) -> Option<GridPoint<D>> {
        self.subtree_points(node, usize::MAX)
            .into_iter()
            .map(|i| self.points[i])
            .min_by_key(|p| p.distance_sq(q))
    }

    /// Parent node id of a node, if any.
    pub fn parent_of(&self, id: RangeId) -> Option<RangeId> {
        self.nodes[id.index()].parent.map(RangeId)
    }

    fn build_rec(&mut self, lo: usize, hi: usize, parent: Option<u32>) -> u32 {
        debug_assert!(lo < hi);
        let node_idx = self.nodes.len() as u32;
        if hi - lo == 1 {
            self.nodes.push(Node {
                cell: Cell::of_point(&self.points[lo]),
                parent,
                parent_link: None,
                children: Vec::new(),
                child_links: Vec::new(),
                point: Some(lo as u32),
                owner: lo as u32,
            });
            self.item_leaf[lo] = node_idx;
            return node_idx;
        }
        // Longest common Morton prefix of the (sorted) slice = LCP of ends.
        let diff = self.codes[lo] ^ self.codes[hi - 1];
        let used_bits = (MAX_DEPTH as usize) * D;
        let lead = (diff.leading_zeros() as usize).saturating_sub(128 - used_bits);
        let depth = (lead / D) as u32;
        debug_assert!(
            depth < MAX_DEPTH,
            "distinct points must split above unit depth"
        );
        let cell = Cell::at_depth(self.codes[lo], depth);
        self.nodes.push(Node {
            cell,
            parent,
            parent_link: None,
            children: Vec::new(),
            child_links: Vec::new(),
            point: None,
            owner: lo as u32,
        });
        // Partition by the D-bit digit at `depth` and recurse per group.
        let mut start = lo;
        while start < hi {
            let digit = cell.child_digit(self.codes[start]);
            let mut end = start + 1;
            while end < hi && cell.child_digit(self.codes[end]) == digit {
                end += 1;
            }
            let child = self.build_rec(start, end, Some(node_idx));
            let link_idx = self.link_ends.len() as u32;
            self.link_ends.push((node_idx, child));
            self.nodes[child as usize].parent_link = Some(link_idx);
            self.nodes[node_idx as usize].children.push(child);
            self.nodes[node_idx as usize].child_links.push(link_idx);
            start = end;
        }
        debug_assert!(self.nodes[node_idx as usize].children.len() >= 2);
        node_idx
    }

    /// The child of node `idx` whose cell contains `q`, if any.
    fn child_containing(&self, idx: usize, q: &GridPoint<D>) -> Option<u32> {
        self.nodes[idx]
            .children
            .iter()
            .copied()
            .find(|&c| self.nodes[c as usize].cell.contains_point(q))
    }

    /// Deepest node whose cell contains (or equals) `target`.
    fn deepest_containing(&self, target: &Cell<D>) -> usize {
        let mut cur = 0usize;
        'descend: loop {
            for &c in &self.nodes[cur].children {
                if self.nodes[c as usize].cell.contains_cell(target) {
                    cur = c as usize;
                    continue 'descend;
                }
            }
            return cur;
        }
    }
}

impl<const D: usize> RangeDetermined for CompressedQuadtree<D> {
    type Item = GridPoint<D>;
    type Query = GridPoint<D>;
    type Range = Cell<D>;

    /// Canonical order is the Morton (Z-order) curve, not `GridPoint`'s
    /// derived lexicographic `Ord` — see [`build`](Self::build).
    fn canonical_cmp(a: &GridPoint<D>, b: &GridPoint<D>) -> std::cmp::Ordering {
        a.morton().cmp(&b.morton())
    }

    fn build(mut items: Vec<GridPoint<D>>) -> Self {
        items.sort_by_key(GridPoint::morton);
        items.dedup();
        let codes: Vec<u128> = items.iter().map(GridPoint::morton).collect();
        let n = items.len();
        let mut tree = CompressedQuadtree {
            points: items,
            codes,
            nodes: Vec::with_capacity(2 * n + 1),
            link_ends: Vec::new(),
            item_leaf: vec![0; n],
        };
        if n == 0 {
            tree.nodes.push(Node {
                cell: Cell::universe(),
                parent: None,
                parent_link: None,
                children: Vec::new(),
                child_links: Vec::new(),
                point: None,
                owner: 0,
            });
            return tree;
        }
        // The root is always the universe cell so that every query point has
        // a location; the compressed top cell hangs below it when smaller.
        tree.nodes.push(Node {
            cell: Cell::universe(),
            parent: None,
            parent_link: None,
            children: Vec::new(),
            child_links: Vec::new(),
            point: None,
            owner: 0,
        });
        let top = tree.build_rec(0, n, Some(0));
        if tree.nodes[top as usize].cell == Cell::universe() {
            // The compressed top cell *is* the universe: splice out the
            // redundant root by re-rooting (keep ids dense: swap contents).
            // Simplest: make the universe root adopt top's children/point.
            let top_node = tree.nodes[top as usize].clone();
            tree.nodes[0].children = top_node.children.clone();
            tree.nodes[0].child_links = top_node.child_links.clone();
            tree.nodes[0].point = top_node.point;
            tree.nodes[0].owner = top_node.owner;
            for &c in &top_node.children {
                tree.nodes[c as usize].parent = Some(0);
            }
            for &l in &top_node.child_links {
                tree.link_ends[l as usize].0 = 0;
            }
            if let Some(p) = top_node.point {
                tree.item_leaf[p as usize] = 0;
            }
            // Orphan the old top node (unreachable; keep ids stable).
            tree.nodes[top as usize].children.clear();
            tree.nodes[top as usize].child_links.clear();
            tree.nodes[top as usize].point = None;
            tree.nodes[top as usize].parent = None;
        } else {
            let link_idx = tree.link_ends.len() as u32;
            tree.link_ends.push((0, top));
            tree.nodes[top as usize].parent_link = Some(link_idx);
            tree.nodes[0].children.push(top);
            tree.nodes[0].child_links.push(link_idx);
            tree.nodes[0].owner = tree.nodes[top as usize].owner;
        }
        tree
    }

    fn items(&self) -> &[GridPoint<D>] {
        &self.points
    }

    fn num_ranges(&self) -> usize {
        self.nodes.len() + self.link_ends.len()
    }

    fn range(&self, id: RangeId) -> Cell<D> {
        assert!(
            id.index() < self.num_ranges(),
            "range id out of bounds: {id}"
        );
        self.range_cell(id)
    }

    fn owner(&self, id: RangeId) -> usize {
        let n = self.nodes.len();
        let idx = id.index();
        if idx < n {
            self.nodes[idx].owner as usize
        } else {
            let (_, child) = self.link_ends[idx - n];
            self.nodes[child as usize].owner as usize
        }
    }

    fn entry_of_item(&self, item: usize) -> RangeId {
        assert!(item < self.points.len(), "item index out of bounds");
        RangeId(self.item_leaf[item])
    }

    fn neighbors(&self, id: RangeId) -> Vec<RangeId> {
        let n = self.nodes.len();
        let idx = id.index();
        if idx < n {
            let node = &self.nodes[idx];
            let mut out: Vec<RangeId> = Vec::with_capacity(node.children.len() + 1);
            if let Some(pl) = node.parent_link {
                out.push(RangeId(n as u32 + pl));
            }
            out.extend(node.child_links.iter().map(|&l| RangeId(n as u32 + l)));
            out
        } else {
            let (parent, child) = self.link_ends[idx - n];
            vec![RangeId(parent), RangeId(child)]
        }
    }

    fn locate(&self, q: &GridPoint<D>) -> RangeId {
        let mut cur = 0usize;
        while let Some(c) = self.child_containing(cur, q) {
            cur = c as usize;
        }
        RangeId(cur as u32)
    }

    fn search_path(&self, from: RangeId, q: &GridPoint<D>) -> Vec<RangeId> {
        let n = self.nodes.len() as u32;
        let mut path = vec![from];
        // Normalize to a node: a link walks to its child endpoint first.
        let mut cur = if from.index() < n as usize {
            from.index()
        } else {
            let (_, child) = self.link_ends[from.index() - n as usize];
            path.push(RangeId(child));
            child as usize
        };
        // Ascend until the current cell contains q.
        while !self.nodes[cur].cell.contains_point(q) {
            let node = &self.nodes[cur];
            let parent = node
                .parent
                .expect("the universe root contains every query point");
            if let Some(pl) = node.parent_link {
                path.push(RangeId(n + pl));
            }
            path.push(RangeId(parent));
            cur = parent as usize;
        }
        // Descend while a child contains q.
        while let Some(c) = self.child_containing(cur, q) {
            if let Some(pl) = self.nodes[c as usize].parent_link {
                path.push(RangeId(n + pl));
            }
            path.push(RangeId(c));
            cur = c as usize;
        }
        path
    }

    fn search_step(&self, from: RangeId, q: &GridPoint<D>) -> Option<RangeId> {
        let n = self.nodes.len();
        if from.index() >= n {
            // A link is direction-aware: descend to its child endpoint when
            // that subtree still contains q, ascend to the parent otherwise
            // (the default's child-first normalization would oscillate when
            // stepping range by range through an ascent).
            let (p, c) = self.link_ends[from.index() - n];
            return Some(if self.nodes[c as usize].cell.contains_point(q) {
                RangeId(c)
            } else {
                RangeId(p)
            });
        }
        let cur = from.index();
        if !self.nodes[cur].cell.contains_point(q) {
            // Ascend through the parent link (the root contains everything).
            let node = &self.nodes[cur];
            return Some(match node.parent_link {
                Some(pl) => RangeId((n + pl as usize) as u32),
                None => RangeId(node.parent.expect("non-root nodes have parents")),
            });
        }
        // Descend through the containing child's incoming link, if any.
        let c = self.child_containing(cur, q)?;
        Some(match self.nodes[c as usize].parent_link {
            Some(pl) => RangeId((n + pl as usize) as u32),
            None => RangeId(c),
        })
    }

    fn best_entry(&self, candidates: &[RangeId], q: &GridPoint<D>) -> RangeId {
        assert!(!candidates.is_empty(), "conflict list may not be empty");
        candidates
            .iter()
            .copied()
            .filter(|id| self.range_cell(*id).contains_point(q))
            // Deepest containing cell; on ties prefer the node over its
            // incoming link (both carry the same cell).
            .max_by_key(|id| (self.range_cell(*id).depth(), id.index() < self.nodes.len()))
            .unwrap_or(candidates[0])
    }

    fn item_query(item: &GridPoint<D>) -> GridPoint<D> {
        *item
    }

    fn conflicts(&self, external: &Cell<D>) -> Vec<RangeId> {
        let n = self.nodes.len() as u32;
        let u = self.deepest_containing(external);
        let mut out = vec![RangeId(u as u32)];
        for (&c, &l) in self.nodes[u]
            .children
            .iter()
            .zip(&self.nodes[u].child_links)
        {
            if external.contains_cell(&self.nodes[c as usize].cell) {
                out.push(RangeId(n + l));
                out.push(RangeId(c));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pts2(v: &[[u32; 2]]) -> Vec<GridPoint<2>> {
        v.iter().map(|&c| GridPoint::new(c)).collect()
    }

    #[test]
    fn build_dedups_and_sorts_by_morton() {
        let qt = CompressedQuadtree::<2>::build(pts2(&[[5, 5], [1, 1], [5, 5]]));
        assert_eq!(qt.len(), 2);
        assert!(qt.items()[0].morton() < qt.items()[1].morton());
    }

    #[test]
    fn empty_tree_is_just_the_universe() {
        let qt = CompressedQuadtree::<2>::build(vec![]);
        assert_eq!(qt.num_nodes(), 1);
        assert_eq!(qt.num_links(), 0);
        assert_eq!(qt.locate(&GridPoint::new([9, 9])), RangeId(0));
        assert!(qt.is_empty());
    }

    #[test]
    fn single_point_hangs_under_universe_root() {
        let qt = CompressedQuadtree::<2>::build(pts2(&[[7, 7]]));
        assert_eq!(qt.num_nodes(), 2);
        assert_eq!(qt.num_links(), 1);
        let leaf = qt.entry_of_item(0);
        assert!(qt.is_leaf(leaf));
        assert_eq!(qt.leaf_point(leaf), Some(GridPoint::new([7, 7])));
        assert_eq!(qt.parent_of(leaf), Some(RangeId(0)));
    }

    #[test]
    fn internal_nodes_have_at_least_two_children_below_root() {
        let qt = CompressedQuadtree::<2>::build(pts2(&[
            [0, 0],
            [1, 0],
            [0, 1],
            [1 << 30, 1 << 30],
            [3 << 29, 5],
        ]));
        for (i, node) in qt.nodes.iter().enumerate() {
            if i == 0 || node.point.is_some() || node.parent.is_none() {
                continue; // root, leaves, or the orphaned splice slot
            }
            assert!(
                node.children.len() >= 2,
                "compressed internal node {i} must branch"
            );
        }
    }

    #[test]
    fn locate_finds_the_leaf_for_member_points() {
        let points = pts2(&[[3, 3], [100, 100], [3, 100], [1 << 31, 1 << 20]]);
        let qt = CompressedQuadtree::<2>::build(points.clone());
        for (i, p) in qt.items().iter().enumerate() {
            let hit = qt.locate(p);
            assert!(qt.is_leaf(hit), "member point must land on its leaf");
            assert_eq!(qt.leaf_point(hit), Some(*p));
            assert_eq!(qt.entry_of_item(i), hit);
        }
        let _ = points;
    }

    #[test]
    fn locate_nonmember_lands_on_deepest_containing_cell() {
        let qt = CompressedQuadtree::<2>::build(pts2(&[[0, 0], [0, 2], [1 << 31, 1 << 31]]));
        let q = GridPoint::new([5, 5]);
        let hit = qt.locate(&q);
        assert!(qt.node_cell(hit).contains_point(&q));
        // Every child of the hit must exclude q (deepest).
        for nb in qt.neighbors(hit) {
            if nb.index() >= qt.num_nodes() {
                let cell = qt.range(nb);
                if cell.depth() > qt.node_cell(hit).depth() {
                    assert!(!cell.contains_point(&q));
                }
            }
        }
    }

    #[test]
    fn search_path_ascends_then_descends() {
        let qt = CompressedQuadtree::<2>::build(pts2(&[[0, 0], [3, 3], [1 << 31, 1 << 31]]));
        let from = qt.entry_of_item(0); // leaf at (0,0)
        let q = GridPoint::new([1 << 31, 1 << 31]);
        let path = qt.search_path(from, &q);
        assert_eq!(path[0], from);
        let last = *path.last().unwrap();
        assert_eq!(last, qt.locate(&q));
        // Consecutive path entries are incident ranges.
        for pair in path.windows(2) {
            assert!(
                qt.neighbors(pair[0]).contains(&pair[1])
                    || qt.neighbors(pair[1]).contains(&pair[0]),
                "path must follow structure links"
            );
        }
    }

    #[test]
    fn search_step_converges_on_the_locate_answer() {
        let qt = CompressedQuadtree::<2>::build(pts2(&[
            [0, 0],
            [3, 3],
            [7, 1],
            [1 << 31, 1 << 31],
            [(1 << 31) + 9, 5],
        ]));
        for q in [[1u32 << 31, 1 << 31], [5, 5], [0, 0], [1 << 20, 1 << 10]] {
            let q = GridPoint::new(q);
            for item in 0..qt.len() {
                let from = qt.entry_of_item(item);
                let mut walked = vec![from];
                let mut cur = from;
                while let Some(next) = qt.search_step(cur, &q) {
                    walked.push(next);
                    cur = next;
                    assert!(walked.len() <= 4 * qt.num_ranges(), "step walk diverged");
                }
                assert_eq!(cur, qt.locate(&q), "locus for {q:?}");
                assert_eq!(walked, qt.search_path(from, &q), "path for {q:?}");
            }
        }
    }

    #[test]
    fn conflicts_contain_a_range_holding_any_point_of_the_cell() {
        let coarse = CompressedQuadtree::<2>::build(pts2(&[[0, 0], [1 << 31, 1 << 31]]));
        let fine = CompressedQuadtree::<2>::build(pts2(&[
            [0, 0],
            [4, 4],
            [9, 1],
            [1 << 31, 1 << 31],
            [(1 << 31) + 5, 1 << 31],
        ]));
        let q = GridPoint::new([5, 5]);
        let coarse_range = coarse.range(coarse.locate(&q));
        let conflicts = fine.conflicts(&coarse_range);
        assert!(!conflicts.is_empty());
        // The descent invariant: some conflicting range contains q.
        assert!(conflicts
            .iter()
            .any(|id| fine.range(*id).contains_point(&q)));
    }

    #[test]
    fn conflicts_of_universe_are_constant_size() {
        let fine =
            CompressedQuadtree::<2>::build(pts2(&[[0, 0], [1, 1], [2, 2], [3, 3], [1 << 31, 1]]));
        let conflicts = fine.conflicts(&Cell::universe());
        // root + at most 2^D children and their links
        assert!(conflicts.len() <= 1 + 2 * 4);
    }

    #[test]
    fn best_entry_prefers_deepest_containing_cell() {
        let qt = CompressedQuadtree::<2>::build(pts2(&[[0, 0], [6, 6], [1 << 31, 0]]));
        let q = GridPoint::new([6, 6]);
        let all: Vec<RangeId> = qt.range_ids().collect();
        let best = qt.best_entry(&all, &q);
        assert_eq!(best, qt.locate(&q));
    }

    #[test]
    fn owner_is_a_subtree_member() {
        let qt = CompressedQuadtree::<2>::build(pts2(&[[0, 0], [9, 9], [1 << 31, 1 << 31]]));
        for id in qt.range_ids() {
            let owner = qt.owner(id);
            assert!(owner < qt.len());
        }
    }

    #[test]
    fn octree_3d_builds_and_locates() {
        let pts = vec![
            GridPoint::new([0u32, 0, 0]),
            GridPoint::new([5, 5, 5]),
            GridPoint::new([1 << 31, 0, 1 << 20]),
        ];
        let qt = CompressedQuadtree::<3>::build(pts);
        for (i, p) in qt.items().iter().enumerate() {
            assert_eq!(qt.locate(p), qt.entry_of_item(i));
        }
    }

    #[test]
    fn nearest_in_subtree_returns_closest_point() {
        let qt = CompressedQuadtree::<2>::build(pts2(&[[0, 0], [10, 10], [200, 200]]));
        let q = GridPoint::new([11, 11]);
        let best = qt.nearest_in_subtree(RangeId(0), &q).unwrap();
        assert_eq!(best, GridPoint::new([10, 10]));
    }

    #[test]
    fn build_is_canonical_under_input_order() {
        let a = CompressedQuadtree::<2>::build(pts2(&[[9, 9], [1, 1], [5, 0]]));
        let b = CompressedQuadtree::<2>::build(pts2(&[[5, 0], [9, 9], [1, 1]]));
        assert_eq!(a, b, "same point set must yield the same structure");
    }

    #[test]
    fn deep_cluster_stays_shallow_via_compression() {
        // A tight cluster that would be ~30 deep uncompressed.
        let pts = pts2(&[[0, 0], [0, 1], [1, 0], [1, 1], [1 << 31, 1 << 31]]);
        let qt = CompressedQuadtree::<2>::build(pts);
        // Nodes: universe root + top split + cluster cell(s) + 5 leaves.
        assert!(qt.num_nodes() <= 11, "compression bounds node count");
    }
}
