//! One-dimensional ranges: closed key intervals with infinite sentinels.
//!
//! For the sorted linked list of §2.1, the range of a node storing `x` is the
//! singleton `[x, x]` and the range of a link joining `x` and `y` is the
//! closed interval `[x, y]`. The list carries sentinel links to `±∞` so that
//! every query point of the universe lies in some range.

use std::fmt;

/// An endpoint of a one-dimensional range: a key or an infinity sentinel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Endpoint {
    /// Below every key.
    NegInf,
    /// A concrete key.
    Key(u64),
    /// Above every key.
    PosInf,
}

impl Endpoint {
    fn rank(self) -> (u8, u64) {
        match self {
            Endpoint::NegInf => (0, 0),
            Endpoint::Key(k) => (1, k),
            Endpoint::PosInf => (2, 0),
        }
    }
}

impl PartialOrd for Endpoint {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Endpoint {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.rank().cmp(&other.rank())
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endpoint::NegInf => write!(f, "-inf"),
            Endpoint::Key(k) => write!(f, "{k}"),
            Endpoint::PosInf => write!(f, "+inf"),
        }
    }
}

/// A closed interval `[lo, hi]` of the one-dimensional key universe.
///
/// # Example
///
/// ```
/// use skipweb_structures::KeyInterval;
///
/// let link = KeyInterval::between(10, 20);
/// assert!(link.contains(15));
/// assert!(link.contains(10));
/// assert!(!link.contains(21));
/// assert!(link.intersects(&KeyInterval::singleton(20)));
/// assert!(!link.intersects(&KeyInterval::between(30, 40)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct KeyInterval {
    lo: Endpoint,
    hi: Endpoint,
}

impl KeyInterval {
    /// Creates an interval from explicit endpoints.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn new(lo: Endpoint, hi: Endpoint) -> Self {
        assert!(lo <= hi, "interval endpoints out of order: {lo} > {hi}");
        KeyInterval { lo, hi }
    }

    /// The singleton range `[k, k]` of a node storing `k`.
    pub fn singleton(k: u64) -> Self {
        KeyInterval {
            lo: Endpoint::Key(k),
            hi: Endpoint::Key(k),
        }
    }

    /// The range `[x, y]` of a link joining keys `x ≤ y`.
    ///
    /// # Panics
    ///
    /// Panics if `x > y`.
    pub fn between(x: u64, y: u64) -> Self {
        Self::new(Endpoint::Key(x), Endpoint::Key(y))
    }

    /// The whole universe `[-∞, +∞]` (range of the sole link of an empty list).
    pub fn everything() -> Self {
        KeyInterval {
            lo: Endpoint::NegInf,
            hi: Endpoint::PosInf,
        }
    }

    /// `[-∞, k]` — the left sentinel link of a list whose minimum is `k`.
    pub fn below(k: u64) -> Self {
        KeyInterval {
            lo: Endpoint::NegInf,
            hi: Endpoint::Key(k),
        }
    }

    /// `[k, +∞]` — the right sentinel link of a list whose maximum is `k`.
    pub fn above(k: u64) -> Self {
        KeyInterval {
            lo: Endpoint::Key(k),
            hi: Endpoint::PosInf,
        }
    }

    /// Lower endpoint.
    pub fn lo(&self) -> Endpoint {
        self.lo
    }

    /// Upper endpoint.
    pub fn hi(&self) -> Endpoint {
        self.hi
    }

    /// Whether the interval is a single key.
    pub fn is_singleton(&self) -> bool {
        self.lo == self.hi
    }

    /// Whether key `q` lies in the closed interval.
    pub fn contains(&self, q: u64) -> bool {
        self.lo <= Endpoint::Key(q) && Endpoint::Key(q) <= self.hi
    }

    /// Whether two closed intervals intersect — the conflict relation of §2.2.
    pub fn intersects(&self, other: &KeyInterval) -> bool {
        self.lo <= other.hi && other.lo <= self.hi
    }
}

impl fmt::Display for KeyInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {}]", self.lo, self.hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn endpoint_order_puts_infinities_outside() {
        assert!(Endpoint::NegInf < Endpoint::Key(0));
        assert!(Endpoint::Key(u64::MAX) < Endpoint::PosInf);
        assert!(Endpoint::Key(1) < Endpoint::Key(2));
    }

    #[test]
    fn singleton_contains_only_its_key() {
        let s = KeyInterval::singleton(5);
        assert!(s.contains(5));
        assert!(!s.contains(4));
        assert!(!s.contains(6));
        assert!(s.is_singleton());
    }

    #[test]
    fn sentinels_cover_the_universe_edges() {
        assert!(KeyInterval::below(10).contains(0));
        assert!(KeyInterval::below(10).contains(10));
        assert!(!KeyInterval::below(10).contains(11));
        assert!(KeyInterval::above(10).contains(u64::MAX));
        assert!(KeyInterval::everything().contains(42));
    }

    #[test]
    fn intersection_is_symmetric_and_touching_counts() {
        let a = KeyInterval::between(0, 10);
        let b = KeyInterval::between(10, 20);
        let c = KeyInterval::between(11, 20);
        assert!(a.intersects(&b));
        assert!(b.intersects(&a));
        assert!(!a.intersects(&c));
        assert!(!c.intersects(&a));
    }

    #[test]
    fn node_conflicts_with_incident_links_only() {
        // Incidence iff intersection: node {10} vs the three links of list [5, 10, 15].
        let node = KeyInterval::singleton(10);
        assert!(node.intersects(&KeyInterval::between(5, 10)));
        assert!(node.intersects(&KeyInterval::between(10, 15)));
        assert!(!node.intersects(&KeyInterval::below(5)));
        assert!(!node.intersects(&KeyInterval::above(15)));
    }

    #[test]
    #[should_panic(expected = "out of order")]
    fn reversed_interval_is_rejected() {
        let _ = KeyInterval::between(7, 3);
    }

    #[test]
    fn display_shows_both_endpoints() {
        assert_eq!(KeyInterval::below(3).to_string(), "[-inf, 3]");
        assert_eq!(KeyInterval::between(1, 2).to_string(), "[1, 2]");
    }
}
